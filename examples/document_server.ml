(* A miniature document server: several data sources registered in a
   collection (Section 4, "data sources scattered over several sites"),
   numberings persisted and restored without relabelling, DataGuide
   summaries for query assistance, and twig queries answered by semijoins
   over the tag index.

   Run with: dune exec examples/document_server.exe *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module C = Rxpath.Collection

let tmp name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "doc-server-%d-%s" (Unix.getpid ()) name)

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

let main () =
  (* 1. Register heterogeneous sources. *)
  let coll = C.create ~max_area_size:32 () in
  let _auctions =
    C.add coll ~name:"auctions" (Rworkload.Xmark.generate ~seed:11 ~scale:1.0)
  in
  let library =
    C.add coll ~name:"library" (Rworkload.Dblp.generate ~seed:12 ~publications:150)
  in
  Printf.printf "collection: %d documents, %d nodes, %d words of K tables\n\n"
    (C.doc_count coll) (C.total_nodes coll) (C.aux_memory_words coll);

  (* 2. Cross-collection query. *)
  List.iter
    (fun q ->
      Printf.printf "query %-22s ->" q;
      List.iter
        (fun (d, hits) ->
          Printf.printf "  %s: %d" (C.name_of coll d) (List.length hits))
        (C.query coll q);
      print_newline ())
    [ "//name"; "//author"; "//item//text" ];

  (* 3. DataGuide of the library: what paths exist, for query assistance. *)
  let lib_root = R2.root (C.ruid coll library) in
  let guide = Rsummary.Dataguide.build lib_root in
  Printf.printf "\nlibrary DataGuide: %d label paths over %d elements\n"
    (Rsummary.Dataguide.guide_nodes guide)
    (Rsummary.Dataguide.document_nodes guide);
  Printf.printf "completions under /dblp/article: %s\n"
    (String.concat ", " (Rsummary.Dataguide.child_labels guide [ "dblp"; "article" ]));

  (* 4. Twig query over the auction source. *)
  let ar2 = C.ruid coll (Option.get (C.find coll "auctions")) in
  let index = Rxpath.Tag_index.create ar2 in
  let twig = "//person[creditcard]/name" in
  (match Rxpath.Twig.query ar2 index twig with
  | Some hits ->
    Printf.printf "\ntwig %s: %d matches (semijoins over tag postings)\n" twig
      (List.length hits)
  | None -> assert false);

  (* 5. Persist the library numbering and restore it: identifiers survive
        the process boundary, so external references stay valid. *)
  let xml = tmp "library.xml" and sidecar = tmp "library.ruid" in
  Fun.protect
    ~finally:(fun () ->
      remove_if_exists xml;
      remove_if_exists sidecar)
    (fun () ->
      Ruid.Persist.save (C.ruid coll library) ~xml ~sidecar;
      let _doc, restored = Ruid.Persist.load ~xml ~sidecar () in
      R2.check_consistency restored;
      let some_author =
        List.find (fun n -> Dom.tag n = "author") (R2.all_nodes restored)
      in
      Printf.printf
        "\npersisted and restored the library: %d identifiers verified;\n"
        (List.length (R2.all_nodes restored));
      Printf.printf "e.g. an <author> still resolves to %s\n"
        (R2.id_to_string (R2.id_of_node restored some_author)));
  print_endline "done."

let () =
  match main () with
  | () -> ()
  | exception e ->
    Printf.eprintf "document_server example failed: %s\n" (Printexc.to_string e);
    exit 1
