(* E16 — Cost-based query planner vs always-engine evaluation.

   The planner compiles each XPath into an explicit physical plan — chain
   structural joins over tag postings, the twig semijoin, a DataGuide
   refutation, or the engine as fallback — where the seed always ran the
   full evaluator.  This experiment measures what that buys, uncached (the
   result cache is not involved; the planner's plan cache is on, which is
   part of what is being measured — planning cost amortizes, execution
   repeats):

   - the E14 read mix (mid-cost XMark queries, several of which only the
     engine can run) — the planner must never lose here, because falling
     back is part of the plan space;
   - a branching/twig set the structural-join machinery should win
     outright;
   - a pruned set of structurally impossible paths the DataGuide refutes
     in microseconds without touching a posting list.

   Every query is first checked for answer equality: the planner and the
   engine must return the same nodes in the same order, or the experiment
   aborts.  Raw rows and the headline speedups go to BENCH_plan.json; the
   CI `planner` job gates on the headline. *)

module R2 = Ruid.Ruid2
module Planner = Rxpath.Planner

let json_rows : string list ref = ref []

type row = {
  set : string;
  query : string;
  strategy : string;
  engine_us : float;
  planner_us : float;
}

let results : row list ref = ref []

(* Branching patterns: structural predicates the twig semijoin handles and
   multi-step chains with a selective tail. *)
let branching_queries =
  [|
    "//item[payment][quantity]/name";
    "//person[profile/interest]/name";
    "//open_auction[bidder/increase]/current";
    "//closed_auction[annotation]/price";
    "//item[description//listitem]/name";
    "//regions//item/payment";
  |]

(* Structurally impossible label paths: the generator never nests these
   this way, so the DataGuide refutes them without touching postings. *)
let pruned_queries =
  [|
    "//warehouse/item";
    "//person/bidder/name";
    "/site/people/item";
    "//payment//person";
    "//category[name/price]";
  |]

let time_us reps f =
  (* median of 5 samples of [reps] runs, per-run microseconds *)
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps
  in
  let samples = Array.init 5 (fun _ -> sample ()) in
  Array.sort compare samples;
  samples.(2)

let bench_set ~set ~reps planner engine queries =
  Array.iter
    (fun q ->
      let u = Rxpath.Xparser.parse_union q in
      let from_planner = Planner.select_union planner u in
      let from_engine = Rxpath.Eval.select_union engine u in
      if not (List.for_all2 ( == ) from_planner from_engine) then (
        Printf.eprintf "E16: planner/engine answer mismatch on %s\n" q;
        exit 1);
      let strategy =
        Planner.kind_name (Planner.kind (fst (Planner.plan_for planner u)))
      in
      let engine_us =
        time_us reps (fun () -> Rxpath.Eval.select_union engine u)
      in
      let planner_us =
        time_us reps (fun () -> Planner.select_union planner u)
      in
      results := { set; query = q; strategy; engine_us; planner_us } :: !results;
      json_rows :=
        Printf.sprintf
          {|    {"set": %S, "query": %S, "strategy": %S, "engine_us": %.2f, "planner_us": %.2f, "speedup_x": %.2f}|}
          set q strategy engine_us planner_us
          (engine_us /. Float.max planner_us 1e-9)
        :: !json_rows)
    queries

let total set =
  List.fold_left
    (fun (e, p) r ->
      if r.set = set then (e +. r.engine_us, p +. r.planner_us) else (e, p))
    (0., 0.) !results

let write_json path ~mix_speedup ~branching_speedup ~pruned_us =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E16\",\n%s,\n%s\n  \"rows\": [\n%s\n  ]\n}\n"
    (Report.meta_json ())
    (Printf.sprintf
       {|  "headline": {"comment": "uncached, wall-clock totals per set", "mix_speedup_x": %.2f, "branching_speedup_x": %.2f, "pruned_us": %.2f},|}
       mix_speedup branching_speedup pruned_us)
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section "E16  Query planner: structural-join plans vs always-engine";
  json_rows := [];
  results := [];
  let root = Rworkload.Xmark.generate ~seed:99 ~scale:2.0 in
  let r2 = R2.number ~max_area_size:64 root in
  let planner = Planner.create r2 in
  (* A separate engine build (not [Planner.engine]) so the comparison is
     against exactly what the seed ran: its own index, no shared state. *)
  let engine = Rxpath.Engine_ruid.create r2 in
  Report.note "document: XMark scale 2 (%d nodes); DataGuide: %d label paths"
    (Rxml.Dom.size root)
    (Rsummary.Dataguide.guide_nodes (Planner.guide planner));
  bench_set ~set:"mix" ~reps:20 planner engine E14.read_queries;
  bench_set ~set:"branching" ~reps:20 planner engine branching_queries;
  bench_set ~set:"pruned" ~reps:100 planner engine pruned_queries;
  let rows =
    List.rev_map
      (fun r ->
        [
          r.set; r.query; r.strategy;
          Printf.sprintf "%.1f" r.engine_us;
          Printf.sprintf "%.1f" r.planner_us;
          Printf.sprintf "%.2fx" (r.engine_us /. Float.max r.planner_us 1e-9);
        ])
      !results
  in
  Report.table
    [ "set"; "query"; "strategy"; "engine us"; "planner us"; "speedup" ]
    rows;
  let me, mp = total "mix" in
  let be, bp = total "branching" in
  let _, pp = total "pruned" in
  let mix_speedup = me /. Float.max mp 1e-9 in
  let branching_speedup = be /. Float.max bp 1e-9 in
  let pruned_us =
    pp /. float_of_int (Array.length pruned_queries)
  in
  Report.note "mix speedup %.2fx, branching %.2fx, pruned answered in %.1f us"
    mix_speedup branching_speedup pruned_us;
  Report.note
    "every planner answer was checked node-for-node against the engine;";
  Report.note
    "fallback queries pay only the planning probe, join-friendly ones run";
  Report.note "as posting-array structural joins, impossible paths never";
  Report.note "touch a posting list.";
  write_json "BENCH_plan.json" ~mix_speedup ~branching_speedup ~pruned_us
