(* E13 — The concurrent document service under offered load.

   An in-process server (small worker pool, small admission queue) hosts
   one synthetic document; N client threads each drive a closed loop of
   requests over its Unix socket — a 90% COUNT / 10% UPDATE mix — and
   time every round trip from the client side.  Sweeping N shows the
   three regimes the admission controller is built for: underload (no
   rejects, flat latency), saturation (queueing shows up in the tail),
   and overload (explicit BUSY instead of unbounded latency).

   Raw numbers go to BENCH_server.json; the CI server job uploads that
   file as an artifact. *)

module Service = Rserver.Service
module Client = Rserver.Client
module Protocol = Rserver.Protocol

let json_rows : string list ref = ref []

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e13-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* One offered-load level: a fresh server, [clients] closed-loop client
   threads, [per_client] requests each.  Request i is an UPDATE when
   [i mod 10 = 9], a COUNT otherwise. *)
let run_level ~doc_name ~root ~clients ~per_client ~workers ~max_queue =
  let tag = Printf.sprintf "c%d" clients in
  let cfg =
    {
      Service.socket_path = Filename.concat workdir (tag ^ ".sock");
      data_dir = Filename.concat workdir tag;
      workers;
      max_queue;
      deadline_ms = 0;
      max_area_size = 64;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = 1;
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let srv = Service.start cfg [ (doc_name, Rxml.Dom.clone root) ] in
  let ok = Atomic.make 0 and err = Atomic.make 0 and busy = Atomic.make 0 in
  let lat_mu = Mutex.create () in
  let latencies = ref [] in
  let client_body k () =
    let conn = Client.connect cfg.Service.socket_path in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    for i = 0 to per_client - 1 do
      let req =
        if i mod 10 = 9 then
          Protocol.Update
            {
              doc = doc_name;
              op = Rstorage.Wal.Insert { parent_rank = 0; pos = 0; tag = "m" };
            }
        else Protocol.Count "//m"
      in
      let t0 = Unix.gettimeofday () in
      let resp = Client.request conn req in
      let dt = Unix.gettimeofday () -. t0 in
      (match resp with
      | Protocol.Ok_ _ ->
        Atomic.incr ok;
        Mutex.lock lat_mu;
        latencies := dt :: !latencies;
        Mutex.unlock lat_mu
      | Protocol.Err _ -> Atomic.incr err
      | Protocol.Busy _ -> Atomic.incr busy)
    done;
    ignore k
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun k -> Thread.create (client_body k) ()) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Service.stop srv;
  let total = clients * per_client in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99 in
  let maxl = if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1) in
  let busy_rate = float_of_int (Atomic.get busy) /. float_of_int total in
  let throughput = float_of_int (Atomic.get ok) /. elapsed in
  json_rows :=
    Printf.sprintf
      {|    {"clients": %d, "requests": %d, "ok": %d, "err": %d, "busy": %d, "busy_rate": %.4f, "elapsed_s": %.4f, "throughput_rps": %.1f, "p50_us": %.1f, "p95_us": %.1f, "p99_us": %.1f, "max_us": %.1f}|}
      clients total (Atomic.get ok) (Atomic.get err) (Atomic.get busy)
      busy_rate elapsed throughput (p50 *. 1e6) (p95 *. 1e6) (p99 *. 1e6)
      (maxl *. 1e6)
    :: !json_rows;
  [
    Report.fint clients;
    Report.fint total;
    Report.fint (Atomic.get ok);
    Report.fint (Atomic.get busy);
    Printf.sprintf "%.1f%%" (busy_rate *. 100.);
    Printf.sprintf "%.0f/s" throughput;
    Report.fns (p50 *. 1e9);
    Report.fns (p95 *. 1e9);
    Report.fns (p99 *. 1e9);
  ]

let write_json path =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E13\",\n  \"mix\": \"90%% COUNT / 10%% UPDATE\",\n\
    %s,\n  \"levels\": [\n%s\n  ]\n}\n"
    (Report.meta_json ())
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section
    "E13  Concurrent service: throughput, tail latency, overload behaviour";
  let root =
    Rworkload.Shape.generate ~seed:131 ~target:2000
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let workers = 2 and max_queue = 4 and per_client = 200 in
  Report.note "document: 2000 nodes; mix: 90%% COUNT //m, 10%% UPDATE INSERT;";
  Report.note
    "server: %d workers, admission queue %d (deliberately small so the"
    workers max_queue;
  Report.note "highest load level visibly rejects with BUSY).";
  let rows =
    List.map
      (fun clients ->
        run_level ~doc_name:"bench" ~root ~clients ~per_client ~workers
          ~max_queue)
      [ 2; 8; 32 ]
  in
  Report.table
    [
      "clients"; "offered"; "ok"; "busy"; "busy rate"; "throughput"; "p50";
      "p95"; "p99";
    ]
    rows;
  Report.note
    "reads never block on the writer (snapshot isolation): tail latency";
  Report.note
    "under load is queueing, and past the queue bound the service degrades";
  Report.note "by rejecting (BUSY) rather than by slowing everyone down.";
  write_json "BENCH_server.json"
