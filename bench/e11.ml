(* E11 — Array-backed document-order index: range-based axis evaluation
   vs the seed's posting-list arithmetic, and the extent-merge join.

   (a) Name tests on unbounded axes, per strategy: the seed's per-candidate
   Rel.relationship filter over the tag posting list ("arith"), generating
   the axis and testing the tag ("walk"), and binary-searching the
   rank-sorted posting array against the context extent ("range"), plus
   what the cost model picks ("auto").  (b) End-to-end queries through the
   evaluator.  (c) Ancestor-descendant joins including the extent_merge
   algorithm over the shared index.

   Besides the tables, the harness writes BENCH_axis.json with the raw
   per-strategy timings so later PRs can track the perf trajectory. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module DI = Rxpath.Doc_index
module ER = Rxpath.Engine_ruid
module Eval = Rxpath.Eval
module Ast = Rxpath.Ast
module J = Rjoin.Structural_join
module Rng = Rworkload.Rng

let strategies = [ ER.Arith; ER.Walk; ER.Range; ER.Auto ]

(* Evaluate a name test on one axis the way the evaluator would: the
   engine's fast path when it offers one, otherwise axis-generate + test. *)
let run_named eng axis tag n =
  match eng.Eval.named_axis axis tag n with
  | Some l -> l
  | None -> List.filter (fun x -> Dom.tag x = tag) (eng.Eval.axis axis n)

let time_batch ~reps f =
  let _, s = Report.time (fun () -> for _ = 1 to reps do f () done) in
  s /. float_of_int reps

(* JSON rows accumulated across the sub-experiments. *)
let json_axis : string list ref = ref []
let json_join : string list ref = ref []
let json_query : string list ref = ref []

let axis_table () =
  Report.subsection
    "E11.a  descendant/following name tests: strategy wall clock (batch over contexts)";
  List.iter
    (fun scale ->
      let site = Rworkload.Xmark.generate ~seed:111 ~scale in
      let r2 = R2.number ~max_area_size:64 site in
      let idx = DI.build r2 in
      let total = DI.size idx in
      Report.note "document: xmark scale %.0f (%d nodes)" scale total;
      let engines =
        List.map (fun s -> (s, ER.create ~strategy:s r2)) strategies
      in
      let rng = Rng.create 112 in
      let contexts =
        Array.init 64 (fun _ -> Rworkload.Shape.random_internal rng site)
      in
      let rows =
        List.concat_map
          (fun (axis, axis_name) ->
            List.map
              (fun tag ->
                let card = DI.cardinality idx tag in
                let times =
                  List.map
                    (fun (s, eng) ->
                      let t =
                        time_batch ~reps:3 (fun () ->
                            Array.iter
                              (fun n -> ignore (run_named eng axis tag n))
                              contexts)
                      in
                      (s, t))
                    engines
                in
                let ns s = List.assoc s times *. 1e9 in
                json_axis :=
                  Printf.sprintf
                    {|    {"doc": "xmark-%.0f", "nodes": %d, "axis": "%s", "tag": "%s", "cardinality": %d, "contexts": %d, "arith_ns": %.0f, "walk_ns": %.0f, "range_ns": %.0f, "auto_ns": %.0f}|}
                    scale total axis_name tag card (Array.length contexts)
                    (ns ER.Arith) (ns ER.Walk) (ns ER.Range) (ns ER.Auto)
                  :: !json_axis;
                [
                  Printf.sprintf "xmark-%.0f" scale; axis_name; tag;
                  Report.fint card;
                  Report.fns (ns ER.Arith); Report.fns (ns ER.Walk);
                  Report.fns (ns ER.Range); Report.fns (ns ER.Auto);
                ])
              [ "text"; "item"; "name"; "increase" ])
          [ (Ast.Descendant, "descendant"); (Ast.Following, "following") ]
      in
      Report.table
        [ "doc"; "axis"; "tag"; "|postings|"; "arith (seed)"; "walk"; "range";
          "auto" ]
        rows)
    [ 2.0; 8.0 ];
  Report.note
    "arith is the seed's posting filter (one relationship decision per posted";
  Report.note
    "node); range binary-searches the rank-sorted posting array against the";
  Report.note "context extent and only touches the output."

let query_table () =
  Report.subsection "E11.b  end-to-end queries through the evaluator";
  let site = Rworkload.Xmark.generate ~seed:113 ~scale:8.0 in
  let r2 = R2.number ~max_area_size:64 site in
  let engines = List.map (fun s -> (s, ER.create ~strategy:s r2)) strategies in
  let rows =
    List.map
      (fun q ->
        let counts = ref (-1) in
        let times =
          List.map
            (fun (s, eng) ->
              let r = ref [] in
              let t = time_batch ~reps:3 (fun () -> r := Eval.query eng q) in
              (match !counts with
              | -1 -> counts := List.length !r
              | c -> assert (c = List.length !r));
              (s, t *. 1e9))
            engines
        in
        let ns s = List.assoc s times in
        json_query :=
          Printf.sprintf
            {|    {"query": "%s", "results": %d, "arith_ns": %.0f, "walk_ns": %.0f, "range_ns": %.0f, "auto_ns": %.0f}|}
            (String.concat "" (String.split_on_char '"' q))
            !counts (ns ER.Arith) (ns ER.Walk) (ns ER.Range) (ns ER.Auto)
          :: !json_query;
        [
          q; Report.fint !counts;
          Report.fns (ns ER.Arith); Report.fns (ns ER.Walk);
          Report.fns (ns ER.Range); Report.fns (ns ER.Auto);
        ])
      [
        "//item//text"; "//listitem//keyword"; "//open_auction//increase";
        "//regions//name"; "//person//emailaddress";
      ]
  in
  Report.table
    [ "query"; "results"; "arith (seed)"; "walk"; "range"; "auto" ]
    rows;
  Report.note
    "auto should track the best column: the cost model replaces the seed's";
  Report.note "hard-coded 256-candidate threshold."

let join_table () =
  Report.subsection
    "E11.c  ancestor-descendant joins: extent_merge over the shared index";
  let site = Rworkload.Xmark.generate ~seed:114 ~scale:8.0 in
  let r2 = R2.number ~max_area_size:64 site in
  let idx = DI.build r2 in
  let pp = Baselines.Prepost.build site in
  let by_tag tag =
    List.filter (fun n -> Dom.tag n = tag) (Dom.preorder site)
  in
  let rows =
    List.map
      (fun (anc_tag, desc_tag) ->
        let anc = by_tag anc_tag and desc = by_tag desc_tag in
        let r_probe, t_probe =
          Report.time (fun () -> J.ancestor_probe r2 ~anc ~desc)
        in
        let r_stack, t_stack =
          Report.time (fun () -> J.stack_tree pp ~anc ~desc)
        in
        let r_extent, t_extent =
          Report.time (fun () ->
              J.extent_merge ~extent:(DI.extent idx) ~anc ~desc)
        in
        assert (List.length r_probe = List.length r_extent);
        assert (List.length r_stack = List.length r_extent);
        json_join :=
          Printf.sprintf
            {|    {"anc": "%s", "desc": "%s", "anc_n": %d, "desc_n": %d, "pairs": %d, "probe_ns": %.0f, "stack_tree_ns": %.0f, "extent_merge_ns": %.0f}|}
            anc_tag desc_tag (List.length anc) (List.length desc)
            (List.length r_extent) (t_probe *. 1e9) (t_stack *. 1e9)
            (t_extent *. 1e9)
          :: !json_join;
        [
          Printf.sprintf "%s//%s" anc_tag desc_tag;
          Report.fint (List.length anc);
          Report.fint (List.length desc);
          Report.fint (List.length r_extent);
          Report.fns (t_probe *. 1e9);
          Report.fns (t_stack *. 1e9);
          Report.fns (t_extent *. 1e9);
        ])
      [
        ("item", "text"); ("listitem", "text"); ("open_auction", "increase");
        ("parlist", "parlist");
      ]
  in
  Report.table
    [ "join"; "|A|"; "|D|"; "pairs"; "ancestor probe"; "stack-tree";
      "extent merge" ]
    rows;
  Report.note
    "extent_merge reuses the query engine's document-order index: stack-tree";
  Report.note "economics without building a separate prepost labeling."

let write_json path =
  let oc = open_out path in
  let section name rows =
    Printf.sprintf "  \"%s\": [\n%s\n  ]" name
      (String.concat ",\n" (List.rev rows))
  in
  Printf.fprintf oc "{\n  \"experiment\": \"E11\",\n%s,\n%s,\n%s,\n%s\n}\n"
    (Report.meta_json ())
    (section "axis" !json_axis)
    (section "query" !json_query)
    (section "join" !json_join);
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section
    "E11  Array-backed document-order index: range axes and extent joins";
  axis_table ();
  query_table ();
  join_table ();
  write_json "BENCH_axis.json"
