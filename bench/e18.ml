(* E18 — The sharded collection tier: ingest throughput, scatter-gather
   latency and correctness, aggregate vs single-shard read throughput,
   and the rebalance pause.

   Topology: three bare shards plus a router, all in-process.  A fourth
   "monolith" shard hosting the whole corpus is the single-shard
   baseline the tier is compared against.

   Measurements:

   - {b ingest}: the corpus streams in over per-shard connections
     bucketed by the placement hash (exactly what [ruidtool ingest]
     does), in three stages so scatter latency can be sampled at three
     corpus sizes.  Reported as docs/s and MB/s.
   - {b scatter}: router COUNT latency (p50/p99) at each corpus size,
     and the correctness identity — the router's total must equal the
     sum of the per-shard totals asked directly.
   - {b read mix}: a 50/50 COUNTD/QUERYD mix over random documents, run
     (a) against the monolith, (b) through the router, and (c) directly
     against the three shards in parallel (the aggregate capacity of
     the tier; what sharding buys once shards sit on separate cores or
     machines).  On a single-core box the aggregate is contended — the
     cores field in the meta records the seat the numbers were taken
     from.
   - {b rebalance}: one document moves between shards while a scatter
     loop runs; the reply's measured write-pause is reported, and the
     moved document's QUERYD answer must be byte-identical (modulo the
     snapshot version) before and after.

   Raw numbers go to BENCH_collection.json; the CI collection job
   uploads that file as an artifact. *)

module Service = Rserver.Service
module Router = Rserver.Router
module Shard_map = Rserver.Shard_map
module Client = Rserver.Client
module Protocol = Rserver.Protocol

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e18-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let shard_config tag =
  {
    Service.socket_path = Filename.concat workdir (tag ^ ".sock");
    data_dir = Filename.concat workdir tag;
    workers = 2;
    max_queue = 32;
    deadline_ms = 0;
    max_area_size = 16;
    max_depth = 10_000;
    domains = 0;
    cache_mb = 0;
    commit_interval_us = 0;
    commit_max_batch = 64;
    commit_groups = 1;
    wal_segment_bytes = 0;
    planner = true;
    plan_cache = 64;
    epoch = 1;
  }

let shards = 3
let n_docs = 240
let stages = [ 80; 160; 240 ]

let doc_name i = Printf.sprintf "d%04d" i

let corpus =
  lazy
    (Array.init n_docs (fun i ->
         let root =
           Rworkload.Shape.generate ~seed:(1800 + i)
             ~tags:[| "item"; "name"; "desc"; "price" |]
             ~target:(30 + (i mod 5 * 10))
             (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
         in
         (doc_name i, Rxml.Serializer.to_string root)))

let ok_or_die what = function
  | Protocol.Ok_ body -> body
  | r -> failwith (what ^ ": " ^ Protocol.response_to_string r)

let request_on sock req =
  Client.with_connection sock (fun c -> Client.request c req)

(* Stream [docs] into the tier over one connection per shard, bucketed by
   the placement hash — the [ruidtool ingest] fast path in miniature. *)
let ingest_direct shard_socks docs =
  let buckets = Array.make (Array.length shard_socks) [] in
  Array.iter
    (fun (name, xml) ->
      let s = Shard_map.hash ~shards:(Array.length shard_socks) name in
      buckets.(s) <- (name, xml) :: buckets.(s))
    docs;
  let threads =
    Array.mapi
      (fun s bucket ->
        Thread.create
          (fun () ->
            Client.with_connection shard_socks.(s) @@ fun c ->
            List.iter
              (fun (name, xml) ->
                ignore
                  (ok_or_die ("ADDDOC " ^ name)
                     (Client.request c (Protocol.Add_doc { doc = name; xml }))))
              (List.rev bucket))
          ())
      buckets
  in
  Array.iter Thread.join threads

let scatter_latency router_sock reps =
  Client.with_connection router_sock @@ fun c ->
  let samples =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (ok_or_die "COUNT" (Client.request c (Protocol.Count "//item")));
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare samples;
  (percentile samples 0.50 *. 1e3, percentile samples 0.99 *. 1e3)

(* A 50/50 COUNTD/QUERYD mix over random documents through [sock],
   [clients] threads, [per_client] requests each.  Returns requests/s. *)
let read_mix sock ~clients ~per_client =
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            Client.with_connection sock @@ fun c ->
            for i = 0 to per_client - 1 do
              let name = doc_name ((ci * 7919 + i * 31) mod n_docs) in
              let req =
                if i land 1 = 0 then
                  Protocol.Count_doc { doc = name; xpath = "//price" }
                else Protocol.Query_doc { doc = name; xpath = "//name" }
              in
              ignore (ok_or_die "read mix" (Client.request c req))
            done)
          ())
  in
  List.iter Thread.join threads;
  float_of_int (clients * per_client) /. (Unix.gettimeofday () -. t0)

let strip_version body =
  String.split_on_char ' ' body
  |> List.filter (fun tok ->
         not (String.length tok > 2 && String.sub tok 0 2 = "v="))
  |> String.concat " "

let run () =
  Report.section
    "E18  Collection tier: ingest, scatter-gather, aggregate reads, rebalance";
  let corpus = Lazy.force corpus in
  let bytes_total =
    Array.fold_left (fun acc (_, xml) -> acc + String.length xml) 0 corpus
  in
  let mb_total = float_of_int bytes_total /. 1048576. in

  (* --- the tier: 3 bare shards + router ----------------------------- *)
  let scfgs = Array.init shards (fun i -> shard_config (Printf.sprintf "e18s%d" i)) in
  let shard_socks = Array.map (fun c -> c.Service.socket_path) scfgs in
  let srvs = Array.map (fun c -> Service.start c []) scfgs in
  let rcfg =
    Router.default_config
      ~socket_path:(Filename.concat workdir "e18r.sock")
      ~shard_sockets:shard_socks ()
  in
  let router = Router.start rcfg in

  (* --- staged ingest, scatter latency at each corpus size ----------- *)
  let ingest_clock = ref 0. in
  let scatter_points =
    List.map
      (fun upto ->
        let from = match List.filter (fun s -> s < upto) stages with
          | [] -> 0
          | smaller -> List.fold_left max 0 smaller
        in
        let t0 = Unix.gettimeofday () in
        ingest_direct shard_socks (Array.sub corpus from (upto - from));
        ingest_clock := !ingest_clock +. (Unix.gettimeofday () -. t0);
        let p50, p99 = scatter_latency rcfg.Router.socket_path 40 in
        (upto, p50, p99))
      stages
  in
  (* scatter sampling time excluded: charge only the ADDDOC streaming *)
  let ingest_s = !ingest_clock in
  let docs_per_s = float_of_int n_docs /. ingest_s in
  let mb_per_s = mb_total /. ingest_s in

  (* --- scatter correctness: total == sum of shard totals ------------ *)
  let router_total =
    let body =
      ok_or_die "COUNT" (request_on rcfg.Router.socket_path (Protocol.Count "//item"))
    in
    match Client.kv_int body "total" with Some t -> t | None -> -1
  in
  let shard_sum =
    Array.fold_left
      (fun acc sock ->
        let body = ok_or_die "COUNT" (request_on sock (Protocol.Count "//item")) in
        acc + match Client.kv_int body "total" with Some t -> t | None -> 0)
      0 shard_socks
  in
  if router_total <> shard_sum then
    failwith
      (Printf.sprintf "E18 scatter mismatch: router %d vs shard sum %d"
         router_total shard_sum);

  (* --- read mix: monolith vs router vs direct aggregate ------------- *)
  let mcfg = shard_config "e18mono" in
  let mono = Service.start mcfg [] in
  ingest_direct [| mcfg.Service.socket_path |] corpus;
  let clients = 3 and per_client = 400 in
  let mono_rps = read_mix mcfg.Service.socket_path ~clients ~per_client in
  let router_rps = read_mix rcfg.Router.socket_path ~clients ~per_client in
  (* direct aggregate: each client speaks to one shard, asking only for
     documents that shard hosts *)
  let aggregate_rps =
    let t0 = Unix.gettimeofday () in
    let counts = Array.make shards 0 in
    let threads =
      List.init shards (fun s ->
          Thread.create
            (fun () ->
              Client.with_connection shard_socks.(s) @@ fun c ->
              let sent = ref 0 in
              let i = ref 0 in
              while !sent < per_client do
                let name = doc_name (!i mod n_docs) in
                incr i;
                if Shard_map.hash ~shards name = s then begin
                  incr sent;
                  let req =
                    if !sent land 1 = 0 then
                      Protocol.Count_doc { doc = name; xpath = "//price" }
                    else Protocol.Query_doc { doc = name; xpath = "//name" }
                  in
                  ignore
                    (ok_or_die "aggregate mix" (Client.request c req))
                end
              done;
              counts.(s) <- !sent)
            ())
    in
    List.iter Thread.join threads;
    float_of_int (Array.fold_left ( + ) 0 counts)
    /. (Unix.gettimeofday () -. t0)
  in
  Service.stop mono;
  let speedup = aggregate_rps /. mono_rps in

  (* --- rebalance under traffic -------------------------------------- *)
  let victim = doc_name 0 in
  let home = Shard_map.hash ~shards victim in
  let target = (home + 1) mod shards in
  let stop_traffic = Atomic.make false in
  let traffic =
    Thread.create
      (fun () ->
        Client.with_connection rcfg.Router.socket_path @@ fun c ->
        while not (Atomic.get stop_traffic) do
          ignore (Client.request c (Protocol.Count "//price"))
        done)
      ()
  in
  let before =
    strip_version
      (ok_or_die "QUERYD"
         (request_on rcfg.Router.socket_path
            (Protocol.Query_doc { doc = victim; xpath = "//item" })))
  in
  let body =
    ok_or_die "REBALANCE"
      (request_on rcfg.Router.socket_path
         (Protocol.Rebalance { doc = victim; target }))
  in
  let pause_ms =
    match Client.kv body "pause_ms" with
    | Some s -> float_of_string s
    | None -> failwith "REBALANCE reply lacks pause_ms="
  in
  let after =
    strip_version
      (ok_or_die "QUERYD"
         (request_on rcfg.Router.socket_path
            (Protocol.Query_doc { doc = victim; xpath = "//item" })))
  in
  Atomic.set stop_traffic true;
  Thread.join traffic;
  if before <> after then
    failwith "E18 rebalance changed the document's QUERYD answer";

  Router.stop router;
  Array.iter Service.stop srvs;

  Report.table
    [ "metric"; "value" ]
    ([
       [ "corpus"; Printf.sprintf "%d docs, %.2f MB" n_docs mb_total ];
       [ "ingest"; Printf.sprintf "%.0f docs/s, %.2f MB/s" docs_per_s mb_per_s ];
     ]
    @ List.map
        (fun (upto, p50, p99) ->
          [ Printf.sprintf "scatter COUNT @%d docs" upto;
            Printf.sprintf "p50 %.2f ms, p99 %.2f ms" p50 p99 ])
        scatter_points
    @ [
        [ "scatter identity";
          Printf.sprintf "router %d == shard sum %d" router_total shard_sum ];
        [ "read mix, monolith"; Printf.sprintf "%.0f req/s" mono_rps ];
        [ "read mix, via router"; Printf.sprintf "%.0f req/s" router_rps ];
        [ "read mix, direct aggregate"; Printf.sprintf "%.0f req/s" aggregate_rps ];
        [ "aggregate / monolith"; Printf.sprintf "%.2fx" speedup ];
        [ "rebalance pause"; Printf.sprintf "%.1f ms" pause_ms ];
      ]);
  Report.note
    "aggregate = three clients on three shards in parallel; on a single-core";
  Report.note
    "seat (see meta.cores) all shards contend for the same CPU, so the";
  Report.note
    "speedup reflects the protocol floor, not the tier's scaling ceiling.";
  let oc = open_out "BENCH_collection.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E18\",\n\
     %s,\n\
    \  \"ingest\": {\"docs\": %d, \"mb\": %.3f, \"seconds\": %.3f, \
     \"docs_per_s\": %.1f, \"mb_per_s\": %.3f},\n\
    \  \"scatter\": {\"identity\": {\"router_total\": %d, \"shard_sum\": %d}, \
     \"latency\": [%s]},\n\
    \  \"read_mix\": {\"monolith_rps\": %.1f, \"router_rps\": %.1f, \
     \"aggregate_rps\": %.1f, \"aggregate_over_monolith\": %.3f},\n\
    \  \"rebalance\": {\"pause_ms\": %.2f}\n\
     }\n"
    (Report.meta_json ()) n_docs mb_total ingest_s docs_per_s mb_per_s
    router_total shard_sum
    (String.concat ", "
       (List.map
          (fun (upto, p50, p99) ->
            Printf.sprintf
              "{\"docs\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f}" upto p50 p99)
          scatter_points))
    mono_rps router_rps aggregate_rps speedup pause_ms;
  close_out oc;
  Report.note "wrote BENCH_collection.json"
