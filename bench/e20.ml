(* E20 — Streaming ingest vs DOM ingest: throughput and peak memory.

   The DOM path is what ingest did before the streaming builder existed:
   read the whole file into a string, [Parser.parse_string], then
   [Ruid2.number] — the source text, the tree and the numbering are all
   live at once, and the text was parsed twice when the client prechecked
   well-formedness.  The streaming path is [Stream_build.of_file]: one SAX
   pass over a chunked feed assembling the tree and the numbering directly,
   with the source never materialized.

   Both paths necessarily keep the finished tree (the paper's numbering
   needs global structure — fan-out and the greedy cut — before any
   identifier is final), so peak RSS grows with document size on both.
   What streaming buys is the constant: the full source string and the
   second parse disappear, so the extra footprint per ingested byte drops
   and the gap widens linearly with document size.  Client-side the bound
   is stronger still — [Client.add_doc_file] holds one protocol frame
   regardless of file size — but that is exercised by the server tests;
   this experiment isolates the build itself.

   Method: every measurement runs in a forked child so the high-water mark
   (VmHWM, see [Report.peak_rss_kb]) belongs to that one build; the child
   samples the mark before and after the work and reports the difference,
   cancelling whatever footprint it inherited from the harness.  Documents
   are generated deterministically at several sizes; each child repeats the
   build enough times to get a stable docs/s figure (RSS is taken from the
   same run — repetition does not move the high-water mark since each
   iteration's tree replaces the last).

   Raw rows and the headline ratios go to BENCH_ingest.json; the CI ingest
   job gates on streaming throughput >= 1.0x DOM and on the streaming
   footprint staying below the DOM path's at the largest size. *)

module Parser = Rxml.Parser
module Dom = Rxml.Dom
module Stream_build = Ruid.Stream_build
module Ruid2 = Ruid.Ruid2

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e20-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let max_area_size = 64

(* Deterministic catalog-shaped document of at least [target] bytes:
   moderate fan-out at the top, small rigid records below — the shape real
   corpora (DBLP, XMark items) ingest as. *)
let gen_file path ~target =
  let oc = open_out_bin path in
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf "<catalog>\n";
  let i = ref 0 in
  while Buffer.length buf < target do
    Buffer.add_string buf
      (Printf.sprintf
         "<item id=\"%d\"><name>item-%d</name><price>%d</price><desc>A \
          sturdy example artifact, batch %d, for the ingest \
          benchmark.</desc></item>\n"
         !i !i ((!i * 37) mod 997) (!i / 64));
    incr i
  done;
  Buffer.add_string buf "</catalog>\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  (Unix.stat path).Unix.st_size

type sample = {
  secs : float;
  reps : int;
  nodes : int;
  extra_kb : int;  (* VmHWM growth across the builds, KiB *)
}

let build_once mode path =
  match mode with
  | `Stream -> (Stream_build.of_file ~max_area_size path).Stream_build.stats.Stream_build.nodes
  | `Dom ->
    let ic = open_in_bin path in
    let xml =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      really_input_string ic (in_channel_length ic)
    in
    let doc = Parser.parse_string xml in
    let r2 = Ruid2.number ~max_area_size doc in
    ignore (Sys.opaque_identity r2);
    Dom.size doc

(* Run [reps] builds in a forked child; the pipe carries the sample back.
   The child bypasses at_exit so the parent's buffered stdout is not
   flushed twice. *)
let measure mode path ~reps =
  flush stdout;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let base_kb = Report.peak_rss_kb () in
    let t0 = Unix.gettimeofday () in
    let nodes = ref 0 in
    for _ = 1 to reps do
      nodes := build_once mode path
    done;
    let secs = Unix.gettimeofday () -. t0 in
    let peak_kb = Report.peak_rss_kb () in
    let oc = Unix.out_channel_of_descr w in
    Printf.fprintf oc "%f %d %d\n" secs !nodes (max 0 (peak_kb - base_kb));
    flush oc;
    Unix._exit 0
  | pid ->
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let line = input_line ic in
    close_in ic;
    ignore (Unix.waitpid [] pid);
    Scanf.sscanf line "%f %d %d" (fun secs nodes extra_kb ->
        { secs; reps; nodes; extra_kb })

let docs_per_s s = float_of_int s.reps /. s.secs

let json_rows : string list ref = ref []

let write_json path ~ratio_tp ~ratio_rss =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E20\",\n\
     %s,\n\
    \  \"headline\": {\"stream_over_dom_throughput\": %.3f, \
     \"stream_over_dom_peak_rss\": %.3f},\n\
    \  \"sizes\": [\n%s\n  ]\n}\n"
    (Report.meta_json ~knobs:[ ("max_area_size", max_area_size) ] ())
    ratio_tp ratio_rss
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section "E20  Streaming ingest vs DOM ingest: docs/s and peak RSS";
  let sizes = [ ("128K", 128 * 1024); ("1M", 1 lsl 20); ("8M", 8 lsl 20) ] in
  let last_tp = ref 1.0 and last_rss = ref 1.0 in
  let rows =
    List.map
      (fun (label, target) ->
        let path = Filename.concat workdir ("doc-" ^ label ^ ".xml") in
        let bytes = gen_file path ~target in
        (* Enough repetitions for a stable clock on small files, few on the
           big ones where a single build is already tens of ms. *)
        let reps = max 2 (min 40 (16_000_000 / bytes)) in
        let dom = measure `Dom path ~reps in
        let st = measure `Stream path ~reps in
        if dom.nodes <> st.nodes then
          failwith
            (Printf.sprintf "E20: node count mismatch (dom %d, stream %d)"
               dom.nodes st.nodes);
        let tp = docs_per_s st /. docs_per_s dom in
        let rss =
          if dom.extra_kb = 0 then 1.0
          else float_of_int st.extra_kb /. float_of_int dom.extra_kb
        in
        last_tp := tp;
        last_rss := rss;
        json_rows :=
          Printf.sprintf
            "    {\"size\": %S, \"bytes\": %d, \"nodes\": %d, \"reps\": %d,\n\
            \     \"dom\": {\"secs\": %.4f, \"docs_per_s\": %.2f, \
             \"peak_extra_kb\": %d},\n\
            \     \"stream\": {\"secs\": %.4f, \"docs_per_s\": %.2f, \
             \"peak_extra_kb\": %d}}"
            label bytes st.nodes reps dom.secs (docs_per_s dom) dom.extra_kb
            st.secs (docs_per_s st) st.extra_kb
          :: !json_rows;
        [
          label;
          Report.fint bytes;
          Report.fint st.nodes;
          Printf.sprintf "%.1f" (docs_per_s dom);
          Printf.sprintf "%.1f" (docs_per_s st);
          Printf.sprintf "%.2fx" tp;
          Report.fint dom.extra_kb;
          Report.fint st.extra_kb;
          Printf.sprintf "%.2fx" rss;
        ])
      sizes
  in
  Report.table
    [
      "doc"; "bytes"; "nodes"; "dom docs/s"; "stream docs/s"; "speedup";
      "dom kb"; "stream kb"; "rss ratio";
    ]
    rows;
  Report.note "both paths keep the finished tree (numbering needs global";
  Report.note "structure), so RSS grows with the document on both; streaming";
  Report.note "drops the source copy and the second parse, so its footprint";
  Report.note "per byte stays below the DOM path's and the gap widens with";
  Report.note "size.  The CI ingest job gates on the headline ratios.";
  write_json "BENCH_ingest.json" ~ratio_tp:!last_tp ~ratio_rss:!last_rss
