(* E19 — Commit pipelines: write scaling across document groups.

   E15 measured one pipeline's batching; this sweep measures how many
   pipelines pay off.  The server hosts 8 documents which hash over the
   configured commit groups; closed-loop clients pin themselves to a
   document round-robin and drive a 50/50 UPDATE/COUNT mix against it.
   With --commit-groups 1 every update funnels through a single commit
   queue and fsync cadence — the PR-5 global write path.  With 4
   groups, documents in different groups commit, fsync and publish
   concurrently; per-document ordering is untouched because a document
   never changes groups.

   The headline compares 32-client 50/50 update throughput at 4 groups
   against 1 group.  On a single-core runner the ratio hovers near 1
   (the pipelines time-slice one CPU and one disk); the CI `multicore`
   job runs this on a multi-core box and gates groups-4 >= groups-1.

   Raw rows and the headline go to BENCH_commit.json. *)

module Service = Rserver.Service
module Client = Rserver.Client
module Protocol = Rserver.Protocol

let json_rows : string list ref = ref []

type level = {
  groups : int;
  clients : int;
  update_rps : float;
  p50_us : float;
}

let results : level list ref = ref []

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e19-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let n_docs = 8

(* One level: a fresh server hosting [n_docs] documents with [groups]
   commit pipelines, [clients] closed-loop clients, [per_client] requests
   each at a 50/50 update/read mix.  Client k works document k mod
   [n_docs], so updates spread over every group the config provisions. *)
let run_level ~roots ~groups ~clients ~per_client =
  let tag = Printf.sprintf "g%d-c%d" groups clients in
  let cfg =
    {
      Service.socket_path = Filename.concat workdir (tag ^ ".sock");
      data_dir = Filename.concat workdir tag;
      workers = clients + 1;
      max_queue = 0 (* default: 4 x pool *);
      deadline_ms = 0;
      max_area_size = 64;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = groups;
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let docs =
    List.mapi
      (fun i root -> (Printf.sprintf "doc%d" i, Rxml.Dom.clone root))
      roots
  in
  let srv = Service.start cfg docs in
  let ok = Atomic.make 0 and err = Atomic.make 0 and busy = Atomic.make 0 in
  let update_ok = Atomic.make 0 in
  let lat_mu = Mutex.create () in
  let update_lat = ref [] in
  let client_body k () =
    let doc = Printf.sprintf "doc%d" (k mod n_docs) in
    let conn = Client.connect cfg.Service.socket_path in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    for i = 0 to per_client - 1 do
      let is_update = (i + k) mod 2 = 0 in
      let req =
        if is_update then
          Protocol.Update
            {
              doc;
              op = Rstorage.Wal.Insert { parent_rank = 0; pos = 0; tag = "m" };
            }
        else Protocol.Count "//m"
      in
      let t0 = Unix.gettimeofday () in
      let resp = Client.request conn req in
      let dt = Unix.gettimeofday () -. t0 in
      match resp with
      | Protocol.Ok_ _ ->
        Atomic.incr ok;
        if is_update then begin
          Atomic.incr update_ok;
          Mutex.lock lat_mu;
          update_lat := dt :: !update_lat;
          Mutex.unlock lat_mu
        end
      | Protocol.Err _ -> Atomic.incr err
      | Protocol.Busy _ -> Atomic.incr busy
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun k -> Thread.create (client_body k) ()) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats_body =
    Client.with_connection cfg.Service.socket_path @@ fun c ->
    match Client.request c Protocol.Stats with
    | Protocol.Ok_ body -> body
    | _ -> ""
  in
  let stat key = Option.value ~default:0 (Client.kv_int stats_body key) in
  let statf key =
    match Client.kv stats_body key with
    | Some s -> ( try float_of_string s with _ -> 0.)
    | None -> 0.
  in
  Service.stop srv;
  let total = clients * per_client in
  let sorted = Array.of_list !update_lat in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
  let update_rps = float_of_int (Atomic.get update_ok) /. elapsed in
  let throughput = float_of_int (Atomic.get ok) /. elapsed in
  json_rows :=
    Printf.sprintf
      {|    {"commit_groups": %d, "docs": %d, "workers": %d, "domains": %d, "clients": %d, "requests": %d, "ok": %d, "err": %d, "busy": %d, "elapsed_s": %.4f, "throughput_rps": %.1f, "update_rps": %.1f, "update_p50_us": %.1f, "update_p99_us": %.1f, "wal_batches": %d, "wal_records": %d, "wal_mean_batch": %.2f, "leader_handoffs": %d, "publish_incremental": %d, "publish_full": %d}|}
      groups n_docs cfg.Service.workers cfg.Service.domains clients total
      (Atomic.get ok) (Atomic.get err) (Atomic.get busy) elapsed throughput
      update_rps (p50 *. 1e6) (p99 *. 1e6) (stat "wal_batches")
      (stat "wal_records")
      (statf "wal_mean_batch")
      (stat "leader_handoffs")
      (stat "publish_incremental")
      (stat "publish_full")
    :: !json_rows;
  results := { groups; clients; update_rps; p50_us = p50 *. 1e6 } :: !results;
  [
    Report.fint groups;
    Report.fint clients;
    Report.fint (Atomic.get ok);
    Report.fint (Atomic.get busy);
    Printf.sprintf "%.0f/s" update_rps;
    Printf.sprintf "%.2f" (statf "wal_mean_batch");
    Report.fint (stat "leader_handoffs");
    Report.fns (p50 *. 1e9);
    Report.fns (p99 *. 1e9);
  ]

let find_level ~groups ~clients =
  List.find_opt (fun l -> l.groups = groups && l.clients = clients) !results

let write_json path =
  let headline =
    (* The acceptance comparison: 4 independent pipelines against the
       single-mutex configuration at the highest write pressure. *)
    match (find_level ~groups:4 ~clients:32, find_level ~groups:1 ~clients:32)
    with
    | Some g4, Some g1 ->
      Printf.sprintf
        {|  "headline": {"comment": "32 clients, 50/50 update mix over 8 documents", "cores": %d, "groups4_update_rps": %.1f, "groups1_update_rps": %.1f, "group_scaling_x": %.2f, "groups4_p50_us": %.1f, "groups1_p50_us": %.1f},|}
        (Domain.recommended_domain_count ())
        g4.update_rps g1.update_rps
        (g4.update_rps /. Float.max g1.update_rps 1e-9)
        g4.p50_us g1.p50_us
    | _ -> {|  "headline": {"error": "missing levels"},|}
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E19\",\n  \"mix\": \"50/50\",\n%s,\n%s\n\
    \  \"levels\": [\n%s\n  ]\n}\n"
    (Report.meta_json
       ~knobs:[ ("per_client", 60); ("docs", n_docs); ("domains", 0) ]
       ())
    headline
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section "E19  Commit pipelines: write scaling across document groups";
  let roots =
    List.init n_docs (fun i ->
        Rworkload.Shape.generate ~seed:(190 + i) ~target:800
          (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }))
  in
  let per_client = 60 in
  Report.note "%d documents (~800 nodes each) hash over the commit groups;"
    n_docs;
  Report.note
    "client k pins document k mod %d, 50/50 INSERT <m> / COUNT //m;" n_docs;
  Report.note "machine: %d recommended domains."
    (Domain.recommended_domain_count ());
  let rows =
    List.concat_map
      (fun groups ->
        List.map
          (fun clients -> run_level ~roots ~groups ~clients ~per_client)
          [ 8; 32 ])
      [ 1; 2; 4 ]
  in
  Report.table
    [
      "groups"; "clients"; "ok"; "busy"; "update tput"; "mean batch";
      "handoffs"; "p50(upd)"; "p99(upd)";
    ]
    rows;
  Report.note
    "groups = independent commit pipelines (queue + write mutex + fsync";
  Report.note
    "cadence each); documents never change groups, so per-document";
  Report.note
    "ordering is identical at every setting — only the concurrency of";
  Report.note "unrelated documents' commits changes.";
  write_json "BENCH_commit.json"
