(* E5 — I/O behaviour of ancestor operations over a paged store
   (Lemma 1, Sections 3.3 and 4).

   The node records live in pages behind a small LRU buffer pool.  Deciding
   ancestorship — or producing a whole ancestor identifier list — from kappa
   and K is free of page accesses; chasing stored parent pointers costs one
   record access per step, and with a cold or small pool most of those are
   simulated disk reads. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Ns = Rstorage.Node_store
module Io = Rstorage.Io_stats
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

let run () =
  Report.section "E5  Page reads per structural operation (simulated RDBMS)";
  let root = Shape.generate ~seed:51 ~target:30_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let r2 = R2.number ~max_area_size:64 root in
  let rng = Rng.create 9 in
  let pairs =
    Array.init 2_000 (fun _ ->
        (R2.id_of_node r2 (Shape.random_node rng root),
         R2.id_of_node r2 (Shape.random_node rng root)))
  in
  Report.subsection
    "E5.a  2000 random ancestor checks + 2000 ancestor-list generations";
  let rows =
    List.map
      (fun cache_pages ->
        let store = Ns.create ~records_per_page:32 ~cache_pages r2 in
        Report.note "store: %d records in %d pages, K table of %d rows in memory"
          (Ns.record_count store) (Ns.page_count store) (R2.area_count r2);
        (* arithmetic *)
        Ns.reset_stats store;
        Ns.clear_cache store;
        Array.iter
          (fun (a, b) ->
            ignore (Ns.is_ancestor_arithmetic store ~anc:a ~desc:b);
            ignore (Ns.ancestor_ids_arithmetic store a))
          pairs;
        let arith_reads = Io.page_reads (Ns.stats store) in
        (* pointer chase *)
        Ns.reset_stats store;
        Ns.clear_cache store;
        Array.iter
          (fun (a, b) ->
            ignore (Ns.is_ancestor_pointer_chase store ~anc:a ~desc:b);
            ignore (Ns.ancestor_ids_pointer_chase store a))
          pairs;
        let chase = Ns.stats store in
        [
          Report.fint cache_pages;
          Report.fint arith_reads;
          Report.fint (Io.page_reads chase);
          Report.fint (Io.hits chase);
        ])
      [ 4; 32; 256 ]
  in
  Report.table
    [
      "buffer pool (pages)"; "ruid arithmetic: reads";
      "pointer chase: reads"; "pointer chase: hits";
    ]
    rows;
  Report.note
    "Shape (Lemma 1): once kappa and K are resident, ruid's ancestor machinery";
  Report.note
    "never touches a page; pointer chasing degrades as the pool shrinks.";
  Report.subsection "E5.b  Subtree reconstruction (Section 3.3) via index range probes";
  let store = Ns.create ~records_per_page:32 ~cache_pages:16 r2 in
  let sample = Array.init 50 (fun _ -> Shape.random_internal rng root) in
  Ns.reset_stats store;
  Ns.clear_cache store;
  let fetched =
    Array.fold_left
      (fun acc n ->
        acc + List.length (Ns.fetch_subtree store (R2.id_of_node r2 n)))
      0 sample
  in
  let st = Ns.stats store in
  Report.table
    [ "subtrees"; "records fetched"; "page reads"; "pool hits" ]
    [ [ "50"; Report.fint fetched; Report.fint (Io.page_reads st); Report.fint (Io.hits st) ] ];
  Report.note
    "Identifiers of the wanted records are computed before touching storage, so";
  Report.note
    "reads track the records actually retrieved (document-order locality helps)."
