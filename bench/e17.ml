(* E17 — The replication tier: catch-up throughput, steady-state lag,
   failover time.

   Three measurements over an in-process primary + replica pair:

   - {b catch-up}: a primary accumulates a journal; a fresh replica
     bootstraps and drains it.  Reported as journal bytes (and versions)
     per second from replica start to convergence.
   - {b steady-state lag}: a writer applies updates one at a time; after
     each acknowledged UPDATE the driver polls the replica until the new
     version is visible there.  The ack-to-visible gap is the replication
     lag a reader of the replica actually experiences (it includes the
     WAIT long-poll round trip, so poll-ms bounds it from below).
   - {b failover}: the primary stops; the clock runs from the moment the
     PROMOTE request is sent to the replica until a first QUERY has been
     served by the promoted node.

   Raw numbers go to BENCH_repl.json; the CI replication job uploads that
   file as an artifact. *)

module Service = Rserver.Service
module Replica = Rserver.Replica
module Client = Rserver.Client
module Protocol = Rserver.Protocol
module Snapshot = Rserver.Snapshot

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e17-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let service_config tag =
  {
    Service.socket_path = Filename.concat workdir (tag ^ ".sock");
    data_dir = Filename.concat workdir tag;
    workers = 2;
    max_queue = 16;
    deadline_ms = 0;
    max_area_size = 64;
    max_depth = 10_000;
    domains = 0;
    cache_mb = 0;
    commit_interval_us = 0;
    commit_max_batch = 64;
    commit_groups = 1;
    wal_segment_bytes = 0;
    planner = true;
    plan_cache = 256;
    epoch = 1;
  }

let replica_config ~primary tag =
  {
    Replica.socket_path = Filename.concat workdir (tag ^ ".sock");
    data_dir = Filename.concat workdir tag;
    primary;
    workers = 2;
    max_queue = 16;
    poll_ms = 25;
    planner = true;
    plan_cache = 256;
  }

let wait_for_version r v =
  while (Replica.snapshot r).Snapshot.version < v do
    Thread.delay 0.001
  done

let insert i =
  Rstorage.Wal.Insert { parent_rank = 0; pos = 0; tag = Printf.sprintf "m%d" i }

let run () =
  Report.section
    "E17  Replication: catch-up throughput, steady-state lag, failover time";
  let root =
    Rworkload.Shape.generate ~seed:171 ~target:2000
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in

  (* --- catch-up: bootstrap + drain an accumulated journal ----------- *)
  let backlog = 600 in
  let pcfg = service_config "e17p" in
  let srv = Service.start pcfg [ ("bench", Rxml.Dom.clone root) ] in
  (Client.with_connection pcfg.Service.socket_path @@ fun c ->
   for i = 1 to backlog do
     match Client.request c (Protocol.Update { doc = "bench"; op = insert i }) with
     | Protocol.Ok_ _ -> ()
     | r -> failwith ("E17 backlog write: " ^ Protocol.response_to_string r)
   done);
  let wal_bytes =
    (Unix.stat (Filename.concat pcfg.Service.data_dir "bench.wal")).Unix.st_size
  in
  let target_v = 1 + backlog in
  let t0 = Unix.gettimeofday () in
  let rcfg = replica_config ~primary:pcfg.Service.socket_path "e17r" in
  let rep = Replica.start rcfg in
  wait_for_version rep target_v;
  let catchup_s = Unix.gettimeofday () -. t0 in
  let catchup_bps = float_of_int wal_bytes /. catchup_s in
  let catchup_vps = float_of_int backlog /. catchup_s in

  (* --- steady-state lag: ack-to-visible per update ------------------ *)
  let samples = 200 in
  let lags =
    Client.with_connection pcfg.Service.socket_path @@ fun c ->
    Array.init samples (fun i ->
        let resp =
          Client.request c
            (Protocol.Update { doc = "bench"; op = insert (backlog + i + 1) })
        in
        let acked = Unix.gettimeofday () in
        match resp with
        | Protocol.Ok_ body ->
          let v =
            match Client.kv_int body "v" with
            | Some v -> v
            | None -> failwith "UPDATE reply lacks v="
          in
          wait_for_version rep v;
          Unix.gettimeofday () -. acked
        | r -> failwith ("E17 lag write: " ^ Protocol.response_to_string r))
  in
  let sorted = Array.copy lags in
  Array.sort compare sorted;
  let lag_p50 = percentile sorted 0.50 and lag_p99 = percentile sorted 0.99 in

  (* --- failover: PROMOTE until the first served read ---------------- *)
  Service.stop srv;
  let t1 = Unix.gettimeofday () in
  let first_read_s =
    Client.with_connection rcfg.Replica.socket_path @@ fun c ->
    (match Client.request c Protocol.Promote with
    | Protocol.Ok_ _ -> ()
    | r -> failwith ("E17 PROMOTE: " ^ Protocol.response_to_string r));
    match Client.request c (Protocol.Count "//m1") with
    | Protocol.Ok_ _ -> Unix.gettimeofday () -. t1
    | r -> failwith ("E17 failover read: " ^ Protocol.response_to_string r)
  in
  Replica.stop rep;

  Report.table
    [ "metric"; "value" ]
    [
      [ "catch-up journal"; Printf.sprintf "%d B / %d versions" wal_bytes backlog ];
      [ "catch-up time"; Printf.sprintf "%.3f s" catchup_s ];
      [ "catch-up throughput";
        Printf.sprintf "%.0f B/s, %.0f versions/s" catchup_bps catchup_vps ];
      [ "replication lag p50"; Printf.sprintf "%.1f ms" (lag_p50 *. 1e3) ];
      [ "replication lag p99"; Printf.sprintf "%.1f ms" (lag_p99 *. 1e3) ];
      [ "failover to first read"; Printf.sprintf "%.1f ms" (first_read_s *. 1e3) ];
    ];
  Report.note
    "lag is ack-to-visible from a reader's seat: it includes the replica's";
  Report.note
    "WAIT long-poll round trip, so poll-ms (25 here) is its natural floor.";
  let oc = open_out "BENCH_repl.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E17\",\n\
     %s,\n\
    \  \"catchup\": {\"journal_bytes\": %d, \"versions\": %d, \"seconds\": \
     %.4f, \"bytes_per_s\": %.1f, \"versions_per_s\": %.1f},\n\
    \  \"lag\": {\"samples\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n\
    \  \"failover\": {\"to_first_read_ms\": %.3f}\n\
     }\n"
    (Report.meta_json ()) wal_bytes backlog catchup_s catchup_bps catchup_vps
    samples (lag_p50 *. 1e3) (lag_p99 *. 1e3)
    (first_read_s *. 1e3);
  close_out oc;
  Report.note "wrote BENCH_repl.json"
