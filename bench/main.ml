(* Experiment harness: regenerates every figure-level claim of the paper.
   Run all experiments, or a subset: `dune exec bench/main.exe -- E2 E5`. *)

let experiments =
  [
    ("E1", E1.run);
    ("E2", E2.run);
    ("E3", E3.run);
    ("E4", E4.run);
    ("E5", E5.run);
    ("E6", E6.run);
    ("E7", E7.run);
    ("E8", E8.run);
    ("E9", E9.run);
    ("E10", E10.run);
    ("E11", E11.run);
    ("E12", E12.run);
    ("E13", E13.run);
    ("E14", E14.run);
    ("E15", E15.run);
    ("E16", E16.run);
    ("E17", E17.run);
    ("E18", E18.run);
    ("E19", E19.run);
    ("E20", E20.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.uppercase_ascii names
    | _ -> List.map fst experiments
  in
  print_endline
    "ruid reproduction harness - 'A Structural Numbering Scheme for XML Data' (EDBT 2002)";
  print_endline
    "All randomness is seeded; rerunning reproduces these numbers exactly (timings vary).";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    requested;
  print_endline "\ndone."
