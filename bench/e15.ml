(* E15 — Group-commit write path: batching on vs off under write load.

   The write pipeline acks an UPDATE only after its commit batch is
   fsynced and published, so a lone writer pays the same latency either
   way — the win appears when writers overlap.  This sweep drives
   closed-loop clients at a 10/90 and a 50/50 update/read mix, at
   2/8/32 clients, with group commit on (batch up to 64) and off
   (batch = 1, one fsync + one publication per update).  Workers are
   provisioned at clients + 1 so an UPDATE waiting on its batch's fsync
   never starves the reads that share the pool.

   With batching off, every update is its own journal append, fsync and
   snapshot publication (DOM clone + area replay).  With batching on,
   all updates queued during the in-flight fsync ride the next one:
   one append, one fsync, one publication for the whole batch.  The
   headline compares update throughput at 32 clients, 50/50 — the
   configuration where commit work, not client think time, is the
   bottleneck.

   Raw rows and the headline ratio go to BENCH_write.json; the CI
   `write` job gates on the ratio. *)

module Service = Rserver.Service
module Client = Rserver.Client
module Protocol = Rserver.Protocol

let json_rows : string list ref = ref []

type level = {
  batching : bool;
  clients : int;
  mix : string;
  update_rps : float;
  p50_us : float;
}

let results : level list ref = ref []

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e15-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* One level: a fresh server with group commit on or off, [clients]
   closed-loop clients, [per_client] requests each.  Request i is an
   UPDATE when [i mod period < updates_per_period], a COUNT otherwise. *)
let run_level ~doc_name ~root ~batching ~mix_name ~period ~updates_per_period
    ~clients ~per_client =
  let tag =
    Printf.sprintf "%s-c%d-%s"
      (if batching then "batched" else "unbatched")
      clients
      (String.map (fun c -> if c = '/' then '-' else c) mix_name)
  in
  let cfg =
    {
      Service.socket_path = Filename.concat workdir (tag ^ ".sock");
      data_dir = Filename.concat workdir tag;
      workers = clients + 1;
      max_queue = 0 (* default: 4 x pool *);
      deadline_ms = 0;
      max_area_size = 64;
      max_depth = 10_000;
      domains = 0;
      cache_mb = 0;
      commit_interval_us = 0;
      commit_max_batch = (if batching then 64 else 1);
      commit_groups = 1 (* one pipeline: this sweep isolates batching *);
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let srv = Service.start cfg [ (doc_name, Rxml.Dom.clone root) ] in
  let ok = Atomic.make 0 and err = Atomic.make 0 and busy = Atomic.make 0 in
  let update_ok = Atomic.make 0 in
  let lat_mu = Mutex.create () in
  let update_lat = ref [] in
  let client_body k () =
    let conn = Client.connect cfg.Service.socket_path in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    for i = 0 to per_client - 1 do
      let is_update = (i + k) mod period < updates_per_period in
      let req =
        if is_update then
          Protocol.Update
            {
              doc = doc_name;
              op = Rstorage.Wal.Insert { parent_rank = 0; pos = 0; tag = "m" };
            }
        else Protocol.Count "//m"
      in
      let t0 = Unix.gettimeofday () in
      let resp = Client.request conn req in
      let dt = Unix.gettimeofday () -. t0 in
      match resp with
      | Protocol.Ok_ _ ->
        Atomic.incr ok;
        if is_update then begin
          Atomic.incr update_ok;
          Mutex.lock lat_mu;
          update_lat := dt :: !update_lat;
          Mutex.unlock lat_mu
        end
      | Protocol.Err _ -> Atomic.incr err
      | Protocol.Busy _ -> Atomic.incr busy
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun k -> Thread.create (client_body k) ()) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* batch-size and flush gauges straight from the server's own STATS *)
  let stats_body =
    Client.with_connection cfg.Service.socket_path @@ fun c ->
    match Client.request c Protocol.Stats with
    | Protocol.Ok_ body -> body
    | _ -> ""
  in
  let stat key = Option.value ~default:0 (Client.kv_int stats_body key) in
  let statf key =
    match Client.kv stats_body key with
    | Some s -> ( try float_of_string s with _ -> 0.)
    | None -> 0.
  in
  Service.stop srv;
  let total = clients * per_client in
  let sorted = Array.of_list !update_lat in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
  let update_rps = float_of_int (Atomic.get update_ok) /. elapsed in
  let throughput = float_of_int (Atomic.get ok) /. elapsed in
  json_rows :=
    Printf.sprintf
      {|    {"batching": %b, "mix": "%s", "clients": %d, "requests": %d, "ok": %d, "err": %d, "busy": %d, "elapsed_s": %.4f, "throughput_rps": %.1f, "update_rps": %.1f, "update_p50_us": %.1f, "update_p99_us": %.1f, "wal_batches": %d, "wal_records": %d, "wal_max_batch": %d, "wal_mean_batch": %.2f, "wal_flush_ms": %.3f, "publish_incremental": %d, "publish_full": %d, "areas_rebuilt": %d}|}
      batching mix_name clients total (Atomic.get ok) (Atomic.get err)
      (Atomic.get busy) elapsed throughput update_rps (p50 *. 1e6) (p99 *. 1e6)
      (stat "wal_batches") (stat "wal_records") (stat "wal_max_batch")
      (statf "wal_mean_batch") (statf "wal_flush_ms")
      (stat "publish_incremental") (stat "publish_full")
      (stat "areas_rebuilt")
    :: !json_rows;
  results :=
    { batching; clients; mix = mix_name; update_rps; p50_us = p50 *. 1e6 }
    :: !results;
  [
    (if batching then "on" else "off");
    mix_name;
    Report.fint clients;
    Report.fint (Atomic.get ok);
    Report.fint (Atomic.get busy);
    Printf.sprintf "%.0f/s" update_rps;
    Printf.sprintf "%.2f" (statf "wal_mean_batch");
    Report.fint (stat "wal_max_batch");
    Report.fns (p50 *. 1e9);
    Report.fns (p99 *. 1e9);
  ]

let find_level ~batching ~clients ~mix =
  List.find_opt
    (fun l -> l.batching = batching && l.clients = clients && l.mix = mix)
    !results

let write_json path =
  let headline =
    (* The acceptance comparison: group commit on vs off at the highest
       write pressure — 32 clients, 50/50 mix. *)
    match
      ( find_level ~batching:true ~clients:32 ~mix:"50/50",
        find_level ~batching:false ~clients:32 ~mix:"50/50" )
    with
    | Some on, Some off ->
      Printf.sprintf
        {|  "headline": {"comment": "32 clients, 50/50 update mix", "batched_update_rps": %.1f, "unbatched_update_rps": %.1f, "batching_speedup_x": %.2f, "batched_p50_us": %.1f, "unbatched_p50_us": %.1f},|}
        on.update_rps off.update_rps
        (on.update_rps /. Float.max off.update_rps 1e-9)
        on.p50_us off.p50_us
    | _ -> {|  "headline": {"error": "missing levels"},|}
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E15\",\n  \"mixes\": [\"10/90\", \"50/50\"],\n%s,\n%s\n\
    \  \"levels\": [\n%s\n  ]\n}\n"
    (Report.meta_json
       ~knobs:
         [ ("per_client", 100); ("domains", 0); ("commit_groups", 1) ]
       ())
    headline
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section "E15  Group commit: batched vs per-update fsync + publish";
  let root =
    Rworkload.Shape.generate ~seed:151 ~target:2000
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let per_client = 100 in
  Report.note "document: %d nodes; updates INSERT <m>, reads COUNT //m;"
    (Rxml.Dom.size root);
  Report.note
    "workers = clients + 1 (an UPDATE holds its worker until the commit";
  Report.note
    "leader fsyncs + publishes its batch); batching off = --commit-batch 1.";
  let rows =
    List.concat_map
      (fun (mix_name, period, updates_per_period) ->
        List.concat_map
          (fun batching ->
            List.map
              (fun clients ->
                run_level ~doc_name:"bench" ~root ~batching ~mix_name ~period
                  ~updates_per_period ~clients ~per_client)
              [ 2; 8; 32 ])
          [ false; true ])
      [ ("10/90", 10, 1); ("50/50", 2, 1) ]
  in
  Report.table
    [
      "batching"; "mix"; "clients"; "ok"; "busy"; "update tput"; "mean batch";
      "max batch"; "p50(upd)"; "p99(upd)";
    ]
    rows;
  Report.note
    "with batching off every update is its own append + fsync + snapshot";
  Report.note
    "publication; with it on, all updates queued during the in-flight";
  Report.note
    "fsync share one append, one fsync and one publication — mean batch";
  Report.note "above 1 is exactly the coalescing the ack latency buys.";
  write_json "BENCH_write.json"
