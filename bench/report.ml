(* Plain-text tables for the experiment harness. *)

let section title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(* Print a table given headers and rows of strings; columns sized to fit. *)
let table headers rows =
  let cols = List.length headers in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth headers i))
      rows
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Printf.printf "  %-*s" w cell
        else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fint n = string_of_int n
let ffloat f = Printf.sprintf "%.2f" f

let fns ns =
  if ns < 1e3 then Printf.sprintf "%.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let fbool b = if b then "yes" else "no"

(* Peak resident set (VmHWM) of the calling process in KiB, from
   /proc/self/status; 0 where /proc is unavailable (non-Linux).  The
   high-water mark is monotone for the process lifetime, so callers that
   want the footprint of one phase sample it before and after and take the
   difference. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec go () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          try Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
                Fun.id
          with Scanf.Scan_failure _ | Failure _ -> 0
        else go ()
    in
    go ()

(* Provenance stamped into every BENCH_*.json: bench numbers without the
   machine, toolchain and revision that produced them are not comparable
   run-to-run — and concurrency numbers without the worker/domain/
   commit-group knobs the run actually used are not interpretable across
   boxes, so experiments pass those through [knobs].  Rendered as one JSON
   member (no trailing comma). *)
let meta_json ?(knobs = []) () =
  let git_rev =
    try
      let ic =
        Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
      in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let knob_members =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", %S: %d" k v) knobs)
  in
  Printf.sprintf
    {|  "meta": {"cores": %d, "ocaml": %S, "git_rev": %S, "timestamp": %.0f, "peak_rss_kb": %d%s}|}
    (Domain.recommended_domain_count ())
    Sys.ocaml_version git_rev (Unix.gettimeofday ())
    (peak_rss_kb ()) knob_members

(* Wall-clock timing for macro operations (result, seconds). *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
