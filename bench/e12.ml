(* E12 — Crash-safe journaling: what durability costs and what recovery
   costs.

   (a) Recovery wall clock as the journal grows: snapshot + N journaled
   operations, then a cold Wal.replay (with and without the deep invariant
   checker).  (b) The per-operation price of durability: applying an update
   in memory, journaling it through the WAL (append + fsync), and the naive
   alternative of rewriting the whole snapshot after every operation.
   (c) The sidecar format itself: v3 (per-section CRC-32, framed) against
   the seed's v2, encode/decode wall clock and size.

   Raw numbers go to BENCH_recovery.json; the CI fault-injection job
   uploads that file as an artifact. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Persist = Ruid.Persist
module Wal = Rstorage.Wal
module Crashsim = Rstorage.Crashsim
module Updates = Rworkload.Updates

let json_recovery : string list ref = ref []
let json_append : string list ref = ref []
let json_sidecar : string list ref = ref []

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e12-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let paths () =
  ( Filename.concat workdir "snapshot.xml",
    Filename.concat workdir "snapshot.ruid",
    Filename.concat workdir "journal.wal" )

let fresh_snapshot ~seed ~size ~area =
  let base =
    Rworkload.Shape.generate ~seed ~target:size
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:area base in
  let xml, sidecar, wal = paths () in
  Persist.save r2 ~xml ~sidecar;
  if Sys.file_exists wal then Sys.remove wal;
  (base, r2, xml, sidecar, wal)

let recovery_table () =
  Report.subsection "E12.a  recovery wall clock vs journal length";
  let size = 2000 and area = 32 in
  let rows =
    List.map
      (fun ops ->
        let base, live, xml, sidecar, wal =
          fresh_snapshot ~seed:121 ~size ~area
        in
        let script =
          List.map Crashsim.wal_op_of_update
            (Updates.script ~seed:122 ~ops base)
        in
        let w = Wal.create wal in
        List.iter (fun op -> ignore (Wal.log_update w live op)) script;
        let journal_bytes = (Unix.stat wal).Unix.st_size in
        let _, t_load = Report.time (fun () -> Persist.load ~xml ~sidecar ()) in
        let rec1, t_replay =
          Report.time (fun () -> Wal.replay ~xml ~sidecar ~wal ())
        in
        let _, t_nocheck =
          Report.time (fun () ->
              Wal.replay ~check:false ~xml ~sidecar ~wal ())
        in
        assert (List.length rec1.Wal.replayed = ops);
        json_recovery :=
          Printf.sprintf
            {|    {"nodes": %d, "ops": %d, "journal_bytes": %d, "load_ns": %.0f, "replay_ns": %.0f, "replay_nocheck_ns": %.0f}|}
            size ops journal_bytes (t_load *. 1e9) (t_replay *. 1e9)
            (t_nocheck *. 1e9)
          :: !json_recovery;
        [
          Report.fint ops;
          Report.fint journal_bytes;
          Report.fns (t_load *. 1e9);
          Report.fns (t_replay *. 1e9);
          Report.fns (t_nocheck *. 1e9);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Report.table
    [ "ops"; "journal B"; "snapshot load"; "replay+check"; "replay" ]
    rows;
  Report.note
    "replay is snapshot load + positional re-application of the journal;";
  Report.note
    "the +check column adds the deep invariant sweep (Ruid2.check) that";
  Report.note "recovery runs as its postcondition."

let append_table () =
  Report.subsection "E12.b  per-operation durability cost";
  let size = 2000 and area = 32 and ops = 64 in
  let rows =
    List.map
      (fun (label, durability) ->
        let base, live, xml, sidecar, wal =
          fresh_snapshot ~seed:123 ~size ~area
        in
        let script =
          List.map Crashsim.wal_op_of_update
            (Updates.script ~seed:124 ~ops base)
        in
        let w = Wal.create wal in
        let _, t =
          Report.time (fun () ->
              List.iter
                (fun op ->
                  match durability with
                  | `Memory -> ignore (Wal.apply live op)
                  | `Wal -> ignore (Wal.log_update w live op)
                  | `Resave ->
                    ignore (Wal.apply live op);
                    Persist.save live ~xml ~sidecar)
                script)
        in
        let per_op = t /. float_of_int ops in
        json_append :=
          Printf.sprintf
            {|    {"mode": "%s", "nodes": %d, "ops": %d, "per_op_ns": %.0f}|}
            label size ops (per_op *. 1e9)
          :: !json_append;
        [ label; Report.fns (per_op *. 1e9) ])
      [
        ("in-memory only", `Memory);
        ("WAL append+fsync", `Wal);
        ("full re-save", `Resave);
      ]
  in
  Report.table [ "durability"; "per op" ] rows;
  Report.note
    "the WAL row is the crash-safe configuration; full re-save is the only";
  Report.note "durable alternative without a journal."

let sidecar_table () =
  Report.subsection "E12.c  sidecar format: v3 (framed, per-section CRC) vs v2";
  let rows =
    List.concat_map
      (fun size ->
        let base =
          Rworkload.Shape.generate ~seed:125 ~target:size
            (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
        in
        let r2 = R2.number ~max_area_size:32 base in
        let reps = 20 in
        let enc f =
          let b = ref Bytes.empty in
          let _, t =
            Report.time (fun () ->
                for _ = 1 to reps do
                  b := f r2
                done)
          in
          (!b, t /. float_of_int reps)
        in
        let dec bytes =
          let _, t =
            Report.time (fun () ->
                for _ = 1 to reps do
                  ignore (Persist.sidecar_of_bytes (Dom.clone base) bytes)
                done)
          in
          t /. float_of_int reps
        in
        let b3, t3e = enc Persist.sidecar_to_bytes in
        let b2, t2e = enc Persist.sidecar_to_bytes_v2 in
        let t3d = dec b3 and t2d = dec b2 in
        List.map
          (fun (v, b, te, td) ->
            json_sidecar :=
              Printf.sprintf
                {|    {"nodes": %d, "format": "%s", "bytes": %d, "encode_ns": %.0f, "decode_ns": %.0f}|}
                size v (Bytes.length b) (te *. 1e9) (td *. 1e9)
              :: !json_sidecar;
            [
              Report.fint size; v;
              Report.fint (Bytes.length b);
              Report.fns (te *. 1e9);
              Report.fns (td *. 1e9);
            ])
          [ ("v3", b3, t3e, t3d); ("v2", b2, t2e, t2d) ])
      [ 500; 5000 ]
  in
  Report.table [ "nodes"; "format"; "bytes"; "encode"; "decode" ] rows;
  Report.note
    "v3 adds one length varint and a CRC-32 per section (12-15 bytes total)";
  Report.note "and buys torn/corrupt detection with a named section + offset."

let write_json path =
  let oc = open_out path in
  let section name rows =
    Printf.sprintf "  \"%s\": [\n%s\n  ]" name
      (String.concat ",\n" (List.rev rows))
  in
  Printf.fprintf oc "{\n  \"experiment\": \"E12\",\n%s,\n%s,\n%s,\n%s\n}\n"
    (Report.meta_json ())
    (section "recovery" !json_recovery)
    (section "append" !json_append)
    (section "sidecar" !json_sidecar);
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section "E12  Crash-safe journaling: durability and recovery costs";
  recovery_table ();
  append_table ();
  sidecar_table ();
  write_json "BENCH_recovery.json"
