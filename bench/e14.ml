(* E14 — Multicore read path: systhreads vs domains, cache off vs on.

   The paper's reads (Lemma 1: parent derivation and axis checks need no
   I/O) are pure CPU over an immutable snapshot, so they should scale with
   cores.  E13 showed the single-domain systhread pool does not: throughput
   *fell* as clients grew.  This sweep drives the same closed-loop client
   harness against three read paths — the systhread pool ("threads"), one
   executor domain, and four executor domains — each with the result cache
   off and on, under a 90/10 and a 99/1 read/update mix at 2/8/32 clients.

   Reads rotate over a fixed set of mid-cost XMark queries (hundreds of
   microseconds each, well above socket round-trip time), so the numbers
   measure query evaluation, not framing.  Updates insert one <m> node,
   bumping the snapshot version and thereby orphaning every cached entry
   (version-keyed caching needs no invalidation).

   Raw rows and a headline comparison go to BENCH_parallel.json; the CI
   `parallel` job gates on the headline ratio. *)

module Service = Rserver.Service
module Client = Rserver.Client
module Protocol = Rserver.Protocol

let json_rows : string list ref = ref []

type level = {
  mode : string;
  clients : int;
  mix : string;
  cache_mb : int;
  throughput : float;  (* OK replies per second, reads + writes *)
  p50_us : float;
  busy_rate : float;
}

let results : level list ref = ref []

let workdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ruid-e14-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Mid-cost structural queries (see E4/E11): each hundreds of microseconds
   of evaluation on the scale-2 document — the read work the executor
   parallelizes and the cache elides. *)
let read_queries =
  [|
    "//item/name";
    "//open_auction/bidder/increase";
    "//person[creditcard]/name";
    "//closed_auction//listitem";
    "//item[quantity>3]/name";
    "//annotation/preceding::bidder";
    "//parlist//text";
    "//listitem/ancestor::item";
  |]

(* One level: a fresh server for [mode] = `Threads | `Domains n, with or
   without the cache, [clients] closed-loop clients, [per_client] requests
   each; request i is an UPDATE every [update_every]-th slot, otherwise a
   QUERY/COUNT rotating over [read_queries]. *)
let run_level ~doc_name ~root ~mode ~cache_mb ~mix_name ~update_every ~clients
    ~per_client =
  let mode_name, workers, domains =
    match mode with
    | `Threads -> ("threads", 4, 0)
    | `Domains n -> (Printf.sprintf "domains%d" n, 2, n)
  in
  let mix_tag = String.map (fun c -> if c = '/' then '-' else c) mix_name in
  let tag =
    Printf.sprintf "%s-c%d-%s-m%d" mode_name clients mix_tag cache_mb
  in
  let cfg =
    {
      Service.socket_path = Filename.concat workdir (tag ^ ".sock");
      data_dir = Filename.concat workdir tag;
      workers;
      max_queue = 0 (* default: 4 x pool *);
      deadline_ms = 0;
      max_area_size = 64;
      max_depth = 10_000;
      domains;
      cache_mb;
      commit_interval_us = 0;
      commit_max_batch = 64;
      commit_groups = 0 (* default: one pipeline per read domain *);
      wal_segment_bytes = 0;
      planner = true;
      plan_cache = 256;
      epoch = 1;
    }
  in
  let srv = Service.start cfg [ (doc_name, Rxml.Dom.clone root) ] in
  let ok = Atomic.make 0 and err = Atomic.make 0 and busy = Atomic.make 0 in
  let read_ok = Atomic.make 0 in
  let lat_mu = Mutex.create () in
  let latencies = ref [] in
  let client_body k () =
    let conn = Client.connect cfg.Service.socket_path in
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    for i = 0 to per_client - 1 do
      let slot = (k * per_client) + i in
      let is_update = i mod update_every = update_every - 1 in
      let req =
        if is_update then
          Protocol.Update
            {
              doc = doc_name;
              op = Rstorage.Wal.Insert { parent_rank = 0; pos = 0; tag = "m" };
            }
        else
          let q = read_queries.(slot mod Array.length read_queries) in
          if slot mod 2 = 0 then Protocol.Count q else Protocol.Query q
      in
      let t0 = Unix.gettimeofday () in
      let resp = Client.request conn req in
      let dt = Unix.gettimeofday () -. t0 in
      match resp with
      | Protocol.Ok_ _ ->
        Atomic.incr ok;
        if not is_update then Atomic.incr read_ok;
        Mutex.lock lat_mu;
        latencies := dt :: !latencies;
        Mutex.unlock lat_mu
      | Protocol.Err _ -> Atomic.incr err
      | Protocol.Busy _ -> Atomic.incr busy
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun k -> Thread.create (client_body k) ()) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let hit_rate =
    match Service.cache_stats srv with
    | Some s ->
      let lookups = s.Rserver.Query_cache.hits + s.Rserver.Query_cache.misses in
      if lookups = 0 then 0.
      else float_of_int s.Rserver.Query_cache.hits /. float_of_int lookups
    | None -> 0.
  in
  Service.stop srv;
  let total = clients * per_client in
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99 in
  let busy_rate = float_of_int (Atomic.get busy) /. float_of_int total in
  let throughput = float_of_int (Atomic.get ok) /. elapsed in
  let read_rps = float_of_int (Atomic.get read_ok) /. elapsed in
  json_rows :=
    Printf.sprintf
      {|    {"mode": "%s", "domains": %d, "workers": %d, "commit_groups": %d, "cache_mb": %d, "mix": "%s", "clients": %d, "requests": %d, "ok": %d, "err": %d, "busy": %d, "busy_rate": %.4f, "elapsed_s": %.4f, "throughput_rps": %.1f, "read_rps": %.1f, "cache_hit_rate": %.4f, "p50_us": %.1f, "p95_us": %.1f, "p99_us": %.1f}|}
      mode_name domains workers
      (Service.resolved_commit_groups cfg)
      cache_mb mix_name clients total (Atomic.get ok)
      (Atomic.get err) (Atomic.get busy) busy_rate elapsed throughput read_rps
      hit_rate (p50 *. 1e6) (p95 *. 1e6) (p99 *. 1e6)
    :: !json_rows;
  results :=
    { mode = mode_name; clients; mix = mix_name; cache_mb; throughput;
      p50_us = p50 *. 1e6; busy_rate }
    :: !results;
  [
    mode_name;
    (if cache_mb = 0 then "off" else Printf.sprintf "%dMB" cache_mb);
    mix_name;
    Report.fint clients;
    Report.fint (Atomic.get ok);
    Printf.sprintf "%.1f%%" (busy_rate *. 100.);
    Printf.sprintf "%.0f/s" throughput;
    (if cache_mb = 0 then "-" else Printf.sprintf "%.0f%%" (hit_rate *. 100.));
    Report.fns (p50 *. 1e9);
    Report.fns (p99 *. 1e9);
  ]

let find_level ~mode ~clients ~mix ~cache_mb =
  List.find_opt
    (fun l ->
      l.mode = mode && l.clients = clients && l.mix = mix
      && l.cache_mb = cache_mb)
    !results

let write_json path =
  let headline =
    (* The acceptance comparison: the full multicore read path (4 domains +
       cache) against the single-domain, uncached configuration, read-heavy
       mix, highest client count.  Also report the cache-free domain
       scaling ratio — on a single-core machine that one stays ~1. *)
    let at mode cache_mb = find_level ~mode ~clients:32 ~mix:"99/1" ~cache_mb in
    match (at "domains4" 64, at "domains4" 0, at "domains1" 0) with
    | Some fast, Some mid, Some base ->
      Printf.sprintf
        {|  "headline": {"comment": "32 clients, 99/1 read mix", "cores": %d, "domains4_cache_rps": %.1f, "domains4_nocache_rps": %.1f, "domains1_nocache_rps": %.1f, "read_path_speedup_x": %.2f, "domain_scaling_x": %.2f, "cache_p50_us": %.1f, "nocache_p50_us": %.1f, "cache_p50_improves": %b},|}
        (Domain.recommended_domain_count ())
        fast.throughput mid.throughput base.throughput
        (fast.throughput /. Float.max base.throughput 1e-9)
        (mid.throughput /. Float.max base.throughput 1e-9)
        fast.p50_us mid.p50_us
        (fast.p50_us <= mid.p50_us)
    | _ -> {|  "headline": {"error": "missing levels"},|}
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E14\",\n  \"mixes\": [\"90/10\", \"99/1\"],\n%s,\n%s\n\
    \  \"levels\": [\n%s\n  ]\n}\n"
    (* workers/domains/commit_groups vary per level and are embedded in
       every row; the meta knob records the fixed per-client load *)
    (Report.meta_json ~knobs:[ ("per_client", 60) ] ())
    headline
    (String.concat ",\n" (List.rev !json_rows));
  close_out oc;
  Report.note "wrote %s" path

let run () =
  Report.section
    "E14  Multicore read path: threads vs domains x cache off/on";
  let root = Rworkload.Xmark.generate ~seed:99 ~scale:2.0 in
  Report.note "document: XMark scale 2 (%d nodes); reads rotate over %d"
    (Rxml.Dom.size root) (Array.length read_queries);
  Report.note
    "mid-cost structural queries; updates INSERT <m> (each bumps the";
  Report.note
    "snapshot version, orphaning all cached entries of older versions).";
  Report.note "machine: %d recommended domains."
    (Domain.recommended_domain_count ());
  let per_client = 60 in
  let rows =
    List.concat_map
      (fun (mix_name, update_every) ->
        List.concat_map
          (fun mode ->
            List.concat_map
              (fun cache_mb ->
                List.map
                  (fun clients ->
                    run_level ~doc_name:"bench" ~root ~mode ~cache_mb
                      ~mix_name ~update_every ~clients ~per_client)
                  [ 2; 8; 32 ])
              [ 0; 64 ])
          [ `Threads; `Domains 1; `Domains 4 ])
      [ ("90/10", 10); ("99/1", 100) ]
  in
  Report.table
    [
      "mode"; "cache"; "mix"; "clients"; "ok"; "busy rate"; "throughput";
      "hit rate"; "p50"; "p99";
    ]
    rows;
  Report.note
    "threads = 4 systhread workers in one domain (the PR-3 path);";
  Report.note
    "domainsN = N executor domains for QUERY/COUNT/CHECK, writes stay on";
  Report.note
    "the main domain.  Version-keyed caching: a hit can never be stale,";
  Report.note
    "and on a single-core runner the cache, not domain parallelism, is";
  Report.note "what lifts read throughput (see the headline object).";
  write_json "BENCH_parallel.json"
