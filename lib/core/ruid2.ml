module Dom = Rxml.Dom
module U = Uid.Over_int

type id = { global : int; local : int; is_root : bool }

let pp_id ppf i =
  Format.fprintf ppf "(%d, %d, %b)" i.global i.local i.is_root

let id_to_string i = Format.asprintf "%a" pp_id i
let id_equal (a : id) (b : id) = a = b
let id_compare (a : id) (b : id) = Stdlib.compare a b

type t = {
  kappa : int;
  mutable ktable : Ktable.t;
  frame : Frame.t;
  id_of : (int, id) Hashtbl.t;  (* node serial -> identifier *)
  node_at : (int, (int, Dom.t) Hashtbl.t) Hashtbl.t;
      (* area global -> (local index -> node); index 1 maps to the area
         root, other indices to the nodes enumerated in the area. *)
  global_of_root : (int, int) Hashtbl.t;  (* area-root serial -> global *)
  root_of_global : (int, Dom.t) Hashtbl.t;
  root : Dom.t;
}

let kappa t = t.kappa
let ktable t = t.ktable
let frame t = t.frame
let root t = t.root
let area_count t = Ktable.size t.ktable
let aux_memory_words t = Ktable.memory_words t.ktable + 1

let id_of_node t n = Hashtbl.find t.id_of n.Dom.serial

(* The position at which a node is enumerated: for an area root, its leaf
   slot in the upper area (the tree root being (1, 1)); for any other node,
   its own (global, local). *)
let pos t (i : id) =
  if not i.is_root then (i.global, i.local)
  else if i.global = 1 then (1, 1)
  else
    match U.parent ~k:t.kappa i.global with
    | Some p -> (p, i.local)
    | None -> assert false

let node_at_pos t (g, l) =
  match Hashtbl.find_opt t.node_at g with
  | None -> None
  | Some inner -> Hashtbl.find_opt inner l

let node_of_id t i =
  match node_at_pos t (pos t i) with
  | Some n when id_equal (id_of_node t n) i -> Some n
  | Some _ | None -> None

let area_root_node t g = Hashtbl.find_opt t.root_of_global g
let global_of_area t n = Hashtbl.find_opt t.global_of_root n.Dom.serial

let all_nodes t = Dom.preorder t.root

let max_local_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  Hashtbl.fold (fun _ i acc -> max acc (max (bits i.global) (bits i.local)))
    t.id_of 0

let total_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    max 1 (go 0 v)
  in
  Hashtbl.fold
    (fun _ i acc -> acc + bits i.global + bits i.local + 1)
    t.id_of 0

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let enumerate_area frame ~k r =
  (* Locals of the nodes enumerated in the area of [r] (members), [r]
     itself taking local index 1; enumeration stops at child-area roots,
     which are leaves here. *)
  let acc = ref [] in
  let rec go local n =
    acc := (n, local) :: !acc;
    if Dom.equal n r || not (Frame.is_area_root frame n) then
      List.iteri (fun j c -> go (U.child ~k local j) c) n.Dom.children
  in
  go 1 r;
  List.rev !acc

let number_with_frame frame =
  let root = Frame.root frame in
  let kappa = max 1 (Frame.frame_fanout frame) in
  let global_of_root = Hashtbl.create 64 in
  let root_of_global = Hashtbl.create 64 in
  let rec assign_frame g r =
    Hashtbl.replace global_of_root r.Dom.serial g;
    Hashtbl.replace root_of_global g r;
    List.iteri
      (fun j c -> assign_frame (U.child ~k:kappa g j) c)
      (Frame.frame_children frame r)
  in
  assign_frame 1 root;
  let t =
    {
      kappa;
      ktable = Ktable.make [];
      frame;
      id_of = Hashtbl.create 1024;
      node_at = Hashtbl.create 64;
      global_of_root;
      root_of_global;
      root;
    }
  in
  Hashtbl.replace t.id_of root.Dom.serial { global = 1; local = 1; is_root = true };
  (* Area roots in document order: upper areas come before lower ones, so
     each area root's own identifier is known before its K row is built. *)
  let krows = ref [] in
  List.iter
    (fun r ->
      let g = Hashtbl.find global_of_root r.Dom.serial in
      let k = max 1 (Frame.area_fanout frame r) in
      let inner = Hashtbl.create 64 in
      Hashtbl.replace inner 1 r;
      List.iter
        (fun (n, local) ->
          if not (Dom.equal n r) then begin
            Hashtbl.replace inner local n;
            let i =
              if Frame.is_area_root frame n then
                { global = Hashtbl.find global_of_root n.Dom.serial;
                  local; is_root = true }
              else { global = g; local; is_root = false }
            in
            Hashtbl.replace t.id_of n.Dom.serial i
          end)
        (enumerate_area frame ~k r);
      Hashtbl.replace t.node_at g inner;
      let root_local =
        if Dom.equal r root then 1 else (id_of_node t r).local
      in
      krows := { Ktable.global = g; root_local; fanout = k } :: !krows)
    (Frame.area_roots frame);
  t.ktable <- Ktable.make !krows;
  t

let number ?max_area_size ?max_area_depth ?adjust root =
  number_with_frame (Frame.partition ?max_area_size ?max_area_depth ?adjust root)

(* ------------------------------------------------------------------ *)
(* Derivation routines — kappa and K only                              *)
(* ------------------------------------------------------------------ *)

(* Fig. 6 of the paper. *)
let rparent t (i : id) =
  if i.is_root && i.global = 1 then None
  else begin
    let g =
      if i.is_root then
        match U.parent ~k:t.kappa i.global with
        | Some p -> p
        | None -> assert false
      else i.global
    in
    let kj = Ktable.fanout t.ktable g in
    let l = ((i.local - 2) / kj) + 1 in
    if l = 1 then
      Some { global = g; local = Ktable.root_local t.ktable g; is_root = true }
    else Some { global = g; local = l; is_root = false }
  end

let rancestors t i =
  let rec go acc i =
    match rparent t i with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] i

let rlevel t i = List.length (rancestors t i)

let possible_children_ids t (i : id) =
  let g_area, alpha = if i.is_root then (i.global, 1) else (i.global, i.local) in
  let k = Ktable.fanout t.ktable g_area in
  let lo, _ = U.children_range ~k alpha in
  List.init k (fun j ->
      let local = lo + j in
      match
        Ktable.area_rooted_at t.ktable ~parent_global:g_area ~kappa:t.kappa ~local
      with
      | Some g' -> { global = g'; local; is_root = true }
      | None -> { global = g_area; local; is_root = false })

(* Climb the frame from [g] until the parent is [anc]; the frame child of
   [anc] on the path to [g]. *)
let frame_child_towards t ~anc g =
  let rec go g =
    match U.parent ~k:t.kappa g with
    | Some p when p = anc -> g
    | Some p -> go p
    | None -> assert false
  in
  go g

let rec relationship t a b =
  if id_equal a b then Rel.Self
  else begin
    let ga, la = pos t a and gb, lb = pos t b in
    if ga = gb then begin
      let k = Ktable.fanout t.ktable ga in
      match U.relation ~k la lb with
      | Rel.Self ->
        (* Two distinct identifiers cannot share an enumeration slot. *)
        assert false
      | r -> r
    end
    else begin
      match U.relation ~k:t.kappa ga gb with
      | Rel.Self -> assert false
      | Rel.Before -> Rel.Before
      | Rel.After -> Rel.After
      | Rel.Ancestor ->
        (* Lemma 1 composition: compare a with the joint node of the child
           area on the frame path towards b, inside area ga. *)
        let theta = frame_child_towards t ~anc:ga gb in
        let lstar = Ktable.root_local t.ktable theta in
        let k = Ktable.fanout t.ktable ga in
        (match U.relation ~k la lstar with
        | Rel.Self | Rel.Ancestor -> Rel.Ancestor
        | Rel.Before -> Rel.Before
        | Rel.After -> Rel.After
        | Rel.Descendant ->
          (* The joint is a leaf of area ga: nothing is enumerated below
             it in this area. *)
          assert false)
      | Rel.Descendant -> Rel.inverse (relationship t b a)
    end
  end

let doc_order t a b = Rel.to_order (relationship t a b)

(* ------------------------------------------------------------------ *)
(* Axes on actual nodes                                                *)
(* ------------------------------------------------------------------ *)

let parent_node t n =
  match rparent t (id_of_node t n) with
  | None -> None
  | Some p -> node_of_id t p

let ancestors t n =
  List.filter_map (node_of_id t) (rancestors t (id_of_node t n))

(* Area and parent slot in which the children of [n] are enumerated. *)
let child_context t n =
  let i = id_of_node t n in
  if i.is_root then (i.global, 1) else (i.global, i.local)

let children t n =
  let g_area, alpha = child_context t n in
  let k = Ktable.fanout t.ktable g_area in
  let lo, hi = U.children_range ~k alpha in
  match Hashtbl.find_opt t.node_at g_area with
  | None -> []
  | Some inner ->
    if Hashtbl.length inner < k then
      (* Fewer occupied slots than candidate slots: scan the area's
         occupancy table instead of probing every slot. *)
      Hashtbl.fold
        (fun l node acc -> if l >= lo && l <= hi then (l, node) :: acc else acc)
        inner []
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
      |> List.map snd
    else
      List.filter_map (fun j -> Hashtbl.find_opt inner (lo + j)) (List.init k Fun.id)

(* Area-at-a-time descendant enumeration: within the context area, members
   below the context slot are found by one virtual-ancestry test each;
   every area whose root is such a member is swallowed whole (its own
   members need no test at all).  Order is unspecified. *)
let descendants_unordered t n =
  let acc = ref [] in
  let rec area_members g ~below =
    match Hashtbl.find_opt t.node_at g with
    | None -> ()
    | Some inner ->
      let k = Ktable.fanout t.ktable g in
      Hashtbl.iter
        (fun l node ->
          if l <> 1 then begin
            let take =
              match below with
              | None -> true
              | Some alpha -> U.relation ~k alpha l = Rel.Ancestor
            in
            if take then begin
              acc := node :: !acc;
              let nid = Hashtbl.find t.id_of node.Dom.serial in
              if nid.is_root then area_members nid.global ~below:None
            end
          end)
        inner
  in
  let g, alpha = child_context t n in
  (* For an area root the context is (own area, slot 1): every member is a
     strict descendant; otherwise only members below the context slot. *)
  area_members g ~below:(if alpha = 1 then None else Some alpha);
  !acc

let descendants t n =
  let rec go n = List.concat_map (fun c -> c :: go c) (children t n) in
  go n

let siblings_side t ~before n =
  let i = id_of_node t n in
  if i.is_root && i.global = 1 then []
  else begin
    let g, l = pos t i in
    let k = Ktable.fanout t.ktable g in
    let parent_slot = ((l - 2) / k) + 1 in
    let lo, hi = U.children_range ~k parent_slot in
    let slots = List.init (hi - lo + 1) (fun j -> lo + j) in
    let keep slot = if before then slot < l else slot > l in
    List.filter_map
      (fun slot -> if keep slot then node_at_pos t (g, slot) else None)
      slots
  end

let preceding_siblings t n = siblings_side t ~before:true n
let following_siblings t n = siblings_side t ~before:false n

(* Nodes enumerated in area [g]: the area root belongs to the upper area's
   set, except the tree root which is enumerated in its own area. *)
let set_of_area t g =
  let r = Hashtbl.find t.root_of_global g in
  let members = Frame.area_members t.frame r in
  if g = 1 then members else List.tl members

(* Lemma 3 driven sweep: whole areas are classified by their frame
   relation to the context node's area; only the context area and its
   frame ancestors need per-node checks. *)
let side_axis t ~(want : Rel.t) n =
  let a_id = id_of_node t n in
  let ga, _ = pos t a_id in
  let out = ref [] in
  let add x = out := x :: !out in
  Hashtbl.iter
    (fun g r ->
      match U.relation ~k:t.kappa g ga with
      | Rel.Before -> if want = Rel.Before then List.iter add (set_of_area t g)
      | Rel.After -> if want = Rel.After then List.iter add (set_of_area t g)
      | Rel.Self | Rel.Ancestor ->
        List.iter
          (fun x ->
            if relationship t (id_of_node t x) a_id = want then add x)
          (set_of_area t g)
      | Rel.Descendant ->
        if relationship t (id_of_node t r) a_id = want then
          List.iter add (set_of_area t g))
    t.root_of_global;
  List.sort (fun x y -> doc_order t (id_of_node t x) (id_of_node t y)) !out

let preceding t n = side_axis t ~want:Rel.Before n
let following t n = side_axis t ~want:Rel.After n

(* ------------------------------------------------------------------ *)
(* Structural update                                                   *)
(* ------------------------------------------------------------------ *)

(* Re-enumerate the single area rooted at [r] with the fan-out currently
   recorded in K, refresh the identifier maps and the K rows of child
   areas whose joint index moved; count changed identifiers of
   pre-existing nodes. *)
let renumber_area t r =
  let g = Hashtbl.find t.global_of_root r.Dom.serial in
  let k = Ktable.fanout t.ktable g in
  let members = enumerate_area t.frame ~k r in
  let inner = Hashtbl.create (List.length members * 2) in
  Hashtbl.replace inner 1 r;
  let changed = ref 0 in
  List.iter
    (fun (n, local) ->
      if not (Dom.equal n r) then begin
        Hashtbl.replace inner local n;
        let i =
          if Frame.is_area_root t.frame n then
            { global = Hashtbl.find t.global_of_root n.Dom.serial;
              local; is_root = true }
          else { global = g; local; is_root = false }
        in
        (match Hashtbl.find_opt t.id_of n.Dom.serial with
        | Some old when id_equal old i -> ()
        | Some old ->
          incr changed;
          if old.is_root then begin
            (* The joint moved: record the new leaf index in K; the child
               area's own nodes keep their identifiers. *)
            let row = Option.get (Ktable.find t.ktable i.global) in
            t.ktable <-
              Ktable.with_row t.ktable { row with Ktable.root_local = local }
          end
        | None -> ());
        Hashtbl.replace t.id_of n.Dom.serial i
      end)
    members;
  Hashtbl.replace t.node_at g inner;
  !changed

let insert_node ?(slack = 0) t ~parent ~pos node =
  if node.Dom.children <> [] then
    invalid_arg "Ruid2.insert_node: only leaf insertion is supported";
  (match Hashtbl.find_opt t.id_of parent.Dom.serial with
  | Some _ -> ()
  | None -> invalid_arg "Ruid2.insert_node: parent not in numbered tree");
  Dom.insert_child parent ~pos node;
  let r = Frame.own_area_root t.frame parent in
  let g = Hashtbl.find t.global_of_root r.Dom.serial in
  let row = Option.get (Ktable.find t.ktable g) in
  let needed = Dom.degree parent in
  if needed > row.Ktable.fanout then
    t.ktable <-
      Ktable.with_row t.ktable { row with Ktable.fanout = needed + slack };
  renumber_area t r

let delete_subtree t node =
  if Dom.equal node t.root then
    invalid_arg "Ruid2.delete_subtree: cannot delete the tree root";
  let parent =
    match node.Dom.parent with
    | Some p -> p
    | None -> invalid_arg "Ruid2.delete_subtree: detached node"
  in
  let r = Frame.own_area_root t.frame parent in
  List.iter
    (fun x ->
      Hashtbl.remove t.id_of x.Dom.serial;
      if Frame.is_area_root t.frame x then begin
        let gx = Hashtbl.find t.global_of_root x.Dom.serial in
        t.ktable <- Ktable.without t.ktable gx;
        Hashtbl.remove t.root_of_global gx;
        Hashtbl.remove t.global_of_root x.Dom.serial;
        Hashtbl.remove t.node_at gx;
        Frame.uncut t.frame x
      end)
    (Dom.preorder node);
  Dom.remove_child parent node;
  renumber_area t r

(* ------------------------------------------------------------------ *)
(* Consistency checking                                                *)
(* ------------------------------------------------------------------ *)

let check_consistency t =
  let fail fmt = Format.kasprintf failwith fmt in
  Frame.check_invariants t.frame;
  let nodes = all_nodes t in
  if Hashtbl.length t.id_of <> List.length nodes then
    fail "id map has %d entries for %d nodes" (Hashtbl.length t.id_of)
      (List.length nodes);
  let seen = Hashtbl.create 256 in
  List.iter
    (fun n ->
      let i =
        match Hashtbl.find_opt t.id_of n.Dom.serial with
        | Some i -> i
        | None -> fail "node %d has no identifier" n.Dom.serial
      in
      if Hashtbl.mem seen i then fail "duplicate identifier %s" (id_to_string i);
      Hashtbl.replace seen i ();
      (match node_of_id t i with
      | Some m when Dom.equal m n -> ()
      | _ -> fail "identifier %s does not resolve back" (id_to_string i));
      (* rparent must agree with the DOM; the numbered root may carry a
         parent outside the numbered tree (e.g. the #document node). *)
      let dom_parent = if Dom.equal n t.root then None else n.Dom.parent in
      match (rparent t i, dom_parent) with
      | None, None -> ()
      | Some p, Some dp ->
        let expected = id_of_node t dp in
        if not (id_equal p expected) then
          fail "rparent %s = %s but DOM parent is %s" (id_to_string i)
            (id_to_string p) (id_to_string expected)
      | Some _, None -> fail "rparent found a parent for the root"
      | None, Some _ -> fail "rparent lost the parent of %s" (id_to_string i))
    nodes

let enumeration_area t i = fst (pos t i)

(* Deep invariant checker, used as the recovery postcondition: everything
   check_consistency verifies, plus K-table/area agreement, fan-out
   adequacy, local-index slot chains, and the document order of the
   (global, local) enumeration keys. *)
let check t =
  let fail fmt = Format.kasprintf failwith fmt in
  check_consistency t;
  (* K rows <-> areas, and each row's fields against the area root. *)
  let rows = Ktable.rows t.ktable in
  if List.length rows <> Hashtbl.length t.root_of_global then
    fail "K has %d rows for %d area roots" (List.length rows)
      (Hashtbl.length t.root_of_global);
  List.iter
    (fun row ->
      if row.Ktable.fanout < 1 then
        fail "area %d has fan-out %d < 1" row.Ktable.global row.Ktable.fanout;
      match Hashtbl.find_opt t.root_of_global row.Ktable.global with
      | None -> fail "K row %d has no area root node" row.Ktable.global
      | Some r ->
        let ri = id_of_node t r in
        if not ri.is_root then
          fail "area root of %d carries a non-root identifier %s"
            row.Ktable.global (id_to_string ri);
        if ri.global <> row.Ktable.global then
          fail "area root of %d carries global %d" row.Ktable.global ri.global;
        let leaf_index = if row.Ktable.global = 1 then 1 else ri.local in
        if leaf_index <> row.Ktable.root_local then
          fail "K row %d records root_local %d but the root's leaf index is %d"
            row.Ktable.global row.Ktable.root_local leaf_index)
    rows;
  (* Occupancy tables: only known areas, locals in range, and every
     occupied slot reachable from the area root through occupied parent
     slots (the chain rparent will walk). *)
  Hashtbl.iter
    (fun g inner ->
      if not (Ktable.mem t.ktable g) then
        fail "area %d is occupied but has no K row" g;
      let k = Ktable.fanout t.ktable g in
      Hashtbl.iter
        (fun l _node ->
          if l < 1 then fail "local index %d out of range in area %d" l g;
          if l >= 2 then begin
            let pslot = ((l - 2) / k) + 1 in
            if not (Hashtbl.mem inner pslot) then
              fail "slot %d of area %d is occupied but parent slot %d is empty"
                l g pslot
          end)
        inner)
    t.node_at;
  (* Fan-out adequacy: no node's degree exceeds the fan-out of the area in
     which its children are enumerated. *)
  List.iter
    (fun n ->
      let g, _ = child_context t n in
      let k = Ktable.fanout t.ktable g in
      if Dom.degree n > k then
        fail "node %s has %d children but area %d enumerates with fan-out %d"
          (id_to_string (id_of_node t n))
          (Dom.degree n) g k)
    (all_nodes t);
  (* Document order of the (global, local) keys: identifier comparison must
     rank the nodes exactly as DOM preorder does. *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      let ia = id_of_node t a and ib = id_of_node t b in
      if doc_order t ia ib >= 0 then
        fail "identifiers %s and %s are out of document order"
          (id_to_string ia) (id_to_string ib);
      ordered rest
    | _ -> ()
  in
  ordered (all_nodes t)

(* Independent structural copy: clone the DOM, then transport every table
   onto the clone through the old-serial -> new-node map built by walking
   both trees in lockstep (Dom.clone preserves child order, so the
   traversals are isomorphic by construction).  The K table is a persistent
   value and is shared; everything mutable is private to the copy.  This is
   O(nodes) of pointer work — no serialization, no re-enumeration, no
   consistency sweep — which is what makes per-batch snapshot publication
   cheap (the server's incremental publish path). *)
let clone t =
  let root' = Dom.clone t.root in
  let map = Hashtbl.create (max 16 (Hashtbl.length t.id_of * 2)) in
  let rec walk a b =
    Hashtbl.replace map a.Dom.serial b;
    List.iter2 walk a.Dom.children b.Dom.children
  in
  walk t.root root';
  let node serial = Hashtbl.find map serial in
  let id_of = Hashtbl.create (max 16 (Hashtbl.length t.id_of * 2)) in
  Hashtbl.iter
    (fun serial i -> Hashtbl.replace id_of (node serial).Dom.serial i)
    t.id_of;
  let node_at = Hashtbl.create (max 16 (Hashtbl.length t.node_at * 2)) in
  Hashtbl.iter
    (fun g inner ->
      let inner' = Hashtbl.create (max 8 (Hashtbl.length inner * 2)) in
      Hashtbl.iter
        (fun l n -> Hashtbl.replace inner' l (node n.Dom.serial))
        inner;
      Hashtbl.replace node_at g inner')
    t.node_at;
  let global_of_root =
    Hashtbl.create (max 16 (Hashtbl.length t.global_of_root * 2))
  in
  Hashtbl.iter
    (fun serial g -> Hashtbl.replace global_of_root (node serial).Dom.serial g)
    t.global_of_root;
  let root_of_global =
    Hashtbl.create (max 16 (Hashtbl.length t.root_of_global * 2))
  in
  Hashtbl.iter
    (fun g n -> Hashtbl.replace root_of_global g (node n.Dom.serial))
    t.root_of_global;
  {
    kappa = t.kappa;
    ktable = t.ktable;
    frame = Frame.remap t.frame ~root:root' ~node;
    id_of;
    node_at;
    global_of_root;
    root_of_global;
    root = root';
  }

let restore ~kappa ~ktable ~ids root =
  let nodes = Dom.preorder root in
  if List.length nodes <> List.length ids then
    invalid_arg "Ruid2.restore: identifier count does not match the tree";
  (* The cut set is exactly the nodes carrying root-form identifiers. *)
  let cut_nodes =
    List.filter_map
      (fun (n, i) -> if i.is_root && not (Dom.equal n root) then Some n else None)
      (List.combine nodes ids)
  in
  let frame = Frame.of_cut_set root cut_nodes in
  let t =
    {
      kappa;
      ktable;
      frame;
      id_of = Hashtbl.create (List.length nodes * 2);
      node_at = Hashtbl.create 64;
      global_of_root = Hashtbl.create 64;
      root_of_global = Hashtbl.create 64;
      root;
    }
  in
  List.iter2
    (fun n i ->
      Hashtbl.replace t.id_of n.Dom.serial i;
      if i.is_root then begin
        Hashtbl.replace t.global_of_root n.Dom.serial i.global;
        Hashtbl.replace t.root_of_global i.global n
      end)
    nodes ids;
  (* Rebuild the per-area occupancy tables from enumeration positions. *)
  List.iter2
    (fun n i ->
      let g, l = pos t i in
      let inner =
        match Hashtbl.find_opt t.node_at g with
        | Some inner -> inner
        | None ->
          let inner = Hashtbl.create 32 in
          Hashtbl.replace t.node_at g inner;
          inner
      in
      Hashtbl.replace inner l n;
      if i.is_root then begin
        let own =
          match Hashtbl.find_opt t.node_at i.global with
          | Some inner -> inner
          | None ->
            let inner = Hashtbl.create 32 in
            Hashtbl.replace t.node_at i.global inner;
            inner
        in
        Hashtbl.replace own 1 n
      end)
    nodes ids;
  (* A corrupted identifier stream can surface as a consistency failure or
     as a missing K row / unresolvable position inside the checker. *)
  (try check_consistency t with
  | Failure msg -> invalid_arg ("Ruid2.restore: " ^ msg)
  | Not_found -> invalid_arg "Ruid2.restore: identifier references a missing area"
  | Invalid_argument msg -> invalid_arg ("Ruid2.restore: " ^ msg));
  t
