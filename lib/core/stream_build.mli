(** Streaming ingest: chunked SAX feed → numbered document in one pass.

    The ingest path of the collection tier used to materialize each
    document twice — the full source text as one string, then a DOM — with
    a separate well-formedness scan in front.  This module folds the event
    stream of a {!Rxml.Sax.source} directly into the DOM, the per-node
    statistics (node count, maximal fan-out and nesting depth) and — when
    the area-depth budget is known up front — the greedy area cut
    ({!Frame.Cut_builder}), all during the single pass; the numbering is
    then produced by the ordinary enumeration.  Peak memory is the finished
    document plus one feed chunk, never document text + DOM, and the output
    is bit-identical to [Parser.parse_string] + {!Ruid2.number} (tested:
    sidecar and serialized XML byte-equal, equal {!Rxpath.Doc_index}
    ranks — so [Doc_index.build] consumes the result directly). *)

type stats = {
  nodes : int;  (** DOM nodes assembled, document node included *)
  elements : int;
  max_fanout : int;  (** maximal degree over the numbered tree *)
  max_depth : int;  (** maximal element nesting depth *)
}

type built = { doc : Rxml.Dom.t; r2 : Ruid2.t; stats : stats }
(** [doc] is the document node; [r2] is numbered at [doc] or at its root
    element depending on [at]. *)

val of_source :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_area_size:int ->
  ?max_area_depth:int ->
  ?adjust:bool ->
  ?at:[ `Document | `Root_element ] ->
  Rxml.Sax.source ->
  built
(** One pass over the feed.  [max_depth] is the nesting budget (default
    10000, as {!Rxml.Parser}); the numbering knobs are those of
    {!Ruid2.number}.  [at] picks the numbering root (default [`Document],
    the server's convention; [`Root_element] matches [ruidtool]'s file
    commands).  When [max_area_depth] is given the greedy cut is computed
    online during the pass; otherwise its depth budget defaults from the
    fan-out the pass measured and the cut runs over the finished tree.
    @raise Rxml.Parser.Parse_error on malformed input. *)

val of_channel :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_area_size:int ->
  ?max_area_depth:int ->
  ?adjust:bool ->
  ?at:[ `Document | `Root_element ] ->
  ?chunk:int ->
  in_channel ->
  built

val of_file :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_area_size:int ->
  ?max_area_depth:int ->
  ?adjust:bool ->
  ?at:[ `Document | `Root_element ] ->
  ?chunk:int ->
  string ->
  built
(** Stream the file at the path through {!of_channel} — the whole file is
    never resident. *)

val of_string :
  ?keep_whitespace:bool ->
  ?max_depth:int ->
  ?max_area_size:int ->
  ?max_area_depth:int ->
  ?adjust:bool ->
  ?at:[ `Document | `Root_element ] ->
  string ->
  built
