(** CRC-32 (IEEE 802.3, the zlib polynomial) over byte ranges.

    Durability needs end-to-end corruption detection: sidecar sections and
    journal records are framed with a checksum so a torn write or a flipped
    bit is detected at load time instead of surfacing later as a wrong
    identifier.  Table-driven, stdlib only; values fit in 32 bits and are
    returned as non-negative [int]s. *)

val bytes : bytes -> pos:int -> len:int -> int
(** Checksum of [len] bytes starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val string : string -> int
(** Checksum of a whole string. *)
