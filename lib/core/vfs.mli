(** File-system operations behind a record, so the storage layer can run
    against the real kernel or a deterministic fault injector.

    {!Persist} and the storage-layer journal route every read, write, append
    and rename through a [t].  Production code uses {!real}; the fault
    injector (in [lib/storage]) wraps a [t] and perturbs the traffic — short
    writes, flipped bits, transient errors — which is what makes crash
    recovery testable with exact reproducibility.

    Two distinguished failures cross this interface:
    - {!Transient}: a retryable error (think [EINTR]/[EAGAIN], a busy NFS
      server).  Callers wrap operations in {!with_retries}.
    - {!Crash}: a simulated power loss part-way through a write.  The
      operation must be assumed partially applied; only recovery code runs
      afterwards. *)

exception Transient of string
(** Retryable I/O failure. *)

exception Crash of string
(** Simulated power loss: the write may have been partially applied. *)

type t = {
  load : string -> bytes;  (** whole-file read *)
  store : string -> bytes -> unit;  (** create/truncate, write all, fsync *)
  append : string -> bytes -> unit;  (** append at end (creating), fsync *)
  append_nosync : string -> bytes -> unit;
      (** append without forcing durability; pair with {!field-sync}.  The
          write may sit in the page cache — a crash can lose or tear it. *)
  sync : string -> unit;  (** force previously appended bytes to disk *)
  rename : src:string -> dst:string -> unit;  (** atomic within a directory *)
  remove : string -> unit;
  exists : string -> bool;
  size : string -> int;
  truncate : string -> int -> unit;  (** cut the file to the given length *)
}

val real : t
(** The operating system: [store]/[append]/[truncate] fsync before
    returning, [rename] is [Sys.rename]. *)

val with_retries : ?attempts:int -> ?backoff:float -> (unit -> 'a) -> 'a
(** Run the thunk, retrying on {!Transient} up to [attempts] times (default
    5) with exponential backoff starting at [backoff] seconds (default
    0.0005, doubling per retry).  The last {!Transient} is re-raised when
    the budget is exhausted; any other exception passes through at once. *)
