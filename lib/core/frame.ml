module Dom = Rxml.Dom

type t = {
  root : Dom.t;
  cut : (int, unit) Hashtbl.t;  (* serials of area roots, root included *)
}

let root t = t.root
let is_area_root t n = Hashtbl.mem t.cut n.Dom.serial

let own_area_root t n =
  let rec go n = if is_area_root t n then n else
    match n.Dom.parent with
    | Some p -> go p
    | None -> failwith "Frame.own_area_root: node outside the frame's tree"
  in
  go n

let area_root_of t n =
  if Dom.equal n t.root then t.root
  else
    match n.Dom.parent with
    | Some p -> own_area_root t p
    | None -> failwith "Frame.area_root_of: detached node"

let frame_parent t n =
  match n.Dom.parent with
  | None -> None
  | Some p -> Some (own_area_root t p)

let frame_children t r =
  (* Area roots whose nearest strict-ancestor area root is [r]: collect cut
     nodes below [r], not descending past them. *)
  let acc = ref [] in
  let rec go n =
    List.iter
      (fun c ->
        if is_area_root t c then acc := c :: !acc else go c)
      n.Dom.children
  in
  go r;
  List.rev !acc

let area_roots t =
  List.filter (is_area_root t) (Dom.preorder t.root)

let area_count t = Hashtbl.length t.cut

let area_members t r =
  let acc = ref [] in
  let rec go n =
    acc := n :: !acc;
    if Dom.equal n r || not (is_area_root t n) then
      List.iter go n.Dom.children
  in
  go r;
  List.rev !acc

let area_fanout t r =
  let best = ref 1 in
  let rec go n =
    if Dom.equal n r || not (is_area_root t n) then begin
      let d = Dom.degree n in
      if d > !best then best := d;
      List.iter go n.Dom.children
    end
  in
  go r;
  !best

let frame_fanout t =
  List.fold_left
    (fun acc r -> max acc (List.length (frame_children t r)))
    1 (area_roots t)

let frame_depth t =
  let rec go r = List.fold_left (fun acc c -> max acc (1 + go c)) 0 (frame_children t r) in
  go t.root

let of_cut_set root nodes =
  let cut = Hashtbl.create 64 in
  Hashtbl.replace cut root.Dom.serial ();
  List.iter
    (fun n ->
      if not (Dom.equal n root || Dom.is_ancestor ~anc:root ~desc:n) then
        invalid_arg "Frame.of_cut_set: node not in tree";
      Hashtbl.replace cut n.Dom.serial ())
    nodes;
  { root; cut }

(* Greedy top-down partition: grow the current area in document order; when
   it would exceed the size budget — or a path would exceed the depth
   budget — the next child starts a new area (and is still counted as a
   leaf of the current one, per Definition 2). *)
let greedy_cut ~max_area_size ~max_area_depth root =
  let cut = Hashtbl.create 64 in
  Hashtbl.replace cut root.Dom.serial ();
  let rec fill_area area_root =
    (* budget counts enumerated nodes: the area root plus members. *)
    let budget = ref (max_area_size - 1) in
    let next_areas = ref [] in
    let rec go depth n =
      List.iter
        (fun c ->
          decr budget;
          if !budget >= 0 && depth < max_area_depth then go (depth + 1) c
          else begin
            (* [c] still consumed a slot as a leaf of this area, but its
               own children start a fresh area rooted at [c]. *)
            Hashtbl.replace cut c.Dom.serial ();
            next_areas := c :: !next_areas
          end)
        n.Dom.children
    in
    go 1 area_root;
    List.iter fill_area (List.rev !next_areas)
  in
  fill_area root;
  { root; cut }

let adjust_fanout t =
  let tree_fanout =
    Dom.fold_preorder (fun acc n -> max acc (Dom.degree n)) 1 t.root
  in
  (* One pass computes every area root's frame children; promotions then
     touch only the offender's children, so the whole adjustment is
     near-linear instead of rescanning the tree per promotion. *)
  let children : (int, Dom.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let kids r =
    match Hashtbl.find_opt children r.Dom.serial with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace children r.Dom.serial l;
      l
  in
  let rec collect area_root n =
    List.iter
      (fun c ->
        if is_area_root t c then begin
          let l = kids area_root in
          l := c :: !l;
          collect c c
        end
        else collect area_root c)
      n.Dom.children
  in
  collect t.root t.root;
  (* Path from a frame child up to (excluding) its frame parent — bounded
     by the area depth. *)
  let path_to_parent ~stop n =
    let rec go acc n =
      match n.Dom.parent with
      | Some p when Dom.equal p stop -> acc
      | Some p -> go (p :: acc) p
      | None -> assert false
    in
    go [] n
  in
  let worklist = Queue.create () in
  List.iter
    (fun r ->
      match Hashtbl.find_opt children r.Dom.serial with
      | Some l when List.length !l > tree_fanout -> Queue.add r worklist
      | _ -> ())
    (area_roots t);
  while not (Queue.is_empty worklist) do
    let u = Queue.pop worklist in
    let l = kids u in
    if List.length !l > tree_fanout then begin
      (* Group u's frame children by the T-child of u they sit under. *)
      let groups = Hashtbl.create 8 in
      List.iter
        (fun fc ->
          let branch =
            match path_to_parent ~stop:u fc with
            | b :: _ -> b
            | [] -> fc (* fc is a direct T-child of u *)
          in
          let cur =
            match Hashtbl.find_opt groups branch.Dom.serial with
            | Some (_, members) -> members
            | None -> []
          in
          Hashtbl.replace groups branch.Dom.serial (branch, fc :: cur))
        !l;
      (* Largest group wins; ties break on the branch's position among u's
         children.  Never on hash order of serials — that would make the
         cut depend on node-allocation history, so two parses of the same
         bytes could partition (and number) differently. *)
      let best =
        Hashtbl.fold (fun _ bg acc -> bg :: acc) groups []
        |> List.filter (fun (_, g) -> List.length g >= 2)
        |> List.sort (fun (b1, g1) (b2, g2) ->
               match compare (List.length g2) (List.length g1) with
               | 0 -> compare (Dom.child_index b1) (Dom.child_index b2)
               | c -> c)
        |> function
        | [] -> None
        | (_, g) :: _ -> Some g
      in
      match best with
      | None ->
        (* Impossible while the fan-out exceeds the tree's: some branch
           must hold two frame children. *)
        assert false
      | Some group ->
        (* Promote the LCA (within u's area) of the group. *)
        let paths = List.map (fun fc -> path_to_parent ~stop:u fc @ [ fc ]) group in
        let rec common prefix ps =
          let heads = List.map (function x :: _ -> Some x | [] -> None) ps in
          match heads with
          | Some h :: rest
            when List.for_all
                   (function Some x -> Dom.equal x h | None -> false)
                   rest ->
            common (h :: prefix)
              (List.map (function _ :: tl -> tl | [] -> []) ps)
          | _ -> prefix
        in
        let lca =
          match common [] paths with
          | lca :: _ -> lca
          | [] -> assert false
        in
        assert (not (Hashtbl.mem t.cut lca.Dom.serial));
        Hashtbl.replace t.cut lca.Dom.serial ();
        (* Move the group under the new frame node. *)
        l := List.filter (fun fc -> not (List.exists (Dom.equal fc) group)) !l;
        l := lca :: !l;
        let ll = kids lca in
        ll := group;
        if List.length !l > tree_fanout then Queue.add u worklist;
        if List.length group > tree_fanout then Queue.add lca worklist
    end
  done

let uncut t n =
  if Dom.equal n t.root then invalid_arg "Frame.uncut: tree root";
  Hashtbl.remove t.cut n.Dom.serial

(* Transport the cut set onto a structurally identical tree: [node] maps an
   old serial to the corresponding node of the new tree.  O(areas), no
   ancestry validation — the caller guarantees the trees are isomorphic
   (this is the cheap path behind Ruid2.clone; of_cut_set re-validates). *)
let remap t ~root ~node =
  let cut = Hashtbl.create (max 16 (Hashtbl.length t.cut * 2)) in
  Hashtbl.iter
    (fun serial () -> Hashtbl.replace cut (node serial).Dom.serial ())
    t.cut;
  { root; cut }

let bits v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let default_area_size = 64

(* Keep k^depth comfortably inside a native integer: local indices stay
   under ~48 bits, leaving headroom for fan-out growth under updates. *)
let default_area_depth ~max_fanout = max 4 (48 / bits (max_fanout + 1))

let partition ?(max_area_size = default_area_size) ?max_area_depth
    ?(adjust = true) root =
  if max_area_size < 2 then invalid_arg "Frame.partition: max_area_size < 2";
  let max_area_depth =
    match max_area_depth with
    | Some d ->
      if d < 1 then invalid_arg "Frame.partition: max_area_depth < 1";
      d
    | None ->
      let max_fanout =
        Dom.fold_preorder (fun acc n -> max acc (Dom.degree n)) 1 root
      in
      default_area_depth ~max_fanout
  in
  let t = greedy_cut ~max_area_size ~max_area_depth root in
  if adjust then adjust_fanout t;
  t

(* The greedy cut as an online algorithm over a preorder enter/leave walk:
   the decision for a node depends only on the budget its enumerating area
   has already spent on earlier nodes (all before it in document order) and
   its depth inside that area, so a stack of open areas suffices — the cut
   set is computed during a single streaming pass, with no tree in hand.
   Produces exactly the cut of [greedy_cut] (tested equivalent). *)
module Cut_builder = struct
  type area = { mutable budget : int }

  type builder = {
    max_area_size : int;
    max_area_depth : int;
    cut : (int, unit) Hashtbl.t;
    (* per open node: the area enumerating its children and the greedy
       depth those children are checked at *)
    mutable stack : (area * int) list;
    mutable root_serial : int;
  }

  let create ?(max_area_size = default_area_size) ~max_area_depth () =
    if max_area_size < 2 then
      invalid_arg "Frame.Cut_builder.create: max_area_size < 2";
    if max_area_depth < 1 then
      invalid_arg "Frame.Cut_builder.create: max_area_depth < 1";
    {
      max_area_size;
      max_area_depth;
      cut = Hashtbl.create 64;
      stack = [];
      root_serial = -1;
    }

  let enter b ~serial =
    match b.stack with
    | [] ->
      (* tree root: always an area root, children checked at greedy depth 1 *)
      Hashtbl.replace b.cut serial ();
      b.root_serial <- serial;
      b.stack <- ({ budget = b.max_area_size - 1 }, 1) :: b.stack;
      true
    | (area, gdepth) :: _ ->
      area.budget <- area.budget - 1;
      if area.budget >= 0 && gdepth < b.max_area_depth then begin
        b.stack <- (area, gdepth + 1) :: b.stack;
        false
      end
      else begin
        (* the node still consumed a slot as a leaf of the upper area, but
           its own children start a fresh area rooted here *)
        Hashtbl.replace b.cut serial ();
        b.stack <- ({ budget = b.max_area_size - 1 }, 1) :: b.stack;
        true
      end

  let leave b =
    match b.stack with
    | _ :: rest -> b.stack <- rest
    | [] -> invalid_arg "Frame.Cut_builder.leave: empty stack"

  let finish b ~root =
    if b.stack <> [] then
      invalid_arg "Frame.Cut_builder.finish: unbalanced enter/leave";
    if root.Dom.serial <> b.root_serial then
      invalid_arg "Frame.Cut_builder.finish: root is not the first entered node";
    { root; cut = b.cut }
end

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  if not (is_area_root t t.root) then fail "tree root is not an area root";
  (* Every node is enumerated in exactly one area; collect membership. *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let members = area_members t r in
      (match members with
      | m :: _ when Dom.equal m r -> ()
      | _ -> fail "area members must start with the area root");
      List.iter
        (fun m ->
          if not (Dom.equal m r) then begin
            if Hashtbl.mem seen m.Dom.serial then
              fail "node %d enumerated in two areas" m.Dom.serial;
            Hashtbl.replace seen m.Dom.serial r.Dom.serial
          end;
          (* Induced subtree: every member's parent is in the same area
             (or the member is the area root). *)
          if not (Dom.equal m r) then
            match m.Dom.parent with
            | None -> fail "non-root member without parent"
            | Some p ->
              if not (Dom.equal p r || List.exists (Dom.equal p) members) then
                fail "area is not an induced subtree")
        members)
    (area_roots t);
  (* Coverage: every node except the tree root appears exactly once. *)
  Dom.iter_preorder
    (fun n ->
      if not (Dom.equal n t.root) && not (Hashtbl.mem seen n.Dom.serial) then
        fail "node %d not enumerated in any area" n.Dom.serial)
    t.root

let check = check_invariants
