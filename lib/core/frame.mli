(** Frames and UID-local areas (Definitions 1 and 2 of the paper).

    A partition of an XML tree is represented by its {e cut set}: the set of
    area-root nodes, which always contains the tree root.  The frame is the
    tree induced on the cut set (an edge between two area roots when one is
    an ancestor of the other with no area root strictly between).  The
    UID-local area rooted at an area root [r] consists of [r] together with
    every descendant reachable without passing through another area root;
    roots of child areas are included as leaves of the upper area — they are
    the single-node intersections of adjacent areas.

    Every node is {e enumerated} in exactly one area: the area of its parent
    (the tree root is enumerated in its own area, at index 1). *)

type t

val root : t -> Rxml.Dom.t

val partition :
  ?max_area_size:int -> ?max_area_depth:int -> ?adjust:bool -> Rxml.Dom.t -> t
(** Cut the tree greedily, in document order, into areas of at most
    [max_area_size] enumerated nodes (default 64; minimum 2).  With [adjust]
    (default [true]), apply the Section 2.3 refinement: promote branching
    nodes to area roots until the frame's maximal fan-out does not exceed
    the source tree's maximal fan-out.

    [max_area_depth] additionally cuts any root path longer than that many
    edges inside one area.  Because a local index can reach [k{^d}] for an
    area of fan-out [k] and depth [d], unbounded area depth overflows
    native-integer locals on deeply recursive documents; the default limit
    is [max 4 (48 / bits (max_fanout + 1))], which keeps every local index
    under roughly 48 bits — "appropriately dividing an XML tree into
    UID-local areas" (Section 3.1). *)

val default_area_size : int
(** 64 — the [max_area_size] {!partition} uses when none is given. *)

val default_area_depth : max_fanout:int -> int
(** The depth budget {!partition} derives when none is given: keeps every
    local index under roughly 48 bits for a tree of the given maximal
    fan-out. *)

val adjust_fanout : t -> unit
(** The Section 2.3 refinement in isolation: promote branching nodes to
    area roots until the frame's maximal fan-out does not exceed the source
    tree's.  {!partition} applies it when [adjust] is set; exposed so the
    streaming builder ({!Stream_build}) can run it over an online-computed
    cut. *)

(** The greedy cut of {!partition} as an online algorithm: feed it a
    preorder enter/leave walk — e.g. SAX start/end events — and it decides
    each node's area-root status the moment the node starts, from a stack
    of open-area budgets alone.  State is O(tree depth); the resulting cut
    is exactly the one [greedy_cut] inside {!partition} produces (tested
    equivalent). *)
module Cut_builder : sig
  type builder

  val create : ?max_area_size:int -> max_area_depth:int -> unit -> builder
  (** Defaults [max_area_size] to {!default_area_size}.  The depth budget
      is required: deriving it needs the tree's maximal fan-out, which a
      stream only knows at the end ({!default_area_depth}). *)

  val enter : builder -> serial:int -> bool
  (** Called at each node start in document order with the node's DOM
      serial; returns whether the node becomes an area root.  The first
      node entered is the tree root (always an area root). *)

  val leave : builder -> unit
  (** Called at each node end. *)

  val finish : builder -> root:Rxml.Dom.t -> t
  (** The completed frame over the tree rooted at [root] (which must carry
      the serial of the first entered node).
      @raise Invalid_argument on an unbalanced walk or a foreign root. *)
end

val of_cut_set : Rxml.Dom.t -> Rxml.Dom.t list -> t
(** Build a frame from an explicit cut set (the tree root is added
    implicitly).  Used by tests reconstructing the paper's figures.
    @raise Invalid_argument if a listed node is not in the tree. *)

val is_area_root : t -> Rxml.Dom.t -> bool

val area_root_of : t -> Rxml.Dom.t -> Rxml.Dom.t
(** The root of the area in which the node is {e enumerated}: the nearest
    area root that is a strict ancestor — or the node itself for the tree
    root. *)

val own_area_root : t -> Rxml.Dom.t -> Rxml.Dom.t
(** Nearest area root that is the node itself or an ancestor. *)

val frame_parent : t -> Rxml.Dom.t -> Rxml.Dom.t option
(** For an area root: the nearest strict-ancestor area root. *)

val frame_children : t -> Rxml.Dom.t -> Rxml.Dom.t list
(** For an area root: its frame children in document order. *)

val area_roots : t -> Rxml.Dom.t list
(** All area roots in document order (the tree root first). *)

val area_count : t -> int

val area_members : t -> Rxml.Dom.t -> Rxml.Dom.t list
(** Nodes enumerated in the area of the given area root, in document order,
    the area root itself first.  Roots of child areas appear (as leaves);
    their own members do not. *)

val area_fanout : t -> Rxml.Dom.t -> int
(** Maximal fan-out used to enumerate the area: the maximum degree over
    nodes whose children are enumerated in this area (at least 1). *)

val frame_fanout : t -> int
(** kappa: the maximal number of frame children over all area roots (at
    least 1). *)

val frame_depth : t -> int

val uncut : t -> Rxml.Dom.t -> unit
(** Remove a node from the cut set (used when a whole area is deleted).
    @raise Invalid_argument on the tree root. *)

val remap : t -> root:Rxml.Dom.t -> node:(int -> Rxml.Dom.t) -> t
(** Transport the frame onto a structurally identical tree rooted at
    [root]; [node] maps each old node serial to its counterpart.  O(areas)
    and unvalidated — the caller guarantees isomorphism ({!Ruid2.clone}
    uses a lockstep traversal, which guarantees it by construction). *)

val check_invariants : t -> unit
(** Validate Definitions 1-2: cut set covers the tree, areas are induced
    subtrees, adjacent areas intersect in exactly the child-area root.
    @raise Failure describing the violated invariant. *)

val check : t -> unit
(** Alias of {!check_invariants}; the name used by the recovery
    postcondition ({!Ruid2.check} runs it as its first step). *)
