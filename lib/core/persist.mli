(** Persistence of numbered documents.

    Identifiers are only useful as external keys if they survive process
    restarts without a renumbering (which would defeat the stability the
    scheme buys).  This module writes a numbered document as the XML text
    plus a compact binary sidecar — kappa, the K table, and the varint
    identifier stream in document order — and restores the exact numbering
    on load.

    Sidecar format v3 (all integers LEB128 varints unless noted):
    {v magic "RUID2\x03"
       | 3 framed sections, in order header, ktable, ids:
           varint payload-length | payload | CRC-32 of payload (4 bytes LE)
       header  payload: root-kind (1 = document node) | kappa
       ktable  payload: #K rows | rows (global, root_local, fanout)
       ids     payload: #nodes  | per node: root flag + global + local v}

    The per-section checksums detect any single-bit corruption and locate
    it; {!sidecar_of_bytes} names the failing section and byte offset in
    every rejection.  The v2 format (magic ["RUID2\x02"], same payloads
    concatenated without framing or checksums) is still loaded.

    {!save} is atomic: both files are written to a temporary name in the
    same directory, fsynced, then renamed over the destination, so a crash
    mid-save leaves the previous snapshot intact. *)

val save :
  ?vfs:Vfs.t -> ?attempts:int -> Ruid2.t -> xml:string -> sidecar:string -> unit
(** Write the document (compact XML) and its v3 numbering sidecar
    atomically (temp file + fsync + rename, per file).  I/O goes through
    [vfs] (default {!Vfs.real}); {!Vfs.Transient} failures are retried up
    to [attempts] times (default 5). *)

val load :
  ?vfs:Vfs.t -> ?attempts:int -> xml:string -> sidecar:string ->
  unit -> Rxml.Dom.t * Ruid2.t
(** Parse, restore and verify (via {!Ruid2.restore}); returns the document
    node and the numbering over its root element.  Accepts v2 and v3
    sidecars.
    @raise Invalid_argument if the sidecar is malformed, fails a checksum,
    or does not match the document — the message names the section and
    byte offset of the failure. *)

val sidecar_to_bytes : Ruid2.t -> bytes
(** Serialize in the v3 format. *)

val sidecar_to_bytes_v2 : Ruid2.t -> bytes
(** Legacy v2 encoder, kept so compatibility of {!sidecar_of_bytes} with
    pre-checksum sidecars stays testable. *)

val sidecar_of_bytes : Rxml.Dom.t -> bytes -> Ruid2.t
(** In-memory variant (the file functions are thin wrappers); the [Dom.t]
    argument is the numbered root element.  Accepts v2 and v3. *)

val version_of_bytes : bytes -> int
(** 2 or 3 by magic. @raise Invalid_argument on an unknown magic. *)

val xml_to_bytes : Ruid2.t -> bytes
(** The XML text {!save} would write for this numbering (the serialized
    numbered root). *)

val of_bytes : xml:bytes -> sidecar:bytes -> Rxml.Dom.t * Ruid2.t
(** The {!load} path without the file system: parse the XML bytes and
    restore the numbering from the sidecar bytes.  WAL checkpoint recovery
    uses this after verifying both byte strings against the checksums in
    the checkpoint record.
    @raise Invalid_argument as {!load}. *)

val store_atomic : Vfs.t -> attempts:int -> string -> bytes -> unit
(** Atomic single-file publication: write [path ^ ".tmp"], fsync, rename
    over [path].  Exposed for the WAL's checkpoint files, which need the
    same crash discipline as {!save}. *)
