exception Transient of string
exception Crash of string

type t = {
  load : string -> bytes;
  store : string -> bytes -> unit;
  append : string -> bytes -> unit;
  append_nosync : string -> bytes -> unit;
  sync : string -> unit;
  rename : src:string -> dst:string -> unit;
  remove : string -> unit;
  exists : string -> bool;
  size : string -> int;
  truncate : string -> int -> unit;
}

let write_all fd b =
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let with_fd path flags f =
  let fd = Unix.openfile path flags 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let real =
  {
    load =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            let b = Bytes.create n in
            really_input ic b 0 n;
            b));
    store =
      (fun path b ->
        with_fd path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] (fun fd ->
            write_all fd b;
            Unix.fsync fd));
    append =
      (fun path b ->
        with_fd path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] (fun fd ->
            write_all fd b;
            Unix.fsync fd));
    append_nosync =
      (fun path b ->
        with_fd path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] (fun fd ->
            write_all fd b));
    sync =
      (fun path -> with_fd path Unix.[ O_WRONLY ] (fun fd -> Unix.fsync fd));
    rename = (fun ~src ~dst -> Sys.rename src dst);
    remove = (fun path -> Sys.remove path);
    exists = (fun path -> Sys.file_exists path);
    size = (fun path -> (Unix.stat path).Unix.st_size);
    truncate = (fun path n -> Unix.truncate path n);
  }

let with_retries ?(attempts = 5) ?(backoff = 0.0005) f =
  let rec go i delay =
    try f ()
    with Transient _ as e ->
      if i >= attempts then raise e;
      if delay > 0. then Unix.sleepf delay;
      go (i + 1) (delay *. 2.)
  in
  go 1 backoff
