(* Reflected CRC-32 with polynomial 0xEDB88320, as in zlib/PNG. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.get b i))
  done;
  !crc lxor 0xFFFFFFFF

let string s =
  let crc = ref 0xFFFFFFFF in
  String.iter (fun c -> crc := update !crc (Char.code c)) s;
  !crc lxor 0xFFFFFFFF
