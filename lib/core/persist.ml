module Dom = Rxml.Dom

let magic_v2 = "RUID2\x02"
let magic_v3 = "RUID2\x03"

(* ------------------------------------------------------------------ *)
(* Shared payload encoders                                             *)
(* ------------------------------------------------------------------ *)

let header_payload t =
  let buf = Buffer.create 8 in
  (* Whether the numbered root is the document node itself (vs its root
     element): load must restore against the same node. *)
  let is_document =
    match (Ruid2.root t).Dom.kind with Dom.Document -> 1 | _ -> 0
  in
  Codec.write_varint buf is_document;
  Codec.write_varint buf (Ruid2.kappa t);
  buf

let ktable_payload t =
  let buf = Buffer.create 256 in
  let rows = Ktable.rows (Ruid2.ktable t) in
  Codec.write_varint buf (List.length rows);
  List.iter
    (fun r ->
      Codec.write_varint buf r.Ktable.global;
      Codec.write_varint buf r.Ktable.root_local;
      Codec.write_varint buf r.Ktable.fanout)
    rows;
  buf

let ids_payload t =
  let buf = Buffer.create 4096 in
  let nodes = Ruid2.all_nodes t in
  Codec.write_varint buf (List.length nodes);
  List.iter
    (fun n -> Buffer.add_bytes buf (Codec.encode_ruid2 (Ruid2.id_of_node t n)))
    nodes;
  buf

let add_u32_le buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let sidecar_to_bytes t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v3;
  List.iter
    (fun payload ->
      let s = Buffer.contents payload in
      Codec.write_varint buf (String.length s);
      Buffer.add_string buf s;
      add_u32_le buf (Crc32.string s))
    [ header_payload t; ktable_payload t; ids_payload t ];
  Buffer.to_bytes buf

let sidecar_to_bytes_v2 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v2;
  List.iter
    (fun payload -> Buffer.add_buffer buf payload)
    [ header_payload t; ktable_payload t; ids_payload t ];
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Reader with section/offset context on every failure                 *)
(* ------------------------------------------------------------------ *)

type reader = { bytes : bytes; mutable pos : int; mutable section : string }

let reject r msg =
  invalid_arg
    (Printf.sprintf "Persist: %s (%s section, byte %d)" msg r.section r.pos)

let rd_varint r =
  match Codec.read_varint r.bytes ~pos:r.pos with
  | v, p ->
    r.pos <- p;
    v
  | exception Invalid_argument _ -> reject r "truncated or over-long varint"

let rd_u32_le r =
  if r.pos + 4 > Bytes.length r.bytes then reject r "truncated checksum";
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.bytes (r.pos + i))
  done;
  r.pos <- r.pos + 4;
  !v

let version_of_bytes bytes =
  let n = String.length magic_v2 in
  if Bytes.length bytes < n then invalid_arg "Persist: bad magic (byte 0)"
  else
    match Bytes.sub_string bytes 0 n with
    | s when s = magic_v2 -> 2
    | s when s = magic_v3 -> 3
    | _ -> invalid_arg "Persist: bad magic (byte 0)"

(* Decode the three payloads into (reader for payload, payload start) per
   section, verifying framing and checksums for v3. *)
let section_readers bytes =
  match version_of_bytes bytes with
  | 2 ->
    (* One unframed stream: all three sections share the reader; the
       section label advances as parsing proceeds. *)
    let r = { bytes; pos = String.length magic_v2; section = "header" } in
    `Unframed r
  | _ ->
    let r = { bytes; pos = String.length magic_v3; section = "" } in
    let sections =
      List.map
        (fun name ->
          r.section <- name;
          let frame_start = r.pos in
          let len = rd_varint r in
          let payload_start = r.pos in
          if len < 0 || payload_start + len > Bytes.length bytes then begin
            r.pos <- frame_start;
            reject r "section length exceeds sidecar size"
          end;
          r.pos <- payload_start + len;
          let stored = rd_u32_le r in
          let actual = Crc32.bytes bytes ~pos:payload_start ~len in
          if stored <> actual then begin
            r.pos <- payload_start;
            reject r
              (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
                 stored actual)
          end;
          (name, payload_start, len))
        [ "header"; "ktable"; "ids" ]
    in
    if r.pos <> Bytes.length bytes then begin
      r.section <- "trailer";
      reject r "trailing bytes after ids section"
    end;
    `Framed (bytes, sections)

let parse_payloads ~header ~ktable ~ids bytes =
  match section_readers bytes with
  | `Unframed r ->
    let h = header r in
    r.section <- "ktable";
    let k = ktable r in
    r.section <- "ids";
    let i = ids r in
    if r.pos <> Bytes.length bytes then begin
      r.section <- "trailer";
      reject r "trailing bytes in sidecar"
    end;
    (h, k, i)
  | `Framed (bytes, sections) ->
    let sub name f =
      let _, start, len =
        List.find (fun (n, _, _) -> n = name) sections
      in
      let r = { bytes; pos = start; section = name } in
      let v = f r in
      if r.pos <> start + len then reject r "trailing bytes in section";
      v
    in
    (sub "header" header, sub "ktable" ktable, sub "ids" ids)

let read_header r =
  let is_document = rd_varint r in
  let kappa = rd_varint r in
  (is_document, kappa)

let read_ktable r =
  let nrows = rd_varint r in
  if nrows < 0 then reject r "negative row count";
  List.init nrows (fun _ ->
      let global = rd_varint r in
      let root_local = rd_varint r in
      let fanout = rd_varint r in
      { Ktable.global; root_local; fanout })

let read_ids r =
  let nnodes = rd_varint r in
  if nnodes < 0 then reject r "negative node count";
  List.init nnodes (fun _ ->
      let flag = rd_varint r in
      let global = rd_varint r in
      let local = rd_varint r in
      { Ruid2.global; local; is_root = flag = 1 })

let sidecar_of_bytes root bytes =
  let (_is_document, kappa), rows, ids =
    parse_payloads ~header:read_header ~ktable:read_ktable ~ids:read_ids bytes
  in
  let ktable =
    try Ktable.make rows
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "Persist: %s (ktable section)" msg)
  in
  Ruid2.restore ~kappa ~ktable ~ids root

(* The root-kind flag, readable without a full parse (both versions): the
   first varint of the header payload, which in v3 sits after the section's
   length varint. *)
let root_kind_of_bytes bytes =
  let r = { bytes; pos = String.length magic_v2; section = "header" } in
  if version_of_bytes bytes = 3 then ignore (rd_varint r);
  rd_varint r = 1

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

(* Atomic publication: write a sibling temp file, fsync (inside
   [vfs.store]), rename over the destination. *)
let store_atomic vfs ~attempts path bytes =
  let tmp = path ^ ".tmp" in
  Vfs.with_retries ~attempts (fun () -> vfs.Vfs.store tmp bytes);
  Vfs.with_retries ~attempts (fun () -> vfs.Vfs.rename ~src:tmp ~dst:path)

let save ?(vfs = Vfs.real) ?(attempts = 5) t ~xml ~sidecar =
  let xml_bytes = Bytes.of_string (Rxml.Serializer.to_string (Ruid2.root t)) in
  store_atomic vfs ~attempts xml xml_bytes;
  store_atomic vfs ~attempts sidecar (sidecar_to_bytes t)

let load ?(vfs = Vfs.real) ?(attempts = 5) ~xml ~sidecar () =
  let xml_bytes = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load xml) in
  let doc =
    Rxml.Parser.parse_string ~keep_whitespace:true (Bytes.to_string xml_bytes)
  in
  let bytes = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load sidecar) in
  let root =
    if root_kind_of_bytes bytes then doc else Dom.root_element doc
  in
  (doc, sidecar_of_bytes root bytes)

let xml_to_bytes t =
  Bytes.of_string (Rxml.Serializer.to_string (Ruid2.root t))

(* The [load] path without the file system: reconstruct a document and its
   numbering from in-memory snapshot bytes.  Used by WAL checkpoint
   recovery, which verifies the bytes' checksums against the checkpoint
   record before trusting them. *)
let of_bytes ~xml ~sidecar =
  let doc =
    Rxml.Parser.parse_string ~keep_whitespace:true (Bytes.to_string xml)
  in
  let root = if root_kind_of_bytes sidecar then doc else Dom.root_element doc in
  (doc, sidecar_of_bytes root sidecar)
