let varint_size n =
  if n < 0 then invalid_arg "Codec.varint_size: negative";
  let rec go acc n = if n < 128 then acc else go (acc + 1) (n lsr 7) in
  go 1 n

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go n =
    if n < 128 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (128 lor (n land 127)));
      go (n lsr 7)
    end
  in
  go n

let read_varint bytes ~pos =
  let len = Bytes.length bytes in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Codec.read_varint: truncated input";
    (* max_int is 63 bits = 9 groups of 7; a continuation past shift 56
       would feed bits OCaml's int cannot hold. *)
    if shift > 56 then invalid_arg "Codec.read_varint: over-long varint";
    let b = Char.code (Bytes.get bytes pos) in
    let acc = acc lor ((b land 127) lsl shift) in
    if acc < 0 then invalid_arg "Codec.read_varint: varint overflows int";
    if b < 128 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

(* ruid2 identifier: the root flag rides in the low bit of the first
   varint; then global, then local. *)
let encode_ruid2 (i : Ruid2.id) =
  let buf = Buffer.create 8 in
  write_varint buf (if i.Ruid2.is_root then 1 else 0);
  write_varint buf i.Ruid2.global;
  write_varint buf i.Ruid2.local;
  Buffer.to_bytes buf

let decode_ruid2 bytes =
  let flag, pos = read_varint bytes ~pos:0 in
  let global, pos = read_varint bytes ~pos in
  let local, pos = read_varint bytes ~pos in
  if pos <> Bytes.length bytes then
    invalid_arg "Codec.decode_ruid2: trailing bytes";
  { Ruid2.global; local; is_root = flag = 1 }

let ruid2_size (i : Ruid2.id) =
  1 + varint_size i.Ruid2.global + varint_size i.Ruid2.local

(* Multilevel identifier: component count, top index, then per component
   the index with the root flag in its low bit. *)
let encode_mruid (i : Mruid.id) =
  let buf = Buffer.create 12 in
  write_varint buf (List.length i.Mruid.comps);
  write_varint buf i.Mruid.top;
  List.iter
    (fun c ->
      write_varint buf
        ((c.Mruid.index lsl 1) lor (if c.Mruid.is_root then 1 else 0)))
    i.Mruid.comps;
  Buffer.to_bytes buf

let decode_mruid bytes =
  let count, pos = read_varint bytes ~pos:0 in
  let top, pos = read_varint bytes ~pos in
  let rec comps pos n acc =
    if n = 0 then (List.rev acc, pos)
    else begin
      let v, pos = read_varint bytes ~pos in
      comps pos (n - 1)
        ({ Mruid.index = v lsr 1; is_root = v land 1 = 1 } :: acc)
    end
  in
  let comps, pos = comps pos count [] in
  if pos <> Bytes.length bytes then
    invalid_arg "Codec.decode_mruid: trailing bytes";
  { Mruid.top; comps }

let mruid_size (i : Mruid.id) =
  varint_size (List.length i.Mruid.comps)
  + varint_size i.Mruid.top
  + List.fold_left
      (fun acc c ->
        acc
        + varint_size
            ((c.Mruid.index lsl 1) lor (if c.Mruid.is_root then 1 else 0)))
      0 i.Mruid.comps

let bignat_size n =
  let bits = Bignum.Bignat.bit_length n in
  let payload = (bits + 6) / 7 in
  let payload = max 1 payload in
  varint_size payload + payload
