(* Streaming ingest: one SAX pass from a chunked feed straight to a
   numbered document.  The DOM is assembled incrementally from events (the
   source text is never materialized as a string), per-node statistics and
   — when the area-depth budget is known up front — the greedy cut are
   computed during the same pass (Frame.Cut_builder), and the numbering is
   produced by the ordinary enumeration over the finished frame.  The
   result is bit-identical to the read-string / parse / number round-trip
   (tested: sidecar and serialized XML byte-equal). *)

module Dom = Rxml.Dom
module Sax = Rxml.Sax

type stats = {
  nodes : int;  (* DOM nodes assembled, document node included *)
  elements : int;
  max_fanout : int;  (* maximal degree over the numbered tree *)
  max_depth : int;  (* maximal element nesting depth *)
}

type built = { doc : Dom.t; r2 : Ruid2.t; stats : stats }

let of_source ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth
    ?(adjust = true) ?(at = `Document) src =
  let doc = Dom.document () in
  (* Children collect in reverse per open node and attach with one bulk
     append at close — per-event [Dom.append_child] is O(degree) and makes
     wide elements quadratic. *)
  let stack = ref [ (doc, ref []) ] in
  let top () = match !stack with (t, _) :: _ -> t | [] -> assert false in
  let add n =
    match !stack with
    | (_, kids) :: _ -> kids := n :: !kids
    | [] -> assert false
  in
  let nodes = ref 1 and elements = ref 0 in
  let fanout_below = ref 1 in
  let depth = ref 0 and deepest = ref 0 in
  let builder =
    Option.map
      (fun d -> Frame.Cut_builder.create ?max_area_size ~max_area_depth:d ())
      max_area_depth
  in
  let enter n =
    Option.iter (fun b -> ignore (Frame.Cut_builder.enter b ~serial:n.Dom.serial)) builder
  and leave () = Option.iter Frame.Cut_builder.leave builder in
  (* With the numbering rooted at the document node the online cut walks
     every assembled node; rooted at the root element it must skip the
     document node and any top-level comments/PIs, which sit outside the
     numbered tree. *)
  let leaf_in_scope () = at = `Document || not (Dom.equal (top ()) doc) in
  if at = `Document then enter doc;
  Sax.iter_source ?keep_whitespace ?max_depth src ~f:(function
    | Sax.Start_element { tag; attrs } ->
      let e = Dom.element ~attrs tag in
      add e;
      incr nodes;
      incr elements;
      incr depth;
      if !depth > !deepest then deepest := !depth;
      enter e;
      stack := (e, ref []) :: !stack
    | Sax.End_element _ -> (
      match !stack with
      | (e, kids) :: rest ->
        Dom.append_children e (List.rev !kids);
        let d = List.length !kids in
        if d > !fanout_below then fanout_below := d;
        leave ();
        decr depth;
        stack := rest
      | [] -> assert false)
    | Sax.Text s ->
      let n = Dom.text s in
      add n;
      incr nodes;
      enter n;
      leave ()
    | Sax.Comment s ->
      let n = Dom.comment s in
      add n;
      incr nodes;
      if leaf_in_scope () then begin
        enter n;
        leave ()
      end
    | Sax.Pi (t, d) ->
      let n = Dom.pi t d in
      add n;
      incr nodes;
      if leaf_in_scope () then begin
        enter n;
        leave ()
      end);
  (match !stack with
  | [ (_, kids) ] -> Dom.append_children doc (List.rev !kids)
  | _ -> assert false);
  if at = `Document then leave ();
  let root = match at with `Document -> doc | `Root_element -> Dom.root_element doc in
  let max_fanout =
    match at with
    | `Document -> max !fanout_below (Dom.degree doc)
    | `Root_element -> !fanout_below
  in
  let r2 =
    match builder with
    | Some b ->
      let frame = Frame.Cut_builder.finish b ~root in
      if adjust then Frame.adjust_fanout frame;
      Ruid2.number_with_frame frame
    | None ->
      (* The depth budget defaults from the maximal fan-out, which the pass
         just measured — hand it to the ordinary partition so the cut needs
         no extra statistics sweep. *)
      Ruid2.number ?max_area_size
        ~max_area_depth:(Frame.default_area_depth ~max_fanout)
        ~adjust root
  in
  {
    doc;
    r2;
    stats =
      { nodes = !nodes; elements = !elements; max_fanout; max_depth = !deepest };
  }

let of_channel ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth
    ?adjust ?at ?chunk ic =
  of_source ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth ?adjust
    ?at
    (Sax.source_of_channel ?chunk ic)

let of_file ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth ?adjust
    ?at ?chunk path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  of_channel ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth ?adjust
    ?at ?chunk ic

let of_string ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth
    ?adjust ?at src =
  of_source ?keep_whitespace ?max_depth ?max_area_size ?max_area_depth ?adjust
    ?at
    (Sax.source_of_string src)
