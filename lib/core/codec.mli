(** Wire encoding of identifiers.

    Identifier size is a first-order storage cost for a numbering scheme —
    every secondary index and every edge record carries labels — and one of
    the paper's complaints about the original UID is precisely that its
    values outgrow fixed-width columns.  This module provides a compact
    LEB128-style variable-length encoding for ruid identifiers (and size
    accounting for the other schemes' label shapes), with exact decode
    round-trips. *)

val varint_size : int -> int
(** Bytes of the LEB128 encoding of a non-negative integer. *)

val write_varint : Buffer.t -> int -> unit
val read_varint : bytes -> pos:int -> int * int
(** [(value, next position)].  @raise Invalid_argument on truncated input,
    and on over-long encodings whose value would not fit a native [int]
    (continuation past the ninth byte, or bits above bit 62). *)

val encode_ruid2 : Ruid2.id -> bytes
val decode_ruid2 : bytes -> Ruid2.id
(** @raise Invalid_argument on malformed input. *)

val ruid2_size : Ruid2.id -> int

val encode_mruid : Mruid.id -> bytes
val decode_mruid : bytes -> Mruid.id
val mruid_size : Mruid.id -> int

val bignat_size : Bignum.Bignat.t -> int
(** Bytes of a length-prefixed base-128 encoding of a bignum (the original
    UID's storage shape). *)
