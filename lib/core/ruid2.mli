(** The 2-level recursive UID numbering scheme (Sections 2.1-2.3) with the
    axis routines of Section 3.5 and the structural-update behaviour of
    Section 3.2.

    A node identifier is the triple of Definition 3: global index (the
    kappa-ary UID of its area in the frame), local index (its UID inside an
    area) and root indicator.  For a non-root node the pair is
    (area, index inside the area); for an area root the global index is the
    index of {e its own} area while the local index is its leaf index in the
    {e upper} area.  The identifier of the whole tree's root is
    [(1, 1, true)].

    The structure keeps the paper's global parameters — kappa and the table
    K — plus the node/identifier maps that play the role of the stored data.
    Every derivation routine ([rparent], [rchildren], relations) touches only
    kappa and K: no tree access. *)

type id = { global : int; local : int; is_root : bool }

val pp_id : Format.formatter -> id -> unit
val id_to_string : id -> string
val id_equal : id -> id -> bool
val id_compare : id -> id -> int
(** Arbitrary total order for use as a map key (not document order). *)

type t

(** {1 Construction} *)

val number :
  ?max_area_size:int -> ?max_area_depth:int -> ?adjust:bool -> Rxml.Dom.t -> t
(** Partition (see {!Frame.partition}) and enumerate the tree.
    @raise Uid.Overflow if the frame enumeration overflows native-int UIDs
    (a very deep branching frame) — such documents need more levels: see
    {!Mruid}. *)

val number_with_frame : Frame.t -> t
(** Enumerate with an explicit partition (tests, ablations). *)

val restore :
  kappa:int -> ktable:Ktable.t -> ids:id list -> Rxml.Dom.t -> t
(** Rebuild a numbering from persisted state: [ids] lists the identifier of
    every node of the tree in document order.  The partition is recovered
    from the root indicators.  Used by {!Persist.load}.
    @raise Invalid_argument if the identifier list does not match the tree
    or is internally inconsistent (checked via {!check_consistency}). *)

val clone : t -> t
(** Independent deep copy: a fresh DOM clone with every identifier, area
    table and frame transported onto it (the persistent K table is
    shared).  Identifiers are bit-identical to the source; mutating either
    copy never affects the other.  O(nodes) of pointer work with no
    serialization round-trip or consistency sweep — the fast path behind
    incremental snapshot publication in the server. *)

(** {1 Global parameters (what must sit in main memory)} *)

val kappa : t -> int
val ktable : t -> Ktable.t
val frame : t -> Frame.t
val root : t -> Rxml.Dom.t
val area_count : t -> int

val aux_memory_words : t -> int
(** Words of main memory the derivation routines need: K plus kappa. *)

(** {1 Identifiers} *)

val id_of_node : t -> Rxml.Dom.t -> id
(** @raise Not_found for a node outside the numbered tree. *)

val node_of_id : t -> id -> Rxml.Dom.t option

val area_root_node : t -> int -> Rxml.Dom.t option
(** The node rooting the area with the given global index. *)

val global_of_area : t -> Rxml.Dom.t -> int option
(** The global index of the area rooted at the given node, if it is an
    area root. *)

val all_nodes : t -> Rxml.Dom.t list
(** All numbered nodes in document order. *)

val max_local_bits : t -> int
(** Bits of the largest global or local index in use — identifier
    magnitude, for experiment E1. *)

val total_label_bits : t -> int
(** Sum over all nodes of the identifier size in bits (global + local +
    root flag). *)

(** {1 Derivation routines (identifier arithmetic over kappa and K only)} *)

val rparent : t -> id -> id option
(** The algorithm of Fig. 6.  [None] on the tree root. *)

val rancestors : t -> id -> id list
(** Strict ancestors by iterated {!rparent}, nearest first. *)

val rlevel : t -> id -> int

val possible_children_ids : t -> id -> id list
(** The candidate list L of routine [rchildren] (Section 3.5), from K alone:
    identifiers every child of the node {e would} have, with correct root
    indicators; includes slots not occupied by real nodes. *)

val relationship : t -> id -> id -> Rel.t
(** Full structural relation of two identifiers, using kappa, K and
    identifier arithmetic only (Lemmas 1-3). *)

val doc_order : t -> id -> id -> int

(** {1 Axes (actual node sets, in document order)} *)

val parent_node : t -> Rxml.Dom.t -> Rxml.Dom.t option
val ancestors : t -> Rxml.Dom.t -> Rxml.Dom.t list
val children : t -> Rxml.Dom.t -> Rxml.Dom.t list

val descendants : t -> Rxml.Dom.t -> Rxml.Dom.t list

(** Like {!descendants} but in unspecified order and asymptotically
    cheaper: one virtual-ancestry test per member of the context node's own
    area, and descendant areas are swallowed whole. *)
val descendants_unordered : t -> Rxml.Dom.t -> Rxml.Dom.t list
val following_siblings : t -> Rxml.Dom.t -> Rxml.Dom.t list
val preceding_siblings : t -> Rxml.Dom.t -> Rxml.Dom.t list
val preceding : t -> Rxml.Dom.t -> Rxml.Dom.t list
val following : t -> Rxml.Dom.t -> Rxml.Dom.t list

(** {1 Structural update (Section 3.2)} *)

val insert_node : ?slack:int -> t -> parent:Rxml.Dom.t -> pos:int -> Rxml.Dom.t -> int
(** Insert a fresh leaf as the [pos]-th child and re-enumerate the single
    affected UID-local area, enlarging its fan-out when the parent's degree
    outgrows it ([slack] adds headroom on such growth, default 0).  Returns
    the number of {e pre-existing} nodes whose identifier changed. *)

val delete_subtree : t -> Rxml.Dom.t -> int
(** Cascading deletion (Section 3.2): remove the node and all descendants,
    drop the K rows of any areas inside, re-enumerate only the area where
    the deleted root was enumerated.  Returns the number of surviving nodes
    whose identifier changed.
    @raise Invalid_argument when asked to delete the tree root. *)

val check_consistency : t -> unit
(** Verify the identifier maps against the DOM: every node labeled, ids
    unique, [rparent] agreeing with the DOM parent, K well-formed.
    @raise Failure on the first violation. *)

val check : t -> unit
(** Deep invariant checker — {!check_consistency} plus: the K table and the
    area set agree row by row (root identifiers, leaf indices, fan-outs at
    least 1), every occupied enumeration slot is reachable from its area
    root through occupied parent slots, no node's degree exceeds the
    fan-out of the area enumerating its children, and identifier
    comparison ranks all nodes exactly in document order.  This is the
    postcondition of crash recovery ({!Persist} + the storage-layer
    journal).
    @raise Failure on the first violation. *)

val enumeration_area : t -> id -> int
(** The global index of the area in which the identifier is {e enumerated}:
    the identifier's own area for a non-root, the upper area for an area
    root (the tree root is enumerated in area 1).  Structural updates
    renumber exactly one enumeration area (Section 3.2), so this is the key
    for deciding whether an update could have touched an identifier. *)
