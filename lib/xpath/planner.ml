module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module G = Rsummary.Dataguide

(* ------------------------------------------------------------------ *)
(* Plan algebra                                                        *)
(* ------------------------------------------------------------------ *)

type edge = Child | Descendant

let edge_name = function Child -> "child" | Descendant -> "descendant"

(* Physical operator joining one chain position to the next:
   - Probe: per-node parent/ancestor pointer work (hash-deduplicated);
   - Merge: linear sweep of both rank-ordered sides (stack-tree up,
     max-extent-end down);
   - Range: binary-search the posting array per upper extent (down only,
     lower side must be a whole posting list);
   - Walk: generate children of each upper and test the tag (down/child
     only). *)
type jmethod = Probe | Merge | Range | Walk

let jmethod_name = function
  | Probe -> "probe"
  | Merge -> "merge"
  | Range -> "range"
  | Walk -> "walk"

type cstep = { cedge : edge; ctag : string }

type chain = {
  cabs : bool;
  csteps : cstep array;
  card : int array;  (* posting cardinality per position, at plan time *)
  est : int array;  (* estimated matches per position; -1 when unknown *)
  pivot : int;  (* position whose postings seed the up phase *)
  up_meth : jmethod array;  (* method producing S_i, for i < pivot *)
  down_meth : jmethod array;  (* method producing D_i; slot 0 = anchor *)
  ccost : float;
}

type plan =
  | Empty of string  (* guide refutation: why no node can match *)
  | Chain of chain
  | TwigJoin of { twig : Twig.t; tabs : bool; t_est : int; tcost : float }
  | Fallback of Ast.union_path

type kind = [ `Chain | `Twig | `Engine | `Pruned ]

let kind = function
  | Empty _ -> `Pruned
  | Chain _ -> `Chain
  | TwigJoin _ -> `Twig
  | Fallback _ -> `Engine

let kind_name = function
  | `Chain -> "chain-join"
  | `Twig -> "twig-join"
  | `Engine -> "engine-fallback"
  | `Pruned -> "guide-pruned"

(* ------------------------------------------------------------------ *)
(* Shared state: plan cache + per-strategy counters                    *)
(* ------------------------------------------------------------------ *)

type counters = {
  chain_runs : int Atomic.t;
  twig_runs : int Atomic.t;
  engine_runs : int Atomic.t;
  pruned_runs : int Atomic.t;
}

type shared = { cache : plan Plan_cache.t option; counters : counters }

type stats = {
  chain : int;
  twig : int;
  engine : int;
  pruned : int;
  cache_stats : Plan_cache.stats option;
}

let make_shared ?(plan_cache = 256) () =
  {
    cache =
      (if plan_cache <= 0 then None
       else Some (Plan_cache.create ~capacity:plan_cache));
    counters =
      {
        chain_runs = Atomic.make 0;
        twig_runs = Atomic.make 0;
        engine_runs = Atomic.make 0;
        pruned_runs = Atomic.make 0;
      };
  }

let shared_stats sh =
  {
    chain = Atomic.get sh.counters.chain_runs;
    twig = Atomic.get sh.counters.twig_runs;
    engine = Atomic.get sh.counters.engine_runs;
    pruned = Atomic.get sh.counters.pruned_runs;
    cache_stats = Option.map Plan_cache.stats sh.cache;
  }

(* ------------------------------------------------------------------ *)
(* Planner instance                                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  r2 : R2.t;
  index : Doc_index.t;
  tags : Tag_index.t;
  engine : Eval.engine;
  guide : G.t;
  doc_rooted : bool;  (* numbering root is a document node, not an element *)
  shared : shared;
}

let create ?shared r2 =
  let shared = match shared with Some s -> s | None -> make_shared () in
  let index = Doc_index.build r2 in
  let root = R2.root r2 in
  {
    r2;
    index;
    tags = Tag_index.create r2;
    engine = Engine_ruid.create ~index r2;
    guide = G.build root;
    doc_rooted = not (Dom.is_element root);
    shared;
  }

let engine t = t.engine
let shared_of t = t.shared
let guide t = t.guide
let guide_fingerprint t = G.fingerprint t.guide

type delta = Add of string list | Remove of string list

let advance prev r2 ~deltas =
  let guide =
    let g = G.clone prev.guide in
    let consistent =
      List.for_all
        (function
          | Add p ->
            G.add_path g p;
            true
          | Remove p -> G.remove_path g p)
        deltas
    in
    if consistent then begin
      G.prune g;
      g
    end
    else G.build (R2.root r2)  (* deltas disagree with the guide: rebuild *)
  in
  let index = Doc_index.build r2 in
  let root = R2.root r2 in
  {
    r2;
    index;
    tags = Tag_index.create r2;
    engine = Engine_ruid.create ~index r2;
    guide;
    doc_rooted = not (Dom.is_element root);
    shared = prev.shared;
  }

let rooted t = function None -> true | Some c -> c == R2.root t.r2

(* ------------------------------------------------------------------ *)
(* Guide reasoning: frontiers, satisfiability, exact path counts       *)
(* ------------------------------------------------------------------ *)

(* Absolute paths (and, when the context is the root, relative ones too)
   anchor where the evaluator anchors them: at the document node when the
   numbering covers one, else at the root element.  The guide's virtual
   root plays the document node; an element-rooted tree starts one level
   down. *)
let start_frontier t =
  let root = G.cursor t.guide in
  if t.doc_rooted then [ root ] else G.cursor_children root

let exists_desc pred c =
  let rec go c =
    List.exists (fun ch -> pred ch || go ch) (G.cursor_children c)
  in
  go c

let dedup_cursors l =
  List.rev
    (List.fold_left
       (fun acc c -> if List.memq c acc then acc else c :: acc)
       [] l)

let gstep frontier { cedge; ctag } =
  let matching c = G.cursor_label c = ctag in
  let nexts =
    List.concat_map
      (fun c ->
        match cedge with
        | Child -> List.filter matching (G.cursor_children c)
        | Descendant ->
          let acc = ref [] in
          let rec go c =
            List.iter
              (fun ch ->
                if matching ch then acc := ch :: !acc;
                go ch)
              (G.cursor_children c)
          in
          go c;
          !acc)
      frontier
  in
  dedup_cursors nexts

(* Can the chain suffix steps.(i..) be realized strictly below cursor [c]? *)
let rec has_suffix steps n i c =
  if i >= n then true
  else
    let { cedge; ctag } = steps.(i) in
    let pred ch = G.cursor_label ch = ctag && has_suffix steps n (i + 1) ch in
    match cedge with
    | Child -> List.exists pred (G.cursor_children c)
    | Descendant -> exists_desc pred c

let all_cursors t =
  let acc = ref [] in
  let rec go c =
    List.iter
      (fun ch ->
        acc := ch :: !acc;
        go ch)
      (G.cursor_children c)
  in
  go (G.cursor t.guide);
  !acc

let sum_counts frontier =
  List.fold_left (fun acc c -> acc + G.cursor_count c) 0 frontier

(* Twig satisfiability against the guide: does any label configuration of
   the document realize the whole pattern (spine and branches) from the
   root anchor?  Purely structural, so sound under count drift. *)
let twig_sat t (pat : Twig.pattern) =
  let rec matches c (p : Twig.pattern) =
    G.cursor_label c = p.Twig.tag
    && List.for_all (connect c) p.Twig.branches
    && (match p.Twig.spine with None -> true | Some sp -> connect c sp)
  and connect c (p : Twig.pattern) =
    let pred ch = matches ch p in
    match p.Twig.edge with
    | Twig.Child -> List.exists pred (G.cursor_children c)
    | Twig.Descendant -> exists_desc pred c
  in
  List.exists (fun st -> connect st pat) (start_frontier t)

(* ------------------------------------------------------------------ *)
(* Chain extraction from the AST                                       *)
(* ------------------------------------------------------------------ *)

(* The maximal prefix of child/descendant name-test steps, predicates
   ignored — every result node must descend through these labels, so an
   unrealizable prefix refutes the whole path.  [pure] when the entire
   path is the chain and carries no predicates: only then can the chain
   plan compute the answer by itself. *)
let chain_of_steps steps =
  let rec go acc pure = function
    | [] -> (List.rev acc, pure)
    | { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
      :: { Ast.axis = Ast.Child; test = Ast.Name tag; preds }
      :: rest ->
      go ({ cedge = Descendant; ctag = tag } :: acc) (pure && preds = []) rest
    | { Ast.axis = Ast.Child; test = Ast.Name tag; preds } :: rest ->
      go ({ cedge = Child; ctag = tag } :: acc) (pure && preds = []) rest
    | { Ast.axis = Ast.Descendant; test = Ast.Name tag; preds } :: rest ->
      go ({ cedge = Descendant; ctag = tag } :: acc) (pure && preds = []) rest
    | _ :: _ -> (List.rev acc, false)
  in
  go [] true steps

let rec spine_steps (p : Twig.pattern) =
  {
    cedge = (match p.Twig.edge with Twig.Child -> Child | Twig.Descendant -> Descendant);
    ctag = p.Twig.tag;
  }
  :: (match p.Twig.spine with None -> [] | Some sp -> spine_steps sp)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* Unit: one pointer/arithmetic touch.  [c_anc]/[c_fan] charge pointer
   walks per node (average depth / fanout), [c_interp] the evaluator's
   interpretive overhead per generated node (axis dispatch, node tests,
   per-step sort-merge) relative to a compiled join loop. *)
let c_anc = 8.
let c_fan = 8.
let c_interp = 4.
let c_pred = 12.

let f i = float_of_int (max 1 i)
let sortc k = if k <= 1. then 0. else k *. Float.log2 (k +. 1.)

let up_cost edge ~u ~l =
  match edge with
  | Child -> (Probe, l +. sortc l)
  | Descendant ->
    let merge = u +. l and probe = (l *. c_anc) +. sortc l in
    if probe < merge then (Probe, probe) else (Merge, merge)

let down_cost edge ~u ~l ~out ~lower_is_postings =
  match edge with
  | Child ->
    let probe = u +. l and walk = (u *. c_fan) +. sortc out in
    if walk < probe then (Walk, walk) else (Probe, probe)
  | Descendant ->
    let merge = u +. l in
    if lower_is_postings then begin
      let range = (u *. 2. *. Float.log2 (l +. 2.)) +. out in
      if range < merge then (Range, range) else (Merge, merge)
    end
    else (Merge, merge)

(* What the fallback evaluator would pay, from the original AST. *)
let engine_cost_path t (path : Ast.path) =
  let total = float_of_int (Doc_index.size t.index) in
  let rec go ctx = function
    | [] -> 0.
    | (s : Ast.step) :: rest ->
      let card =
        match s.test with
        | Ast.Name tag -> float_of_int (Doc_index.cardinality t.index tag)
        | _ -> total /. 2.
      in
      let out =
        match s.axis with
        | Ast.Child | Ast.Attribute | Ast.Parent | Ast.Self ->
          Float.min card (ctx *. c_fan)
        | Ast.Descendant | Ast.Descendant_or_self -> Float.max card ctx
        | _ -> Float.min total (Float.max card ctx)
      in
      let axis_cost =
        match s.axis with
        | Ast.Descendant | Ast.Descendant_or_self | Ast.Following
        | Ast.Preceding ->
          (ctx *. 2. *. Float.log2 (card +. 2.)) +. (out *. c_interp)
        | _ -> ctx *. c_fan *. c_interp
      in
      let pred_cost = float_of_int (List.length s.preds) *. c_pred *. out in
      axis_cost +. pred_cost +. go out rest
  in
  go 1. path.Ast.steps

let engine_cost_union t u =
  List.fold_left (fun acc p -> acc +. engine_cost_path t p) 0. u

(* Merge-based semijoins: bottom-up, every pattern edge is one linear
   pass over the two posting lists it joins (parent-hash for child
   edges, stack-tree for descendant edges); top-down, each spine edge
   pays the same once more.  Charged on raw cardinalities — an upper
   bound, since upstream restrictions only shrink the inputs. *)
let twig_cost t tw =
  let card tag = f (Doc_index.cardinality t.index tag) in
  let rec go (p : Twig.pattern) =
    let kids = p.Twig.branches @ Option.to_list p.Twig.spine in
    let up =
      List.fold_left
        (fun acc (c : Twig.pattern) ->
          acc +. card p.Twig.tag +. card c.Twig.tag)
        0. kids
    in
    let down =
      match p.Twig.spine with
      | Some sp -> card p.Twig.tag +. card sp.Twig.tag
      | None -> 0.
    in
    up +. down +. List.fold_left (fun acc c -> acc +. go c) 0. kids
  in
  go (Twig.pattern tw)

(* ------------------------------------------------------------------ *)
(* Chain planning                                                      *)
(* ------------------------------------------------------------------ *)

(* Enumerate pivots: seed the join pipeline from each position's posting
   list, restrict upward to the anchor, then propagate downward; keep the
   cheapest.  Returns [None] when the engine estimate beats every pivot. *)
let plan_chain t ~use_guide ~absolute (steps : cstep list) ~eng_cost =
  let csteps = Array.of_list steps in
  let n = Array.length csteps in
  let card =
    Array.map (fun s -> Doc_index.cardinality t.index s.ctag) csteps
  in
  (* Guide estimates: [sfx.(i)] — nodes labeled t_i able to complete the
     chain below themselves (up-phase survivor estimate); [est.(i)] —
     nodes additionally reachable through the chain prefix (down-phase
     output estimate; exact at the output position of a rooted pure
     chain). *)
  let sfx, est =
    if use_guide then begin
      let all = all_cursors t in
      let sfx =
        Array.init n (fun i ->
            sum_counts
              (List.filter
                 (fun c ->
                   G.cursor_label c = csteps.(i).ctag
                   && has_suffix csteps n (i + 1) c)
                 all))
      in
      let frontier = ref (start_frontier t) in
      let est =
        Array.init n (fun i ->
            frontier := gstep !frontier csteps.(i);
            sum_counts (List.filter (has_suffix csteps n (i + 1)) !frontier))
      in
      (sfx, est)
    end
    else begin
      (* No guide for this anchoring: fall back to posting cardinalities
         (a chain position can never out-produce its rarest tag). *)
      let sfx = Array.make n 0 and est = Array.make n 0 in
      let acc = ref max_int in
      for i = n - 1 downto 0 do
        acc := min !acc card.(i);
        sfx.(i) <- !acc
      done;
      acc := max_int;
      for i = 0 to n - 1 do
        acc := min !acc card.(i);
        est.(i) <- !acc
      done;
      (sfx, est)
    end
  in
  let best = ref None in
  for pivot = 0 to n - 1 do
    let up_meth = Array.make n Probe in
    let down_meth = Array.make n Merge in
    let cost = ref (f card.(pivot)) in
    (* up phase: restrict positions pivot-1 .. 0 *)
    let lower = ref (f card.(pivot)) in
    for i = pivot - 1 downto 0 do
      let m, c = up_cost csteps.(i + 1).cedge ~u:(f card.(i)) ~l:!lower in
      up_meth.(i) <- m;
      cost := !cost +. c;
      lower := f (min sfx.(i) card.(i))
    done;
    (* anchor: one upper (the root or the context) against S_0 *)
    let m, c =
      down_cost csteps.(0).cedge ~u:1.
        ~l:(f (if pivot = 0 then card.(0) else min sfx.(0) card.(0)))
        ~out:(f est.(0)) ~lower_is_postings:(pivot = 0)
    in
    down_meth.(0) <- m;
    cost := !cost +. c;
    (* down phase: propagate D_1 .. D_{n-1} *)
    for i = 1 to n - 1 do
      let lower_is_postings = i >= pivot in
      let l =
        if lower_is_postings then f card.(i) else f (min sfx.(i) card.(i))
      in
      let m, c =
        down_cost csteps.(i).cedge ~u:(f est.(i - 1)) ~l ~out:(f est.(i))
          ~lower_is_postings
      in
      down_meth.(i) <- m;
      cost := !cost +. c
    done;
    match !best with
    | Some (_, bc) when bc <= !cost -> ()
    | _ -> best := Some ((pivot, up_meth, down_meth), !cost)
  done;
  match !best with
  | None -> None
  | Some ((pivot, up_meth, down_meth), cost) ->
    if eng_cost < cost then None
    else
      Some
        (Chain
           {
             cabs = absolute;
             csteps;
             card;
             est;
             pivot;
             up_meth;
             down_meth;
             ccost = cost;
           })

(* ------------------------------------------------------------------ *)
(* Whole-path and union planning                                       *)
(* ------------------------------------------------------------------ *)

let chain_prefix_refuted t (path : Ast.path) =
  let steps, _ = chain_of_steps path.Ast.steps in
  steps <> []
  &&
  let rec go frontier = function
    | [] -> false
    | s :: rest -> (
      match gstep frontier s with [] -> true | fr -> go fr rest)
  in
  go (start_frontier t) steps

let path_refuted t (path : Ast.path) =
  chain_prefix_refuted t path
  ||
  match Twig.of_xpath path with
  | Some tw -> not (twig_sat t (Twig.pattern tw))
  | None -> false

let est_of_steps t ~use_guide steps =
  if not use_guide then -1
  else
    sum_counts
      (List.fold_left (fun fr s -> gstep fr s) (start_frontier t) steps)

let plan_path t ~use_guide (path : Ast.path) : plan =
  if use_guide && path_refuted t path then
    Empty
      (Printf.sprintf "no label path of the document can satisfy %s"
         (Ast.path_to_string path))
  else
    let steps, pure = chain_of_steps path.Ast.steps in
    let eng_cost = engine_cost_union t [ path ] in
    let chain_plan =
      if pure && steps <> [] then
        plan_chain t ~use_guide ~absolute:path.Ast.absolute steps ~eng_cost
      else None
    in
    match chain_plan with
    | Some p -> p
    | None -> (
      match Twig.of_xpath path with
      | Some tw ->
        let tc = twig_cost t tw in
        if tc < eng_cost then
          TwigJoin
            {
              twig = tw;
              tabs = path.Ast.absolute;
              t_est = est_of_steps t ~use_guide (spine_steps (Twig.pattern tw));
              tcost = tc;
            }
        else Fallback [ path ]
      | None -> Fallback [ path ])

let plan_union t ~use_guide (u : Ast.union_path) : plan =
  match u with
  | [ p ] -> plan_path t ~use_guide p
  | ps ->
    if use_guide then begin
      (* Drop provably-empty branches; engine-evaluate the survivors. *)
      match List.filter (fun p -> not (path_refuted t p)) ps with
      | [] ->
        Empty "no label path of the document can satisfy any union branch"
      | alive -> Fallback alive
    end
    else Fallback ps

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

type cache_outcome = Hit | Miss | Bypass

let cache_outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

(* Rooted plans are cacheable: the key pairs the guide's structural
   fingerprint with the canonical query text, so value/count drift keeps
   plans live and any structural change orphans them.  Non-root contexts
   plan fresh (cheap — the documents behind ad-hoc contexts are planned
   without the guide anyway). *)
let plan_for t ?context (u : Ast.union_path) =
  let use_guide = rooted t context in
  if not use_guide then (plan_union t ~use_guide u, Bypass)
  else
    match t.shared.cache with
    | None -> (plan_union t ~use_guide u, Bypass)
    | Some cache -> (
      match Xparser.canonical_opt u with
      | None -> (plan_union t ~use_guide u, Bypass)
      | Some key -> (
        let fingerprint = G.fingerprint t.guide in
        match Plan_cache.find cache ~fingerprint key with
        | Some p -> (p, Hit)
        | None ->
          let p = plan_union t ~use_guide u in
          Plan_cache.add cache ~fingerprint key p;
          (p, Miss)))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type trace_row = {
  row_op : string;
  row_est : int;  (* -1: no estimate *)
  row_actual : int;
  row_ms : float;
}

let rank t n = Doc_index.rank t.index n
let by_rank t = fun a b -> compare (rank t a) (rank t b)

(* S_i survivors going up: candidates at position i with a qualifying
   child in [lows]. *)
let up_child t ~tag lows =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun low ->
      match low.Dom.parent with
      | Some p when Dom.is_element p && Dom.tag p = tag ->
        let r = rank t p in
        if not (Hashtbl.mem seen r) then begin
          Hashtbl.replace seen r ();
          acc := p :: !acc
        end
      | _ -> ())
    lows;
  List.sort (by_rank t) !acc

let up_desc_probe t ~tag lows =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun low ->
      List.iter
        (fun a ->
          if Dom.is_element a && Dom.tag a = tag then begin
            let r = rank t a in
            if not (Hashtbl.mem seen r) then begin
              Hashtbl.replace seen r ();
              acc := a :: !acc
            end
          end)
        (Dom.ancestors low))
    lows;
  List.sort (by_rank t) !acc

(* Stack-tree semijoin: keep the uppers (rank order) that contain at
   least one node of [lows] (rank order).  The stack holds the
   currently-open nested uppers; when a lower lands, every open upper
   contains it — mark top-down, stopping at the first already-marked
   entry (its ancestors were marked with it).  Amortized
   O(|uppers| + |lows|). *)
let keep_desc t ~uppers lows =
  let arr = Array.of_list uppers in
  let m = Array.length arr in
  let kept = Hashtbl.create 64 in
  let stack = ref [] in  (* (rank, extent end, marked ref), innermost first *)
  let i = ref 0 in
  List.iter
    (fun low ->
      let dr = rank t low in
      while !i < m && rank t arr.(!i) < dr do
        let r, e = Doc_index.extent t.index arr.(!i) in
        (* entries that ended before this upper starts are dead *)
        stack := List.filter (fun (_, e', _) -> e' >= r) !stack;
        stack := (r, e, ref false) :: !stack;
        incr i
      done;
      stack := List.filter (fun (_, e, _) -> e >= dr) !stack;
      (let rec mark = function
         | (r, _, m) :: rest when not !m ->
           m := true;
           Hashtbl.replace kept r ();
           mark rest
         | _ -> ()
       in
       mark !stack))
    lows;
  List.filter (fun u -> Hashtbl.mem kept (rank t u)) uppers

let up_desc_merge t ~tag lows =
  keep_desc t ~uppers:(Array.to_list (Doc_index.postings t.index tag)) lows

(* Keep the uppers with at least one child in [lows]: hash the lows'
   parent ranks, one membership test per upper. *)
let keep_child t ~uppers lows =
  let parents = Hashtbl.create 64 in
  List.iter
    (fun low ->
      match low.Dom.parent with
      | Some p -> (
        match Doc_index.rank_opt t.index p with
        | Some r -> Hashtbl.replace parents r ()
        | None -> ())
      | None -> ())
    lows;
  List.filter (fun u -> Hashtbl.mem parents (rank t u)) uppers

(* D_i going down: lowers with a qualifying upper above them. *)
let down_child_probe t ~uppers lows =
  let tbl = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace tbl (rank t u) ()) uppers;
  List.filter
    (fun low ->
      match low.Dom.parent with
      | Some p -> (
        match Doc_index.rank_opt t.index p with
        | Some r -> Hashtbl.mem tbl r
        | None -> false)
      | None -> false)
    lows

let down_child_walk t ~uppers ~tag =
  List.concat_map
    (fun u ->
      List.filter (fun c -> Dom.is_element c && Dom.tag c = tag) u.Dom.children)
    uppers
  |> List.sort (by_rank t)

let down_desc_merge t ~uppers lows =
  let rec go maxend ups lows acc =
    match lows with
    | [] -> List.rev acc
    | d :: drest ->
      let dr = rank t d in
      let rec adv maxend ups =
        match ups with
        | u :: urest when rank t u < dr ->
          let _, e = Doc_index.extent t.index u in
          adv (max maxend e) urest
        | _ -> (maxend, ups)
      in
      let maxend, ups = adv maxend ups in
      go maxend ups drest (if dr <= maxend then d :: acc else acc)
  in
  go (-1) uppers lows []

let down_desc_range t ~uppers ~tag =
  let arr = Doc_index.postings t.index tag in
  let m = Array.length arr in
  if m = 0 then []
  else begin
    let rank_at i = rank t arr.(i) in
    let lower_bound target =
      let lo = ref 0 and hi = ref m in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if rank_at mid < target then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let marked = Bytes.make m '\000' in
    let minlo = ref m and maxhi = ref (-1) in
    List.iter
      (fun u ->
        let r, e = Doc_index.extent t.index u in
        let lo = lower_bound (r + 1) in
        let hi = lower_bound (e + 1) - 1 in
        if lo <= hi then begin
          if lo < !minlo then minlo := lo;
          if hi > !maxhi then maxhi := hi;
          Bytes.fill marked lo (hi - lo + 1) '\001'
        end)
      uppers;
    let acc = ref [] in
    for i = !maxhi downto !minlo do
      if Bytes.get marked i = '\001' then acc := arr.(i) :: !acc
    done;
    !acc
  end

let now_ms () = Unix.gettimeofday () *. 1000.

let run_chain t ?context ch ~trace =
  let n = Array.length ch.csteps in
  let record op est actual t0 =
    match trace with
    | None -> ()
    | Some rows ->
      rows :=
        { row_op = op; row_est = est; row_actual = actual;
          row_ms = now_ms () -. t0 }
        :: !rows
  in
  let postings i = Array.to_list (Doc_index.postings t.index ch.csteps.(i).ctag) in
  let start =
    match context with
    | Some c when not ch.cabs -> c
    | _ -> R2.root t.r2
  in
  (* up phase *)
  let s = Array.make n [] in
  let t0 = now_ms () in
  s.(ch.pivot) <- postings ch.pivot;
  record
    (Printf.sprintf "scan postings(%s)" ch.csteps.(ch.pivot).ctag)
    ch.card.(ch.pivot)
    (List.length s.(ch.pivot))
    t0;
  for i = ch.pivot - 1 downto 0 do
    let t0 = now_ms () in
    let edge = ch.csteps.(i + 1).cedge in
    let tag = ch.csteps.(i).ctag in
    let meth = ch.up_meth.(i) in
    s.(i) <-
      (match (edge, meth) with
      | Child, _ -> up_child t ~tag s.(i + 1)
      | Descendant, Merge -> up_desc_merge t ~tag s.(i + 1)
      | Descendant, _ -> up_desc_probe t ~tag s.(i + 1));
    record
      (Printf.sprintf "up-join %s::%s (%s)" (edge_name edge) tag
         (jmethod_name (match edge with Child -> Probe | Descendant -> meth)))
      (-1)
      (List.length s.(i))
      t0
  done;
  (* anchor D_0 at the start node *)
  let t0 = now_ms () in
  let d0 =
    let e0 = ch.csteps.(0).cedge in
    if e0 = Descendant && start == R2.root t.r2 && t.doc_rooted then
      (* every element strictly descends from the document node *)
      s.(0)
    else
      match e0 with
      | Child -> down_child_probe t ~uppers:[ start ] s.(0)
      | Descendant -> down_desc_merge t ~uppers:[ start ] s.(0)
  in
  record
    (Printf.sprintf "anchor %s::%s" (edge_name ch.csteps.(0).cedge)
       ch.csteps.(0).ctag)
    ch.est.(0) (List.length d0) t0;
  (* down phase *)
  let d = ref d0 in
  for i = 1 to n - 1 do
    let t0 = now_ms () in
    let edge = ch.csteps.(i).cedge and tag = ch.csteps.(i).ctag in
    let lows () = if i <= ch.pivot then s.(i) else postings i in
    let meth = ch.down_meth.(i) in
    (d :=
       match (edge, meth) with
       | Child, Walk -> down_child_walk t ~uppers:!d ~tag
       | Child, _ -> down_child_probe t ~uppers:!d (lows ())
       | Descendant, Range -> down_desc_range t ~uppers:!d ~tag
       | Descendant, _ -> down_desc_merge t ~uppers:!d (lows ()));
    record
      (Printf.sprintf "down-join %s::%s (%s)" (edge_name edge) tag
         (jmethod_name meth))
      ch.est.(i) (List.length !d) t0
  done;
  !d

(* Native twig execution: the same posting-array joins as chains,
   arranged over the pattern tree.  Bottom-up, [solve] restricts each
   pattern node's postings to candidates that can embed everything below
   them — each branch and the spine continuation are one semijoin
   (parent-hash for child edges, stack-tree for descendant edges).
   Top-down, matches propagate from the anchor along the spine only;
   branches are existential and were fully discharged going up.  Both
   phases preserve rank order, so the output is in document order. *)
type solved = {
  s_nodes : Dom.t list;
  s_spine : (Twig.pattern * solved) option;
}

let run_twig t ?context ~trace ~tabs ~t_est tw =
  let record op est actual t0 =
    match trace with
    | None -> ()
    | Some rows ->
      rows :=
        { row_op = op; row_est = est; row_actual = actual;
          row_ms = now_ms () -. t0 }
        :: !rows
  in
  let rec solve (p : Twig.pattern) =
    let below =
      List.map (fun b -> (b, solve b)) p.Twig.branches
      @ (match p.Twig.spine with Some sp -> [ (sp, solve sp) ] | None -> [])
    in
    let t0 = now_ms () in
    let cands =
      List.fold_left
        (fun uppers ((c : Twig.pattern), s) ->
          match c.Twig.edge with
          | Twig.Child -> keep_child t ~uppers s.s_nodes
          | Twig.Descendant -> keep_desc t ~uppers s.s_nodes)
        (Array.to_list (Doc_index.postings t.index p.Twig.tag))
        below
    in
    record
      (Printf.sprintf "twig-up %s [%d joins]" p.Twig.tag (List.length below))
      (Doc_index.cardinality t.index p.Twig.tag)
      (List.length cands) t0;
    {
      s_nodes = cands;
      s_spine =
        (match p.Twig.spine with
        | Some sp -> Some (sp, List.assq sp below)
        | None -> None);
    }
  in
  let pat = Twig.pattern tw in
  let s0 = solve pat in
  let start =
    match context with
    | Some c when not tabs -> c
    | _ -> R2.root t.r2
  in
  let t0 = now_ms () in
  let d0 =
    if pat.Twig.edge = Twig.Descendant && start == R2.root t.r2 && t.doc_rooted
    then s0.s_nodes
    else
      match pat.Twig.edge with
      | Twig.Child -> down_child_probe t ~uppers:[ start ] s0.s_nodes
      | Twig.Descendant -> down_desc_merge t ~uppers:[ start ] s0.s_nodes
  in
  record
    (Printf.sprintf "twig-anchor %s::%s"
       (match pat.Twig.edge with Twig.Child -> "child" | Twig.Descendant -> "desc")
       pat.Twig.tag)
    (if s0.s_spine = None then t_est else -1)
    (List.length d0) t0;
  let rec down d s =
    match s.s_spine with
    | None -> d
    | Some ((sp : Twig.pattern), ssub) ->
      let t0 = now_ms () in
      let d' =
        match sp.Twig.edge with
        | Twig.Child -> down_child_probe t ~uppers:d ssub.s_nodes
        | Twig.Descendant -> down_desc_merge t ~uppers:d ssub.s_nodes
      in
      record
        (Printf.sprintf "twig-down %s::%s"
           (match sp.Twig.edge with
           | Twig.Child -> "child"
           | Twig.Descendant -> "desc")
           sp.Twig.tag)
        (if ssub.s_spine = None then t_est else -1)
        (List.length d') t0;
      down d' ssub
  in
  down d0 s0

let bump t = function
  | Empty _ -> Atomic.incr t.shared.counters.pruned_runs
  | Chain _ -> Atomic.incr t.shared.counters.chain_runs
  | TwigJoin _ -> Atomic.incr t.shared.counters.twig_runs
  | Fallback _ -> Atomic.incr t.shared.counters.engine_runs

let run_plan t ?context ~trace p =
  bump t p;
  let record op est actual t0 =
    match trace with
    | None -> ()
    | Some rows ->
      rows :=
        { row_op = op; row_est = est; row_actual = actual;
          row_ms = now_ms () -. t0 }
        :: !rows
  in
  match p with
  | Empty reason ->
    record (Printf.sprintf "guide-refute (%s)" reason) 0 0 (now_ms ());
    []
  | Chain ch -> run_chain t ?context ch ~trace
  | TwigJoin { twig; tabs; t_est; _ } -> run_twig t ?context ~trace ~tabs ~t_est twig
  | Fallback u ->
    let t0 = now_ms () in
    let out = Eval.select_union t.engine ?context u in
    record "engine (full evaluator)" (-1) (List.length out) t0;
    out

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let plan t ?context src = fst (plan_for t ?context (Xparser.parse_union src))

let select_union t ?context u =
  let p, _ = plan_for t ?context u in
  run_plan t ?context ~trace:None p

let query t ?context src = select_union t ?context (Xparser.parse_union src)

let cost_of = function
  | Empty _ -> 0.
  | Chain c -> c.ccost
  | TwigJoin tj -> tj.tcost
  | Fallback _ -> Float.nan

let describe p =
  match p with
  | Empty reason -> Printf.sprintf "guide-pruned: %s" reason
  | Chain ch ->
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Printf.sprintf "chain-join pivot=%s" ch.csteps.(ch.pivot).ctag);
    Array.iteri
      (fun i s ->
        Buffer.add_string b
          (Printf.sprintf " %s%s"
             (match s.cedge with Child -> "/" | Descendant -> "//")
             s.ctag);
        if i = ch.pivot then Buffer.add_char b '*')
      ch.csteps;
    Buffer.contents b
  | TwigJoin { twig; _ } ->
    let rec pat (p : Twig.pattern) =
      Printf.sprintf "%s%s%s%s"
        (match p.Twig.edge with Twig.Child -> "/" | Twig.Descendant -> "//")
        p.Twig.tag
        (String.concat ""
           (List.map (fun b -> "[" ^ pat b ^ "]") p.Twig.branches))
        (match p.Twig.spine with None -> "" | Some sp -> pat sp)
    in
    "twig-join " ^ pat (Twig.pattern twig)
  | Fallback u -> "engine-fallback " ^ Ast.union_to_string u

let explain t ?context src =
  let u = Xparser.parse_union src in
  let p, outcome = plan_for t ?context u in
  let trace = ref [] in
  let t0 = now_ms () in
  let out = run_plan t ?context ~trace:(Some trace) p in
  let total_ms = now_ms () -. t0 in
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "query: %s\n" src;
  pf "normalized: %s\n" (Xparser.normalize src);
  pf "strategy: %s\n" (kind_name (kind p));
  pf "plan: %s\n" (describe p);
  let ec = engine_cost_union t u in
  (match p with
  | Fallback _ | Empty _ -> pf "cost: engine=%.1f\n" ec
  | _ -> pf "cost: plan=%.1f engine=%.1f\n" (cost_of p) ec);
  pf "plan-cache: %s  guide-fingerprint: 0x%x\n"
    (cache_outcome_name outcome)
    (G.fingerprint t.guide);
  pf "%-44s %10s %10s %9s\n" "operator" "est" "actual" "ms";
  List.iter
    (fun r ->
      pf "%-44s %10s %10d %9.3f\n" r.row_op
        (if r.row_est < 0 then "-" else string_of_int r.row_est)
        r.row_actual r.row_ms)
    (List.rev !trace);
  pf "result: %d node(s) in %.3f ms\n" (List.length out) total_ms;
  Buffer.contents b
