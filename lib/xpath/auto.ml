type strategy = Plan | Twig_join | Engine | Pruned

let pp_strategy ppf = function
  | Plan -> Format.pp_print_string ppf "join-plan"
  | Twig_join -> Format.pp_print_string ppf "twig-semijoin"
  | Engine -> Format.pp_print_string ppf "ruid-engine"
  | Pruned -> Format.pp_print_string ppf "guide-pruned"

type t = Planner.t

let create r2 = Planner.create r2
let of_planner p = p
let planner p = p

let choose t src =
  match Planner.kind (Planner.plan t src) with
  | `Chain -> Plan
  | `Twig -> Twig_join
  | `Engine -> Engine
  | `Pruned -> Pruned

let query t ?context src = Planner.query t ?context src
