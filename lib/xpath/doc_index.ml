module Dom = Rxml.Dom
module R2 = Ruid.Ruid2

type t = {
  serial_base : int;
  rank_of_serial : int array;  (* serial - base -> rank; -1 = not indexed *)
  nodes : Dom.t array;  (* rank -> node *)
  subtree_end : int array;  (* rank -> rank of the subtree's last node *)
  posts : (string, Dom.t array) Hashtbl.t;  (* tag -> rank-sorted elements *)
}

let size t = Array.length t.nodes

let build r2 =
  let root = R2.root r2 in
  let all = R2.all_nodes r2 in
  let n = List.length all in
  let base, top =
    List.fold_left
      (fun (lo, hi) x -> (min lo x.Dom.serial, max hi x.Dom.serial))
      (max_int, min_int) all
  in
  let rank_of_serial = Array.make (top - base + 1) (-1) in
  let nodes = Array.make n root in
  let subtree_end = Array.make n 0 in
  let next = ref 0 in
  let rec assign node =
    let r = !next in
    incr next;
    rank_of_serial.(node.Dom.serial - base) <- r;
    nodes.(r) <- node;
    List.iter assign node.Dom.children;
    subtree_end.(r) <- !next - 1
  in
  assign root;
  assert (!next = n);
  (* Postings accumulate reversed per tag, then flip into arrays; the rank
     sweep makes every array rank-sorted by construction. *)
  let rev = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      if Dom.is_element node then begin
        let tag = Dom.tag node in
        match Hashtbl.find_opt rev tag with
        | Some l -> l := node :: !l
        | None -> Hashtbl.replace rev tag (ref [ node ])
      end)
    nodes;
  let posts = Hashtbl.create (Hashtbl.length rev) in
  Hashtbl.iter
    (fun tag l -> Hashtbl.replace posts tag (Array.of_list (List.rev !l)))
    rev;
  { serial_base = base; rank_of_serial; nodes; subtree_end; posts }

let rank_opt t node =
  let i = node.Dom.serial - t.serial_base in
  if i < 0 || i >= Array.length t.rank_of_serial then None
  else
    match t.rank_of_serial.(i) with -1 -> None | r -> Some r

let rank t node =
  match rank_opt t node with
  | Some r -> r
  | None -> invalid_arg "Doc_index: node outside the indexed snapshot"

let mem t node = rank_opt t node <> None
let extent t node =
  let r = rank t node in
  (r, t.subtree_end.(r))

let node_at t r =
  if r < 0 || r >= Array.length t.nodes then
    invalid_arg "Doc_index.node_at: rank out of range";
  t.nodes.(r)

let compare_order t a b = Stdlib.compare (rank t a) (rank t b)

let slice t ~lo ~hi =
  let lo = max lo 0 and hi = min hi (Array.length t.nodes - 1) in
  if lo > hi then [] else List.init (hi - lo + 1) (fun j -> t.nodes.(lo + j))

let descendants t node =
  let r, e = extent t node in
  slice t ~lo:(r + 1) ~hi:e

let following t node =
  let _, e = extent t node in
  slice t ~lo:(e + 1) ~hi:(Array.length t.nodes - 1)

let preceding t node =
  let r = rank t node in
  (* Prepending while ranks ascend yields nearest-first (reverse document)
     order; an earlier node is an ancestor iff its subtree reaches r. *)
  let acc = ref [] in
  for i = 0 to r - 1 do
    if t.subtree_end.(i) < r then acc := t.nodes.(i) :: !acc
  done;
  !acc

let postings t tag =
  match Hashtbl.find_opt t.posts tag with Some a -> a | None -> [||]

let cardinality t tag = Array.length (postings t tag)
let tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.posts []

(* First posting index whose rank is >= [target]. *)
let lower_bound t arr target =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if rank t arr.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let descendants_by_tag t node tag =
  let r, e = extent t node in
  let arr = postings t tag in
  let i0 = lower_bound t arr (r + 1) in
  let i1 = lower_bound t arr (e + 1) in
  List.init (i1 - i0) (fun j -> arr.(i0 + j))

let following_by_tag t node tag =
  let _, e = extent t node in
  let arr = postings t tag in
  let i0 = lower_bound t arr (e + 1) in
  List.init (Array.length arr - i0) (fun j -> arr.(i0 + j))

let preceding_by_tag t node tag =
  let r = rank t node in
  let arr = postings t tag in
  let i1 = lower_bound t arr r in
  let acc = ref [] in
  for i = 0 to i1 - 1 do
    let p = arr.(i) in
    if t.subtree_end.(rank t p) < r then acc := p :: !acc
  done;
  !acc
