(** Abstract syntax for the XPath 1.0 location-path subset of Section 3.5.

    A location path is a sequence of steps [axis::node-test[pred]*]
    (grammar rules [1]-[3] quoted in the paper); predicates carry the core
    expression language (comparisons, [and]/[or], [position()], [last()],
    [count()], nested relative paths). *)

type axis =
  | Child
  | Descendant
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Self
  | Descendant_or_self
  | Ancestor_or_self
  | Attribute

val axis_name : axis -> string

val is_reverse_axis : axis -> bool
(** Axes whose proximity positions count in reverse document order. *)

type node_test =
  | Name of string  (** element name test *)
  | Wildcard  (** [*] *)
  | Text_test  (** [text()] *)
  | Node_any  (** [node()] *)
  | Comment_test  (** [comment()] *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

val cmp_name : cmp -> string
val test_name : node_test -> string

type expr =
  | Or of expr * expr
  | And of expr * expr
  | Cmp of cmp * expr * expr
  | Num of float
  | Str of string
  | Position
  | Last
  | Count of path
  | Not of expr
  | Contains of expr * expr
  | Starts_with of expr * expr
  | String_length of expr
  | Name_fun  (** [name()]: tag of the context node *)
  | Path of path  (** relative path: node-set value / existence test *)

and step = { axis : axis; test : node_test; preds : expr list }

and path = { absolute : bool; steps : step list }

type union_path = path list
(** Alternatives of a ['|'] expression, in source order; non-empty. *)

val pp_path : Format.formatter -> path -> unit
val path_to_string : path -> string
val pp_union : Format.formatter -> union_path -> unit
val union_to_string : union_path -> string
