exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | SLASH
  | DSLASH
  | AT
  | DOT
  | DOTDOT
  | STAR
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COLONCOLON
  | NAME of string
  | NUMBER of float
  | LITERAL of string
  | OP of Ast.cmp
  | PIPE
  | COMMA
  | EOF

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' then
      if !i + 1 < n && src.[!i + 1] = '/' then (emit DSLASH; i := !i + 2)
      else (emit SLASH; incr i)
    else if c = '@' then (emit AT; incr i)
    else if c = '.' then
      if !i + 1 < n && src.[!i + 1] = '.' then (emit DOTDOT; i := !i + 2)
      else if !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9' then begin
        (* .5 style number *)
        let start = !i in
        incr i;
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
        match float_of_string_opt (String.sub src start (!i - start)) with
        | Some f -> emit (NUMBER f)
        | None -> fail "malformed number"
      end
      else (emit DOT; incr i)
    else if c = '*' then (emit STAR; incr i)
    else if c = '[' then (emit LBRACKET; incr i)
    else if c = ']' then (emit RBRACKET; incr i)
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = ':' then
      (emit COLONCOLON; i := !i + 2)
    else if c = '|' then (emit PIPE; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '=' then (emit (OP Ast.Eq); incr i)
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then
      (emit (OP Ast.Neq); i := !i + 2)
    else if c = '<' then
      if !i + 1 < n && src.[!i + 1] = '=' then (emit (OP Ast.Le); i := !i + 2)
      else (emit (OP Ast.Lt); incr i)
    else if c = '>' then
      if !i + 1 < n && src.[!i + 1] = '=' then (emit (OP Ast.Ge); i := !i + 2)
      else (emit (OP Ast.Gt); incr i)
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let start = !i + 1 in
      incr i;
      while !i < n && src.[!i] <> quote do incr i done;
      if !i >= n then fail "unterminated string literal";
      emit (LITERAL (String.sub src start (!i - start)));
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '.') do
        incr i
      done;
      match float_of_string_opt (String.sub src start (!i - start)) with
      | Some f -> emit (NUMBER f)
      | None -> fail "malformed number"
    end
    else if is_name_start c then begin
      let start = !i in
      (* A name may contain ':' (prefixes) but must not swallow '::'. *)
      while
        !i < n
        && is_name_char src.[!i]
        && not (src.[!i] = ':' && !i + 1 < n && src.[!i + 1] = ':')
        && not (src.[!i] = ':' && !i + 1 >= n)
      do
        incr i
      done;
      emit (NAME (String.sub src start (!i - start)))
    end
    else fail "unexpected character %C" c
  done;
  List.rev (EOF :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> EOF
  | t :: rest ->
    st.toks <- rest;
    t

let expect st t =
  let got = next st in
  if got <> t then fail "unexpected token"

let axis_of_name = function
  | "child" -> Ast.Child
  | "descendant" -> Ast.Descendant
  | "parent" -> Ast.Parent
  | "ancestor" -> Ast.Ancestor
  | "following-sibling" -> Ast.Following_sibling
  | "preceding-sibling" -> Ast.Preceding_sibling
  | "following" -> Ast.Following
  | "preceding" -> Ast.Preceding
  | "self" -> Ast.Self
  | "descendant-or-self" -> Ast.Descendant_or_self
  | "ancestor-or-self" -> Ast.Ancestor_or_self
  | "attribute" -> Ast.Attribute
  | a -> fail "unknown axis %s" a

(* node test after the axis has been decided *)
let parse_node_test st =
  match next st with
  | STAR -> Ast.Wildcard
  | NAME "text" when peek st = LPAREN ->
    expect st LPAREN;
    expect st RPAREN;
    Ast.Text_test
  | NAME "node" when peek st = LPAREN ->
    expect st LPAREN;
    expect st RPAREN;
    Ast.Node_any
  | NAME "comment" when peek st = LPAREN ->
    expect st LPAREN;
    expect st RPAREN;
    Ast.Comment_test
  | NAME n -> Ast.Name n
  | _ -> fail "expected a node test"

let rec parse_step st : Ast.step =
  match peek st with
  | DOT ->
    ignore (next st);
    { Ast.axis = Ast.Self; test = Ast.Node_any; preds = [] }
  | DOTDOT ->
    ignore (next st);
    { Ast.axis = Ast.Parent; test = Ast.Node_any; preds = [] }
  | AT ->
    ignore (next st);
    let test = parse_node_test st in
    { Ast.axis = Ast.Attribute; test; preds = parse_preds st }
  | NAME n when (match st.toks with _ :: COLONCOLON :: _ -> true | _ -> false) ->
    ignore (next st);
    expect st COLONCOLON;
    let axis = axis_of_name n in
    let test = parse_node_test st in
    { Ast.axis; test; preds = parse_preds st }
  | _ ->
    let test = parse_node_test st in
    { Ast.axis = Ast.Child; test; preds = parse_preds st }

and parse_preds st =
  if peek st = LBRACKET then begin
    ignore (next st);
    let e = parse_expr st in
    expect st RBRACKET;
    e :: parse_preds st
  end
  else []

and parse_rel_path st first =
  let dos_step =
    { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
  in
  let rec more acc =
    match peek st with
    | SLASH ->
      ignore (next st);
      more (parse_step st :: acc)
    | DSLASH ->
      ignore (next st);
      more (parse_step st :: dos_step :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

and parse_path st : Ast.path =
  match peek st with
  | SLASH ->
    ignore (next st);
    (match peek st with
    | EOF | RBRACKET | RPAREN | OP _ | NAME "and" | NAME "or" ->
      { Ast.absolute = true; steps = [] }
    | _ -> { Ast.absolute = true; steps = parse_rel_path st (parse_step st) })
  | DSLASH ->
    ignore (next st);
    let dos =
      { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
    in
    let rest = parse_rel_path st (parse_step st) in
    { Ast.absolute = true; steps = dos :: rest }
  | _ -> { Ast.absolute = false; steps = parse_rel_path st (parse_step st) }

and parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  match peek st with
  | NAME "or" ->
    ignore (next st);
    Ast.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_cmp st in
  match peek st with
  | NAME "and" ->
    ignore (next st);
    Ast.And (left, parse_and st)
  | _ -> left

and parse_cmp st =
  let left = parse_primary st in
  match peek st with
  | OP op ->
    ignore (next st);
    Ast.Cmp (op, left, parse_primary st)
  | _ -> left

and parse_primary st =
  match peek st with
  | NUMBER f ->
    ignore (next st);
    Ast.Num f
  | LITERAL s ->
    ignore (next st);
    Ast.Str s
  | LPAREN ->
    ignore (next st);
    let e = parse_expr st in
    expect st RPAREN;
    e
  | NAME "position" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    expect st RPAREN;
    Ast.Position
  | NAME "last" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    expect st RPAREN;
    Ast.Last
  | NAME "count" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    let p = parse_path st in
    expect st RPAREN;
    Ast.Count p
  | NAME "not" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Ast.Not e
  | NAME "contains" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    let a = parse_expr st in
    expect st COMMA;
    let b = parse_expr st in
    expect st RPAREN;
    Ast.Contains (a, b)
  | NAME "starts-with" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    let a = parse_expr st in
    expect st COMMA;
    let b = parse_expr st in
    expect st RPAREN;
    Ast.Starts_with (a, b)
  | NAME "string-length" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Ast.String_length e
  | NAME "name" when nexts_are_call st ->
    ignore (next st);
    expect st LPAREN;
    expect st RPAREN;
    Ast.Name_fun
  | SLASH | DSLASH | DOT | DOTDOT | AT | STAR | NAME _ ->
    Ast.Path (parse_path st)
  | _ -> fail "expected an expression"

and nexts_are_call st =
  match st.toks with _ :: LPAREN :: _ -> true | _ -> false

let parse src =
  if String.trim src = "" then fail "empty expression";
  let st = { toks = tokenize src } in
  let p = parse_path st in
  (match peek st with
  | EOF -> ()
  | _ -> fail "trailing tokens after location path");
  p

let parse_union src =
  if String.trim src = "" then fail "empty expression";
  let st = { toks = tokenize src } in
  let rec go acc =
    let p = parse_path st in
    match peek st with
    | PIPE ->
      ignore (next st);
      go (p :: acc)
    | EOF -> List.rev (p :: acc)
    | _ -> fail "trailing tokens after location path"
  in
  go []

(* ------------------------------------------------------------------ *)
(* Canonical form                                                      *)
(* ------------------------------------------------------------------ *)

(* A fully parenthesized, fully explicit rendering, one string per AST.
   [Ast.pp_expr] is not usable as a cache key: it prints no parentheses,
   so [And (Or (a, b), c)] renders as ["a or b and c"], which re-parses as
   [Or (a, And (b, c))] — two inequivalent queries would share a key.  The
   canonical printer parenthesizes every binary node, expands every
   abbreviation to [axis::test], and is verified below by a re-parse
   round-trip before anything trusts it. *)

exception Unprintable

let canon_union (u : Ast.union_path) =
  let b = Buffer.create 64 in
  let ps = Buffer.add_string b in
  let rec expr = function
    | Ast.Or (x, y) -> binary "or" x y
    | Ast.And (x, y) -> binary "and" x y
    | Ast.Cmp (op, x, y) -> binary (Ast.cmp_name op) x y
    | Ast.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 && f >= 0. then
        ps (string_of_int (int_of_float f))
      else ps (Printf.sprintf "%.12g" f)
      (* anything the lexer cannot re-read fails round-trip verification *)
    | Ast.Str s ->
      if not (String.contains s '"') then (ps "\""; ps s; ps "\"")
      else if not (String.contains s '\'') then (ps "'"; ps s; ps "'")
      else raise Unprintable
    | Ast.Position -> ps "position()"
    | Ast.Last -> ps "last()"
    | Ast.Count p -> ps "count("; path p; ps ")"
    | Ast.Not e -> ps "not("; expr e; ps ")"
    | Ast.Contains (x, y) -> call2 "contains" x y
    | Ast.Starts_with (x, y) -> call2 "starts-with" x y
    | Ast.String_length e -> ps "string-length("; expr e; ps ")"
    | Ast.Name_fun -> ps "name()"
    | Ast.Path p -> path p
  and binary op x y =
    ps "("; expr x; ps " "; ps op; ps " "; expr y; ps ")"
  and call2 name x y = ps name; ps "("; expr x; ps ", "; expr y; ps ")"
  and step (s : Ast.step) =
    ps (Ast.axis_name s.axis);
    ps "::";
    ps (Ast.test_name s.test);
    List.iter (fun p -> ps "["; expr p; ps "]") s.preds
  and path (p : Ast.path) =
    match (p.absolute, p.steps) with
    | true, [] -> ps "/"
    | false, [] -> raise Unprintable
    | abs, s0 :: rest ->
      if abs then ps "/";
      step s0;
      List.iter (fun s -> ps "/"; step s) rest
  in
  (match u with
  | [] -> raise Unprintable
  | p0 :: rest ->
    path p0;
    List.iter (fun p -> ps " | "; path p) rest);
  Buffer.contents b

let canonical_opt u =
  match canon_union u with
  | exception Unprintable -> None
  | c -> (
    (* Trust the rendering only if it round-trips: parse it back and check
       the re-render is byte-identical. *)
    match parse_union c with
    | exception Syntax_error _ -> None
    | u2 -> (
      match canon_union u2 with
      | exception Unprintable -> None
      | c2 -> if String.equal c c2 then Some c else None))

(* Whitespace-run collapse + trim — the pre-canonical normal form, kept as
   the fallback for inputs the canonical printer cannot round-trip. *)
let ws_collapse q =
  let b = Buffer.create (String.length q) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
        (if Buffer.length b > 0 then pending_space := true)
      else begin
        if !pending_space then Buffer.add_char b ' ';
        pending_space := false;
        Buffer.add_char b c
      end)
    q;
  Buffer.contents b

let normalize src =
  match parse_union src with
  | exception Syntax_error _ -> ws_collapse src
  | u -> (
    match canonical_opt u with Some c -> c | None -> ws_collapse src)
