type key = int * string

type 'a t = {
  mu : Mutex.t;
  tbl : (key, 'a) Hashtbl.t;
  order : key Queue.t;  (* insertion order; keys are unique in the table *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    mu = Mutex.create ();
    tbl = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let find t ~fingerprint key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (fingerprint, key) with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t ~fingerprint key v =
  let k = (fingerprint, key) in
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl k) then begin
        Hashtbl.replace t.tbl k v;
        Queue.push k t.order;
        while Hashtbl.length t.tbl > t.capacity do
          let victim = Queue.pop t.order in
          Hashtbl.remove t.tbl victim;
          t.evictions <- t.evictions + 1
        done
      end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
      })
