module Dom = Rxml.Dom

type t = {
  arrays : (string, Dom.t array) Hashtbl.t;  (* tag -> doc-order elements *)
  lists : (string, Dom.t list) Hashtbl.t;  (* list views, built eagerly *)
}

let create r2 =
  let rev = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if Dom.is_element n then begin
        let tag = Dom.tag n in
        match Hashtbl.find_opt rev tag with
        | Some l -> l := n :: !l
        | None -> Hashtbl.replace rev tag (ref [ n ])
      end)
    (Ruid.Ruid2.all_nodes r2);
  let arrays = Hashtbl.create (Hashtbl.length rev) in
  Hashtbl.iter
    (fun tag l ->
      let a = Array.of_list !l in
      (* Accumulation reversed document order; flip in place. *)
      let n = Array.length a in
      for i = 0 to (n / 2) - 1 do
        let tmp = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- tmp
      done;
      Hashtbl.replace arrays tag a)
    rev;
  (* Both views are completed here: after [create] the index is never
     mutated, so concurrent readers (worker domains all querying the same
     snapshot) need no synchronization. *)
  let lists = Hashtbl.create (Hashtbl.length arrays) in
  Hashtbl.iter (fun tag a -> Hashtbl.replace lists tag (Array.to_list a)) arrays;
  { arrays; lists }

let find_array t tag =
  match Hashtbl.find_opt t.arrays tag with Some a -> a | None -> [||]

let find t tag =
  match Hashtbl.find_opt t.lists tag with Some l -> l | None -> []

let cardinality t tag = Array.length (find_array t tag)
let tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.arrays []
let total t = Hashtbl.fold (fun _ a acc -> acc + Array.length a) t.arrays 0
