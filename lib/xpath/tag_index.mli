(** Element-name index over a numbered document: tag -> nodes in document
    order.  The paper's query-processing strategy (Section 3.5) starts from
    "the set of nodes satisfying C" — for name tests, exactly this index —
    and decides axis membership per candidate by identifier arithmetic.

    Postings are stored as document-order arrays, so {!cardinality} is O(1)
    (the seed recomputed a list length per call); {!find} keeps the list
    API for existing callers.

    The index is immutable after {!create} — every view (arrays and list
    conversions) is built eagerly, so one index may be shared by any number
    of concurrently reading threads or domains without locking. *)

type t

val create : Ruid.Ruid2.t -> t

val find : t -> string -> Rxml.Dom.t list
(** Document order; empty for unknown tags.  The list view is prebuilt at
    {!create}; lookup never mutates the index. *)

val find_array : t -> string -> Rxml.Dom.t array
(** Document order, O(1) after {!create}.  The array is shared — callers
    must not mutate it.  Empty for unknown tags. *)

val cardinality : t -> string -> int
(** O(1): cached posting length. *)

val tags : t -> string list
val total : t -> int
