(** Automatic strategy selection for XPath queries over a numbered document.

    Since the cost-based planner landed this is a thin veneer over
    {!Planner}: [choose] reports which machinery the planner's plan
    enumeration settled on, [query] plans and executes.  Kept as the
    stable two-call API the tests and benches drive; new code should use
    {!Planner} directly (plan caching, EXPLAIN, shared state across
    snapshots).

    All strategies produce evaluator-identical node sets (property-tested
    over generated documents and queries), so the choice is purely a
    matter of cost. *)

type strategy =
  | Plan  (** chain of structural joins over tag postings *)
  | Twig_join  (** two-pass semijoin for branching patterns *)
  | Engine  (** full evaluator by identifier arithmetic *)
  | Pruned  (** DataGuide refutes the query; answered empty in O(guide) *)

val pp_strategy : Format.formatter -> strategy -> unit

type t

val create : Ruid.Ruid2.t -> t
(** Builds the document-order index, tag index, engine and DataGuide once
    (fresh planner state; see {!Planner.create}). *)

val of_planner : Planner.t -> t
(** Wrap an existing planner (shares its caches and counters). *)

val planner : t -> Planner.t
(** The planner underneath (same state; inverse of {!of_planner}). *)

val choose : t -> string -> strategy
(** Which machinery {!query} will use for this source text.
    @raise Xparser.Syntax_error on malformed input. *)

val query : t -> ?context:Rxml.Dom.t -> string -> Rxml.Dom.t list
(** Evaluate with the selected strategy.
    @raise Xparser.Syntax_error on malformed input. *)
