(** Parser for the XPath subset (lexing included).

    Supported syntax: absolute and relative location paths; all axes of
    {!Ast.axis} in explicit [axis::test] form; the abbreviations [//], [.],
    [..], [@name]; name, [*], [text()], [node()], [comment()] node tests;
    predicates with [or]/[and], the six comparison operators, numeric and
    string literals, [position()], [last()], [count(path)], [not(expr)],
    and nested relative paths. *)

exception Syntax_error of string

val parse : string -> Ast.path
(** @raise Syntax_error on malformed input (including union expressions —
    use {!parse_union} for those). *)

val parse_union : string -> Ast.union_path
(** Parse a ['|']-separated union of location paths (a single path yields
    a one-element union).
    @raise Syntax_error on malformed input. *)

val canonical_opt : Ast.union_path -> string option
(** A canonical rendering: fully parenthesized predicates, every
    abbreviation expanded to [axis::test].  Distinct canonical strings
    denote distinct queries, so the string is a sound cache key.  Verified
    by a parse round-trip; [None] when the AST holds something the lexer
    cannot re-read (e.g. a string literal containing both quote kinds). *)

val normalize : string -> string
(** Canonicalize query text for cache keying: parse, render canonically,
    verify the round-trip.  Inputs that do not parse (or do not round-trip)
    fall back to whitespace-run collapse + trim.  Idempotent either way;
    spelling variants of one query ([//a[ b ]], [/descendant-or-self::
    node()/child::a[child::b]], …) normalize identically. *)
