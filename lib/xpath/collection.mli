(** A collection of independently numbered documents (Section 4, "Managing
    large XML trees ... various data sources scattered over several sites").

    Each document keeps its own 2-level numbering; collection-wide
    identifiers pair a document handle with the document-local ruid.
    Structural relations are decidable between any two identifiers: nodes
    of different documents are simply unrelated. *)

type doc_id = private int

type gid = { doc : doc_id; id : Ruid.Ruid2.id }
(** Collection-wide identifier. *)

val pp_gid : Format.formatter -> gid -> unit

type t

val create : ?max_area_size:int -> unit -> t

val add : t -> name:string -> Rxml.Dom.t -> doc_id
(** Number and register a document.  Registration is O(1) amortized (the
    backing store doubles) and the name lookup behind the duplicate check
    is a hash probe, so cataloguing a 100k-document corpus stays linear.
    @raise Invalid_argument on a duplicate name. *)

val add_numbered : t -> name:string -> Ruid.Ruid2.t -> doc_id
(** Register an already-numbered document (streaming ingest paths number
    as they parse and must not re-number).
    @raise Invalid_argument on a duplicate name. *)

val doc_count : t -> int
val names : t -> string list
val find : t -> string -> doc_id option
val name_of : t -> doc_id -> string
val ruid : t -> doc_id -> Ruid.Ruid2.t

val gid_of_node : t -> doc_id -> Rxml.Dom.t -> gid
val node_of_gid : t -> gid -> Rxml.Dom.t option

val relationship : t -> gid -> gid -> Ruid.Rel.t option
(** [None] when the identifiers live in different documents. *)

val query : t -> string -> (doc_id * Rxml.Dom.t list) list
(** Evaluate an XPath expression against every document (numbering-driven
    engine); documents with no match are omitted. *)

val total_nodes : t -> int
val aux_memory_words : t -> int
(** Sum of all documents' K tables: the collection's resident state. *)
