module Dom = Rxml.Dom

type doc_id = int

type gid = { doc : doc_id; id : Ruid.Ruid2.id }

let pp_gid ppf g = Format.fprintf ppf "doc%d:%a" g.doc Ruid.Ruid2.pp_id g.id

type entry = { name : string; r2 : Ruid.Ruid2.t }

(* [docs] is an amortized-growth buffer: only the first [len] slots are
   live, and [add] doubles the buffer instead of reallocating per
   document (the old [Array.append] made registering n documents O(n²)
   — fatal once a router catalogs a 100k-document corpus).  [index]
   maps name -> slot so [find] is O(1) instead of a linear scan. *)
type t = {
  max_area_size : int;
  mutable docs : entry array;
  mutable len : int;
  index : (string, int) Hashtbl.t;
}

let create ?(max_area_size = 64) () =
  { max_area_size; docs = [||]; len = 0; index = Hashtbl.create 64 }

let doc_count t = t.len

let names t =
  List.init t.len (fun i -> t.docs.(i).name)

let find t name = Hashtbl.find_opt t.index name

let entry t doc =
  if doc < 0 || doc >= t.len then
    invalid_arg "Collection: unknown document id";
  t.docs.(doc)

let name_of t doc = (entry t doc).name
let ruid t doc = (entry t doc).r2

let reserve t filler =
  if t.len >= Array.length t.docs then begin
    let cap = max 8 (2 * Array.length t.docs) in
    let grown = Array.make cap filler in
    Array.blit t.docs 0 grown 0 t.len;
    t.docs <- grown
  end

let register t ~name r2 =
  (match find t name with
  | Some _ -> invalid_arg ("Collection.add: duplicate name " ^ name)
  | None -> ());
  let e = { name; r2 } in
  reserve t e;
  let id = t.len in
  t.docs.(id) <- e;
  t.len <- id + 1;
  Hashtbl.replace t.index name id;
  id

let add t ~name root =
  let r2 = Ruid.Ruid2.number ~max_area_size:t.max_area_size root in
  register t ~name r2

let add_numbered t ~name r2 = register t ~name r2

let gid_of_node t doc n = { doc; id = Ruid.Ruid2.id_of_node (ruid t doc) n }

let node_of_gid t g =
  if g.doc < 0 || g.doc >= t.len then None
  else Ruid.Ruid2.node_of_id (ruid t g.doc) g.id

let relationship t a b =
  if a.doc <> b.doc then None
  else Some (Ruid.Ruid2.relationship (ruid t a.doc) a.id b.id)

let query t src =
  let u = Xparser.parse_union src in
  List.init t.len (fun i ->
      let eng = Engine_ruid.create t.docs.(i).r2 in
      (i, Eval.select_union eng u))
  |> List.filter (fun (_, nodes) -> nodes <> [])

let total_nodes t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc := !acc + List.length (Ruid.Ruid2.all_nodes t.docs.(i).r2)
  done;
  !acc

let aux_memory_words t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc := !acc + Ruid.Ruid2.aux_memory_words t.docs.(i).r2
  done;
  !acc
