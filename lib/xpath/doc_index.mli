(** Array-backed document-order index over a numbered document.

    One pass over the tree produces (a) a dense [serial -> preorder rank]
    array, (b) per-node subtree extents [(rank, rank_end)] so every
    ancestor/descendant and before/after test is two integer comparisons,
    and (c) per-tag posting arrays sorted by rank with O(1) cardinality.
    This is the sorted-array substrate the structural-join literature
    (stack-tree over interval labels) assumes; {!Engine_ruid} drives its
    range-based name tests from it and {!Rjoin.Structural_join.extent_merge}
    consumes the extents.

    The index is a snapshot: rebuild it after structural updates.  All
    lookups on nodes outside the snapshot raise [Invalid_argument] — a
    stale index is a hard error, never a silent mis-sort. *)

type t

val build : Ruid.Ruid2.t -> t
(** Index every node of the numbered tree (elements, text, comments) in
    document order. *)

val size : t -> int
(** Number of indexed nodes. *)

val rank : t -> Rxml.Dom.t -> int
(** Preorder rank of a node, [0 .. size - 1].
    @raise Invalid_argument for a node outside the snapshot. *)

val rank_opt : t -> Rxml.Dom.t -> int option
(** Like {!rank} but [None] outside the snapshot. *)

val mem : t -> Rxml.Dom.t -> bool

val extent : t -> Rxml.Dom.t -> int * int
(** [(r, e)]: the node's own rank and the rank of the last node of its
    subtree (inclusive).  [x] is a strict descendant iff
    [r < rank x && rank x <= e]; before iff [rank x < r]; after iff
    [rank x > e].
    @raise Invalid_argument for a node outside the snapshot. *)

val node_at : t -> int -> Rxml.Dom.t
(** Inverse of {!rank}. @raise Invalid_argument if out of range. *)

val compare_order : t -> Rxml.Dom.t -> Rxml.Dom.t -> int
(** Document order by rank; no fallback.
    @raise Invalid_argument for nodes outside the snapshot. *)

(** {1 Whole-axis slices} *)

val slice : t -> lo:int -> hi:int -> Rxml.Dom.t list
(** Nodes with [lo <= rank <= hi], in document order (empty if [lo > hi]). *)

val descendants : t -> Rxml.Dom.t -> Rxml.Dom.t list
(** Strict descendants in document order — one contiguous slice. *)

val following : t -> Rxml.Dom.t -> Rxml.Dom.t list
(** The following axis in document order — the suffix slice after the
    node's extent. *)

val preceding : t -> Rxml.Dom.t -> Rxml.Dom.t list
(** The preceding axis in {e reverse} document order (nearest first): the
    prefix before the node's rank minus its ancestors. *)

(** {1 Tag postings} *)

val postings : t -> string -> Rxml.Dom.t array
(** Elements with the tag, sorted by rank.  The array is shared — callers
    must not mutate it.  Empty for unknown tags. *)

val cardinality : t -> string -> int
(** O(1): cached posting length. *)

val tags : t -> string list

(** {1 Range-based name tests (binary search over postings)} *)

val descendants_by_tag : t -> Rxml.Dom.t -> string -> Rxml.Dom.t list
(** [descendant::tag] in document order: the posting array's contiguous
    sub-range inside the context node's extent, found by binary search —
    O(log |postings| + output). *)

val following_by_tag : t -> Rxml.Dom.t -> string -> Rxml.Dom.t list
(** [following::tag] in document order: the posting suffix past the
    context extent. *)

val preceding_by_tag : t -> Rxml.Dom.t -> string -> Rxml.Dom.t list
(** [preceding::tag] in reverse document order: the posting prefix before
    the context rank, minus ancestors (each excluded by one extent test). *)
