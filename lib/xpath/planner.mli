(** Cost-based query planner over the numbering-scheme substrate.

    Compiles an XPath union into an explicit physical plan and executes
    it.  The plan space (Section 3.5 strategies lifted from single steps
    to whole paths):

    - {b guide-pruned} ([Empty]): the {!Rsummary.Dataguide} refutes every
      label path the query could take — answered in O(guide) without
      touching a posting list.  Refutation is purely structural (a label
      path or twig shape the document cannot realize), never based on
      occurrence counts, so cached pruned plans stay sound under count
      drift.
    - {b chain-join} ([Chain]): a pure child/descendant name-test path is
      evaluated as a pipeline of structural joins over the rank-sorted tag
      postings of {!Doc_index}.  The planner enumerates pivot positions
      (which tag's postings seed the pipeline), picks a physical method
      per join (pointer probe, linear rank-merge, binary-searched posting
      ranges, child walk) from posting cardinalities and DataGuide
      occurrence counts, and keeps the cheapest pipeline.
    - {b twig-join} ([TwigJoin]): branching patterns in the twig fragment
      go to {!Twig}'s two-pass semijoin when its cost estimate beats the
      evaluator's.
    - {b engine-fallback} ([Fallback]): everything else — rare axes,
      positional or value predicates — runs on the shared {!Engine_ruid}
      evaluator.  Unions plan per branch: provably-empty branches are
      dropped, survivors are fielded to the evaluator.

    Rooted plans are cached in a {!Plan_cache} keyed by (DataGuide
    structural fingerprint, canonical query text) — never by snapshot
    version, so pure value/count churn keeps compiled plans live. *)

type edge = Child | Descendant

val edge_name : edge -> string

(** Physical method for one structural join of a chain pipeline. *)
type jmethod =
  | Probe  (** per-node parent/ancestor pointer chase, hash-deduplicated *)
  | Merge  (** linear rank sweep (stack-tree up, max-extent-end down) *)
  | Range  (** binary-searched posting spans per upper extent (down only) *)
  | Walk  (** generate children and test the tag (down/child only) *)

val jmethod_name : jmethod -> string

type cstep = { cedge : edge; ctag : string }

type chain = {
  cabs : bool;  (** anchored at the root rather than the context *)
  csteps : cstep array;
  card : int array;  (** posting cardinality per position at plan time *)
  est : int array;  (** guide output estimate per position; -1 unknown *)
  pivot : int;  (** position whose postings seed the pipeline *)
  up_meth : jmethod array;  (** method per up-phase join, slots [< pivot] *)
  down_meth : jmethod array;  (** method per down-phase join; slot 0 anchors *)
  ccost : float;
}

type plan =
  | Empty of string  (** guide refutation: why nothing can match *)
  | Chain of chain
  | TwigJoin of { twig : Twig.t; tabs : bool; t_est : int; tcost : float }
  | Fallback of Ast.union_path

type kind = [ `Chain | `Twig | `Engine | `Pruned ]

val kind : plan -> kind
val kind_name : kind -> string

val describe : plan -> string
(** One-line plan rendering for EXPLAIN and logs. *)

(** {1 Shared state}

    One {!shared} value holds the plan cache and the per-strategy run
    counters; successive snapshots of one document pass it along so cache
    contents and counters survive {!advance}. *)

type shared

val make_shared : ?plan_cache:int -> unit -> shared
(** [plan_cache] is the cache capacity in plans (default 256); [<= 0]
    disables caching. *)

type stats = {
  chain : int;  (** queries executed as chain-joins *)
  twig : int;
  engine : int;
  pruned : int;
  cache_stats : Plan_cache.stats option;  (** [None] when caching is off *)
}

val shared_stats : shared -> stats

(** {1 Planner instances} *)

type t

val create : ?shared:shared -> Ruid.Ruid2.t -> t
(** Build every per-snapshot structure once: the {!Doc_index} (shared with
    the fallback engine), the tag index, the evaluator, the DataGuide.
    Fresh {!shared} state unless one is passed in. *)

val engine : t -> Eval.engine
(** The fallback evaluator (shares the planner's {!Doc_index}). *)

val shared_of : t -> shared
val guide : t -> Rsummary.Dataguide.t
val guide_fingerprint : t -> int

(** One structural update's effect on the guide: the label path of an
    inserted or deleted element (root label first). *)
type delta = Add of string list | Remove of string list

val advance : t -> Ruid.Ruid2.t -> deltas:delta list -> t
(** Planner for the next snapshot: clone the guide, apply the deltas and
    prune (an inconsistent [Remove] forces a fresh guide build), rebuild
    the per-snapshot indexes, carry {!shared} over.  The previous
    planner's guide is untouched — readers still holding the old snapshot
    keep a consistent view. *)

(** {1 Planning and execution} *)

type cache_outcome = Hit | Miss | Bypass

val cache_outcome_name : cache_outcome -> string

val plan_for :
  t -> ?context:Rxml.Dom.t -> Ast.union_path -> plan * cache_outcome
(** Plan a union.  Cached only for rooted evaluations (no context, or the
    context {e is} the root) with a canonically printable query; everything
    else plans fresh ([Bypass]). *)

val plan : t -> ?context:Rxml.Dom.t -> string -> plan
(** Parse and plan. @raise Xparser.Syntax_error on malformed input. *)

val select_union :
  t -> ?context:Rxml.Dom.t -> Ast.union_path -> Rxml.Dom.t list
(** Plan and execute; results in document order, equal to
    {!Eval.select_union} on the fallback engine (property-tested). *)

val query : t -> ?context:Rxml.Dom.t -> string -> Rxml.Dom.t list
(** Parse, plan, execute. @raise Xparser.Syntax_error on malformed input. *)

val explain : t -> ?context:Rxml.Dom.t -> string -> string
(** Execute with per-operator instrumentation and render the plan: chosen
    strategy, plan/engine cost estimates, cache outcome, guide
    fingerprint, and an operator table with estimated vs. actual
    cardinalities and wall-clock milliseconds.
    @raise Xparser.Syntax_error on malformed input. *)

(** {1 Internals exposed for tests and benches} *)

val chain_of_steps : Ast.step list -> cstep list * bool
(** Maximal chain prefix of a step list; the flag is true when the whole
    path is a predicate-free chain (plannable without the evaluator). *)

val engine_cost_union : t -> Ast.union_path -> float
