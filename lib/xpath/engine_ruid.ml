module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

type strategy = Auto | Range | Arith | Walk

let strategy_name = function
  | Auto -> "auto"
  | Range -> "range"
  | Arith -> "arith"
  | Walk -> "walk"

(* Cost model for a name test on an unbounded axis, in node-visit units.
   [card] is the tag's posting cardinality, [scope] the number of nodes the
   axis can reach (exact for descendant thanks to the extents), [total] the
   document size.

   - range: two binary searches over the posting array plus emitting the
     expected output (postings spread uniformly over the document);
   - arith: one Rel.relationship decision per posted node, each a short
     identifier-arithmetic walk (charged [c_rel] units);
   - walk: generate the axis and test the tag on every generated node. *)
let c_rel = 8.

let choose ~card ~scope ~total =
  if card = 0 then Range
  else begin
    let cardf = float_of_int card and scopef = float_of_int scope in
    let est_out = cardf *. scopef /. float_of_int (max 1 total) in
    let range = (2. *. Float.log2 (cardf +. 1.)) +. est_out in
    let arith = cardf *. c_rel in
    let walk = scopef in
    if range <= arith && range <= walk then Range
    else if arith <= walk then Arith
    else Walk
  end

let create ?(strategy = Auto) ?index r2 =
  let root = R2.root r2 in
  let idx = match index with Some i -> i | None -> Doc_index.build r2 in
  let total = Doc_index.size idx in
  let id n = R2.id_of_node r2 n in
  (* Posting lists for the arithmetic strategy, one per tag so forced Arith
     runs do not pay an array-to-list conversion per step.  Built eagerly:
     after [create] the engine closure captures only immutable state, so
     one engine may serve concurrent reader domains without locking. *)
  let post_lists = Hashtbl.create 16 in
  List.iter
    (fun tag ->
      Hashtbl.replace post_lists tag (Array.to_list (Doc_index.postings idx tag)))
    (Doc_index.tags idx);
  let by_tag tag =
    match Hashtbl.find_opt post_lists tag with Some l -> l | None -> []
  in
  let compare_order a b = Doc_index.compare_order idx a b in
  let axis (a : Ast.axis) n =
    match a with
    | Ast.Self -> [ n ]
    | Ast.Child -> R2.children r2 n
    | Ast.Descendant -> Doc_index.descendants idx n
    | Ast.Descendant_or_self -> n :: Doc_index.descendants idx n
    | Ast.Parent -> (
      match R2.parent_node r2 n with Some p -> [ p ] | None -> [])
    | Ast.Ancestor -> R2.ancestors r2 n
    | Ast.Ancestor_or_self -> n :: R2.ancestors r2 n
    | Ast.Following_sibling -> R2.following_siblings r2 n
    | Ast.Preceding_sibling -> List.rev (R2.preceding_siblings r2 n)
    | Ast.Following -> Doc_index.following idx n
    | Ast.Preceding -> Doc_index.preceding idx n
    | Ast.Attribute -> invalid_arg "Engine_ruid: attribute axis"
  in
  (* Name tests on unbounded axes.  Three live strategies:
     - Range: binary-search the tag's rank-sorted posting array against the
       context extent (contiguous slice for descendant, suffix/prefix for
       following/preceding) — O(log card + output);
     - Arith: the paper's Section 3.5 strategy — take the posting list and
       decide membership per candidate by identifier arithmetic alone;
     - Walk: decline ([None]), letting the evaluator generate the axis and
       test the tag per generated node.
     [Auto] picks per step by the cost model above, replacing the seed's
     hard-coded 256-candidate threshold. *)
  let named_axis (a : Ast.axis) tag n =
    let rel_filter want =
      let nid = id n in
      List.filter (fun c -> Rel.equal (R2.relationship r2 (id c) nid) want)
        (by_tag tag)
    in
    let card = Doc_index.cardinality idx tag in
    let pick ~scope =
      match strategy with Auto -> choose ~card ~scope ~total | s -> s
    in
    match a with
    | Ast.Descendant -> (
      let r, e = Doc_index.extent idx n in
      match pick ~scope:(e - r) with
      | Range -> Some (Doc_index.descendants_by_tag idx n tag)
      | Arith -> Some (rel_filter Rel.Descendant)
      | Walk | Auto -> None)
    | Ast.Following -> (
      let _, e = Doc_index.extent idx n in
      match pick ~scope:(total - 1 - e) with
      | Range -> Some (Doc_index.following_by_tag idx n tag)
      | Arith -> Some (rel_filter Rel.After)
      | Walk | Auto -> None)
    | Ast.Preceding -> (
      let r = Doc_index.rank idx n in
      match pick ~scope:r with
      | Range -> Some (Doc_index.preceding_by_tag idx n tag)
      | Arith -> Some (List.rev (rel_filter Rel.Before))
      | Walk | Auto -> None)
    | Ast.Ancestor ->
      (* rancestor, then tag filter: O(depth) identifiers either way. *)
      Some (List.filter (fun x -> Dom.tag x = tag) (R2.ancestors r2 n))
    | Ast.Child | Ast.Parent | Ast.Self | Ast.Descendant_or_self
    | Ast.Ancestor_or_self | Ast.Following_sibling | Ast.Preceding_sibling
    | Ast.Attribute -> None
  in
  {
    Eval.root;
    axis;
    named_axis;
    compare_order;
    (* A node outside the snapshot is a hard error (Doc_index.rank raises),
       not a silent max_int sort key. *)
    rank_of = (fun n -> Some (Doc_index.rank idx n));
  }
