(** Compiled-plan cache, keyed by (structure fingerprint, canonical query
    text).

    Plans depend only on the query and on the document's {e structure}
    (label paths, cardinalities enter the cost but not the validity), so
    the key pairs the dataguide {!Rsummary.Dataguide.fingerprint} with the
    canonically normalized query — {e not} the snapshot version: a stream
    of value updates or count-preserving edits keeps every cached plan
    live, and a structural change rolls the fingerprint, orphaning stale
    entries without explicit invalidation (FIFO eviction reclaims them).

    Thread-safe (one mutex); shared across documents, snapshots and reader
    domains. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> fingerprint:int -> string -> 'a option
val add : 'a t -> fingerprint:int -> string -> 'a -> unit
(** First writer wins; re-adding an existing key is a no-op (concurrent
    planners may race to compile the same query — both produce equivalent
    plans). *)

val stats : 'a t -> stats
