module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

type pair = { anc : Dom.t; desc : Dom.t }

(* Canonical result order: descendant document order, then ancestor from
   the nearest upward (so equal multisets compare equal). *)
let normalize r2 pairs =
  let key p =
    let da = R2.id_of_node r2 p.desc and aa = R2.id_of_node r2 p.anc in
    (da, aa)
  in
  List.sort
    (fun p q ->
      let dp, ap = key p and dq, aq = key q in
      let c = R2.doc_order r2 dp dq in
      if c <> 0 then c else R2.doc_order r2 aq ap)
    pairs

let nested_loop r2 ~anc ~desc =
  let out = ref [] in
  List.iter
    (fun a ->
      let aid = R2.id_of_node r2 a in
      List.iter
        (fun d ->
          if R2.relationship r2 aid (R2.id_of_node r2 d) = Rel.Ancestor then
            out := { anc = a; desc = d } :: !out)
        desc)
    anc;
  normalize r2 !out

(* Probe tables keyed by identifier.  Hashing the three-field record
   structurally walks it on every insert and probe; when both indices fit
   31 bits — every practical numbering — the identifier packs losslessly
   into one immediate int (global in bits 31-61, local in bits 1-30, root
   flag in bit 0) and the table becomes int-keyed.  Probes whose id does
   not pack cannot collide with a packed key, so a mixed probe misses
   safely; a build-side overflow falls back to record keys wholesale. *)
let pack_limit = 0x4000_0000

let pack_id (i : R2.id) =
  if i.R2.global < pack_limit && i.R2.local < pack_limit then
    (i.R2.global lsl 31) lor (i.R2.local lsl 1)
    lor (if i.R2.is_root then 1 else 0)
  else -1

(* Build a probe function over [xs] keyed by identifier; [id_of] extracts
   the key, probes return the associated element. *)
let id_table id_of xs =
  let keyed = List.map (fun x -> (id_of x, x)) xs in
  if List.for_all (fun (i, _) -> pack_id i >= 0) keyed then begin
    let table = Hashtbl.create (List.length xs * 2) in
    List.iter (fun (i, x) -> Hashtbl.replace table (pack_id i) x) keyed;
    fun i ->
      let p = pack_id i in
      if p < 0 then None else Hashtbl.find_opt table p
  end
  else begin
    let table = Hashtbl.create (List.length xs * 2) in
    List.iter (fun (i, x) -> Hashtbl.replace table i x) keyed;
    fun i -> Hashtbl.find_opt table i
  end

let ancestor_probe r2 ~anc ~desc =
  let probe = id_table (R2.id_of_node r2) anc in
  let out = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun aid ->
          match probe aid with
          | Some a -> out := { anc = a; desc = d } :: !out
          | None -> ())
        (R2.rancestors r2 (R2.id_of_node r2 d)))
    desc;
  normalize r2 !out

let semijoin_descendants r2 ~anc ~desc =
  let probe = id_table (R2.id_of_node r2) anc in
  List.filter
    (fun d ->
      List.exists
        (fun aid -> probe aid <> None)
        (R2.rancestors r2 (R2.id_of_node r2 d)))
    desc

let parent_child r2 ~parent ~child =
  let probe = id_table (R2.id_of_node r2) parent in
  let out = ref [] in
  List.iter
    (fun c ->
      match R2.rparent r2 (R2.id_of_node r2 c) with
      | Some pid -> (
        match probe pid with
        | Some p -> out := { anc = p; desc = c } :: !out
        | None -> ())
      | None -> ())
    child;
  normalize r2 !out

(* Stack-tree merge over interval labels (Al-Khalifa et al. style): both
   inputs sorted by pre rank; the stack holds the current chain of open
   ancestors. *)
let stack_tree pp ~anc ~desc =
  let pre n = (Baselines.Prepost.label_of pp n).Baselines.Prepost.pre in
  let post n = (Baselines.Prepost.label_of pp n).Baselines.Prepost.post in
  let anc = List.sort (fun a b -> Stdlib.compare (pre a) (pre b)) anc in
  let desc = List.sort (fun a b -> Stdlib.compare (pre a) (pre b)) desc in
  let out = ref [] in
  (* The stack is the chain of already-seen a-nodes whose subtrees contain
     the scan position; an entry contains node x iff its post rank exceeds
     x's (pre order is guaranteed by the scan). *)
  let stack = ref [] in
  let rec go anc desc =
    match (anc, desc) with
    | _, [] -> ()
    | [], d :: rest ->
      (* Only the stack can contain ancestors of d. *)
      let pd = post d in
      stack := List.filter (fun a -> post a > pd) !stack;
      List.iter (fun a -> out := { anc = a; desc = d } :: !out) !stack;
      go [] rest
    | a :: arest, d :: drest ->
      if pre a < pre d then begin
        (* Entering a: first close ancestors whose subtree ended. *)
        stack := List.filter (fun x -> post x > post a) !stack;
        stack := a :: !stack;
        go arest desc
      end
      else begin
        let pd = post d in
        stack := List.filter (fun x -> post x > pd) !stack;
        List.iter (fun x -> out := { anc = x; desc = d } :: !out) !stack;
        go anc drest
      end
  in
  go anc desc;
  (* Normalize like the others, but without a Ruid2 context: order by
     (desc pre, anc pre descending). *)
  List.sort
    (fun p q ->
      let c = Stdlib.compare (pre p.desc) (pre q.desc) in
      if c <> 0 then c else Stdlib.compare (pre q.anc) (pre p.anc))
    !out

(* Stack-tree merge over document-order extents [(rank, rank_end)]: the
   same O(|A| + |D| + output) scan as [stack_tree], but the interval comes
   from a shared array-backed index (e.g. [Rxpath.Doc_index.extent]) — no
   prepost baseline needs to be built.  [x] contains [d] iff
   [fst x < fst d && fst d <= snd x]; since the scan delivers stack entries
   in ascending rank, the containment test against the scan position only
   needs the extent end. *)
let extent_merge ~extent ~anc ~desc =
  let dec l =
    List.map (fun n -> (extent n, n)) l
    |> List.sort (fun ((a, _), _) ((b, _), _) -> Stdlib.compare a b)
  in
  let anc = dec anc and desc = dec desc in
  let out = ref [] in
  (* Entries are ((rank, rank_end), node) of already-seen a-nodes whose
     extent still covers the scan position. *)
  let stack = ref [] in
  let rec go anc desc =
    match (anc, desc) with
    | _, [] -> ()
    | [], ((rd, _), d) :: rest ->
      stack := List.filter (fun ((_, ea), _) -> ea >= rd) !stack;
      List.iter (fun (_, a) -> out := { anc = a; desc = d } :: !out) !stack;
      go [] rest
    | (((ra, _), _) as ha) :: arest, (((rd, _), d) as hd) :: drest ->
      if ra < rd then begin
        (* Entering a: close entries whose extent ended before it.  Unlike
           post labels, an ancestor's extent END can coincide with a
           descendant's (last-child chains), so the keep test is
           "still covers a's rank", not "ends strictly later". *)
        stack := List.filter (fun ((_, ex), _) -> ex >= ra) !stack;
        stack := ha :: !stack;
        go arest (hd :: drest)
      end
      else begin
        stack := List.filter (fun ((_, ex), _) -> ex >= rd) !stack;
        List.iter (fun (_, x) -> out := { anc = x; desc = d } :: !out) !stack;
        go (ha :: arest) drest
      end
  in
  go anc desc;
  List.sort
    (fun p q ->
      let c = Stdlib.compare (fst (extent p.desc)) (fst (extent q.desc)) in
      if c <> 0 then c
      else Stdlib.compare (fst (extent q.anc)) (fst (extent p.anc)))
    !out
