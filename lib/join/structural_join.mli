(** Structural (ancestor-descendant) joins over numbered element sets.

    The paper's parent-derivation property feeds directly into the
    structural-join literature it cites (Li-Moon, Zhang et al.) and
    influenced: given two element lists A and D, find all pairs
    [(a, d)] with [a] an ancestor of [d].  Three algorithms are provided:

    - {!nested_loop}: one relation decision per pair — the baseline any
      numbering scheme supports.
    - {!ancestor_probe}: the UID-family algorithm.  For each [d], generate
      its ancestor {e identifiers} by pure arithmetic ([rancestor]) and
      probe a hash set of A's identifiers: O(|D| * depth), independent of
      |A|, no order requirements.  This is exactly the "identifiers of the
      ancestors of a node [are] generated quickly" use of Section 3.3.
    - {!stack_tree}: the classic merge with a stack over interval
      (pre/post) labels, O(|A| + |D| + output), requiring both inputs in
      document order.
    - {!extent_merge}: the same merge driven by document-order extents
      [(rank, rank_end)] from a shared array-backed index (e.g.
      [Rxpath.Doc_index.extent]) instead of a separately built prepost
      baseline.

    All return the same pair multiset; result order is normalized to
    (descendant document order, ancestor depth).

    The identifier-keyed probe tables ({!ancestor_probe},
    {!semijoin_descendants}, {!parent_child}) hash identifiers packed into
    a single immediate int (global, local, root flag) whenever both
    indices fit 31 bits, avoiding the structural record hash; oversized
    identifiers fall back to record keys transparently. *)

type pair = { anc : Rxml.Dom.t; desc : Rxml.Dom.t }

val nested_loop :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list

val ancestor_probe :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list

val stack_tree :
  Baselines.Prepost.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list
(** Inputs need not be pre-sorted; they are sorted by pre rank internally
    (sorting cost is reported separately by the E9 bench). *)

val extent_merge :
  extent:(Rxml.Dom.t -> int * int) ->
  anc:Rxml.Dom.t list ->
  desc:Rxml.Dom.t list ->
  pair list
(** Stack-tree merge over [(rank, rank_end)] extents: [extent n] must give
    the node's preorder rank and the rank of the last node of its subtree
    (inclusive), as [Rxpath.Doc_index.extent] does.  O(|A| + |D| + output)
    after the internal rank sorts; no prepost baseline required. *)

val semijoin_descendants :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> Rxml.Dom.t list
(** Descendants having at least one ancestor in [anc] — the node-set
    semantics an XPath step needs — via {!ancestor_probe} with early exit. *)

val parent_child :
  Ruid.Ruid2.t -> parent:Rxml.Dom.t list -> child:Rxml.Dom.t list -> pair list
(** The parent-child join: one [rparent] per candidate child, then a hash
    probe — O(|child|). *)
