(** Streaming (SAX-style) XML parsing over a chunked byte feed.

    The event layer under {!Parser}: documents too large to hold as a DOM —
    or even as a string — can be scanned, filtered or counted in one pass.
    Events are pulled from a {!source}, a refill function feeding a fixed
    sliding window, so memory is bounded by element-nesting depth plus one
    chunk rather than document size.  Shares the lexical subset of
    {!Parser} (elements, attributes, text, CDATA, comments, PIs, skipped
    DOCTYPE, predefined and character entities) and the same nesting-depth
    budget. *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

(** {1 Sources}

    A source is single-use: one [fold_source] (or derived call) consumes
    it.  Tokens split across refill boundaries are handled transparently —
    the window slides and refills until the token is whole. *)

type source

val source_of_string : string -> source

val source_of_channel : ?chunk:int -> in_channel -> source
(** Pull [chunk]-byte reads (default 64 KiB) from the channel. *)

val source_of_refill : ?chunk:int -> (bytes -> int -> int -> int) -> source
(** [source_of_refill f]: [f buf off len] writes up to [len] bytes at
    [buf.(off)] and returns how many it wrote; 0 means end of input. *)

val source_position : source -> int * int
(** Current (line, column) of the read cursor — where a consumer stopped. *)

(** {1 Event folds} *)

val fold_source :
  ?keep_whitespace:bool -> ?max_depth:int -> source -> init:'a ->
  f:('a -> event -> 'a) -> 'a
(** [fold_source src ~init ~f] runs [f] over the event stream of the feed.
    Events arrive in document order; element nesting is validated, and
    nesting deeper than [max_depth] (default 10000, the {!Parser} budget)
    is rejected.
    @raise Parser.Parse_error on malformed input. *)

val iter_source :
  ?keep_whitespace:bool -> ?max_depth:int -> source -> f:(event -> unit) -> unit

val fold :
  ?keep_whitespace:bool -> ?max_depth:int -> string -> init:'a ->
  f:('a -> event -> 'a) -> 'a
(** {!fold_source} over a string-backed feed. *)

val iter : ?keep_whitespace:bool -> ?max_depth:int -> string -> f:(event -> unit) -> unit

val count_elements : string -> (string, int) Hashtbl.t
(** Tag histogram in one pass, no tree built. *)

val max_depth : string -> int
(** Maximal element nesting depth in one pass. *)

val build_dom_source : ?keep_whitespace:bool -> ?max_depth:int -> source -> Dom.t
(** Assemble a DOM directly from the event feed — the document text is
    never materialized as one string. *)

val build_dom : ?keep_whitespace:bool -> ?max_depth:int -> string -> Dom.t
(** The DOM builder expressed as a fold over events; equivalent to
    {!Parser.parse_string} (tested against it). *)
