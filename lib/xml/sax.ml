(* Event-stream layer over a chunked byte feed.  Events are pulled from a
   refill function through a fixed sliding window, so a document streams
   through memory bounded by tree depth plus one chunk — never by document
   size.  The string entry points are thin wrappers over a string-backed
   feed; the lexical subset, entity handling and nesting validation are
   those of Parser (tested equivalent). *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

let default_chunk = 65536

(* The window must cover the longest fixed lookahead token, "<![CDATA[". *)
let min_window = 16

type source = {
  refill : bytes -> int -> int -> int;
  mutable buf : bytes;  (* sliding window *)
  mutable pos : int;  (* read cursor into [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable seen_eof : bool;  (* refill returned 0 *)
  mutable line : int;
  mutable col : int;
}

let source_of_refill ?(chunk = default_chunk) refill =
  let cap = max chunk min_window in
  {
    refill;
    buf = Bytes.create cap;
    pos = 0;
    len = 0;
    seen_eof = false;
    line = 1;
    col = 1;
  }

let source_of_channel ?chunk ic =
  source_of_refill ?chunk (fun buf off len -> input ic buf off len)

let source_of_string s =
  let chunk = min default_chunk (max (String.length s) 1) in
  let sent = ref 0 in
  source_of_refill ~chunk (fun buf off len ->
      let n = min len (String.length s - !sent) in
      Bytes.blit_string s !sent buf off n;
      sent := !sent + n;
      n)

let source_position st = (st.line, st.col)

let fail st message =
  raise (Parser.Parse_error { Parser.line = st.line; col = st.col; message })

(* Slide the unread tail to the front of the window and pull bytes until at
   least [n] are available or the feed is dry.  [n] never exceeds the
   window for the fixed tokens; a larger demand grows the window so the
   invariant stays local. *)
let ensure st n =
  if st.len - st.pos < n && not st.seen_eof then begin
    if st.pos > 0 then begin
      Bytes.blit st.buf st.pos st.buf 0 (st.len - st.pos);
      st.len <- st.len - st.pos;
      st.pos <- 0
    end;
    if n > Bytes.length st.buf then begin
      let grown = Bytes.create (max n (2 * Bytes.length st.buf)) in
      Bytes.blit st.buf 0 grown 0 st.len;
      st.buf <- grown
    end;
    let pulling = ref true in
    while !pulling && st.len - st.pos < n do
      let got = st.refill st.buf st.len (Bytes.length st.buf - st.len) in
      if got = 0 then begin
        st.seen_eof <- true;
        pulling := false
      end
      else st.len <- st.len + got
    done
  end

let available st n =
  ensure st n;
  st.len - st.pos >= n

(* The byte primitives below are the per-character cost of the whole event
   layer, so each tests the common in-window case before touching the
   refill machinery — the window check is one compare, and [available]
   (hence [ensure]) runs only at a chunk boundary. *)

let eof st = st.pos >= st.len && not (available st 1)

let peek st =
  if st.pos < st.len then Bytes.unsafe_get st.buf st.pos
  else if available st 1 then Bytes.unsafe_get st.buf st.pos
  else '\000'

let peek2 st =
  if available st 2 then Bytes.unsafe_get st.buf (st.pos + 1) else '\000'

let advance st =
  if st.pos < st.len || available st 1 then begin
    if Bytes.unsafe_get st.buf st.pos = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let looking_at st s =
  let n = String.length s in
  available st n
  &&
  let rec eq i =
    i >= n || (Bytes.unsafe_get st.buf (st.pos + i) = s.[i] && eq (i + 1))
  in
  eq 0

(* Bulk-copy the maximal run of bytes differing from [s1] and [s2] into
   [buf], refilling as the window drains.  Text and comment/CDATA bodies
   are the bulk of real documents; feeding them byte-wise through the full
   markup dispatch is what would make the streaming parser slower than the
   string one. *)
let scan_plain st buf s1 s2 =
  let scanning = ref true in
  while !scanning do
    if st.pos >= st.len && not (available st 1) then scanning := false
    else begin
      let b = st.buf and lim = st.len in
      let i = ref st.pos in
      while
        !i < lim
        &&
        let c = Bytes.unsafe_get b !i in
        c <> s1 && c <> s2
      do
        incr i
      done;
      if !i > st.pos then begin
        Buffer.add_subbytes buf b st.pos (!i - st.pos);
        for j = st.pos to !i - 1 do
          if Bytes.unsafe_get b j = '\n' then begin
            st.line <- st.line + 1;
            st.col <- 1
          end
          else st.col <- st.col + 1
        done;
        st.pos <- !i
      end;
      if !i < lim then scanning := false
    end
  done

let skip_str st s =
  if looking_at st s then begin
    String.iter (fun _ -> advance st) s;
    true
  end
  else false

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C, got %C" c (peek st));
  advance st

let expect_str st s = String.iter (fun c -> expect st c) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let b = Buffer.create 12 in
  while (not (eof st)) && is_name_char (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  Buffer.contents b

let add_codepoint buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_entity st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' || peek st = 'X' in
    if hex then advance st;
    let digits = Buffer.create 8 in
    while peek st <> ';' && not (eof st) do
      Buffer.add_char digits (peek st);
      advance st
    done;
    let digits = Buffer.contents digits in
    expect st ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "malformed character reference"
    in
    if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
    add_codepoint buf code
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      parse_entity st buf;
      go ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then
        fail st (Printf.sprintf "duplicate attribute %s" name);
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let scan_until st terminator what =
  let body = Buffer.create 32 in
  let t0 = terminator.[0] in
  let rec find () =
    scan_plain st body t0 t0;
    if looking_at st terminator then ()
    else if eof st then fail st (Printf.sprintf "unterminated %s" what)
    else begin
      (* a lone [t0] that does not open the terminator *)
      Buffer.add_char body (peek st);
      advance st;
      find ()
    end
  in
  find ();
  expect_str st terminator;
  Buffer.contents body

let skip_doctype st =
  let rec go () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        advance st;
        ignore (scan_until st "]" "DOCTYPE internal subset");
        go ()
      | '>' -> advance st
      | _ ->
        advance st;
        go ()
  in
  go ()

let is_all_whitespace s = String.for_all is_space s

let fold_source ?(keep_whitespace = false) ?(max_depth = 10_000) st ~init ~f =
  let acc = ref init in
  let emit e = acc := f !acc e in
  let stack = ref [] in
  let depth = ref 0 in
  let seen_root = ref false in
  (* prolog *)
  skip_ws st;
  if looking_at st "<?xml" then begin
    expect_str st "<?";
    ignore (parse_name st);
    ignore (scan_until st "?>" "XML declaration")
  end;
  let flush_text buf =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.length s > 0 && (keep_whitespace || not (is_all_whitespace s))
    then
      if !stack <> [] then emit (Text s)
      else if not (is_all_whitespace s) then fail st "text outside the root element"
  in
  let text_buf = Buffer.create 64 in
  (* Dispatch on the first two bytes; anything else is a text run handled
     by the bulk scanner.  The [`!`] arm falls through to [start_tag] on
     unknown markup so errors surface exactly as in the chained version
     ("expected a name" at the '!'). *)
  let start_tag () =
    flush_text text_buf;
    if !stack = [] && !seen_root then fail st "content after root element";
    advance st;
    let tag = parse_name st in
    let attrs = parse_attributes st in
    skip_ws st;
    seen_root := true;
    if !depth + 1 > max_depth then
      fail st
        (Printf.sprintf "element nesting deeper than %d (max_depth)" max_depth);
    if skip_str st "/>" then begin
      emit (Start_element { tag; attrs });
      emit (End_element tag)
    end
    else begin
      expect st '>';
      emit (Start_element { tag; attrs });
      stack := tag :: !stack;
      incr depth
    end
  in
  let rec loop () =
    if eof st then ()
    else begin
      (match peek st with
      | '<' -> (
        match peek2 st with
        | '!' ->
          if looking_at st "<!--" then begin
            flush_text text_buf;
            expect_str st "<!--";
            emit (Comment (scan_until st "-->" "comment"))
          end
          else if looking_at st "<![CDATA[" then begin
            if !stack = [] then fail st "CDATA outside the root element";
            expect_str st "<![CDATA[";
            Buffer.add_string text_buf (scan_until st "]]>" "CDATA section")
          end
          else if looking_at st "<!DOCTYPE" then begin
            if !seen_root then fail st "DOCTYPE after the root element";
            expect_str st "<!DOCTYPE";
            skip_doctype st
          end
          else start_tag ()
        | '?' ->
          flush_text text_buf;
          expect_str st "<?";
          let target = parse_name st in
          skip_ws st;
          let data = scan_until st "?>" "processing instruction" in
          emit (Pi (target, data))
        | '/' ->
          flush_text text_buf;
          expect_str st "</";
          let tag = parse_name st in
          skip_ws st;
          expect st '>';
          (match !stack with
          | top :: rest when top = tag ->
            stack := rest;
            decr depth;
            emit (End_element tag)
          | top :: _ ->
            fail st
              (Printf.sprintf "mismatched end tag: <%s> closed by </%s>" top
                 tag)
          | [] -> fail st "end tag without open element")
        | _ -> start_tag ())
      | '&' ->
        if !stack = [] then fail st "entity outside the root element";
        parse_entity st text_buf
      | _ -> scan_plain st text_buf '<' '&');
      loop ()
    end
  in
  loop ();
  flush_text text_buf;
  if !stack <> [] then fail st "unterminated element";
  if not !seen_root then fail st "expected root element";
  !acc

let iter_source ?keep_whitespace ?max_depth st ~f =
  fold_source ?keep_whitespace ?max_depth st ~init:() ~f:(fun () e -> f e)

let fold ?keep_whitespace ?max_depth src ~init ~f =
  fold_source ?keep_whitespace ?max_depth (source_of_string src) ~init ~f

let iter ?keep_whitespace ?max_depth src ~f =
  fold ?keep_whitespace ?max_depth src ~init:() ~f:(fun () e -> f e)

let count_elements src =
  let tbl = Hashtbl.create 64 in
  iter src ~f:(function
    | Start_element { tag; _ } ->
      Hashtbl.replace tbl tag (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tag))
    | End_element _ | Text _ | Comment _ | Pi _ -> ());
  tbl

let max_depth src =
  let depth = ref 0 and best = ref 0 in
  iter src ~f:(function
    | Start_element _ ->
      incr depth;
      if !depth > !best then best := !depth
    | End_element _ -> decr depth
    | Text _ | Comment _ | Pi _ -> ());
  !best

let build_dom_source ?keep_whitespace ?max_depth st =
  (* Children are collected in reverse per open node and attached with one
     bulk append when the node closes, keeping wide elements linear. *)
  let doc = Dom.document () in
  let stack = ref [ (doc, ref []) ] in
  let add n =
    match !stack with
    | (_, kids) :: _ -> kids := n :: !kids
    | [] -> assert false
  in
  iter_source ?keep_whitespace ?max_depth st ~f:(function
    | Start_element { tag; attrs } ->
      let e = Dom.element ~attrs tag in
      add e;
      stack := (e, ref []) :: !stack
    | End_element _ -> (
      match !stack with
      | (e, kids) :: rest ->
        Dom.append_children e (List.rev !kids);
        stack := rest
      | [] -> assert false)
    | Text s -> add (Dom.text s)
    | Comment s -> add (Dom.comment s)
    | Pi (t, d) -> add (Dom.pi t d));
  (match !stack with
  | [ (_, kids) ] -> Dom.append_children doc (List.rev !kids)
  | _ -> assert false);
  doc

let build_dom ?keep_whitespace ?max_depth src =
  build_dom_source ?keep_whitespace ?max_depth (source_of_string src)
