type t = {
  serial : int;
  mutable kind : kind;
  mutable parent : t option;
  mutable children : t list;
}

and kind =
  | Document
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = { mutable tag : string; mutable attrs : (string * string) list }

let next_serial =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let make kind = { serial = next_serial (); kind; parent = None; children = [] }

let document () = make Document
let element ?(attrs = []) tag = make (Element { tag; attrs })
let text s = make (Text s)
let comment s = make (Comment s)
let pi target data = make (Pi (target, data))

let tag n = match n.kind with Element e -> e.tag | Document | Text _ | Comment _ | Pi _ -> ""

let attr n name =
  match n.kind with
  | Element e -> List.assoc_opt name e.attrs
  | Document | Text _ | Comment _ | Pi _ -> None

let set_attr n name value =
  match n.kind with
  | Element e -> e.attrs <- (name, value) :: List.remove_assoc name e.attrs
  | Document | Text _ | Comment _ | Pi _ ->
    invalid_arg "Dom.set_attr: not an element"

let is_element n = match n.kind with Element _ -> true | _ -> false
let is_text n = match n.kind with Text _ -> true | _ -> false

let equal a b = a.serial = b.serial

let append_child parent child =
  (match child.parent with
  | Some _ -> invalid_arg "Dom.append_child: child already attached"
  | None -> ());
  child.parent <- Some parent;
  parent.children <- parent.children @ [ child ]

let append_children parent children =
  List.iter
    (fun c ->
      match c.parent with
      | Some _ -> invalid_arg "Dom.append_children: child already attached"
      | None -> c.parent <- Some parent)
    children;
  parent.children <- parent.children @ children

let insert_child parent ~pos child =
  (match child.parent with
  | Some _ -> invalid_arg "Dom.insert_child: child already attached"
  | None -> ());
  let pos = max 0 (min pos (List.length parent.children)) in
  let rec splice i = function
    | rest when i = pos -> child :: rest
    | [] -> [ child ]
    | c :: rest -> c :: splice (i + 1) rest
  in
  child.parent <- Some parent;
  parent.children <- splice 0 parent.children

let remove_child parent child =
  if not (List.exists (equal child) parent.children) then
    invalid_arg "Dom.remove_child: not a child";
  parent.children <- List.filter (fun c -> not (equal c child)) parent.children;
  child.parent <- None

let child_index n =
  match n.parent with
  | None -> invalid_arg "Dom.child_index: no parent"
  | Some p ->
    let rec find i = function
      | [] -> invalid_arg "Dom.child_index: detached"
      | c :: rest -> if equal c n then i else find (i + 1) rest
    in
    find 0 p.children

let degree n = List.length n.children
let nth_child n i = List.nth_opt n.children i

let rec iter_preorder f n =
  f n;
  List.iter (iter_preorder f) n.children

let rec fold_preorder f acc n =
  let acc = f acc n in
  List.fold_left (fold_preorder f) acc n.children

let preorder n = List.rev (fold_preorder (fun acc x -> x :: acc) [] n)
let elements n = List.filter is_element (preorder n)
let size n = fold_preorder (fun acc _ -> acc + 1) 0 n

let rec depth_of n = match n.parent with None -> 0 | Some p -> 1 + depth_of p

let ancestors n =
  let rec go acc n =
    match n.parent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] n

let descendants n = match preorder n with [] -> [] | _ :: rest -> rest

let is_ancestor ~anc ~desc =
  let rec go n =
    match n.parent with
    | None -> false
    | Some p -> equal p anc || go p
  in
  go desc

let document_order ~root a b =
  if equal a b then 0
  else begin
    let pos_a = ref (-1) and pos_b = ref (-1) and i = ref 0 in
    iter_preorder
      (fun n ->
        if equal n a then pos_a := !i;
        if equal n b then pos_b := !i;
        incr i)
      root;
    if !pos_a < 0 || !pos_b < 0 then
      invalid_arg "Dom.document_order: node not under root";
    Stdlib.compare !pos_a !pos_b
  end

let root_element doc =
  match List.find_opt is_element doc.children with
  | Some e -> e
  | None -> raise Not_found

let text_content n =
  let buf = Buffer.create 64 in
  iter_preorder
    (fun x -> match x.kind with Text s -> Buffer.add_string buf s | _ -> ())
    n;
  Buffer.contents buf

let rec clone n =
  let kind =
    match n.kind with
    | Document -> Document
    | Element e -> Element { tag = e.tag; attrs = e.attrs }
    | (Text _ | Comment _ | Pi _) as k -> k
  in
  let copy = make kind in
  append_children copy (List.map clone n.children);
  copy

let pp_kind ppf n =
  match n.kind with
  | Document -> Format.pp_print_string ppf "#document"
  | Element e -> Format.fprintf ppf "<%s>" e.tag
  | Text s -> Format.fprintf ppf "#text(%S)" s
  | Comment s -> Format.fprintf ppf "#comment(%S)" s
  | Pi (t, _) -> Format.fprintf ppf "<?%s?>" t
