(** Mutable DOM-style tree for XML documents.

    The paper's setting is a parsed XML document exposed as a tree of
    elements, attributes and text (DOM Level 2); numbering schemes label the
    element tree.  This module provides that substrate: a compact mutable
    tree with parent pointers, child insertion/removal at arbitrary
    positions (needed by the structural-update experiments) and the standard
    traversals.

    Every node carries a process-unique serial number, stable across
    structural edits, used as a hashtable key by the numbering layers. *)

type t = {
  serial : int;  (** unique, stable id of the node *)
  mutable kind : kind;
  mutable parent : t option;
  mutable children : t list;
}

and kind =
  | Document
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

and element = { mutable tag : string; mutable attrs : (string * string) list }

(** {1 Construction} *)

val document : unit -> t
val element : ?attrs:(string * string) list -> string -> t
val text : string -> t
val comment : string -> t
val pi : string -> string -> t

(** {1 Accessors} *)

val tag : t -> string
(** Tag of an element, [""] for other kinds. *)

val attr : t -> string -> string option
val set_attr : t -> string -> string -> unit
val is_element : t -> bool
val is_text : t -> bool

val text_content : t -> string
(** Concatenated text of all descendant text nodes. *)

val root_element : t -> t
(** The single element child of a [Document] node.
    @raise Not_found if there is none. *)

(** {1 Structure edits} *)

val append_child : t -> t -> unit
(** [append_child parent child]. @raise Invalid_argument if [child] already
    has a parent.  Costs O(degree) — builders appending many siblings should
    collect them and call {!append_children} once. *)

val append_children : t -> t list -> unit
(** [append_children parent children] appends [children] in order, in
    O(degree + |children|) total — the bulk form parsers use to keep wide
    nodes linear.  @raise Invalid_argument if any child already has a
    parent. *)

val insert_child : t -> pos:int -> t -> unit
(** [insert_child parent ~pos child] inserts [child] so that it becomes the
    [pos]-th child (0-based); [pos] is clamped to [0 .. degree]. *)

val remove_child : t -> t -> unit
(** [remove_child parent child] detaches [child].
    @raise Invalid_argument if [child] is not a child of [parent]. *)

val child_index : t -> int
(** 0-based position among the parent's children.
    @raise Invalid_argument on a parentless node. *)

(** {1 Traversal} *)

val degree : t -> int
val nth_child : t -> int -> t option
val iter_preorder : (t -> unit) -> t -> unit
val fold_preorder : ('a -> t -> 'a) -> 'a -> t -> 'a
val preorder : t -> t list
(** All nodes of the subtree in document order, root first. *)

val elements : t -> t list
(** Element nodes of the subtree in document order (includes the root if it
    is an element). *)

val size : t -> int
val depth_of : t -> int
(** Edge distance from [t] up to its root. *)

val ancestors : t -> t list
(** Strict ancestors, nearest first. *)

val descendants : t -> t list
(** Strict descendants in document order. *)

val is_ancestor : anc:t -> desc:t -> bool
(** Strict ancestorship via parent pointers. *)

val document_order : root:t -> t -> t -> int
(** Preorder comparison of two nodes under [root]; 0 iff same node. O(n). *)

val equal : t -> t -> bool
(** Physical identity (serial equality). *)

val clone : t -> t
(** Deep copy of a subtree with fresh serials; the copy is detached. *)

val pp_kind : Format.formatter -> t -> unit
