(** Hand-written XML 1.0 parser producing {!Dom} trees.

    Covers the subset any DOM build of the paper's era exposes: elements,
    attributes (single- or double-quoted), character data, CDATA sections,
    comments, processing instructions, the five predefined entities plus
    decimal/hexadecimal character references, an XML declaration, and a
    DOCTYPE declaration (skipped, including an internal subset).  Namespaces
    are not interpreted; prefixed names are kept verbatim, which is all the
    numbering schemes need. *)

type error = { line : int; col : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_string : ?keep_whitespace:bool -> ?max_depth:int -> string -> Dom.t
(** [parse_string s] parses a complete document and returns its [Document]
    node.  Whitespace-only text between elements is dropped unless
    [keep_whitespace] is [true] (default [false]).  Element nesting beyond
    [max_depth] (default 10000) is rejected, which bounds the parser's
    recursion: on any byte string whatsoever the parser either returns a
    tree or raises [Parse_error] — never [Stack_overflow] or a stdlib
    exception.
    @raise Parse_error on malformed input. *)

val parse_file : ?keep_whitespace:bool -> ?max_depth:int -> string -> Dom.t
(** [parse_file path] reads and parses the file at [path]. *)
