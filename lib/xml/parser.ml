type error = { line : int; col : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

(* Cursor over the input string with line/column tracking for errors. *)
type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  keep_whitespace : bool;
  max_depth : int;
  mutable depth : int;
}

let fail st message =
  raise (Parse_error { line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C, got %C" c (peek st));
  advance st

let expect_str st s =
  String.iter (fun c -> expect st c) s

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_str st s =
  if looking_at st s then begin
    String.iter (fun _ -> advance st) s;
    true
  end
  else false

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* &lt; &gt; &amp; &apos; &quot; &#NNN; &#xHHH; *)
let parse_entity st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' || peek st = 'X' in
    if hex then advance st;
    let start = st.pos in
    while peek st <> ';' && not (eof st) do
      advance st
    done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "malformed character reference"
    in
    if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
    (* UTF-8 encode. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      parse_entity st buf;
      go ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then
        fail st (Printf.sprintf "duplicate attribute %s" name);
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_until st terminator what =
  let rec go () =
    if eof st then fail st (Printf.sprintf "unterminated %s" what)
    else if skip_str st terminator then ()
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_comment st =
  (* Cursor is just past "<!--". *)
  let start = st.pos in
  let rec find () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let body = String.sub st.src start (st.pos - start) in
  expect_str st "-->";
  body

let parse_pi st =
  (* Cursor is just past "<?". *)
  let target = parse_name st in
  skip_ws st;
  let start = st.pos in
  let rec find () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let data = String.sub st.src start (st.pos - start) in
  expect_str st "?>";
  (target, data)

let parse_cdata st =
  (* Cursor is just past "<![CDATA[". *)
  let start = st.pos in
  let rec find () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let body = String.sub st.src start (st.pos - start) in
  expect_str st "]]>";
  body

(* DOCTYPE is skipped; the internal subset is bracket-matched. *)
let skip_doctype st =
  let rec go () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        advance st;
        skip_until st "]" "DOCTYPE internal subset";
        go ()
      | '>' -> advance st
      | _ ->
        advance st;
        go ()
  in
  go ()

let is_all_whitespace s = String.for_all is_space s

(* Siblings accumulate in reverse and are attached with one bulk
   [Dom.append_children] per parent — per-child [append_child] is O(degree)
   and turns wide elements quadratic. *)
let rec parse_content st (parent : Dom.t) =
  Dom.append_children parent (parse_siblings st [])

and parse_siblings st acc =
  if eof st then List.rev acc
  else if looking_at st "</" then List.rev acc
  else if looking_at st "<!--" then begin
    expect_str st "<!--";
    let body = parse_comment st in
    parse_siblings st (Dom.comment body :: acc)
  end
  else if looking_at st "<![CDATA[" then begin
    expect_str st "<![CDATA[";
    let body = parse_cdata st in
    parse_siblings st (Dom.text body :: acc)
  end
  else if looking_at st "<?" then begin
    expect_str st "<?";
    let target, data = parse_pi st in
    parse_siblings st (Dom.pi target data :: acc)
  end
  else if peek st = '<' then begin
    let child = parse_element st in
    parse_siblings st (child :: acc)
  end
  else begin
    let buf = Buffer.create 32 in
    let rec go () =
      if eof st || peek st = '<' then ()
      else if peek st = '&' then begin
        parse_entity st buf;
        go ()
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        go ()
      end
    in
    go ();
    let s = Buffer.contents buf in
    let acc =
      if String.length s > 0 && (st.keep_whitespace || not (is_all_whitespace s))
      then Dom.text s :: acc
      else acc
    in
    parse_siblings st acc
  end

and parse_element st =
  (* Recursion is bounded so hostile input exhausts the depth budget with a
     clean Parse_error instead of the process stack. *)
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    fail st
      (Printf.sprintf "element nesting deeper than %d (max_depth)" st.max_depth);
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attributes st in
  let node = Dom.element ~attrs tag in
  skip_ws st;
  let node =
    if skip_str st "/>" then node
    else begin
      expect st '>';
      parse_content st node;
      expect_str st "</";
      let close = parse_name st in
      if close <> tag then
        fail st
          (Printf.sprintf "mismatched end tag: <%s> closed by </%s>" tag close);
      skip_ws st;
      expect st '>';
      node
    end
  in
  st.depth <- st.depth - 1;
  node

let parse_prolog st doc =
  skip_ws st;
  if looking_at st "<?xml" then begin
    expect_str st "<?";
    let _target, _data = parse_pi st in
    ()
  end;
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then begin
      expect_str st "<!--";
      Dom.append_child doc (Dom.comment (parse_comment st));
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      expect_str st "<!DOCTYPE";
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      expect_str st "<?";
      let target, data = parse_pi st in
      Dom.append_child doc (Dom.pi target data);
      misc ()
    end
  in
  misc ()

let parse_string ?(keep_whitespace = false) ?(max_depth = 10_000) src =
  let st =
    { src; pos = 0; line = 1; col = 1; keep_whitespace; max_depth; depth = 0 }
  in
  let doc = Dom.document () in
  parse_prolog st doc;
  skip_ws st;
  if peek st <> '<' then fail st "expected root element";
  let root = parse_element st in
  Dom.append_child doc root;
  (* Trailing misc: comments, PIs, whitespace. *)
  let rec trailer () =
    skip_ws st;
    if looking_at st "<!--" then begin
      expect_str st "<!--";
      Dom.append_child doc (Dom.comment (parse_comment st));
      trailer ()
    end
    else if looking_at st "<?" then begin
      expect_str st "<?";
      let target, data = parse_pi st in
      Dom.append_child doc (Dom.pi target data);
      trailer ()
    end
    else if not (eof st) then fail st "content after root element"
  in
  trailer ();
  doc

let parse_file ?keep_whitespace ?max_depth path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ?keep_whitespace ?max_depth src
