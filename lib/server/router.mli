(** Collection router: one front-end socket over N independent shard
    processes, each a full {!Service} (own WAL, snapshot store, pools and
    caches), speaking the same length-prefixed {!Protocol} on both sides.

    The paper's area-confined-update property (Section 3.2) makes
    documents fully independent, so the tier needs no cross-shard
    transactions: every single-document verb (UPDATE, CHECK, QUERYD,
    COUNTD, ADDDOC, DROPDOC) forwards to the owning shard by
    {!Shard_map} lookup, and the collection-wide verbs (QUERY, COUNT,
    EXPLAIN, DOCS) scatter to every shard with bounded fan-out
    concurrency and a per-shard deadline, then merge.

    {b Merge rules} (deterministic, shard-index order — pinned by the
    byte-equivalence tests):
    - [COUNT]: [v=] sums the shard versions, [total=] sums the shard
      totals, per-document [name=n] tokens concatenate in shard order
      (capped; ["..."] marks elision).
    - [QUERY]: as COUNT, plus the merged [ids] listing: shard-order
      concatenation capped at the same 32 identifiers a shard lists.
    - [EXPLAIN]: [v=] line, then each shard's plan under a
      ["shard <i>"] heading (["shard <i> unavailable"] for a missing
      one).
    - [DOCS]: [v=], total [docs=], and per-shard [shard<i>=n] counts —
      names are not listed; a 100k-document corpus must not blow the
      frame cap.

    {b Degradation contract.}  A shard that is down or misses its
    deadline removes its connection from the pool (a later request
    reconnects with {!Client.connect_retry}'s bounded backoff).  Scatter
    replies from the remaining shards still merge, flagged with a
    trailing [partial=<missing>/<shards>] token — [OK] with [partial=]
    means {e degraded but serving}.  Single-document verbs owned by live
    shards are unaffected; those owned by the dead shard answer [ERR].

    {b Staleness.}  Each shard serves snapshot-isolated reads at its own
    version; a scatter observes a vector of per-shard snapshots, never a
    cross-shard point in time.  The merged [v=] (the version sum) is
    monotonic: it can only grow when any shard's state advances.

    {b Rebalance} ([REBALANCE <doc> <target>]): the document's
    artifacts are pulled from the owning shard over the replication FILE
    machinery and staged on the target with chunked [ADOPT]s while
    traffic continues; then the router takes its exclusive gate (new
    requests wait, in-flight ones drain), ships whatever journal tail
    accrued meanwhile, commits the adoption, drops the source copy and
    flips the map.  The reply reports the measured exclusive pause. *)

type config = {
  socket_path : string;  (** the router's own Unix socket *)
  shard_sockets : string array;  (** shard service sockets, shard order *)
  fanout : int;  (** concurrent shard calls per scatter; 0 = all shards *)
  shard_deadline_ms : int;
      (** per-shard call deadline; an expiring call marks the shard down
          and poisons its pooled connection; 0 disables *)
  connect_retries : int;
      (** reconnect attempts (bounded backoff) when a pooled connection
          is found dead *)
}

val default_config :
  socket_path:string -> shard_sockets:string array -> unit -> config
(** fanout 0 (= all shards), shard_deadline_ms 2000, connect_retries 3. *)

val validate_config : config -> (unit, string) result

type t

val start : config -> t
(** Bind the router socket and begin serving.  Shards are contacted
    lazily — a router can boot before its shards — except for one eager
    catalog sweep: a [DOCS] scatter seeds the {!Shard_map} overrides so
    documents placed off-hash (e.g. loaded by [serve --doc]) route
    correctly from the first request. *)

val stop : t -> unit
val wait : t -> unit
val metrics : t -> Metrics.t
val shard_map : t -> Shard_map.t

(** {1 Pure merge kernels}

    Exposed for the scatter-gather correctness tests: the router's
    replies are exactly these functions over the per-shard reply bodies.
    [replies] are [(shard_index, ok_body)] pairs in shard-index order;
    [missing] are the shard indexes that were down or timed out. *)

val merge_count :
  shards:int -> replies:(int * string) list -> missing:int list -> string

val merge_query :
  shards:int -> replies:(int * string) list -> missing:int list -> string

val merge_explain :
  shards:int -> replies:(int * string) list -> missing:int list -> string

val merge_docs :
  shards:int -> replies:(int * string) list -> missing:int list -> string
