(** Per-request metrics registry of the document service.

    One mutex-protected instance is shared by every session and worker
    thread: request/outcome counters per protocol verb, a log-scale
    latency histogram (power-of-two nanosecond buckets, so percentile
    estimates cost O(buckets) and recording is O(1)), and gauges probed at
    dump time (queue depth, snapshot version and age).  The [STATS]
    protocol verb renders {!render}. *)

type t

val create : unit -> t

val record : t -> verb:string -> outcome:[ `Ok | `Err | `Busy ] ->
  latency_ns:float -> unit
(** Account one finished request.  Latency is measured by the session from
    frame-decoded to reply-written; BUSY rejections are counted with their
    (tiny) latency too, so overload shows up in the rate, not the tail. *)

val record_dropped : t -> verb:string -> exn -> unit
(** Account one exception that escaped a pool job (scheduler or executor).
    Every occurrence is counted; the first occurrence per verb is also
    logged to stderr — jobs must not raise, so a nonzero counter is a bug
    signal, never silently eaten. *)

val dropped : t -> int
(** Total exceptions recorded by {!record_dropped} since the last reset. *)

val record_session_error : t -> unit
(** Account one session that ended exceptionally — a peer that dropped
    mid-frame or vanished before reading its reply (EPIPE on the write).
    Such a session closes alone; the counter is how the event stays
    observable ([session_errors=] in STATS). *)

val session_errors : t -> int

val set_queue_probe : t -> (unit -> int) -> unit
(** Gauge: current depth of the admission queue. *)

val set_snapshot_probe : t -> (unit -> int * float) -> unit
(** Gauge: (version, published-at unix time) of the live snapshot. *)

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

val set_cache_probe : t -> (unit -> cache_stats) -> unit
(** Gauge: result-cache counters; rendered as [cache_*] keys (hit rate
    included) when set. *)

val set_domain_probe : t -> (unit -> float array) -> unit
(** Gauge: per-domain busy time in seconds accumulated by the read
    executor; rendered as [domains=N domain_busy_ms=a,b,...] when set. *)

type write_stats = {
  batches : int;  (** commit batches fsynced (group commits) *)
  records : int;  (** update records across those batches *)
  max_batch : int;  (** largest single batch *)
  flush_ns : float;  (** total time in append+fsync, nanoseconds *)
  publish_incremental : int;  (** snapshots derived by clone + replay *)
  publish_full : int;  (** snapshots re-captured via the sidecar *)
  areas_rebuilt : int;  (** area renumberings across incremental publishes *)
  rotations : int;  (** WAL segment rotations (checkpoints cut) *)
}

val set_write_probe : t -> (unit -> write_stats) -> unit
(** Gauge: group-commit pipeline counters, aggregated across every commit
    group; rendered as [wal_*] (with a derived mean batch size) and
    [publish_*] keys when set. *)

type pipeline_group_stats = {
  gq_depth : int;  (** records parked in this group's commit queue now *)
  g_batches : int;  (** batches this group's leader fsynced *)
  g_records : int;  (** records across those batches *)
  g_handoffs : int;  (** idle→draining transitions of the group's leader *)
  g_lock_wait : int array;
      (** log2-ns histogram ({!hist_buckets} wide) of time writers spent
          waiting for this group's write mutex *)
  g_fsync_wait : int array;
      (** log2-ns histogram of per-document batch append+fsync time *)
}

val set_pipeline_probe : t -> (unit -> pipeline_group_stats array) -> unit
(** Gauge: per-commit-group contention counters, one slot per group;
    rendered as a [commit_groups=N leader_handoffs=T] summary line plus one
    [group=k ...] line per group (queue depth, batch/record counters,
    lock-wait and fsync-wait p50/p99 and sparse histograms) when set. *)

(** {1 Histogram helpers}

    The same power-of-two-nanosecond bucketing the request-latency
    histogram uses, exposed so subsystems can maintain their own wait
    histograms without taking the registry mutex per sample. *)

val hist_buckets : int
(** Width every histogram array must have (62). *)

val hist_bucket : float -> int
(** [hist_bucket ns]: index of the bucket covering a duration in
    nanoseconds — bucket i counts samples in [2^i, 2^(i+1)). *)

val hist_percentile : int array -> float -> float
(** [hist_percentile h q]: upper bound (ns) of the bucket holding the
    q-quantile sample; 0 for an empty histogram. *)

type planner_stats = {
  chain : int;  (** queries executed as chain structural-join pipelines *)
  twig : int;  (** queries executed by the twig semijoin *)
  engine : int;  (** queries that fell back to the full evaluator *)
  pruned : int;  (** queries refuted by the DataGuide (answered empty) *)
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  plan_entries : int;
}

val set_planner_probe : t -> (unit -> planner_stats) -> unit
(** Gauge: query-planner strategy and plan-cache counters; rendered as
    [planner_*] and [plan_cache_*] keys (hit rate included) when set. *)

type repl_stats = {
  role : string;  (** ["primary"], ["replica"], or ["promoted"] *)
  epoch : int;  (** fencing generation this node serves under *)
  served_requests : int;  (** REPL-* requests answered (either side) *)
  served_bytes : int;  (** journal bytes shipped to followers *)
  lag_versions : int;  (** follower: primary version − local version *)
  lag_bytes : int;  (** follower: journal bytes fetched but not yet known *)
  last_applied_seq : int;  (** follower: Σ applied sequence over docs *)
  reconnects : int;  (** follower: times the pull connection was rebuilt *)
  refused_epoch : int;  (** follower: frames refused from a stale epoch *)
}

val set_repl_probe : t -> (unit -> repl_stats) -> unit
(** Gauge: replication counters; rendered as [repl_*] keys when set (the
    follower-side keys only for non-primary roles). *)

type router_stats = {
  shard_up : bool array;  (** per-shard liveness, shard order *)
  shard_docs : int array;  (** catalogued documents per shard *)
  inflight : int;  (** scatter sub-requests currently in flight *)
  scatters : int;  (** scatter-gather queries served *)
  partials : int;  (** of which answered degraded (>= 1 shard missing) *)
  fanout_hist : int array;
      (** histogram of live fan-out per scatter: slot k counts scatters
          that reached exactly k shards *)
  rebalances : int;  (** completed document moves *)
  rebalance_pause_ms : float;  (** total measured write-pause time *)
}

val set_router_probe : t -> (unit -> router_stats) -> unit
(** Gauge: collection-router counters; rendered as [router_*] keys when
    set. *)

(** {1 Reading} *)

type summary = {
  requests : int;
  ok : int;
  err : int;
  busy : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

val summary : t -> summary
(** Percentiles are upper bucket bounds of the histogram: exact to within
    a factor of 2, which is what a log-scale histogram buys. *)

val percentile : t -> float -> float
(** [percentile t 0.95]: latency bound in ns below which that fraction of
    requests completed; 0 when nothing was recorded. *)

val by_verb : t -> (string * int * int * int) list
(** Per verb: (verb, ok, err, busy), verbs sorted. *)

val render : t -> string
(** Multi-line [k=v] dump: totals, per-verb counters, latency percentiles,
    queue depth, snapshot version/age.  The [STATS] reply body. *)

val reset : t -> unit
