(** Immutable read views of the hosted collection.

    The service's reads never lock: each published snapshot is a
    self-contained copy of every document — its own DOM clone, its own
    restored numbering (bit-identical identifiers, via the {!Ruid.Persist}
    sidecar round-trip, so the paper's update locality is preserved rather
    than renumbered away), and a prebuilt {!Rxpath.Engine_ruid} over it.
    Publication is a single [Atomic.set]; readers holding the previous
    snapshot keep a consistent world until they drop it.

    An update clones only the document it touched ({!replace_doc});
    untouched documents are shared structurally between consecutive
    snapshots, so publish cost is O(affected document), not O(collection).

    Several commit pipelines may publish concurrently: each derives a
    successor from the snapshot it re-reads, stamps it with {!next_stamp},
    and installs it with [Atomic.compare_and_set], retrying from the new
    current on a lost race.  Pipelines own disjoint document sets, so the
    per-document copies never conflict — only the stamp is contended.

    A captured snapshot is immutable and safe to read from any number of
    threads {e and domains} concurrently: every constituent structure
    (DOM clone, numbering tables, document-order index, tag postings,
    per-tag lists) is completed inside {!capture}/{!replace_doc} before
    publication, and evaluation never writes — the invariant the parallel
    read executor relies on. *)

type doc = private {
  name : string;
  root : Rxml.Dom.t;  (** this snapshot's private clone *)
  r2 : Ruid.Ruid2.t;  (** numbering restored over the clone *)
  engine : Rxpath.Eval.engine;
  planner : Rxpath.Planner.t option;
      (** cost-based query planner over this copy, present when the service
          runs with planning enabled.  Its fallback engine {e is} [engine]
          (they share one document-order index); its DataGuide advances
          incrementally across {!advance} publications. *)
  doc_version : int;
      (** version of the last update folded into {e this} copy — the
          per-document publication cursor.  The write path filters each
          pending update against its own document's cursor, never the
          global [version] stamp: a full-fallback capture of one document
          can run ahead of the global counter without ever causing another
          document's queued update to be skipped. *)
  live : bool;
      (** [false] once the document was retired ({!retire_doc}): the slot
          survives — indices never shift — but the document stops being
          listed, queried or checked *)
}

type t = private {
  version : int;
      (** strictly increasing publication stamp, at least the version of
          every update folded into any document (result-cache keys embed
          it, so no two distinct snapshots may share a stamp) *)
  published_at : float;  (** unix time of publication *)
  docs : doc array;
  index : int Map.Make(String).t;
      (** name -> slot, shared structurally across publications; retains
          retired names (they address the revivable slot) *)
}

val capture :
  ?planner:Rxpath.Planner.shared -> version:int ->
  (string * Ruid.Ruid2.t) list -> t
(** Clone + restore every master document, every cursor at [version].
    Used once at startup.  With [?planner], every document gets a query
    planner built over the shared plan cache and strategy counters (one
    [shared] serves the whole collection across all publications). *)

val replace_doc :
  t -> version:int -> doc_version:int -> doc_index:int -> Ruid.Ruid2.t -> t
(** Copy-on-write publication: new snapshot sharing every document except
    [doc_index], which is re-captured from the (just-updated) master with
    its cursor at [doc_version] — the version of the last operation the
    master has applied, which may trail the global [version] stamp. *)

val next_stamp : t -> floor:int -> int
(** The stamp a successor of this snapshot must carry: strictly above
    [version] and at least [floor] (the highest update version the
    successor folds in).  Concurrent publishers recompute it against the
    freshly re-read predecessor on every CAS retry, which keeps stamps
    strictly increasing across whichever publication wins. *)

val advance :
  t -> version:int -> (int * Rstorage.Wal.op list * int) list -> t * int
(** Incremental publication: for each [(doc_index, ops, doc_version)],
    derive the new copy from {e this} snapshot's copy — {!Ruid.Ruid2.clone}
    plus a replay of the batch's operations — instead of the sidecar
    serialize + reparse of {!replace_doc}, leaving the document's cursor at
    [doc_version].  [Rstorage.Wal.apply] is deterministic, so the result is
    bit-identical to re-capturing the master that applied the same
    operations, at the cost of the touched areas only.  Untouched documents
    (cursors included) are shared as in {!replace_doc}.  Planner documents
    advance their DataGuide incrementally: each operation's label-path
    delta is computed against the pre-apply tree and folded into a clone
    of the previous guide (readers of the previous snapshot keep theirs).  Returns the
    snapshot and the total number of area renumberings performed (the
    rebuilt surface).
    @raise Rstorage.Wal.Replay_error if an operation does not apply —
    callers fall back to {!replace_doc}. *)

val add_doc :
  t -> ?planner:Rxpath.Planner.shared -> version:int -> name:string ->
  Ruid.Ruid2.t -> t * int
(** Publish a snapshot hosting one more document, captured from [master]
    with its cursor at [version]; returns the new snapshot and the slot
    the document landed in.  A name mapping to a {e retired} slot revives
    that slot in place (the rebalance round trip); every other document's
    index is unchanged.
    @raise Invalid_argument when the name is already live. *)

val retire_doc : t -> version:int -> doc_index:int -> t
(** Publish a snapshot with slot [doc_index] marked dead.  The slot's
    memory is retained until a revival — the price of never shifting an
    index out from under the commit queue. *)

val find : t -> string -> (int * doc) option
(** Live documents only; a retired name answers [None]. *)

val doc_names : t -> string list
(** Live documents only. *)

val live_docs : t -> doc list
(** The live documents, slot order (= document registration order). *)

val parse : string -> Rxpath.Ast.union_path
(** Parse an XPath union expression the way {!count}/{!query} do.
    @raise Failure on an unparsable expression. *)

val query_doc : doc -> Rxpath.Ast.union_path -> Rxml.Dom.t list
(** Matching nodes of one document, document order.  Parsing and
    evaluation split so the service can evaluate per document (the result
    cache keys per document) while parsing at most once per request.
    Routes through the planner when the document carries one (identical
    node sets either way — property-tested); the engine otherwise. *)

val count_doc : doc -> Rxpath.Ast.union_path -> int

val explain_doc : doc -> string -> (string, string) result
(** Rendered query plan with per-operator estimated vs. actual
    cardinalities and timings ({!Rxpath.Planner.explain}); [Error] when the
    document has no planner (service running with planning off).
    Executes the query (uncached) to measure actuals. *)

val count : t -> string -> (string * int) list
(** Per-document hit counts of an XPath expression; every document listed
    (zero counts included — the torn-read tests need the stable shape).
    @raise Failure on an unparsable expression. *)

val query : t -> string -> (string * Rxml.Dom.t list) list
(** Matching nodes per document, documents with no match omitted. *)

val check : t -> string -> unit
(** Deep-verify the named document's numbering ({!Ruid.Ruid2.check}): the
    torn-read canary — it fails loudly on any half-published state.
    @raise Failure if the snapshot is inconsistent.
    @raise Not_found for an unknown document name. *)
