(* Buckets: bucket i counts latencies in [2^i, 2^(i+1)) ns.  62 buckets
   cover every representable duration. *)
let buckets = 62

type counters = { mutable ok : int; mutable err : int; mutable busy : int }

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type planner_stats = {
  chain : int;
  twig : int;
  engine : int;
  pruned : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  plan_entries : int;
}

type write_stats = {
  batches : int;
  records : int;
  max_batch : int;
  flush_ns : float;
  publish_incremental : int;
  publish_full : int;
  areas_rebuilt : int;
  rotations : int;
}

type pipeline_group_stats = {
  gq_depth : int;
  g_batches : int;
  g_records : int;
  g_handoffs : int;
  g_lock_wait : int array;
  g_fsync_wait : int array;
}

type repl_stats = {
  role : string;  (* "primary" | "replica" | "promoted" *)
  epoch : int;
  served_requests : int;
  served_bytes : int;
  lag_versions : int;
  lag_bytes : int;
  last_applied_seq : int;
  reconnects : int;
  refused_epoch : int;
}

type router_stats = {
  shard_up : bool array;
  shard_docs : int array;
  inflight : int;
  scatters : int;
  partials : int;
  fanout_hist : int array;
  rebalances : int;
  rebalance_pause_ms : float;
}

type t = {
  mu : Mutex.t;
  total : counters;
  verbs : (string, counters) Hashtbl.t;
  hist : int array;
  mutable max_ns : float;
  mutable dropped : int;
  mutable session_errors : int;
  dropped_logged : (string, unit) Hashtbl.t;  (* verbs already logged once *)
  mutable queue_probe : (unit -> int) option;
  mutable snapshot_probe : (unit -> int * float) option;
  mutable cache_probe : (unit -> cache_stats) option;
  mutable domain_probe : (unit -> float array) option;
  mutable write_probe : (unit -> write_stats) option;
  mutable pipeline_probe : (unit -> pipeline_group_stats array) option;
  mutable planner_probe : (unit -> planner_stats) option;
  mutable repl_probe : (unit -> repl_stats) option;
  mutable router_probe : (unit -> router_stats) option;
}

let create () =
  {
    mu = Mutex.create ();
    total = { ok = 0; err = 0; busy = 0 };
    verbs = Hashtbl.create 16;
    hist = Array.make buckets 0;
    max_ns = 0.;
    dropped = 0;
    session_errors = 0;
    dropped_logged = Hashtbl.create 4;
    queue_probe = None;
    snapshot_probe = None;
    cache_probe = None;
    domain_probe = None;
    write_probe = None;
    pipeline_probe = None;
    planner_probe = None;
    repl_probe = None;
    router_probe = None;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bucket_of ns =
  if ns < 1. then 0
  else min (buckets - 1) (int_of_float (Float.log2 ns))

(* The histogram shape is shared with the per-pipeline wait histograms the
   service maintains outside this registry (recording there must not take
   the registry mutex on every update). *)
let hist_buckets = buckets
let hist_bucket = bucket_of

(* Upper bound of the bucket holding the q-quantile sample; 0 when the
   histogram is empty. *)
let hist_percentile h q =
  let n = Array.fold_left ( + ) 0 h in
  if n = 0 then 0.
  else begin
    let want = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let seen = ref 0 and result = ref 0. in
    (try
       for i = 0 to Array.length h - 1 do
         seen := !seen + h.(i);
         if !seen >= want then begin
           result := 2. ** float_of_int (i + 1);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* "bucket:count" pairs for the occupied buckets only — 62 mostly-empty
   slots per group would drown the STATS dump. *)
let sparse_hist h =
  let parts = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then parts := Printf.sprintf "%d:%d" i c :: !parts)
    h;
  if !parts = [] then "-" else String.concat "," (List.rev !parts)

let bump c = function
  | `Ok -> c.ok <- c.ok + 1
  | `Err -> c.err <- c.err + 1
  | `Busy -> c.busy <- c.busy + 1

let record t ~verb ~outcome ~latency_ns =
  locked t (fun () ->
      bump t.total outcome;
      let c =
        match Hashtbl.find_opt t.verbs verb with
        | Some c -> c
        | None ->
          let c = { ok = 0; err = 0; busy = 0 } in
          Hashtbl.replace t.verbs verb c;
          c
      in
      bump c outcome;
      t.hist.(bucket_of latency_ns) <- t.hist.(bucket_of latency_ns) + 1;
      if latency_ns > t.max_ns then t.max_ns <- latency_ns)

let record_dropped t ~verb exn =
  let log_it =
    locked t (fun () ->
        t.dropped <- t.dropped + 1;
        if Hashtbl.mem t.dropped_logged verb then false
        else begin
          Hashtbl.replace t.dropped_logged verb ();
          true
        end)
  in
  (* First occurrence per verb goes to stderr; the rest only count.  The
     log write happens outside the lock. *)
  if log_it then
    Printf.eprintf "[service] dropped exception in %s job: %s\n%!" verb
      (Printexc.to_string exn)

let dropped t = locked t (fun () -> t.dropped)

(* A peer that vanished mid-session (EPIPE on the reply, a torn frame).
   The session closes; the process must not notice beyond this counter. *)
let record_session_error t =
  locked t (fun () -> t.session_errors <- t.session_errors + 1)

let session_errors t = locked t (fun () -> t.session_errors)

let set_queue_probe t f = locked t (fun () -> t.queue_probe <- Some f)
let set_snapshot_probe t f = locked t (fun () -> t.snapshot_probe <- Some f)
let set_cache_probe t f = locked t (fun () -> t.cache_probe <- Some f)
let set_domain_probe t f = locked t (fun () -> t.domain_probe <- Some f)
let set_write_probe t f = locked t (fun () -> t.write_probe <- Some f)
let set_pipeline_probe t f = locked t (fun () -> t.pipeline_probe <- Some f)
let set_planner_probe t f = locked t (fun () -> t.planner_probe <- Some f)
let set_repl_probe t f = locked t (fun () -> t.repl_probe <- Some f)
let set_router_probe t f = locked t (fun () -> t.router_probe <- Some f)

type summary = {
  requests : int;
  ok : int;
  err : int;
  busy : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

(* Upper bound of the bucket in which the q-quantile request falls. *)
let percentile_locked t q =
  let n = Array.fold_left ( + ) 0 t.hist in
  if n = 0 then 0.
  else begin
    let want = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let seen = ref 0 and result = ref 0. in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + t.hist.(i);
         if !seen >= want then begin
           result := 2. ** float_of_int (i + 1);
           raise Exit
         end
       done
     with Exit -> ());
    min !result (Float.max t.max_ns 1.)
  end

let percentile t q = locked t (fun () -> percentile_locked t q)

let summary t =
  locked t (fun () ->
      {
        requests = t.total.ok + t.total.err + t.total.busy;
        ok = t.total.ok;
        err = t.total.err;
        busy = t.total.busy;
        p50_ns = percentile_locked t 0.50;
        p95_ns = percentile_locked t 0.95;
        p99_ns = percentile_locked t 0.99;
        max_ns = t.max_ns;
      })

let by_verb t =
  locked t (fun () ->
      Hashtbl.fold
        (fun v (c : counters) acc -> (v, c.ok, c.err, c.busy) :: acc)
        t.verbs []
      |> List.sort compare)

let render t =
  let s = summary t in
  let verbs = by_verb t in
  let queue_depth =
    match locked t (fun () -> t.queue_probe) with
    | Some f -> f ()
    | None -> 0
  in
  let snap_version, snap_age_ms =
    match locked t (fun () -> t.snapshot_probe) with
    | Some f ->
      let v, published = f () in
      (v, (Unix.gettimeofday () -. published) *. 1e3)
    | None -> (0, 0.)
  in
  let cache = match locked t (fun () -> t.cache_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let domains = match locked t (fun () -> t.domain_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let write = match locked t (fun () -> t.write_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let pipeline = match locked t (fun () -> t.pipeline_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let planner = match locked t (fun () -> t.planner_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let repl = match locked t (fun () -> t.repl_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let router = match locked t (fun () -> t.router_probe) with
    | Some f -> Some (f ())
    | None -> None
  in
  let dropped, session_errs =
    locked t (fun () -> (t.dropped, t.session_errors))
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "requests=%d ok=%d err=%d busy=%d dropped_exceptions=%d \
        session_errors=%d\n"
       s.requests s.ok s.err s.busy dropped session_errs);
  Buffer.add_string b
    (Printf.sprintf "latency_p50_ns=%.0f latency_p95_ns=%.0f latency_p99_ns=%.0f latency_max_ns=%.0f\n"
       s.p50_ns s.p95_ns s.p99_ns s.max_ns);
  Buffer.add_string b
    (Printf.sprintf "queue_depth=%d snapshot_version=%d snapshot_age_ms=%.1f\n"
       queue_depth snap_version snap_age_ms);
  (match cache with
  | None -> ()
  | Some c ->
    let lookups = c.hits + c.misses in
    Buffer.add_string b
      (Printf.sprintf
         "cache_hits=%d cache_misses=%d cache_hit_rate=%.4f cache_evictions=%d cache_entries=%d cache_bytes=%d\n"
         c.hits c.misses
         (if lookups = 0 then 0. else float_of_int c.hits /. float_of_int lookups)
         c.evictions c.entries c.bytes));
  (match domains with
  | None -> ()
  | Some busy ->
    Buffer.add_string b
      (Printf.sprintf "domains=%d domain_busy_ms=%s\n" (Array.length busy)
         (String.concat ","
            (Array.to_list
               (Array.map (fun s -> Printf.sprintf "%.1f" (s *. 1e3)) busy)))));
  (match write with
  | None -> ()
  | Some w ->
    Buffer.add_string b
      (Printf.sprintf
         "wal_batches=%d wal_records=%d wal_max_batch=%d wal_mean_batch=%.2f wal_flush_ms=%.1f wal_rotations=%d\n"
         w.batches w.records w.max_batch
         (if w.batches = 0 then 0.
          else float_of_int w.records /. float_of_int w.batches)
         (w.flush_ns /. 1e6) w.rotations);
    Buffer.add_string b
      (Printf.sprintf
         "publish_incremental=%d publish_full=%d areas_rebuilt=%d\n"
         w.publish_incremental w.publish_full w.areas_rebuilt));
  (match pipeline with
  | None -> ()
  | Some groups ->
    let handoffs =
      Array.fold_left (fun acc g -> acc + g.g_handoffs) 0 groups
    in
    Buffer.add_string b
      (Printf.sprintf "commit_groups=%d leader_handoffs=%d\n"
         (Array.length groups) handoffs);
    Array.iteri
      (fun i g ->
        Buffer.add_string b
          (Printf.sprintf
             "group=%d queue_depth=%d batches=%d records=%d handoffs=%d \
lock_wait_p50_ns=%.0f lock_wait_p99_ns=%.0f fsync_wait_p50_ns=%.0f \
fsync_wait_p99_ns=%.0f lock_wait_hist=%s fsync_wait_hist=%s\n"
             i g.gq_depth g.g_batches g.g_records g.g_handoffs
             (hist_percentile g.g_lock_wait 0.50)
             (hist_percentile g.g_lock_wait 0.99)
             (hist_percentile g.g_fsync_wait 0.50)
             (hist_percentile g.g_fsync_wait 0.99)
             (sparse_hist g.g_lock_wait)
             (sparse_hist g.g_fsync_wait)))
      groups);
  (match planner with
  | None -> ()
  | Some p ->
    let lookups = p.plan_hits + p.plan_misses in
    Buffer.add_string b
      (Printf.sprintf
         "planner_chain=%d planner_twig=%d planner_engine=%d planner_pruned=%d \
plan_cache_hits=%d plan_cache_misses=%d plan_cache_hit_rate=%.4f \
plan_cache_evictions=%d plan_cache_entries=%d\n"
         p.chain p.twig p.engine p.pruned p.plan_hits p.plan_misses
         (if lookups = 0 then 0.
          else float_of_int p.plan_hits /. float_of_int lookups)
         p.plan_evictions p.plan_entries));
  (match repl with
  | None -> ()
  | Some r ->
    Buffer.add_string b
      (Printf.sprintf
         "repl_role=%s repl_epoch=%d repl_served_requests=%d \
          repl_served_bytes=%d\n"
         r.role r.epoch r.served_requests r.served_bytes);
    if r.role <> "primary" then
      Buffer.add_string b
        (Printf.sprintf
           "repl_lag_versions=%d repl_lag_bytes=%d repl_last_seq=%d \
            repl_reconnects=%d repl_refused_epoch=%d\n"
           r.lag_versions r.lag_bytes r.last_applied_seq r.reconnects
           r.refused_epoch));
  (match router with
  | None -> ()
  | Some r ->
    let csv f a = String.concat "," (Array.to_list (Array.map f a)) in
    Buffer.add_string b
      (Printf.sprintf
         "router_shards=%d router_up=%s router_docs=%s router_inflight=%d\n"
         (Array.length r.shard_up)
         (csv (fun u -> if u then "1" else "0") r.shard_up)
         (csv string_of_int r.shard_docs)
         r.inflight);
    Buffer.add_string b
      (Printf.sprintf
         "router_scatters=%d router_partials=%d router_fanout_hist=%s \
router_rebalances=%d router_rebalance_pause_ms=%.1f\n"
         r.scatters r.partials
         (csv string_of_int r.fanout_hist)
         r.rebalances r.rebalance_pause_ms));
  List.iter
    (fun (v, ok, err, busy) ->
      Buffer.add_string b
        (Printf.sprintf "verb=%s ok=%d err=%d busy=%d\n" v ok err busy))
    verbs;
  (* drop the trailing newline: the frame is self-delimiting *)
  let out = Buffer.contents b in
  String.sub out 0 (String.length out - 1)

let reset t =
  locked t (fun () ->
      t.total.ok <- 0;
      t.total.err <- 0;
      t.total.busy <- 0;
      Hashtbl.reset t.verbs;
      Array.fill t.hist 0 buckets 0;
      t.max_ns <- 0.;
      t.dropped <- 0;
      t.session_errors <- 0;
      Hashtbl.reset t.dropped_logged)
