(** Read replica: a follower that mirrors a primary's on-disk artifacts
    over the [REPL *] verbs and serves snapshot-isolated reads from the
    replayed numbering.

    The replica's data directory is a byte-for-byte mirror of the
    primary's — base pair, checkpoint pairs, archived segments, and an
    active journal holding only complete checksum-valid frames — so
    [ruidtool fsck] passes on it at all times and a restart recovers
    through the ordinary {!Rstorage.Wal.replay} path, resuming the stream
    from the durable byte offset.

    {b Staleness contract.}  Reads are served from the latest locally
    {e published} snapshot, which may trail the primary; its [v=] stamp
    says by exactly how many updates.  A caught-up, quiesced replica's
    replies are byte-identical to the primary's (same version arithmetic,
    same {!Service.eval_read} code path).

    {b Fencing.}  The highest epoch ever seen is persisted in
    [<data-dir>/EPOCH]; bytes stamped with a lower epoch are refused and
    counted, never merged.  {!Fenced} at {!start} is fatal by design: the
    configured upstream is provably deposed.

    {b Failover.}  [PROMOTE] stops the puller, bumps and persists the
    epoch, reopens each mirrored journal for append, and begins accepting
    [UPDATE]s.  Other replicas may follow a replica (the [REPL *] verbs
    are served from the mirror), so a chain below a promoted node keeps
    streaming seamlessly. *)

exception Fenced of { seen : int; got : int }
(** The upstream served epoch [got], below the highest epoch [seen] this
    data directory has ever followed. *)

type config = {
  socket_path : string;  (** Unix socket this replica serves on *)
  data_dir : string;  (** local mirror directory *)
  primary : string;  (** upstream's Unix socket path *)
  workers : int;  (** read worker threads *)
  max_queue : int;  (** admission bound; 0 means [4 * workers] *)
  poll_ms : int;  (** REPL WAIT long-poll timeout per round *)
  planner : bool;  (** plan queries with the cost-based planner *)
  plan_cache : int;  (** shared plan-cache entries when planning *)
}

val default_config :
  socket_path:string -> data_dir:string -> primary:string -> unit -> config
(** workers 2, max_queue 0, poll_ms 500, planner on, plan_cache 256. *)

val resolved_max_queue : config -> int
val validate_config : config -> (unit, string) result

type t

val start : ?chaos:Rstorage.Fault.plan -> config -> t
(** Bootstrap the mirror (resuming from intact local files when present),
    publish the first local snapshot, begin pulling and serving.
    [?chaos] arms the fault-injection hook: each received stream chunk may
    be torn at a random byte per the plan's short-write probability, which
    the replica must survive by reconnecting and resuming.
    @raise Fenced when the configured upstream is behind this data
    directory's persisted fence.
    @raise Invalid_argument on an invalid config. *)

val stop : t -> unit
(** Stop pulling, stop serving, drain sessions, remove the socket file.
    Idempotent. *)

val wait : t -> unit
(** Block until {!stop} (from any thread, or a [SHUTDOWN] request)
    completes. *)

val metrics : t -> Metrics.t
val snapshot : t -> Snapshot.t
val config : t -> config

val epoch : t -> int
(** The highest fencing epoch seen (== served, once promoted). *)

val role : t -> [ `Following | `Promoted ]

val doc_files : t -> string -> (string * string * string) option
(** [(xml, sidecar, wal)] paths of a mirrored document — what to [fsck]
    after shutdown. *)
