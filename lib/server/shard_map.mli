(** Document placement for the sharded collection tier.

    The paper's area-confined-update property (Section 3.2) makes
    documents fully independent under updates, so placement is free to be
    anything stable; the map combines a deterministic default — a hash of
    the document name modulo the shard count, so an ingest client and the
    router agree on placement without talking — with an explicit override
    table for documents that were discovered elsewhere or moved by a
    rebalance.  The override table is the router's document catalog: the
    same Hashtbl-index idiom that {!Rxpath.Collection} uses for its name
    lookup, here mapping name -> shard.

    All operations are safe to call from concurrent sessions. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val hash : shards:int -> string -> int
(** The stable default placement: FNV-1a (folded to the native 63-bit
    int) over the name, modulo [shards].  Deterministic across processes
    and runs — ingest relies on computing the same shard the router will
    route to. *)

val place : t -> string -> int
(** Where the document lives: its override if one was recorded, the hash
    default otherwise. *)

val assign : t -> string -> int -> unit
(** Record an explicit placement (catalog discovery, ingest through the
    router).  Assigning the hash default is a no-op (keeps the table
    small).
    @raise Invalid_argument on a shard out of range. *)

val forget : t -> string -> unit
(** Drop the override (the document was dropped). *)

val move : t -> string -> int -> unit
(** Atomically flip the document's placement — the rebalance commit
    point.  Readers see either the old or the new shard, never neither.
    @raise Invalid_argument on a shard out of range. *)

val overrides : t -> int
(** Number of explicit placements recorded. *)

val doc_counts : t -> known:string list -> int array
(** Per-shard placement of the given names (catalog gauge). *)
