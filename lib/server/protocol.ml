module Wal = Rstorage.Wal

type request =
  | Ping
  | Docs
  | Query of string
  | Count of string
  | Explain of string
  | Update of { doc : string; op : Wal.op }
  | Check of string
  | Stats
  | Sleep of int
  | Shutdown

let verb = function
  | Ping -> "PING"
  | Docs -> "DOCS"
  | Query _ -> "QUERY"
  | Count _ -> "COUNT"
  | Explain _ -> "EXPLAIN"
  | Update _ -> "UPDATE"
  | Check _ -> "CHECK"
  | Stats -> "STATS"
  | Sleep _ -> "SLEEP"
  | Shutdown -> "SHUTDOWN"

(* Document names and tags travel as single protocol words; reject the
   separators that would make the grammar ambiguous. *)
let valid_word s =
  s <> ""
  && String.for_all (fun c -> c > ' ' && c <> '\x7f') s

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_word name s k =
  match int_of_string_opt s with
  | Some n -> k n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let parse_request line =
  let head, rest = split_first line in
  match (String.uppercase_ascii head, rest) with
  | "PING", "" -> Ok Ping
  | "DOCS", "" -> Ok Docs
  | "STATS", "" -> Ok Stats
  | "SHUTDOWN", "" -> Ok Shutdown
  | "QUERY", "" -> Error "QUERY: missing XPath expression"
  | "QUERY", q -> Ok (Query q)
  | "COUNT", "" -> Error "COUNT: missing XPath expression"
  | "COUNT", q -> Ok (Count q)
  | "EXPLAIN", "" -> Error "EXPLAIN: missing XPath expression"
  | "EXPLAIN", q -> Ok (Explain q)
  | "CHECK", d ->
    if valid_word d then Ok (Check d) else Error "CHECK: expected a document name"
  | "SLEEP", ms ->
    int_word "SLEEP" ms (fun n ->
        if n < 0 then Error "SLEEP: negative duration" else Ok (Sleep n))
  | "UPDATE", rest -> begin
    match String.split_on_char ' ' rest with
    | [ doc; kind; a; b; tag ] when String.uppercase_ascii kind = "INSERT" ->
      if not (valid_word doc) then Error "UPDATE: bad document name"
      else if not (valid_word tag) then Error "UPDATE INSERT: bad tag"
      else
        int_word "UPDATE INSERT parent_rank" a (fun parent_rank ->
            int_word "UPDATE INSERT pos" b (fun pos ->
                if parent_rank < 0 || pos < 0 then
                  Error "UPDATE INSERT: negative rank or position"
                else Ok (Update { doc; op = Wal.Insert { parent_rank; pos; tag } })))
    | [ doc; kind; a ] when String.uppercase_ascii kind = "DELETE" ->
      if not (valid_word doc) then Error "UPDATE: bad document name"
      else
        int_word "UPDATE DELETE rank" a (fun rank ->
            if rank <= 0 then
              Error "UPDATE DELETE: rank must be positive (rank 0 is the root)"
            else Ok (Update { doc; op = Wal.Delete { rank } }))
    | _ ->
      Error
        "UPDATE: expected '<doc> INSERT <parent_rank> <pos> <tag>' or \
         '<doc> DELETE <rank>'"
  end
  | "", _ -> Error "empty request"
  | v, _ -> Error (Printf.sprintf "unknown verb %S" v)

let request_to_string = function
  | Ping -> "PING"
  | Docs -> "DOCS"
  | Query q -> "QUERY " ^ q
  | Count q -> "COUNT " ^ q
  | Explain q -> "EXPLAIN " ^ q
  | Update { doc; op = Wal.Insert { parent_rank; pos; tag } } ->
    Printf.sprintf "UPDATE %s INSERT %d %d %s" doc parent_rank pos tag
  | Update { doc; op = Wal.Delete { rank } } ->
    Printf.sprintf "UPDATE %s DELETE %d" doc rank
  | Check d -> "CHECK " ^ d
  | Stats -> "STATS"
  | Sleep ms -> Printf.sprintf "SLEEP %d" ms
  | Shutdown -> "SHUTDOWN"

type response = Ok_ of string | Err of string | Busy of string

let parse_response payload =
  let head, rest = split_first payload in
  match head with
  | "OK" -> Ok_ rest
  | "BUSY" -> Busy rest
  | "ERR" -> Err rest
  | _ -> Err ("malformed response: " ^ payload)

let response_to_string = function
  | Ok_ "" -> "OK"
  | Ok_ body -> "OK " ^ body
  | Err msg -> "ERR " ^ msg
  | Busy "" -> "BUSY"
  | Busy why -> "BUSY " ^ why

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

exception Protocol_error of string

let max_frame = 1 lsl 20

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds cap" n));
  output_string oc (string_of_int n);
  output_char oc '\n';
  output_string oc payload;
  flush oc

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
    let line =
      (* tolerate CRLF from hand-driven clients *)
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    (match int_of_string_opt line with
    | None ->
      raise (Protocol_error (Printf.sprintf "bad frame length line %S" line))
    | Some n when n < 0 || n > max_frame ->
      raise (Protocol_error (Printf.sprintf "frame length %d out of bounds" n))
    | Some n ->
      let buf = Bytes.create n in
      (try really_input ic buf 0 n
       with End_of_file -> raise (Protocol_error "EOF inside a frame"));
      Some (Bytes.to_string buf))
