module Wal = Rstorage.Wal

type repl_file =
  | Base_xml
  | Base_sidecar
  | Ckpt_xml of int
  | Ckpt_sidecar of int
  | Segment of int
  | Active_wal

type request =
  | Ping
  | Docs
  | Query of string
  | Count of string
  | Explain of string
  | Update of { doc : string; op : Wal.op }
  | Check of string
  | Stats
  | Sleep of int
  | Shutdown
  | Repl_state
  | Repl_file of { doc : string; file : repl_file; offset : int; limit : int }
  | Repl_wait of { doc : string; gen : int; offset : int; timeout_ms : int }
  | Promote
  | Query_doc of { doc : string; xpath : string }
  | Count_doc of { doc : string; xpath : string }
  | Add_doc of { doc : string; xml : string }
  | Add_chunk of { doc : string; off : int; last : bool; bytes : string }
  | Adopt of { doc : string; file : repl_file; last : bool; bytes : string }
  | Adopt_abort of string
  | Drop_doc of string
  | Rebalance of { doc : string; target : int }

let verb = function
  | Ping -> "PING"
  | Docs -> "DOCS"
  | Query _ -> "QUERY"
  | Count _ -> "COUNT"
  | Explain _ -> "EXPLAIN"
  | Update _ -> "UPDATE"
  | Check _ -> "CHECK"
  | Stats -> "STATS"
  | Sleep _ -> "SLEEP"
  | Shutdown -> "SHUTDOWN"
  | Repl_state -> "REPL-STATE"
  | Repl_file _ -> "REPL-FILE"
  | Repl_wait _ -> "REPL-WAIT"
  | Promote -> "PROMOTE"
  | Query_doc _ -> "QUERYD"
  | Count_doc _ -> "COUNTD"
  | Add_doc _ -> "ADDDOC"
  | Add_chunk _ -> "ADDCHUNK"
  | Adopt _ -> "ADOPT"
  | Adopt_abort _ -> "ADOPTABORT"
  | Drop_doc _ -> "DROPDOC"
  | Rebalance _ -> "REBALANCE"

(* Document names and tags travel as single protocol words; reject the
   separators that would make the grammar ambiguous. *)
let valid_word s =
  s <> ""
  && String.for_all (fun c -> c > ' ' && c <> '\x7f') s

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_word name s k =
  match int_of_string_opt s with
  | Some n -> k n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

(* [<kind>] or [<kind>:<gen>] — the file a REPL FILE addresses. *)
let repl_file_to_string = function
  | Base_xml -> "xml"
  | Base_sidecar -> "ruid"
  | Ckpt_xml g -> Printf.sprintf "ckptxml:%d" g
  | Ckpt_sidecar g -> Printf.sprintf "ckptruid:%d" g
  | Segment g -> Printf.sprintf "seg:%d" g
  | Active_wal -> "wal"

let parse_repl_file word =
  let with_gen kind k =
    int_word ("REPL FILE " ^ kind) (String.sub word (String.length kind + 1)
      (String.length word - String.length kind - 1))
      (fun g -> if g < 1 then Error "REPL FILE: generation must be >= 1" else Ok (k g))
  in
  match String.lowercase_ascii word with
  | "xml" -> Ok Base_xml
  | "ruid" -> Ok Base_sidecar
  | "wal" -> Ok Active_wal
  | w when String.length w > 8 && String.sub w 0 8 = "ckptxml:" ->
    with_gen "ckptxml" (fun g -> Ckpt_xml g)
  | w when String.length w > 9 && String.sub w 0 9 = "ckptruid:" ->
    with_gen "ckptruid" (fun g -> Ckpt_sidecar g)
  | w when String.length w > 4 && String.sub w 0 4 = "seg:" ->
    with_gen "seg" (fun g -> Segment g)
  | _ -> Error (Printf.sprintf "REPL FILE: unknown file kind %S" word)

let parse_repl rest =
  let head, rest = split_first rest in
  match (String.uppercase_ascii head, rest) with
  | "STATE", "" -> Ok Repl_state
  | "FILE", rest -> begin
    match String.split_on_char ' ' rest with
    | [ doc; kind; offset; limit ] ->
      if not (valid_word doc) then Error "REPL FILE: bad document name"
      else
        Result.bind (parse_repl_file kind) (fun file ->
            int_word "REPL FILE offset" offset (fun offset ->
                int_word "REPL FILE limit" limit (fun limit ->
                    if offset < 0 || limit < 0 then
                      Error "REPL FILE: negative offset or limit"
                    else Ok (Repl_file { doc; file; offset; limit }))))
    | _ -> Error "REPL FILE: expected '<doc> <kind> <offset> <limit>'"
  end
  | "WAIT", rest -> begin
    match String.split_on_char ' ' rest with
    | [ doc; gen; offset; timeout_ms ] ->
      if not (valid_word doc) then Error "REPL WAIT: bad document name"
      else
        int_word "REPL WAIT gen" gen (fun gen ->
            int_word "REPL WAIT offset" offset (fun offset ->
                int_word "REPL WAIT timeout" timeout_ms (fun timeout_ms ->
                    if gen < 0 || offset < 0 || timeout_ms < 0 then
                      Error "REPL WAIT: negative argument"
                    else Ok (Repl_wait { doc; gen; offset; timeout_ms }))))
    | _ -> Error "REPL WAIT: expected '<doc> <gen> <offset> <timeout_ms>'"
  end
  | v, _ -> Error (Printf.sprintf "REPL: unknown subcommand %S" v)

(* ADDDOC and ADOPT carry a binary body after the header line; every
   other request is a single line (a stray newline simply stays inside
   the last argument, as it always has). *)
let split_body s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_request line =
  let head, rest = split_first line in
  match (String.uppercase_ascii head, rest) with
  | "ADDDOC", rest ->
    let header, xml = split_body rest in
    if not (valid_word header) then Error "ADDDOC: bad document name"
    else if xml = "" then Error "ADDDOC: missing XML body"
    else Ok (Add_doc { doc = header; xml })
  | "ADDCHUNK", rest -> begin
    let header, bytes = split_body rest in
    match String.split_on_char ' ' header with
    | [ doc; off; last ] ->
      if not (valid_word doc) then Error "ADDCHUNK: bad document name"
      else
        int_word "ADDCHUNK offset" off (fun off ->
            if off < 0 then Error "ADDCHUNK: negative offset"
            else
              match last with
              | "0" -> Ok (Add_chunk { doc; off; last = false; bytes })
              | "1" -> Ok (Add_chunk { doc; off; last = true; bytes })
              | _ -> Error "ADDCHUNK: last flag must be 0 or 1")
    | _ -> Error "ADDCHUNK: expected '<doc> <offset> <0|1>\\n<bytes>'"
  end
  | "ADOPT", rest -> begin
    let header, bytes = split_body rest in
    match String.split_on_char ' ' header with
    | [ doc; kind; last ] ->
      if not (valid_word doc) then Error "ADOPT: bad document name"
      else
        Result.bind (parse_repl_file kind) (fun file ->
            match last with
            | "0" -> Ok (Adopt { doc; file; last = false; bytes })
            | "1" -> Ok (Adopt { doc; file; last = true; bytes })
            | _ -> Error "ADOPT: last flag must be 0 or 1")
    | _ -> Error "ADOPT: expected '<doc> <kind> <0|1>\\n<bytes>'"
  end
  | "ADOPTABORT", d ->
    if valid_word d then Ok (Adopt_abort d)
    else Error "ADOPTABORT: expected a document name"
  | "DROPDOC", d ->
    if valid_word d then Ok (Drop_doc d)
    else Error "DROPDOC: expected a document name"
  | "QUERYD", rest ->
    let doc, xpath = split_first rest in
    if not (valid_word doc) then Error "QUERYD: bad document name"
    else if xpath = "" then Error "QUERYD: missing XPath expression"
    else Ok (Query_doc { doc; xpath })
  | "COUNTD", rest ->
    let doc, xpath = split_first rest in
    if not (valid_word doc) then Error "COUNTD: bad document name"
    else if xpath = "" then Error "COUNTD: missing XPath expression"
    else Ok (Count_doc { doc; xpath })
  | "REBALANCE", rest -> begin
    match String.split_on_char ' ' rest with
    | [ doc; target ] ->
      if not (valid_word doc) then Error "REBALANCE: bad document name"
      else
        int_word "REBALANCE target" target (fun target ->
            if target < 0 then Error "REBALANCE: negative target shard"
            else Ok (Rebalance { doc; target }))
    | _ -> Error "REBALANCE: expected '<doc> <target-shard>'"
  end
  | "PING", "" -> Ok Ping
  | "DOCS", "" -> Ok Docs
  | "STATS", "" -> Ok Stats
  | "SHUTDOWN", "" -> Ok Shutdown
  | "PROMOTE", "" -> Ok Promote
  | "REPL", "" -> Error "REPL: missing subcommand (STATE, FILE, WAIT)"
  | "REPL", rest -> parse_repl rest
  | "QUERY", "" -> Error "QUERY: missing XPath expression"
  | "QUERY", q -> Ok (Query q)
  | "COUNT", "" -> Error "COUNT: missing XPath expression"
  | "COUNT", q -> Ok (Count q)
  | "EXPLAIN", "" -> Error "EXPLAIN: missing XPath expression"
  | "EXPLAIN", q -> Ok (Explain q)
  | "CHECK", d ->
    if valid_word d then Ok (Check d) else Error "CHECK: expected a document name"
  | "SLEEP", ms ->
    int_word "SLEEP" ms (fun n ->
        if n < 0 then Error "SLEEP: negative duration" else Ok (Sleep n))
  | "UPDATE", rest -> begin
    match String.split_on_char ' ' rest with
    | [ doc; kind; a; b; tag ] when String.uppercase_ascii kind = "INSERT" ->
      if not (valid_word doc) then Error "UPDATE: bad document name"
      else if not (valid_word tag) then Error "UPDATE INSERT: bad tag"
      else
        int_word "UPDATE INSERT parent_rank" a (fun parent_rank ->
            int_word "UPDATE INSERT pos" b (fun pos ->
                if parent_rank < 0 || pos < 0 then
                  Error "UPDATE INSERT: negative rank or position"
                else Ok (Update { doc; op = Wal.Insert { parent_rank; pos; tag } })))
    | [ doc; kind; a ] when String.uppercase_ascii kind = "DELETE" ->
      if not (valid_word doc) then Error "UPDATE: bad document name"
      else
        int_word "UPDATE DELETE rank" a (fun rank ->
            if rank <= 0 then
              Error "UPDATE DELETE: rank must be positive (rank 0 is the root)"
            else Ok (Update { doc; op = Wal.Delete { rank } }))
    | _ ->
      Error
        "UPDATE: expected '<doc> INSERT <parent_rank> <pos> <tag>' or \
         '<doc> DELETE <rank>'"
  end
  | "", _ -> Error "empty request"
  | v, _ -> Error (Printf.sprintf "unknown verb %S" v)

let request_to_string = function
  | Ping -> "PING"
  | Docs -> "DOCS"
  | Query q -> "QUERY " ^ q
  | Count q -> "COUNT " ^ q
  | Explain q -> "EXPLAIN " ^ q
  | Update { doc; op = Wal.Insert { parent_rank; pos; tag } } ->
    Printf.sprintf "UPDATE %s INSERT %d %d %s" doc parent_rank pos tag
  | Update { doc; op = Wal.Delete { rank } } ->
    Printf.sprintf "UPDATE %s DELETE %d" doc rank
  | Check d -> "CHECK " ^ d
  | Stats -> "STATS"
  | Sleep ms -> Printf.sprintf "SLEEP %d" ms
  | Shutdown -> "SHUTDOWN"
  | Repl_state -> "REPL STATE"
  | Repl_file { doc; file; offset; limit } ->
    Printf.sprintf "REPL FILE %s %s %d %d" doc (repl_file_to_string file)
      offset limit
  | Repl_wait { doc; gen; offset; timeout_ms } ->
    Printf.sprintf "REPL WAIT %s %d %d %d" doc gen offset timeout_ms
  | Promote -> "PROMOTE"
  | Query_doc { doc; xpath } -> Printf.sprintf "QUERYD %s %s" doc xpath
  | Count_doc { doc; xpath } -> Printf.sprintf "COUNTD %s %s" doc xpath
  | Add_doc { doc; xml } -> Printf.sprintf "ADDDOC %s\n%s" doc xml
  | Add_chunk { doc; off; last; bytes } ->
    Printf.sprintf "ADDCHUNK %s %d %d\n%s" doc off
      (if last then 1 else 0)
      bytes
  | Adopt { doc; file; last; bytes } ->
    Printf.sprintf "ADOPT %s %s %d\n%s" doc (repl_file_to_string file)
      (if last then 1 else 0)
      bytes
  | Adopt_abort d -> "ADOPTABORT " ^ d
  | Drop_doc d -> "DROPDOC " ^ d
  | Rebalance { doc; target } -> Printf.sprintf "REBALANCE %s %d" doc target

type response = Ok_ of string | Err of string | Busy of string

let parse_response payload =
  let head, rest = split_first payload in
  match head with
  | "OK" -> Ok_ rest
  | "BUSY" -> Busy rest
  | "ERR" -> Err rest
  | _ -> Err ("malformed response: " ^ payload)

let response_to_string = function
  | Ok_ "" -> "OK"
  | Ok_ body -> "OK " ^ body
  | Err msg -> "ERR " ^ msg
  | Busy "" -> "BUSY"
  | Busy why -> "BUSY " ^ why

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

exception Protocol_error of string

let max_frame = 1 lsl 20

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds cap" n));
  output_string oc (string_of_int n);
  output_char oc '\n';
  output_string oc payload;
  flush oc

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
    let line =
      (* tolerate CRLF from hand-driven clients *)
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    (match int_of_string_opt line with
    | None ->
      raise (Protocol_error (Printf.sprintf "bad frame length line %S" line))
    | Some n when n < 0 || n > max_frame ->
      raise (Protocol_error (Printf.sprintf "frame length %d out of bounds" n))
    | Some n ->
      let buf = Bytes.create n in
      (try really_input ic buf 0 n
       with End_of_file -> raise (Protocol_error "EOF inside a frame"));
      Some (Bytes.to_string buf))
