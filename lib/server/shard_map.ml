type t = {
  shards : int;
  overrides : (string, int) Hashtbl.t;
  mu : Mutex.t;
}

let create ~shards =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  { shards; overrides = Hashtbl.create 64; mu = Mutex.create () }

let shards t = t.shards

(* FNV-1a folded to OCaml's 63-bit native int (the 64-bit offset basis
   with its top bit cleared; multiplication wraps mod 2^63 instead of
   2^64).  Hashtbl.hash would work within one binary, but the placement
   must be a documented cross-process contract: the ingest tool computes
   it client-side to ship directly to the owning shard, so the function
   is pinned here and nowhere else. *)
let hash ~shards name =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  (!h land max_int) mod shards

let check_shard t s =
  if s < 0 || s >= t.shards then
    invalid_arg (Printf.sprintf "Shard_map: shard %d out of range" s)

let place t name =
  Mutex.lock t.mu;
  let s = Hashtbl.find_opt t.overrides name in
  Mutex.unlock t.mu;
  match s with Some s -> s | None -> hash ~shards:t.shards name

let assign t name s =
  check_shard t s;
  Mutex.lock t.mu;
  if s = hash ~shards:t.shards name then Hashtbl.remove t.overrides name
  else Hashtbl.replace t.overrides name s;
  Mutex.unlock t.mu

let forget t name =
  Mutex.lock t.mu;
  Hashtbl.remove t.overrides name;
  Mutex.unlock t.mu

let move = assign

let overrides t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.overrides in
  Mutex.unlock t.mu;
  n

let doc_counts t ~known =
  let counts = Array.make t.shards 0 in
  List.iter
    (fun name ->
      let s = place t name in
      counts.(s) <- counts.(s) + 1)
    known;
  counts
