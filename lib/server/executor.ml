type job = { label : string; run : unit -> unit }

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  max_queue : int;
  on_exn : (label:string -> exn -> unit) option;
  busy_ns : int Atomic.t array;  (* per-domain cumulative busy time *)
  mutable pool : unit Domain.t array;
  mutable stopping : bool;
  mutable joined : bool;
}

(* Each worker is a full OCaml 5 domain, so jobs run in parallel on
   separate cores (systhreads all share one domain; these do not).  The
   queue is the same mutex+condition discipline as {!Scheduler} — Mutex
   and Condition synchronize across domains just as across threads. *)
let worker slot t =
  let busy = t.busy_ns.(slot) in
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.jobs then (* stopping and drained: exit *)
      Mutex.unlock t.mu
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mu;
      let t0 = Unix.gettimeofday () in
      (try job.run ()
       with e -> (
         match t.on_exn with
         | Some f -> ( try f ~label:job.label e with _ -> ())
         | None -> ()));
      let dt_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      (* this slot's only writer is this domain; readers just sample *)
      Atomic.set busy (Atomic.get busy + dt_ns);
      loop ()
    end
  in
  loop ()

let create ?on_exn ~domains ~max_queue () =
  if domains < 1 then invalid_arg "Executor.create: domains < 1";
  if max_queue < 1 then invalid_arg "Executor.create: max_queue < 1";
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      max_queue;
      on_exn;
      busy_ns = Array.init domains (fun _ -> Atomic.make 0);
      pool = [||];
      stopping = false;
      joined = false;
    }
  in
  t.pool <- Array.init domains (fun slot -> Domain.spawn (fun () -> worker slot t));
  t

let submit ?(label = "?") t run =
  Mutex.lock t.mu;
  let admitted =
    if t.stopping || Queue.length t.jobs >= t.max_queue then false
    else begin
      Queue.push { label; run } t.jobs;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.mu;
  admitted

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mu;
  n

let domains t = Array.length t.pool

let busy_seconds t =
  Array.map (fun a -> float_of_int (Atomic.get a) /. 1e9) t.busy_ns

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let must_join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.mu;
  if must_join then Array.iter Domain.join t.pool
