(** Wire protocol of the document service.

    Framing is a length-prefixed line protocol, identical in both
    directions: an ASCII decimal byte count, one ['\n'], then exactly that
    many payload bytes.  The length line keeps the stream self-delimiting
    (payloads may themselves contain newlines — [STATS] replies do), and a
    hard cap on the advertised length bounds what a malicious or confused
    peer can make the server allocate.

    Request payloads are single lines:
    {v PING
       DOCS
       QUERY <xpath>
       COUNT <xpath>
       EXPLAIN <xpath>
       UPDATE <doc> INSERT <parent_rank> <pos> <tag>
       UPDATE <doc> DELETE <rank>
       CHECK <doc>
       STATS
       SLEEP <ms>
       SHUTDOWN
       REPL STATE
       REPL FILE <doc> <kind>[:<gen>] <offset> <limit>
       REPL WAIT <doc> <gen> <offset> <timeout_ms>
       PROMOTE
       QUERYD <doc> <xpath>
       COUNTD <doc> <xpath>
       ADOPTABORT <doc>
       DROPDOC <doc>
       REBALANCE <doc> <target-shard> v}

    plus two verbs that carry a {e binary body} after the header line
    (the frame length keeps them self-delimiting, like [REPL FILE]
    replies):
    {v ADDDOC <doc>\n<xml bytes>
       ADDCHUNK <doc> <offset> <0|1>\n<xml bytes>
       ADOPT <doc> <kind>[:<gen>] <0|1>\n<file bytes> v}

    Response payloads start with one status word:
    [OK <body>] | [ERR <message>] | [BUSY <reason>].  Replies to queries
    and updates carry [k=v] tokens (including [v=<snapshot version>], the
    handle that makes snapshot isolation observable to clients).

    The [REPL *] verbs are the replication side-channel ({!Replication}):
    followers pull journal bytes and checkpoint files over the same framed
    socket.  [REPL FILE]/[REPL WAIT] reply bodies are {e binary}: a
    [k=v] header line, one ['\n'], then raw file bytes — the frame length
    keeps them self-delimiting. *)

type repl_file =
  | Base_xml  (** the base snapshot's XML ([<doc>.xml]) *)
  | Base_sidecar  (** the base numbering sidecar ([<doc>.ruid]) *)
  | Ckpt_xml of int  (** a generation's checkpoint XML *)
  | Ckpt_sidecar of int  (** a generation's checkpoint sidecar *)
  | Segment of int  (** an archived journal segment ([<doc>.wal.seg<g>]) *)
  | Active_wal  (** the live journal segment *)

type request =
  | Ping
  | Docs
  | Query of string  (** XPath over every document of the snapshot *)
  | Count of string  (** like [Query] but returns per-document counts only *)
  | Explain of string
      (** render the query plan per document (strategy, est vs. actual
          per-operator cardinalities, timings); executes uncached *)
  | Update of { doc : string; op : Rstorage.Wal.op }
  | Check of string  (** deep-verify one snapshot document (torn-read canary) *)
  | Stats
  | Sleep of int  (** hold a worker for N ms — admission-control testing *)
  | Shutdown
  | Repl_state
      (** who am I talking to: fencing epoch, snapshot version, and each
          document's (generation, durable sequence, journal size) *)
  | Repl_file of { doc : string; file : repl_file; offset : int; limit : int }
      (** up to [limit] bytes of the addressed file from [offset] *)
  | Repl_wait of { doc : string; gen : int; offset : int; timeout_ms : int }
      (** long-poll: block until the document's active journal (at
          generation [gen]) grows past [offset], the generation changes
          (rotation — the reply says so and the follower switches to the
          archived segment), or the timeout elapses (an empty chunk) *)
  | Promote
      (** replica only: stop following, bump the fencing epoch, accept
          writes.  A primary answers ERR. *)
  | Query_doc of { doc : string; xpath : string }
      (** [Query] confined to one named document — the router's
          single-document fast path (no scatter) *)
  | Count_doc of { doc : string; xpath : string }  (** per-doc [Count] *)
  | Add_doc of { doc : string; xml : string }
      (** parse, number, persist and host a new document at runtime —
          the streaming-ingest entry point.  Replies
          [OK doc=<name> nodes=<n> v=<version>]. *)
  | Add_chunk of { doc : string; off : int; last : bool; bytes : string }
      (** chunked [Add_doc], for documents larger than {!max_frame}:
          append [bytes] to the document's spooled source text at byte
          [off] ([off = 0] starts a fresh spool; any other [off] must
          equal the spool's current size — a mismatch aborts the spool
          so a retry restarts from zero).  [last = true] closes the
          spool and ingests it through the same streaming build as
          [Add_doc], replying [OK doc=<name> nodes=<n> v=<version>];
          intermediate chunks reply [OK doc=<name> off=<next offset>]. *)
  | Adopt of { doc : string; file : repl_file; last : bool; bytes : string }
      (** rebalance target side: append [bytes] to the staged copy of
          the addressed artifact; [last = true] commits the whole staged
          set — files move into the data dir, the journal is replayed,
          and the document goes live.  Chunked so a document larger than
          {!max_frame} still moves. *)
  | Adopt_abort of string
      (** discard every staged (uncommitted) artifact of the named
          document.  The router sends it before a transfer (clearing
          leftovers of a crashed predecessor) and after an aborted one;
          a no-op when nothing is staged. *)
  | Drop_doc of string
      (** retire a hosted document: close its journal, delete its
          artifacts, drop it from DOCS/QUERY/COUNT.  The rebalance
          source side, issued only after the target committed. *)
  | Rebalance of { doc : string; target : int }
      (** router-only orchestration verb (shards answer ERR): move one
          document to shard [target] and flip the shard map. *)

val repl_file_to_string : repl_file -> string

val parse_repl_file : string -> (repl_file, string) result
(** Inverse of {!repl_file_to_string} (case-insensitive). *)

val verb : request -> string
(** Protocol verb of the request, for metrics ("QUERY", "UPDATE", ...). *)

val parse_request : string -> (request, string) result
val request_to_string : request -> string
(** [parse_request (request_to_string r) = Ok r] for every request. *)

type response =
  | Ok_ of string
  | Err of string
  | Busy of string  (** queue full or deadline exceeded; body is the reason *)

val parse_response : string -> response
(** Unknown status words decode as [Err]. *)

val response_to_string : response -> string

(** {1 Framing} *)

exception Protocol_error of string

val max_frame : int
(** Upper bound on an accepted payload length (1 MiB). *)

val write_frame : out_channel -> string -> unit
(** Length prefix + payload, then flush.
    @raise Protocol_error if the payload exceeds {!max_frame}. *)

val read_frame : in_channel -> string option
(** [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on a malformed length line, an over-long
    advertised length, or EOF inside a frame. *)
