type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  max_queue : int;
  mutable pool : Thread.t array;
  mutable stopping : bool;
  mutable joined : bool;
}

let worker t =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.jobs then (* stopping and drained: exit *)
      Mutex.unlock t.mu
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mu;
      (try job () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~workers ~max_queue =
  if workers < 1 then invalid_arg "Scheduler.create: workers < 1";
  if max_queue < 1 then invalid_arg "Scheduler.create: max_queue < 1";
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      max_queue;
      pool = [||];
      stopping = false;
      joined = false;
    }
  in
  t.pool <- Array.init workers (fun _ -> Thread.create worker t);
  t

let submit t job =
  Mutex.lock t.mu;
  let admitted =
    if t.stopping || Queue.length t.jobs >= t.max_queue then false
    else begin
      Queue.push job t.jobs;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.mu;
  admitted

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mu;
  n

let workers t = Array.length t.pool

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let must_join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.mu;
  if must_join then Array.iter Thread.join t.pool
