(** Parallel read executor: a fixed pool of OCaml 5 domains draining a
    bounded job queue.

    The paper's reads (ruid parent derivation, axis checks, query
    evaluation over the numbered areas) are pure CPU over immutable
    snapshot state — no disk, no shared mutable writes — so they are
    embarrassingly parallel.  Systhreads cannot exploit that: all of them
    share one domain and serialize on its runtime lock.  This pool runs
    each job on a real {!Domain.t}, so QUERY/COUNT/CHECK scale with cores
    while UPDATE stays serialized on the main domain's write path.

    Same admission discipline as {!Scheduler}: {!submit} never blocks and
    returns [false] beyond [max_queue].  Jobs must only touch state that
    is safe to read from another domain — in the service, the published
    {!Snapshot.t} (immutable after capture), the mutex-protected metrics
    registry, and the sharded {!Query_cache}. *)

type t

val create :
  ?on_exn:(label:string -> exn -> unit) -> domains:int -> max_queue:int ->
  unit -> t
(** Spawn [domains] worker domains.  [on_exn] is called (on the worker
    domain) with every exception escaping a job; its own exceptions are
    discarded.
    @raise Invalid_argument if [domains < 1] or [max_queue < 1]. *)

val submit : ?label:string -> t -> (unit -> unit) -> bool
(** Enqueue a job or return [false] when full or stopping; never blocks. *)

val queue_depth : t -> int
val domains : t -> int

val busy_seconds : t -> float array
(** Cumulative seconds each domain spent running jobs — the per-domain
    busy-time gauge behind [STATS]. *)

val shutdown : t -> unit
(** Stop admitting, drain admitted jobs, join the domains.  Idempotent;
    safe from any thread except an executor domain. *)
