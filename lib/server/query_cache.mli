(** Snapshot-versioned query result cache: a sharded LRU keyed by
    (document name, snapshot version, normalized query string).

    Because the version is part of the key, invalidation is free by
    construction: publishing a new snapshot changes the version every
    subsequent reader embeds in its lookups, so stale entries are simply
    never asked for again — they decay out of the LRU tail.  There is no
    invalidation protocol to get wrong, and a hit is always the answer
    computed against exactly the snapshot version it names.

    Sharding bounds contention: each shard has its own mutex, hash-keyed,
    so concurrent reader domains rarely collide.  Capacity is capped both
    by entry count and by approximate bytes (key + value + bookkeeping);
    either bound evicts from the least-recently-used end. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

val create : ?shards:int -> max_entries:int -> max_bytes:int -> unit -> t
(** [shards] defaults to 8.  [max_entries]/[max_bytes] are whole-cache
    caps, split evenly across shards (rounded up).
    @raise Invalid_argument if any parameter is < 1. *)

val normalize : string -> string
(** Canonical spelling used in keys — {!Rxpath.Xparser.normalize}: parse,
    expand every abbreviation to [axis::test], render fully parenthesized;
    unparsable input falls back to whitespace-run collapse + trim.  The
    planner's plan cache keys on the same normal form. *)

val find : t -> doc:string -> version:int -> query:string -> string option
(** Cached value for this exact (doc, version, query), touching it most
    recently used.  [query] must already be {!normalize}d. *)

val add : t -> doc:string -> version:int -> query:string -> string -> unit
(** Insert (or refresh) an entry, then evict LRU entries while either cap
    is exceeded.  A value too large to ever fit a shard is dropped. *)

val stats : t -> stats
val clear : t -> unit
(** Empty every shard (counters are kept). *)
