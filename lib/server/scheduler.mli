(** Admission-controlled worker pool: a bounded FIFO of jobs drained by a
    fixed set of threads.

    The bound is the service's overload valve: {!submit} never blocks and
    never queues beyond [max_queue] — callers get an immediate [false] and
    reply [BUSY], so latency stays bounded instead of collapsing under a
    growing queue (the classic accept-everything failure mode).

    Jobs are thunks; the scheduler knows nothing about the protocol.
    Deadlines are the caller's business (the service checks them when a
    job reaches a worker). *)

type t

val create : workers:int -> max_queue:int -> t
(** @raise Invalid_argument if [workers < 1] or [max_queue < 1]. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job, or return [false] without side effects when the queue
    is at capacity or the pool is shutting down.  A job must not raise:
    exceptions escaping a job kill nothing but are swallowed (workers keep
    running) and the job's requester would wait forever — the service
    wraps every job in its own handler. *)

val queue_depth : t -> int
val workers : t -> int

val shutdown : t -> unit
(** Stop admitting, let the workers drain every job already admitted, then
    join them.  Idempotent; safe to call from any thread except a worker. *)
