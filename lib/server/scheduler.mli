(** Admission-controlled worker pool: a bounded FIFO of jobs drained by a
    fixed set of threads.

    The bound is the service's overload valve: {!submit} never blocks and
    never queues beyond [max_queue] — callers get an immediate [false] and
    reply [BUSY], so latency stays bounded instead of collapsing under a
    growing queue (the classic accept-everything failure mode).

    Jobs are thunks; the scheduler knows nothing about the protocol.
    Deadlines are the caller's business (the service checks them when a
    job reaches a worker). *)

type t

val create :
  ?on_exn:(label:string -> exn -> unit) -> workers:int -> max_queue:int ->
  unit -> t
(** [on_exn] receives every exception escaping a job, with the label the
    job was submitted under — the service wires it to the metrics
    dropped-exception counter.  Exceptions raised by [on_exn] itself are
    discarded (the worker must survive).  Without it, escaping exceptions
    are swallowed.
    @raise Invalid_argument if [workers < 1] or [max_queue < 1]. *)

val submit : ?label:string -> t -> (unit -> unit) -> bool
(** Enqueue a job, or return [false] without side effects when the queue
    is at capacity or the pool is shutting down.  A job should not raise:
    an escaping exception kills nothing (the worker survives and the
    occurrence is reported through [on_exn]) but the job's requester would
    wait forever — the service wraps every job in its own handler.
    [label] names the job in exception reports (the protocol verb). *)

val queue_depth : t -> int
val workers : t -> int

val shutdown : t -> unit
(** Stop admitting, let the workers drain every job already admitted, then
    join them.  Idempotent; safe to call from any thread except a worker. *)
