(** Shared substrate of the WAL-shipping replication tier.

    Replication is pure log shipping: the paper's area-confined-update
    property (Section 3.2) makes {!Rstorage.Wal.apply} deterministic, so a
    follower that replays the same journal bytes reproduces the primary's
    numbering byte for byte.  The primary therefore serves nothing but its
    own on-disk artifacts — base snapshot pair, checkpoint pairs, archived
    segments, and the live journal — over the [REPL *] protocol verbs, and
    a follower mirrors them verbatim into its own data directory (which
    consequently passes [ruidtool fsck] like a primary's).

    {b Fencing rule.}  Every node serves under a monotonic {e epoch}
    (persisted in [<data-dir>/EPOCH]).  Each REPL reply carries the
    serving node's epoch; a follower records the highest epoch it has ever
    seen and refuses — never merges — bytes from any lower epoch.
    Promotion bumps the epoch, so a deposed primary that comes back is
    permanently behind the fence. *)

val max_chunk : int
(** Most file bytes shipped per REPL FILE / REPL WAIT reply (256 KiB). *)

val max_wait_ms : int
(** Server-side cap on a REPL WAIT long-poll (30 s). *)

(** {1 Fencing epochs} *)

val epoch_path : string -> string
(** [<data-dir>/EPOCH]. *)

val load_epoch : string -> int
(** The persisted epoch, 0 when the file does not exist.
    @raise Invalid_argument on an unparsable epoch file. *)

val store_epoch : string -> int -> unit
(** Persist atomically (temp + fsync + rename): a torn epoch file could
    otherwise lower a follower's fence across a restart. *)

(** {1 Binary reply bodies}

    REPL FILE / REPL WAIT reply bodies are a [k=v] header line, one
    newline, then raw bytes; the protocol frame length keeps the whole
    self-delimiting. *)

type chunk = {
  epoch : int;  (** fencing epoch the serving node is at *)
  gen : int;  (** live generation of the document's active journal *)
  size : int;  (** current total size of the addressed file *)
  data : string;  (** the raw bytes; [""] when nothing (yet) to ship *)
}

val encode_chunk : chunk -> string
val decode_chunk : string -> (chunk, string) result

(** {1 REPL STATE bodies} *)

type doc_state = {
  name : string;
  gen : int;  (** active journal generation *)
  seq : int;  (** durable sequence (last fsynced record) *)
  size : int;  (** active journal size in bytes *)
}

type state = { s_epoch : int; s_version : int; s_docs : doc_state list }

val encode_state : state -> string
val decode_state : string -> (state, string) result

(** {1 Serving file bytes} *)

val file_size : string -> int
(** Size by [stat], 0 when absent. *)

val read_chunk : string -> offset:int -> limit:int -> string * int
(** [(data, size)]: up to [min limit max_chunk] bytes of the file from
    [offset], and the file's current total size.  [("", 0)] when the file
    does not exist. *)

val resolve_path :
  xml:string -> sidecar:string -> wal:string -> Protocol.repl_file -> string
(** The on-disk path a REPL FILE request addresses, from the document's
    base file triple (checkpoint and archive names derive from [wal]). *)
