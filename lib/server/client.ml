type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request_raw t line =
  Protocol.write_frame t.oc line;
  match Protocol.read_frame t.ic with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

let request t req = request_raw t (Protocol.request_to_string req)

exception Timeout

(* Deadline-capped request: park on readability of the socket rather than
   in a blocking read.  On expiry the connection is poisoned (the reply
   may still arrive and would desynchronize the stream), so the caller
   must close it — the router does, and reconnects with backoff. *)
let request_timeout t ~timeout_ms req =
  Protocol.write_frame t.oc (Protocol.request_to_string req);
  (if timeout_ms > 0 then
     let rec wait deadline =
       let left = deadline -. Unix.gettimeofday () in
       if left <= 0. then raise Timeout
       else
         match Unix.select [ t.fd ] [] [] left with
         | [], _, _ -> raise Timeout
         | _ -> ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait deadline
     in
     wait (Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.)));
  match Protocol.read_frame t.ic with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* --- Bounded retry with exponential backoff and jitter -------------

   Two transient conditions are worth retrying: BUSY replies (the
   admission queue was momentarily full) and connect failures against a
   socket that is about to exist (server still booting, or failing over).
   Everything else — ERR, protocol violations, a peer that hangs up —
   stays fatal: retrying can't fix it.  Retries are opt-in; the defaults
   keep every existing caller one-shot. *)

let default_retry_budget_ms = 2_000

(* Jitter source; self-seeded once.  Retry timing is the one place where
   determinism is a bug: synchronized clients retrying in lockstep re-create
   the very burst that made the server BUSY. *)
let retry_rng = lazy (Random.State.make_self_init ())

(* Delay before retry [attempt] (0-based): exponential from 10 ms, capped
   at 500 ms, scaled by a uniform factor in [0.5, 1.0], and never more
   than the remaining budget. *)
let backoff_ms ~attempt ~budget_left =
  let base = min 500 (10 * (1 lsl min attempt 6)) in
  let jittered =
    ((base + 1) / 2) + Random.State.int (Lazy.force retry_rng) ((base / 2) + 1)
  in
  max 0 (min jittered budget_left)

let transient_connect_error = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN
        | Unix.EINTR ),
        _, _ ) ->
    true
  | _ -> false

let connect_retry ?(retries = 0) ?(budget_ms = default_retry_budget_ms) path =
  let rec go attempt budget_left =
    match connect path with
    | t -> t
    | exception e
      when attempt < retries && budget_left > 0 && transient_connect_error e ->
      let ms = backoff_ms ~attempt ~budget_left in
      Thread.delay (float_of_int ms /. 1000.);
      go (attempt + 1) (budget_left - ms)
  in
  go 0 budget_ms

let request_raw_retry ?(retries = 0) ?(budget_ms = default_retry_budget_ms) t
    line =
  let rec go attempt budget_left =
    match request_raw t line with
    | Protocol.Busy _ as r
      when attempt >= retries || budget_left <= 0 -> r
    | Protocol.Busy _ ->
      let ms = backoff_ms ~attempt ~budget_left in
      Thread.delay (float_of_int ms /. 1000.);
      go (attempt + 1) (budget_left - ms)
    | r -> r
  in
  go 0 budget_ms

let request_retry ?retries ?budget_ms t req =
  request_raw_retry ?retries ?budget_ms t (Protocol.request_to_string req)

(* Ship a document from disk without ever holding it in memory: one
   ADDDOC frame when it fits, else an ordered ADDCHUNK sequence feeding
   the shard's spool.  [one_shot_cap] mirrors the frame arithmetic of
   [Protocol.request_to_string]: "ADDDOC <doc>\n" is 8 bytes + the name. *)
let add_doc_file ?retries ?budget_ms ?chunk t ~doc path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let size = in_channel_length ic in
  let one_shot_cap = Protocol.max_frame - (String.length doc + 8) in
  if size <= one_shot_cap then
    let xml = really_input_string ic size in
    request_retry ?retries ?budget_ms t (Protocol.Add_doc { doc; xml })
  else begin
    (* "ADDCHUNK <doc> <off> <0|1>\n" — 32 bytes covers verb, flags and
       any offset the frame cap allows *)
    let cap = Protocol.max_frame - (String.length doc + 32) in
    let chunk =
      match chunk with Some c -> max 1 (min c cap) | None -> cap
    in
    let buf = Bytes.create chunk in
    let rec go off =
      let n = input ic buf 0 chunk in
      let last = n = 0 || off + n >= size in
      let bytes = Bytes.sub_string buf 0 n in
      match
        request_retry ?retries ?budget_ms t
          (Protocol.Add_chunk { doc; off; last; bytes })
      with
      | Protocol.Ok_ _ as r -> if last then r else go (off + n)
      | r -> r
    in
    go 0
  end

let kv body key =
  let tokens =
    String.split_on_char '\n' body
    |> List.concat_map (String.split_on_char ' ')
  in
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun tok ->
      if String.length tok > plen && String.sub tok 0 plen = prefix then
        Some (String.sub tok plen (String.length tok - plen))
      else None)
    tokens

let kv_int body key = Option.bind (kv body key) int_of_string_opt
