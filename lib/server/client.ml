type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request_raw t line =
  Protocol.write_frame t.oc line;
  match Protocol.read_frame t.ic with
  | Some payload -> Protocol.parse_response payload
  | None -> raise End_of_file

let request t req = request_raw t (Protocol.request_to_string req)

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let kv body key =
  let tokens =
    String.split_on_char '\n' body
    |> List.concat_map (String.split_on_char ' ')
  in
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun tok ->
      if String.length tok > plen && String.sub tok 0 plen = prefix then
        Some (String.sub tok plen (String.length tok - plen))
      else None)
    tokens

let kv_int body key = Option.bind (kv body key) int_of_string_opt
