module R2 = Ruid.Ruid2
module Wal = Rstorage.Wal
module Fault = Rstorage.Fault

exception Fenced of { seen : int; got : int }

type config = {
  socket_path : string;
  data_dir : string;
  primary : string;
  workers : int;
  max_queue : int;
  poll_ms : int;
  planner : bool;
  plan_cache : int;
}

let default_config ~socket_path ~data_dir ~primary () =
  { socket_path; data_dir; primary; workers = 2; max_queue = 0; poll_ms = 500;
    planner = true; plan_cache = 256 }

let resolved_max_queue c = if c.max_queue > 0 then c.max_queue else 4 * c.workers

let validate_config c =
  if c.workers < 1 then Error "workers must be >= 1"
  else if c.max_queue < 0 then Error "max-queue must be >= 0 (0 = 4 x workers)"
  else if c.poll_ms < 1 then Error "poll-ms must be >= 1"
  else if c.plan_cache < 0 then Error "plan-cache must be >= 0"
  else if c.socket_path = "" then Error "socket path must not be empty"
  else if c.primary = "" then Error "primary socket path must not be empty"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

(* One mirrored document.  The invariant everything rests on: the local
   journal file holds {e only} checksum-verified complete frames (plus the
   segment header), every one of which has been folded into [r2] and
   fsynced — so the data directory is at all times indistinguishable from
   a primary's, [ruidtool fsck] passes, and a restart recovers through the
   ordinary {!Wal.replay} path. *)
type doc = {
  name : string;
  xml_path : string;
  sidecar_path : string;
  wal_path : string;
  mutable r2 : R2.t;  (** local master numbering, fed by the stream *)
  mutable applied_seq : int;  (** last record folded into [r2] *)
  mutable gen : int;  (** generation of the local active segment *)
  mutable local_size : int;  (** bytes of the local journal (all validated) *)
  mutable tail : string;  (** fetched bytes not yet forming complete frames *)
  mutable writer : Wal.writer option;  (** [Some] once promoted *)
}

type t = {
  cfg : config;
  chaos : Fault.plan option;
  docs : doc array;
  current : Snapshot.t Atomic.t;
  write_mu : Mutex.t;
      (** serializes stream application while following, and the write
          path once promoted *)
  epoch : int Atomic.t;  (** highest fencing epoch ever seen (persisted) *)
  mutable role : [ `Following | `Promoted ];
  reconnects : int Atomic.t;
  refused_epoch : int Atomic.t;
  repl_requests : int Atomic.t;
  repl_bytes : int Atomic.t;
  lag_versions : int Atomic.t;
  lag_bytes : int Atomic.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable pull_thread : Thread.t option;
  sessions : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  sessions_mu : Mutex.t;
  mutable next_session : int;
  state_mu : Mutex.t;
  state_cond : Condition.t;
  mutable state : [ `Running | `Stopping | `Stopped ];
  mutable pull_stop : bool;  (** guarded by [state_mu]; set by promotion *)
}

let metrics t = t.metrics
let snapshot t = Atomic.get t.current
let config t = t.cfg
let epoch t = Atomic.get t.epoch
let role t = t.role

let doc_files t name =
  Array.fold_left
    (fun acc d ->
      if d.name = name then Some (d.xml_path, d.sidecar_path, d.wal_path)
      else acc)
    None t.docs

let find_doc t name =
  let r = ref None in
  Array.iteri (fun i d -> if d.name = name then r := Some (i, d)) t.docs;
  !r

(* The version contract with the primary: the global stamp starts at 1
   (the startup snapshot) and each update advances it by exactly 1, so a
   caught-up follower computes the same [v=] the primary serves — replies
   are byte-identical when the two are quiesced at the same point. *)
let local_version t =
  1 + Array.fold_left (fun acc d -> acc + d.applied_seq) 0 t.docs

let running t =
  Mutex.lock t.state_mu;
  let r = t.state = `Running in
  Mutex.unlock t.state_mu;
  r

let pull_stopped t =
  Mutex.lock t.state_mu;
  let s = t.pull_stop || t.state <> `Running in
  Mutex.unlock t.state_mu;
  s

(* ------------------------------------------------------------------ *)
(* Epoch fencing                                                       *)
(* ------------------------------------------------------------------ *)

(* Every reply from upstream carries its serving epoch.  Higher: a
   legitimate promotion happened somewhere — raise (and persist) the
   fence.  Lower: a deposed primary is still talking — refuse the bytes,
   count the refusal, and drop the connection.  The fence only ever
   rises. *)
let check_epoch t got =
  let rec go () =
    let seen = Atomic.get t.epoch in
    if got < seen then begin
      Atomic.incr t.refused_epoch;
      raise (Fenced { seen; got })
    end
    else if got > seen then
      if Atomic.compare_and_set t.epoch seen got then
        Replication.store_epoch t.cfg.data_dir got
      else go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Fetching from upstream                                              *)
(* ------------------------------------------------------------------ *)

exception Stream_torn  (** injected by the chaos plan: connection died *)

let repl_failure what = function
  | Protocol.Ok_ body -> (
    match Replication.decode_chunk body with
    | Ok c -> c
    | Error why -> failwith (Printf.sprintf "%s: bad reply: %s" what why))
  | Protocol.Err m -> failwith (Printf.sprintf "%s: upstream ERR %s" what m)
  | Protocol.Busy m -> failwith (Printf.sprintf "%s: upstream BUSY %s" what m)

let fetch_chunk t conn ~doc ~file ~offset =
  let req =
    Protocol.Repl_file { doc; file; offset; limit = Replication.max_chunk }
  in
  let c =
    repl_failure (Protocol.request_to_string req) (Client.request conn req)
  in
  check_epoch t c.Replication.epoch;
  c

(* The file's bytes as of the first reply's [size] — later growth (an
   active segment under append) is left to the WAIT loop. *)
let fetch_file t conn ~doc ~file =
  let buf = Buffer.create 8192 in
  let rec go offset total =
    if offset >= total then Buffer.contents buf
    else begin
      let c = fetch_chunk t conn ~doc ~file ~offset in
      if String.length c.Replication.data = 0 then Buffer.contents buf
      else begin
        Buffer.add_string buf c.Replication.data;
        go (offset + String.length c.Replication.data) total
      end
    end
  in
  let c0 = fetch_chunk t conn ~doc ~file ~offset:0 in
  Buffer.add_string buf c0.Replication.data;
  go (String.length c0.Replication.data) c0.Replication.size

let store_atomic path s =
  Ruid.Persist.store_atomic Ruid.Vfs.real ~attempts:5 path
    (Bytes.of_string s)

let get_state t conn =
  match Client.request conn Protocol.Repl_state with
  | Protocol.Ok_ body -> (
    match Replication.decode_state body with
    | Ok st ->
      check_epoch t st.Replication.s_epoch;
      st
    | Error why -> failwith ("REPL STATE: bad reply: " ^ why))
  | Protocol.Err m -> failwith ("REPL STATE: upstream ERR " ^ m)
  | Protocol.Busy m -> failwith ("REPL STATE: upstream BUSY " ^ m)

(* ------------------------------------------------------------------ *)
(* Applying the stream                                                 *)
(* ------------------------------------------------------------------ *)

let append_local d data =
  let fd =
    Unix.openfile d.wal_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let b = Bytes.of_string data in
  let n = Unix.write fd b 0 (Bytes.length b) in
  if n <> Bytes.length b then failwith "short write to local journal";
  Unix.fsync fd

(* Fold decoded frames into the numbering, verifying what the primary's
   renumber records promised — sequence continuity, and that the local
   replay touched the same area and rewrote the same identifier count.
   Any disagreement means divergence and is fatal to the stream (the
   puller resyncs). *)
let apply_entries d entries =
  let ops = ref [] in
  List.iter
    (function
      | Wal.Ckpt c ->
        if c.Wal.base_seq <> d.applied_seq then
          failwith
            (Printf.sprintf
               "checkpoint frame of gen %d cut after seq %d, but %d applied \
                locally" c.Wal.gen c.Wal.base_seq d.applied_seq)
      | Wal.Records rl ->
        List.iter
          (fun r ->
            if r.Wal.seq <> d.applied_seq + 1 then
              failwith
                (Printf.sprintf "sequence break in stream: got %d after %d"
                   r.Wal.seq d.applied_seq);
            let area, changed = Wal.apply d.r2 r.Wal.op in
            if area <> r.Wal.area || changed <> r.Wal.changed then
              failwith
                (Printf.sprintf
                   "divergence at seq %d: local replay renumbered area %d \
                    (%d ids), primary recorded area %d (%d ids)" r.Wal.seq
                   area changed r.Wal.area r.Wal.changed);
            d.applied_seq <- d.applied_seq + 1;
            ops := r.Wal.op :: !ops)
          rl)
    entries;
  List.rev !ops

(* Publish one snapshot covering [ops] on document [idx] — the same
   incremental {!Snapshot.advance} path the primary's group commit uses,
   with the sidecar re-capture as fallback, so the published numbering is
   bit-identical to the primary's at the same sequence point. *)
let publish t idx d ops =
  if ops <> [] then begin
    let version = local_version t in
    let prev = Atomic.get t.current in
    let next =
      match Snapshot.advance prev ~version [ (idx, ops, version) ] with
      | next, _areas -> next
      | exception _ ->
        Snapshot.replace_doc prev ~version ~doc_version:version
          ~doc_index:idx d.r2
    in
    Atomic.set t.current next
  end

let segment_header_ok s =
  String.length s >= Wal.header_length
  && (let magic = String.sub s 0 4 in
      magic = "RWAL" || magic = "RWAC")
  && s.[4] = '\x02'

(* Drain the complete-frame prefix of [d.tail]: append it to the local
   journal (fsynced), fold it into the numbering, publish.  A trailing
   torn frame just stays in [tail] until its continuation bytes arrive —
   torn-stream resumption in one place. *)
let drain t idx d =
  let pos = if d.local_size = 0 then Wal.header_length else 0 in
  if d.local_size = 0 && String.length d.tail >= Wal.header_length
     && not (segment_header_ok d.tail)
  then failwith "stream does not begin with a v2 journal header";
  if String.length d.tail > pos then begin
    let entries, consumed, corrupt =
      Wal.decode_stream (Bytes.of_string d.tail) ~pos
    in
    (match corrupt with
    | Some why -> failwith ("corrupt frame in stream: " ^ why)
    | None -> ());
    if consumed > 0 && (entries <> [] || d.local_size = 0) then begin
      append_local d (String.sub d.tail 0 consumed);
      d.tail <-
        String.sub d.tail consumed (String.length d.tail - consumed);
      d.local_size <- d.local_size + consumed;
      let ops = apply_entries d entries in
      publish t idx d ops
    end
  end

(* Chaos hook for the fault-injection tests: a plan may truncate a chunk
   at a random byte — the prefix is kept (exactly what a torn TCP stream
   delivers) and the connection is declared dead. *)
let chaos_data t d data =
  match t.chaos with
  | None -> data
  | Some plan -> (
    match Fault.torn_stream plan data with
    | None -> data
    | Some kept ->
      d.tail <- d.tail ^ kept;
      raise Stream_torn)

(* ------------------------------------------------------------------ *)
(* Rotation catch-up                                                   *)
(* ------------------------------------------------------------------ *)

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  store_atomic dst b

(* The primary rotated past us.  Each retired generation is fully
   recoverable from immutable files: [seg<g+1>] is a byte-for-byte copy of
   the generation-g segment, and the generation's checkpoint pair is
   retained forever.  Walk forward one generation at a time, keeping the
   local directory a faithful mirror at every step. *)
let catch_up t conn d ~target_gen =
  while d.gen < target_gen && not (pull_stopped t) do
    let next = d.gen + 1 in
    (* 1. Finish the retiring segment from its archive copy.  Our local
       bytes are a validated prefix of it; the rest is complete frames. *)
    let archive =
      fetch_file t conn ~doc:d.name ~file:(Protocol.Segment next)
    in
    if String.length archive < d.local_size then
      failwith
        (Printf.sprintf "archive seg%d shorter than the mirrored prefix"
           next);
    d.tail <- "";
    d.tail <-
      String.sub archive d.local_size (String.length archive - d.local_size);
    drain t (fst (Option.get (find_doc t d.name))) d;
    if d.tail <> "" then failwith "archived segment ends in a torn frame";
    (* 2. Mirror the archive itself (our active file is now identical). *)
    copy_file d.wal_path (Wal.segment_archive d.wal_path next);
    (* 3. The generation's checkpoint pair. *)
    let ckpt_xml, ckpt_side = Wal.checkpoint_files d.wal_path next in
    store_atomic ckpt_xml
      (fetch_file t conn ~doc:d.name ~file:(Protocol.Ckpt_xml next));
    store_atomic ckpt_side
      (fetch_file t conn ~doc:d.name ~file:(Protocol.Ckpt_sidecar next));
    (* 4. Install the new active segment: its current complete-frame
       prefix, published over the journal path by rename so there is no
       instant where the directory holds a torn or empty journal. *)
    let source =
      if next < target_gen then Protocol.Segment (next + 1)
      else Protocol.Active_wal
    in
    let bytes = fetch_file t conn ~doc:d.name ~file:source in
    if not (segment_header_ok bytes) then
      failwith (Printf.sprintf "segment of gen %d has no v2 header" next);
    let entries, consumed, corrupt =
      Wal.decode_stream (Bytes.of_string bytes) ~pos:Wal.header_length
    in
    (match corrupt with
    | Some why ->
      failwith (Printf.sprintf "segment of gen %d corrupt: %s" next why)
    | None -> ());
    (* The segment names its own generation (the checkpoint frame every
       rotated segment opens with).  The active segment can legitimately
       be NEWER than [next] when the primary rotated again after the
       STATE poll that set [target_gen] — commit pipelines rotate from
       their own domains, so back-to-back rotations are routine.  Fail
       BEFORE touching any local state: the reconnect path re-reads
       STATE and walks the now-archived generation instead.  Installing
       the bytes as generation [next] would poison the mirror — the
       next drain would see a checkpoint cutting past the locally
       applied sequence and every later resume would misalign. *)
    (match entries with
    | Wal.Ckpt c :: _ when c.Wal.gen <> next ->
      failwith
        (Printf.sprintf
           "fetched segment is gen %d, expected %d: primary rotated again"
           c.Wal.gen next)
    | _ -> ());
    store_atomic d.wal_path (String.sub bytes 0 consumed);
    d.gen <- next;
    d.local_size <- consumed;
    d.tail <- "";
    let idx = fst (Option.get (find_doc t d.name)) in
    let ops = apply_entries d entries in
    publish t idx d ops
  done

(* ------------------------------------------------------------------ *)
(* The pull loop                                                       *)
(* ------------------------------------------------------------------ *)

let pull_round t conn =
  let st = get_state t conn in
  (* lag gauges: versions behind the primary's published stamp, bytes of
     journal not yet mirrored *)
  Atomic.set t.lag_versions
    (max 0 (st.Replication.s_version - local_version t));
  let lag_bytes =
    List.fold_left
      (fun acc (u : Replication.doc_state) ->
        match find_doc t u.name with
        | Some (_, d) when u.gen = d.gen ->
          acc + max 0 (u.size - d.local_size - String.length d.tail)
        | _ -> acc + u.size)
      0 st.Replication.s_docs
  in
  Atomic.set t.lag_bytes lag_bytes;
  Array.iteri
    (fun idx d ->
      if not (pull_stopped t) then begin
        (match
           List.find_opt
             (fun (u : Replication.doc_state) -> u.name = d.name)
             st.Replication.s_docs
         with
        | Some u when u.gen > d.gen ->
          Mutex.lock t.write_mu;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.write_mu)
          @@ fun () -> catch_up t conn d ~target_gen:u.gen
        | _ -> ());
        (* live tail: long-poll for growth of the active segment *)
        let offset = d.local_size + String.length d.tail in
        let req =
          Protocol.Repl_wait
            { doc = d.name; gen = d.gen; offset; timeout_ms = t.cfg.poll_ms }
        in
        let c = repl_failure "REPL WAIT" (Client.request conn req) in
        check_epoch t c.Replication.epoch;
        if c.Replication.gen = d.gen && String.length c.Replication.data > 0
        then begin
          Mutex.lock t.write_mu;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.write_mu)
          @@ fun () ->
          let data = chaos_data t d c.Replication.data in
          d.tail <- d.tail ^ data;
          drain t idx d
        end
        (* a different gen: the next round's STATE sees it and catches up *)
      end)
    t.docs

(* Bounded exponential backoff between reconnect attempts: 50 ms doubling
   to a 2 s cap, sliced so promotion/stop never waits long. *)
let backoff_delay t attempt =
  let ms = min 2_000 (50 * (1 lsl min attempt 5)) in
  let slices = max 1 (ms / 50) in
  let rec go k =
    if k > 0 && not (pull_stopped t) then begin
      Thread.delay 0.05;
      go (k - 1)
    end
  in
  go slices

let puller t =
  let attempt = ref 0 in
  while not (pull_stopped t) do
    (match
       Client.with_connection t.cfg.primary @@ fun conn ->
       while not (pull_stopped t) do
         pull_round t conn;
         attempt := 0
       done
     with
    | () -> ()
    | exception _ when pull_stopped t -> ()
    | exception _ ->
      (* torn stream, upstream restart, fencing, divergence: drop the
         connection, back off, reconnect, resume from the durable local
         offset (plus any buffered tail) — the stream is idempotent by
         byte position. *)
      Atomic.incr t.reconnects;
      backoff_delay t !attempt;
      incr attempt);
    ()
  done

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Replica.start: %s is not a directory" dir)

(* Build one document's mirror: resume from intact local files when they
   exist (a restart), otherwise fetch the base pair, the live segment's
   checkpoint pair, and the segment's current complete-frame prefix.
   Either way the document finishes in the invariant state: local files a
   primary-shaped, fsck-clean mirror; [r2]/[applied_seq] the replay of
   exactly those bytes. *)
let bootstrap_doc t conn name =
  let base = Filename.concat t.cfg.data_dir name in
  let xml_path = base ^ ".xml" in
  let sidecar_path = base ^ ".ruid" in
  let wal_path = base ^ ".wal" in
  if not (Sys.file_exists xml_path && Sys.file_exists sidecar_path) then begin
    (* fresh mirror: base pair first *)
    store_atomic xml_path
      (fetch_file t conn ~doc:name ~file:Protocol.Base_xml);
    store_atomic sidecar_path
      (fetch_file t conn ~doc:name ~file:Protocol.Base_sidecar);
    (* the live segment's current bytes; keep the complete-frame prefix *)
    let bytes = fetch_file t conn ~doc:name ~file:Protocol.Active_wal in
    if not (segment_header_ok bytes) then
      failwith
        (Printf.sprintf "document %s: upstream journal has no v2 header"
           name);
    let _, consumed, corrupt =
      Wal.decode_stream (Bytes.of_string bytes) ~pos:Wal.header_length
    in
    (match corrupt with
    | Some why ->
      failwith (Printf.sprintf "document %s: upstream journal: %s" name why)
    | None -> ());
    let prefix = String.sub bytes 0 consumed in
    (* a checkpoint-headed segment replays from its checkpoint pair *)
    let local_scan_gen =
      if String.length prefix >= 4 && String.sub prefix 0 4 = "RWAC" then begin
        let entries, _, _ =
          Wal.decode_stream (Bytes.of_string prefix) ~pos:Wal.header_length
        in
        match entries with
        | Wal.Ckpt c :: _ -> c.Wal.gen
        | _ ->
          failwith
            (Printf.sprintf
               "document %s: checkpoint segment without a surviving \
                checkpoint frame" name)
      end
      else 0
    in
    if local_scan_gen > 0 then begin
      let ckpt_xml, ckpt_side = Wal.checkpoint_files wal_path local_scan_gen in
      store_atomic ckpt_xml
        (fetch_file t conn ~doc:name ~file:(Protocol.Ckpt_xml local_scan_gen));
      store_atomic ckpt_side
        (fetch_file t conn ~doc:name
           ~file:(Protocol.Ckpt_sidecar local_scan_gen))
    end;
    store_atomic wal_path prefix
  end
  else
    (* restart: a kill between our append and fsync can leave a torn
       tail; drop it, then replay resumes from the durable prefix *)
    ignore (Wal.repair wal_path);
  let recovery =
    Wal.replay ~xml:xml_path ~sidecar:sidecar_path ~wal:wal_path ()
  in
  let journal = recovery.Wal.journal in
  let applied_seq =
    match List.rev recovery.Wal.replayed with
    | r :: _ -> r.Wal.seq
    | [] -> (
      match journal.Wal.checkpoint with
      | Some c -> c.Wal.base_seq
      | None -> 0)
  in
  let gen =
    match journal.Wal.checkpoint with Some c -> c.Wal.gen | None -> 0
  in
  {
    name;
    xml_path;
    sidecar_path;
    wal_path;
    r2 = recovery.Wal.r2;
    applied_seq;
    gen;
    local_size = journal.Wal.valid_bytes;
    tail = "";
    writer = None;
  }

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t x =
    Mutex.lock t.m;
    t.v <- Some x;
    Condition.signal t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let x = Option.get t.v in
    Mutex.unlock t.m;
    x
end

let repl_reply t chunk =
  Atomic.incr t.repl_requests;
  ignore
    (Atomic.fetch_and_add t.repl_bytes
       (String.length chunk.Replication.data));
  Protocol.Ok_ (Replication.encode_chunk chunk)

(* The replica serves the same [REPL *] verbs from its mirrored files, so
   replicas chain: a second follower can pull from the first, and after a
   promotion the chain keeps following the new primary seamlessly — the
   promoted journal continues at the same byte offsets. *)
let run_repl_state t =
  Atomic.incr t.repl_requests;
  let s_docs =
    Array.to_list t.docs
    |> List.map (fun d ->
           { Replication.name = d.name; gen = d.gen; seq = d.applied_seq;
             size = d.local_size })
  in
  Protocol.Ok_
    (Replication.encode_state
       { Replication.s_epoch = Atomic.get t.epoch;
         s_version = local_version t; s_docs })

let run_repl_file t doc file offset limit =
  match find_doc t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some (_, d) ->
    let path =
      Replication.resolve_path ~xml:d.xml_path ~sidecar:d.sidecar_path
        ~wal:d.wal_path file
    in
    let limit =
      (* never serve past the validated prefix of the active journal *)
      match file with
      | Protocol.Active_wal -> min limit (max 0 (d.local_size - offset))
      | _ -> limit
    in
    let data, size = Replication.read_chunk path ~offset ~limit in
    let size =
      match file with Protocol.Active_wal -> d.local_size | _ -> size
    in
    repl_reply t
      { Replication.epoch = Atomic.get t.epoch; gen = d.gen; size; data }

let run_repl_wait t doc want_gen offset timeout_ms =
  match find_doc t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some (_, d) ->
    let deadline =
      Unix.gettimeofday ()
      +. (float_of_int (min timeout_ms Replication.max_wait_ms) /. 1000.)
    in
    let rec loop () =
      if d.gen <> want_gen then
        repl_reply t
          { Replication.epoch = Atomic.get t.epoch; gen = d.gen;
            size = d.local_size; data = "" }
      else if d.local_size > offset then begin
        let data, _ =
          Replication.read_chunk d.wal_path ~offset
            ~limit:(min Replication.max_chunk (d.local_size - offset))
        in
        repl_reply t
          { Replication.epoch = Atomic.get t.epoch; gen = d.gen;
            size = d.local_size; data }
      end
      else if (not (running t)) || Unix.gettimeofday () > deadline then
        repl_reply t
          { Replication.epoch = Atomic.get t.epoch; gen = d.gen;
            size = d.local_size; data = "" }
      else begin
        Thread.delay 0.005;
        loop ()
      end
    in
    loop ()

(* --- Promotion -----------------------------------------------------

   Stop following, bump the fence, accept writes.  Ordering matters: the
   puller is joined {e before} the epoch rises, so no frame from the old
   primary can interleave with locally accepted writes; the epoch is
   persisted before the first write is accepted, so a crash right after
   promotion still restarts above the old primary's fence. *)

let promote t =
  Mutex.lock t.write_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_mu)
  @@ fun () ->
  match t.role with
  | `Promoted ->
    Protocol.Ok_
      (Printf.sprintf "epoch=%d role=promoted already=1" (Atomic.get t.epoch))
  | `Following ->
    Mutex.lock t.state_mu;
    t.pull_stop <- true;
    Mutex.unlock t.state_mu;
    (* the puller may hold write_mu transitively? no: it takes write_mu
       only inside pull_round, and we hold it — but the puller blocks on
       it at most one drain long, then observes pull_stop. *)
    Mutex.unlock t.write_mu;
    (match t.pull_thread with Some th -> Thread.join th | None -> ());
    Mutex.lock t.write_mu;
    let e = Atomic.get t.epoch + 1 in
    Atomic.set t.epoch e;
    Replication.store_epoch t.cfg.data_dir e;
    Array.iter
      (fun d ->
        (* buffered torn bytes die with the old primary *)
        d.tail <- "";
        d.writer <- Some (Wal.open_append d.wal_path))
      t.docs;
    t.pull_thread <- None;
    t.role <- `Promoted;
    Protocol.Ok_ (Printf.sprintf "epoch=%d role=promoted v=%d" e
                    (local_version t))

let run_update t doc op =
  Mutex.lock t.write_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_mu)
  @@ fun () ->
  match t.role with
  | `Following ->
    Protocol.Err
      "read-only replica: writes go to the primary (PROMOTE to fail over)"
  | `Promoted -> (
    match find_doc t doc with
    | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
    | Some (idx, d) -> (
      let w = Option.get d.writer in
      match Wal.apply d.r2 op with
      | exception Wal.Replay_error msg ->
        Protocol.Err ("update rejected: " ^ msg)
      | area, changed ->
        d.applied_seq <- d.applied_seq + 1;
        let record = { Wal.seq = d.applied_seq; op; area; changed } in
        Wal.append_record w record;
        d.local_size <- Replication.file_size d.wal_path;
        let version = local_version t in
        let prev = Atomic.get t.current in
        let next =
          match Snapshot.advance prev ~version [ (idx, [ op ], version) ]
          with
          | next, _ -> next
          | exception _ ->
            Snapshot.replace_doc prev ~version ~doc_version:version
              ~doc_index:idx d.r2
        in
        Atomic.set t.current next;
        Protocol.Ok_
          (Printf.sprintf "v=%d seq=%d area=%d changed=%d batch=1" version
             record.Wal.seq area changed)))

(* identical read semantics — and reply bytes — to the primary, over the
   local snapshot (no result cache on replicas: staleness is governed by
   the snapshot alone) *)
let run_read t (req : Protocol.request) =
  Service.eval_read (Atomic.get t.current) req

let stop t =
  let proceed =
    Mutex.lock t.state_mu;
    let p = t.state = `Running in
    if p then begin
      t.state <- `Stopping;
      t.pull_stop <- true
    end;
    Mutex.unlock t.state_mu;
    p
  in
  if not proceed then begin
    Mutex.lock t.state_mu;
    while t.state <> `Stopped do
      Condition.wait t.state_cond t.state_mu
    done;
    Mutex.unlock t.state_mu
  end
  else begin
    (match t.pull_thread with Some th -> Thread.join th | None -> ());
    t.pull_thread <- None;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.sessions_mu;
    let sess = Hashtbl.fold (fun _ v acc -> v :: acc) t.sessions [] in
    Mutex.unlock t.sessions_mu;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sess;
    List.iter (fun (_, th) -> Thread.join th) sess;
    Scheduler.shutdown t.sched;
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    Mutex.lock t.state_mu;
    t.state <- `Stopped;
    Condition.broadcast t.state_cond;
    Mutex.unlock t.state_mu
  end

let wait t =
  Mutex.lock t.state_mu;
  while t.state <> `Stopped do
    Condition.wait t.state_cond t.state_mu
  done;
  Mutex.unlock t.state_mu

let request_stop_async t =
  ignore (Thread.create (fun () -> try stop t with _ -> ()) ())

let handle_frame t oc payload =
  let t0 = Unix.gettimeofday () in
  let reply verb response =
    Protocol.write_frame oc (Protocol.response_to_string response);
    let outcome =
      match response with
      | Protocol.Ok_ _ -> `Ok
      | Protocol.Err _ -> `Err
      | Protocol.Busy _ -> `Busy
    in
    Metrics.record t.metrics ~verb ~outcome
      ~latency_ns:((Unix.gettimeofday () -. t0) *. 1e9)
  in
  match Protocol.parse_request payload with
  | Error msg -> reply "INVALID" (Protocol.Err msg)
  | Ok req -> (
    let verb = Protocol.verb req in
    match req with
    | Protocol.Ping -> reply verb (Protocol.Ok_ "pong")
    | Protocol.Stats -> reply verb (Protocol.Ok_ (Metrics.render t.metrics))
    | Protocol.Docs ->
      let s = Atomic.get t.current in
      reply verb
        (Protocol.Ok_
           (Printf.sprintf "v=%d docs=%d %s" s.Snapshot.version
              (List.length (Snapshot.doc_names s))
              (String.concat " " (Snapshot.doc_names s))))
    | Protocol.Shutdown ->
      reply verb (Protocol.Ok_ "stopping");
      request_stop_async t
    | Protocol.Repl_state -> reply verb (run_repl_state t)
    | Protocol.Repl_file { doc; file; offset; limit } ->
      reply verb (run_repl_file t doc file offset limit)
    | Protocol.Repl_wait { doc; gen; offset; timeout_ms } ->
      reply verb (run_repl_wait t doc gen offset timeout_ms)
    | Protocol.Promote -> reply verb (promote t)
    | Protocol.Update { doc; op } -> reply verb (run_update t doc op)
    | Protocol.Sleep ms ->
      Thread.delay (float_of_int ms /. 1000.);
      reply verb (Protocol.Ok_ (Printf.sprintf "slept=%d" ms))
    | Protocol.Add_doc _ | Protocol.Add_chunk _ | Protocol.Adopt _
    | Protocol.Adopt_abort _ | Protocol.Drop_doc _ ->
      (* collection membership is the primary's to change; it replicates
         through the journal/file shipping like any other write *)
      reply verb
        (Protocol.Err
           (Printf.sprintf "%s: this node is a read-only replica" verb))
    | Protocol.Rebalance _ ->
      reply verb
        (Protocol.Err
           "REBALANCE: this node is a replica; connect to the router")
    | Protocol.Query _ | Protocol.Count _ | Protocol.Explain _
    | Protocol.Check _ | Protocol.Query_doc _ | Protocol.Count_doc _ ->
      let iv = Ivar.create () in
      let job () =
        let response =
          try run_read t req with
          | Failure msg -> Protocol.Err msg
          | e -> Protocol.Err ("internal error: " ^ Printexc.to_string e)
        in
        Ivar.fill iv response
      in
      if Scheduler.submit ~label:verb t.sched job then
        reply verb (Ivar.read iv)
      else reply verb (Protocol.Busy "queue full"))

let session_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      handle_frame t oc payload;
      loop ()
  in
  (try loop () with
  | Protocol.Protocol_error _ | End_of_file | Sys_error _ ->
    Metrics.record_session_error t.metrics
  | Unix.Unix_error _ -> Metrics.record_session_error t.metrics);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let stopping () = not (running t) in
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ when stopping () -> (
      try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
      let id =
        Mutex.lock t.sessions_mu;
        let id = t.next_session in
        t.next_session <- id + 1;
        Mutex.unlock t.sessions_mu;
        id
      in
      let th =
        Thread.create
          (fun () ->
            session_loop t fd;
            Mutex.lock t.sessions_mu;
            Hashtbl.remove t.sessions id;
            Mutex.unlock t.sessions_mu)
          ()
      in
      Mutex.lock t.sessions_mu;
      Hashtbl.replace t.sessions id (fd, th);
      Mutex.unlock t.sessions_mu;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let start ?chaos cfg =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Replica.start: " ^ msg));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  ensure_dir cfg.data_dir;
  (* Bootstrap over one dedicated connection.  A [Fenced] raised here is
     fatal by design: the configured upstream is provably behind the fence
     this data directory has already seen, and following it would merge a
     deposed primary's writes. *)
  let docs, upstream_epoch =
    Client.with_connection cfg.primary @@ fun conn ->
    (* seed the fence from disk before the first reply can be checked *)
    let persisted = Replication.load_epoch cfg.data_dir in
    let t0_epoch = Atomic.make persisted in
    let check got =
      let seen = Atomic.get t0_epoch in
      if got < seen then raise (Fenced { seen; got })
      else if got > seen then Atomic.set t0_epoch got
    in
    let st =
      match Client.request conn Protocol.Repl_state with
      | Protocol.Ok_ body -> (
        match Replication.decode_state body with
        | Ok st ->
          check st.Replication.s_epoch;
          st
        | Error why -> failwith ("REPL STATE: bad reply: " ^ why))
      | Protocol.Err m -> failwith ("REPL STATE: upstream ERR " ^ m)
      | Protocol.Busy m -> failwith ("REPL STATE: upstream BUSY " ^ m)
    in
    if st.Replication.s_docs = [] then
      failwith "upstream hosts no documents";
    (st, Atomic.get t0_epoch)
  in
  let planner_shared =
    if cfg.planner then
      Some (Rxpath.Planner.make_shared ~plan_cache:cfg.plan_cache ())
    else None
  in
  let metrics = Metrics.create () in
  let on_exn ~label e = Metrics.record_dropped metrics ~verb:label e in
  let sched =
    Scheduler.create ~on_exn ~workers:cfg.workers
      ~max_queue:(resolved_max_queue cfg) ()
  in
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      chaos;
      docs = [||];
      current = Atomic.make (Snapshot.capture ~version:1 []);
      write_mu = Mutex.create ();
      epoch = Atomic.make (max 1 upstream_epoch);
      role = `Following;
      reconnects = Atomic.make 0;
      refused_epoch = Atomic.make 0;
      repl_requests = Atomic.make 0;
      repl_bytes = Atomic.make 0;
      lag_versions = Atomic.make 0;
      lag_bytes = Atomic.make 0;
      sched;
      metrics;
      listen_fd;
      accept_thread = None;
      pull_thread = None;
      sessions = Hashtbl.create 16;
      sessions_mu = Mutex.create ();
      next_session = 0;
      state_mu = Mutex.create ();
      state_cond = Condition.create ();
      state = `Running;
      pull_stop = false;
    }
  in
  Replication.store_epoch cfg.data_dir (Atomic.get t.epoch);
  (* mirror + replay each hosted document, then publish the first local
     snapshot at the version the contract dictates *)
  let docs =
    Client.with_connection cfg.primary @@ fun conn ->
    Array.of_list
      (List.map
         (fun (u : Replication.doc_state) -> bootstrap_doc t conn u.name)
         docs.Replication.s_docs)
  in
  let t = { t with docs } in
  Atomic.set t.current
    (Snapshot.capture ?planner:planner_shared ~version:(local_version t)
       (Array.to_list (Array.map (fun d -> (d.name, d.r2)) t.docs)));
  Metrics.set_queue_probe metrics (fun () -> Scheduler.queue_depth t.sched);
  Metrics.set_snapshot_probe metrics (fun () ->
      let s = Atomic.get t.current in
      (s.Snapshot.version, s.Snapshot.published_at));
  Metrics.set_repl_probe metrics (fun () ->
      {
        Metrics.role =
          (match t.role with `Following -> "replica" | `Promoted -> "promoted");
        epoch = Atomic.get t.epoch;
        served_requests = Atomic.get t.repl_requests;
        served_bytes = Atomic.get t.repl_bytes;
        lag_versions = Atomic.get t.lag_versions;
        lag_bytes = Atomic.get t.lag_bytes;
        last_applied_seq =
          Array.fold_left (fun acc d -> acc + d.applied_seq) 0 t.docs;
        reconnects = Atomic.get t.reconnects;
        refused_epoch = Atomic.get t.refused_epoch;
      });
  t.pull_thread <- Some (Thread.create puller t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t
