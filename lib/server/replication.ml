module Wal = Rstorage.Wal

(* Chunks above this size are split; well under the 1 MiB frame cap even
   with the header line in front. *)
let max_chunk = 256 * 1024

(* Follower-initiated long-polls are bounded server-side: a follower that
   asks for an hour still gets its reply within this. *)
let max_wait_ms = 30_000

(* ------------------------------------------------------------------ *)
(* Fencing epochs                                                      *)
(* ------------------------------------------------------------------ *)

let epoch_path dir = Filename.concat dir "EPOCH"

let load_epoch dir =
  let path = epoch_path dir in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match int_of_string_opt (String.trim line) with
    | Some e when e >= 0 -> e
    | _ -> invalid_arg (Printf.sprintf "corrupt epoch file %s: %S" path line)
  end
  else 0

let store_epoch dir epoch =
  (* Atomic via temp + rename: a torn epoch file could otherwise lower a
     follower's fence across a restart. *)
  let path = epoch_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (string_of_int epoch);
  output_char oc '\n';
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Unix.rename tmp path

(* ------------------------------------------------------------------ *)
(* Binary reply bodies                                                 *)
(* ------------------------------------------------------------------ *)

type chunk = {
  epoch : int;  (** fencing epoch the serving node is at *)
  gen : int;  (** live generation of the document's active journal *)
  size : int;  (** current total size of the addressed file *)
  data : string;  (** the raw bytes; [""] when nothing (yet) to ship *)
}

let encode_chunk c =
  Printf.sprintf "epoch=%d gen=%d size=%d len=%d\n%s" c.epoch c.gen c.size
    (String.length c.data) c.data

let decode_chunk body =
  match String.index_opt body '\n' with
  | None -> Error "chunk reply lacks a header line"
  | Some nl ->
    let header = String.sub body 0 nl in
    let data = String.sub body (nl + 1) (String.length body - nl - 1) in
    let field key =
      Option.to_result ~none:(Printf.sprintf "chunk header lacks %s=" key)
        (Client.kv_int header key)
    in
    Result.bind (field "epoch") (fun epoch ->
        Result.bind (field "gen") (fun gen ->
            Result.bind (field "size") (fun size ->
                Result.bind (field "len") (fun len ->
                    if len <> String.length data then
                      Error
                        (Printf.sprintf
                           "chunk header promises %d bytes, frame carries %d"
                           len (String.length data))
                    else Ok { epoch; gen; size; data }))))

(* ------------------------------------------------------------------ *)
(* REPL STATE bodies                                                   *)
(* ------------------------------------------------------------------ *)

type doc_state = { name : string; gen : int; seq : int; size : int }
type state = { s_epoch : int; s_version : int; s_docs : doc_state list }

(* Document names exclude '/' (enforced at Service.start), so it is a safe
   field separator inside the per-document word. *)
let encode_state s =
  Printf.sprintf "epoch=%d v=%d docs=%d%s" s.s_epoch s.s_version
    (List.length s.s_docs)
    (String.concat ""
       (List.map
          (fun d -> Printf.sprintf " %s/%d/%d/%d" d.name d.gen d.seq d.size)
          s.s_docs))

let decode_state body =
  let field key =
    Option.to_result ~none:(Printf.sprintf "STATE reply lacks %s=" key)
      (Client.kv_int body key)
  in
  Result.bind (field "epoch") (fun s_epoch ->
      Result.bind (field "v") (fun s_version ->
          Result.bind (field "docs") (fun n ->
              let words =
                String.split_on_char ' ' body
                |> List.filter (fun w -> String.contains w '/')
              in
              let parse w =
                match String.split_on_char '/' w with
                | [ name; gen; seq; size ] -> (
                  match
                    ( int_of_string_opt gen,
                      int_of_string_opt seq,
                      int_of_string_opt size )
                  with
                  | Some gen, Some seq, Some size ->
                    Ok { name; gen; seq; size }
                  | _ -> Error (Printf.sprintf "bad STATE document word %S" w))
                | _ -> Error (Printf.sprintf "bad STATE document word %S" w)
              in
              let rec all acc = function
                | [] -> Ok (List.rev acc)
                | w :: ws ->
                  Result.bind (parse w) (fun d -> all (d :: acc) ws)
              in
              Result.bind (all [] words) (fun s_docs ->
                  if List.length s_docs <> n then
                    Error
                      (Printf.sprintf
                         "STATE reply promises %d documents, carries %d" n
                         (List.length s_docs))
                  else Ok { s_epoch; s_version; s_docs }))))

(* ------------------------------------------------------------------ *)
(* Serving file bytes                                                  *)
(* ------------------------------------------------------------------ *)

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* [offset, offset + limit) of the file, plus its current size.  The
   journal files this serves are append-only (the active segment) or
   immutable (checkpoints, archives), so a plain positional read is
   consistent; rotation replaces the active path by rename, which callers
   detect by re-checking the generation around the read. *)
let read_chunk path ~offset ~limit =
  let limit = max 0 (min limit max_chunk) in
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ("", 0)
  | fd ->
    Fun.protect ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let size = (Unix.fstat fd).Unix.st_size in
    if offset >= size || limit = 0 then ("", size)
    else begin
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      let want = min limit (size - offset) in
      let buf = Bytes.create want in
      let rec fill pos =
        if pos >= want then want
        else
          match Unix.read fd buf pos (want - pos) with
          | 0 -> pos
          | n -> fill (pos + n)
      in
      let got = fill 0 in
      (Bytes.sub_string buf 0 got, size)
    end

(* The on-disk path a [Protocol.repl_file] addresses, given the document's
   base file triple. *)
let resolve_path ~xml ~sidecar ~wal (file : Protocol.repl_file) =
  match file with
  | Protocol.Base_xml -> xml
  | Protocol.Base_sidecar -> sidecar
  | Protocol.Active_wal -> wal
  | Protocol.Ckpt_xml g -> fst (Wal.checkpoint_files wal g)
  | Protocol.Ckpt_sidecar g -> snd (Wal.checkpoint_files wal g)
  | Protocol.Segment g -> Wal.segment_archive wal g
