(* The collection router.  See router.mli for the contract; the shape of
   the code mirrors Service's session layer (accept loop, session
   threads, length-prefixed frames) with the work body swapped: instead
   of evaluating requests against a local snapshot, every request is
   forwarded to the shard that owns its document, or scattered to all
   shards and merged.

   The router runs no admission queue of its own — each session thread
   performs its forwards synchronously, and the shards' queues provide
   the backpressure (a BUSY from a shard travels back verbatim).  What
   the router does own is the rebalance gate: a reader/writer lock where
   every forwarded request is a reader and the commit window of a
   document move is the sole writer, so the map flip and the journal
   tail shipment happen with no router traffic in flight. *)

type config = {
  socket_path : string;
  shard_sockets : string array;
  fanout : int;
  shard_deadline_ms : int;
  connect_retries : int;
}

let default_config ~socket_path ~shard_sockets () =
  {
    socket_path;
    shard_sockets;
    fanout = 0;
    shard_deadline_ms = 2_000;
    connect_retries = 3;
  }

let validate_config cfg =
  if cfg.socket_path = "" then Error "socket_path must not be empty"
  else if Array.length cfg.shard_sockets = 0 then
    Error "at least one shard socket is required"
  else if Array.exists (fun s -> s = "") cfg.shard_sockets then
    Error "shard socket paths must not be empty"
  else if Array.exists (fun s -> s = cfg.socket_path) cfg.shard_sockets then
    Error "the router socket cannot double as a shard socket"
  else if cfg.fanout < 0 then Error "fanout must be >= 0"
  else if cfg.shard_deadline_ms < 0 then Error "shard_deadline_ms must be >= 0"
  else if cfg.connect_retries < 0 then Error "connect_retries must be >= 0"
  else Ok ()

(* One pooled connection per shard, serialized by a mutex: the protocol
   is strictly request/reply per connection, so sharing one costs only
   queueing, never interleaving bugs.  [up] is a health note, not a
   guard — a down shard still gets one cheap connect attempt per call,
   which is how it comes back. *)
type shard = {
  socket : string;
  smu : Mutex.t;
  mutable conn : Client.t option;
  mutable up : bool;
}

type t = {
  cfg : config;
  shards : shard array;
  map : Shard_map.t;
  metrics : Metrics.t;
  (* rebalance gate *)
  gate_mu : Mutex.t;
  gate_cond : Condition.t;
  mutable gate_readers : int;
  mutable gate_writer : bool;
  (* catalog of every document name the router has seen, for the
     per-shard gauge (placement itself lives in [map]) *)
  known : (string, unit) Hashtbl.t;
  (* counters *)
  stat_mu : Mutex.t;
  mutable scatters : int;
  mutable partials : int;
  fanout_hist : int array;  (* slot k: scatters that reached k shards *)
  mutable rebalances : int;
  mutable rebalance_pause_ms : float;
  inflight : int Atomic.t;
  (* lifecycle (the Service idiom) *)
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  sessions : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  sessions_mu : Mutex.t;
  mutable next_session : int;
  state_mu : Mutex.t;
  state_cond : Condition.t;
  mutable state : [ `Running | `Stopping | `Stopped ];
}

let metrics t = t.metrics
let shard_map t = t.map

(* --- Rebalance gate ------------------------------------------------ *)

let gate_enter_read t =
  Mutex.lock t.gate_mu;
  while t.gate_writer do
    Condition.wait t.gate_cond t.gate_mu
  done;
  t.gate_readers <- t.gate_readers + 1;
  Mutex.unlock t.gate_mu

let gate_exit_read t =
  Mutex.lock t.gate_mu;
  t.gate_readers <- t.gate_readers - 1;
  if t.gate_readers = 0 then Condition.broadcast t.gate_cond;
  Mutex.unlock t.gate_mu

let gate_enter_write t =
  Mutex.lock t.gate_mu;
  while t.gate_writer do
    Condition.wait t.gate_cond t.gate_mu
  done;
  t.gate_writer <- true;
  (* new readers now park on [gate_writer]; wait out the in-flight ones *)
  while t.gate_readers > 0 do
    Condition.wait t.gate_cond t.gate_mu
  done;
  Mutex.unlock t.gate_mu

let gate_exit_write t =
  Mutex.lock t.gate_mu;
  t.gate_writer <- false;
  Condition.broadcast t.gate_cond;
  Mutex.unlock t.gate_mu

let with_read_gate t f =
  gate_enter_read t;
  Fun.protect ~finally:(fun () -> gate_exit_read t) f

(* --- Talking to shards --------------------------------------------- *)

(* One request against shard [i]; [None] means the shard is unreachable
   or missed its deadline.  A failed call poisons the pooled connection
   (a late reply would desynchronize the stream) and marks the shard
   down; the next call reconnects — with backoff while the shard was
   thought up (it may be mid-restart), with a single cheap attempt while
   it was already known down, so a dead shard costs each request one
   connect(2) and not a retry budget. *)
let shard_call t i req =
  let sh = t.shards.(i) in
  Mutex.lock sh.smu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.smu) @@ fun () ->
  let conn =
    match sh.conn with
    | Some c -> Some c
    | None -> (
      let attempt () =
        if sh.up then
          Client.connect_retry ~retries:t.cfg.connect_retries ~budget_ms:500
            sh.socket
        else Client.connect sh.socket
      in
      match attempt () with
      | c ->
        sh.conn <- Some c;
        sh.up <- true;
        Some c
      | exception _ ->
        sh.up <- false;
        None)
  in
  match conn with
  | None -> None
  | Some c -> (
    match
      Client.request_timeout c ~timeout_ms:t.cfg.shard_deadline_ms req
    with
    | resp -> Some resp
    | exception _ ->
      Client.close c;
      sh.conn <- None;
      sh.up <- false;
      None)

(* --- Merge kernels -------------------------------------------------- *)

(* Mirror of Service's reply caps: at most this many per-document tokens
   / result identifiers are listed, with ["..."] marking elision.  The
   merged reply honours the same caps so a router answer never outgrows
   a frame no matter how many shards contribute. *)
let doc_cap = 64
let id_cap = 32

let tokens_of body =
  String.split_on_char ' ' body |> List.filter (fun s -> s <> "")

let kv_int_tok tok key =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  if String.length tok > plen && String.sub tok 0 plen = prefix then
    int_of_string_opt (String.sub tok plen (String.length tok - plen))
  else None

let partial_token ~shards ~missing =
  if missing = [] then ""
  else Printf.sprintf " partial=%d/%d" (List.length missing) shards

(* COUNT/QUERY bodies: [v=N total=N name=n ... [...] [ids id ... [...]]].
   The parser is shape-tolerant (unknown tokens are kept as document
   tokens) so a cap bump on the shard side cannot crash the router. *)
type parts = {
  v : int;
  total : int;
  docs : string list;  (** raw [name=n] tokens, shard order preserved *)
  docs_elided : bool;
  ids : string list;
  ids_elided : bool;
}

let parse_parts body =
  let rec go acc in_ids = function
    | [] -> acc
    | "..." :: rest ->
      let acc =
        if in_ids then { acc with ids_elided = true }
        else { acc with docs_elided = true }
      in
      go acc in_ids rest
    | "ids" :: rest when not in_ids -> go acc true rest
    | tok :: rest -> (
      match (kv_int_tok tok "v", kv_int_tok tok "total") with
      | Some v, _ -> go { acc with v } in_ids rest
      | _, Some total -> go { acc with total } in_ids rest
      | None, None ->
        let acc =
          if in_ids then { acc with ids = tok :: acc.ids }
          else { acc with docs = tok :: acc.docs }
        in
        go acc in_ids rest)
  in
  let p =
    go
      { v = 0; total = 0; docs = []; docs_elided = false; ids = [];
        ids_elided = false }
      false (tokens_of body)
  in
  { p with docs = List.rev p.docs; ids = List.rev p.ids }

let sum f parts = List.fold_left (fun acc p -> acc + f p) 0 parts

let capped cap xs = List.filteri (fun i _ -> i < cap) xs

let merge_count ~shards ~replies ~missing =
  let parts = List.map (fun (_, b) -> parse_parts b) replies in
  let v = sum (fun p -> p.v) parts in
  let total = sum (fun p -> p.total) parts in
  let docs = List.concat_map (fun p -> p.docs) parts in
  let elided =
    List.exists (fun p -> p.docs_elided) parts || List.length docs > doc_cap
  in
  Printf.sprintf "v=%d total=%d %s%s%s" v total
    (String.concat " " (capped doc_cap docs))
    (if elided then " ..." else "")
    (partial_token ~shards ~missing)

let merge_query ~shards ~replies ~missing =
  let parts = List.map (fun (_, b) -> parse_parts b) replies in
  let v = sum (fun p -> p.v) parts in
  let total = sum (fun p -> p.total) parts in
  let docs = List.concat_map (fun p -> p.docs) parts in
  let docs_elided =
    List.exists (fun p -> p.docs_elided) parts || List.length docs > doc_cap
  in
  let ids = capped id_cap (List.concat_map (fun p -> p.ids) parts) in
  Printf.sprintf "v=%d total=%d %s%s%s%s" v total
    (String.concat " " (capped doc_cap docs))
    (if docs_elided then " ..." else "")
    (if ids = [] then ""
     else
       " ids " ^ String.concat " " ids
       ^ if total > id_cap then " ..." else "")
    (partial_token ~shards ~missing)

let split_first_line body =
  match String.index_opt body '\n' with
  | None -> (body, "")
  | Some i ->
    (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))

let merge_explain ~shards ~replies ~missing =
  let v =
    sum
      (fun (_, b) ->
        let first, _ = split_first_line b in
        match kv_int_tok first "v" with Some v -> v | None -> 0)
      replies
  in
  let sections =
    List.init shards (fun i ->
        match List.assoc_opt i replies with
        | Some body ->
          let _, rest = split_first_line body in
          Printf.sprintf "shard %d\n%s" i rest
        | None -> Printf.sprintf "shard %d unavailable" i)
  in
  Printf.sprintf "v=%d%s\n%s" v
    (partial_token ~shards ~missing)
    (String.concat "\n" sections)

(* DOCS merges to per-shard counts, never a name list: at collection
   scale (the 100k-document corpus) the concatenated names would
   overflow the frame cap. *)
let merge_docs ~shards ~replies ~missing =
  let count_of body =
    match
      List.find_map (fun tok -> kv_int_tok tok "docs") (tokens_of body)
    with
    | Some n -> n
    | None -> 0
  in
  let v =
    sum
      (fun (_, b) ->
        match List.find_map (fun tok -> kv_int_tok tok "v") (tokens_of b) with
        | Some v -> v
        | None -> 0)
      replies
  in
  let total = sum (fun (_, b) -> count_of b) replies in
  Printf.sprintf "v=%d docs=%d%s%s" v total
    (String.concat ""
       (List.map
          (fun (i, b) -> Printf.sprintf " shard%d=%d" i (count_of b))
          replies))
    (partial_token ~shards ~missing)

(* --- Scatter-gather ------------------------------------------------- *)

(* Fan the request to every shard with at most [fanout] calls in flight,
   collecting per-shard outcomes in shard order.  Worker threads pull
   shard indices from a shared cursor; per-shard serialization is the
   shard mutex inside [shard_call]. *)
let scatter t req =
  let n = Array.length t.shards in
  let fanout = if t.cfg.fanout <= 0 then n else min t.cfg.fanout n in
  let results = Array.make n None in
  let cursor = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        Atomic.incr t.inflight;
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.inflight)
          (fun () -> results.(i) <- shard_call t i req);
        go ()
      end
    in
    go ()
  in
  let threads = List.init fanout (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let oks = ref [] and errs = ref [] and missing = ref [] in
  for i = n - 1 downto 0 do
    match results.(i) with
    | Some (Protocol.Ok_ body) -> oks := (i, body) :: !oks
    | Some (Protocol.Err msg) ->
      errs := (i, msg) :: !errs;
      missing := i :: !missing
    | Some (Protocol.Busy _) | None -> missing := i :: !missing
  done;
  (!oks, !errs, !missing)

let scatter_merge ?on_ok t req merge =
  let oks, errs, missing = scatter t req in
  (match on_ok with
  | Some f -> List.iter (fun (i, body) -> f i body) oks
  | None -> ());
  let n = Array.length t.shards in
  Mutex.lock t.stat_mu;
  t.scatters <- t.scatters + 1;
  if missing <> [] then t.partials <- t.partials + 1;
  let reached = n - List.length missing in
  t.fanout_hist.(reached) <- t.fanout_hist.(reached) + 1;
  Mutex.unlock t.stat_mu;
  match (oks, errs) with
  | [], (_, msg) :: _ ->
    (* no shard succeeded but some answered: a genuine error (bad XPath
       errs identically everywhere) beats a fabricated empty merge *)
    Protocol.Err msg
  | [], [] -> Protocol.Err "no shards available"
  | _ -> Protocol.Ok_ (merge ~shards:n ~replies:oks ~missing)

(* --- Single-document forwarding ------------------------------------- *)

let known_add t doc =
  Mutex.lock t.stat_mu;
  Hashtbl.replace t.known doc ();
  Mutex.unlock t.stat_mu

let known_remove t doc =
  Mutex.lock t.stat_mu;
  Hashtbl.remove t.known doc;
  Mutex.unlock t.stat_mu

(* A shard's DOCS body lists its document names: every one is a catalog
   fact (name -> shard) worth absorbing.  Runs at startup — so documents
   placed off-hash (serve --doc layouts) route correctly from the first
   request — and again on every client DOCS scatter, which keeps the
   catalog gauge honest about documents ingested directly to shards
   behind the router's back. *)
let absorb_docs_body t i body =
  List.iter
    (fun tok ->
      if (not (String.contains tok '=')) && tok <> "" && tok.[0] <> '.' then begin
        Shard_map.assign t.map tok i;
        known_add t tok
      end)
    (tokens_of body)

let is_unknown_doc msg =
  (* Service/Replica phrase their miss replies "unknown document ..." *)
  let needle = "unknown document" in
  let nl = String.length needle and ml = String.length msg in
  let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
  at 0

(* Forward to the owning shard; on an unknown-document reply, probe the
   other shards with the same request — a document loaded directly into
   a shard (serve --doc) sits off-hash, and the probe is what teaches
   the map.  The probe re-sends the original request, not a lookup: for
   reads that is free, and for UPDATE it executes on whichever shard
   actually owns the document, which is exactly the intent. *)
let forward_doc t doc req =
  let owner = Shard_map.place t.map doc in
  let n = Array.length t.shards in
  match shard_call t owner req with
  | Some (Protocol.Err msg) when is_unknown_doc msg && n > 1 ->
    let rec probe i =
      if i >= n then Protocol.Err msg
      else if i = owner then probe (i + 1)
      else
        match shard_call t i req with
        | Some (Protocol.Ok_ _ as r) ->
          Shard_map.assign t.map doc i;
          known_add t doc;
          r
        | _ -> probe (i + 1)
    in
    probe 0
  | Some r -> r
  | None -> Protocol.Err (Printf.sprintf "shard %d unavailable" owner)

(* --- Rebalance ------------------------------------------------------ *)

(* Move one document between shards using only public machinery: the
   replication FILE verbs to read the source's artifacts and chunked
   ADOPTs to stage them on the target.  Two phases:

   Phase A (traffic flows): snapshot the source's (generation, journal
   size), ship the base pair, the current generation's checkpoint pair
   and the journal prefix up to the snapshotted size.

   Phase B (the measured pause): take the write side of the gate, so no
   router-forwarded request is in flight; re-read the source state; if
   the generation rotated meanwhile, abort staging and retry phase A
   (bounded); otherwise ship the journal bytes that accrued since the
   snapshot, commit the adoption, drop the source copy and flip the
   map.  Clients that route through the router can never see two
   copies; a client talking to a shard directly is outside the
   contract. *)

let rebalance_attempts = 3

exception Move_failed of string

let move_err fmt = Printf.ksprintf (fun m -> raise (Move_failed m)) fmt

let call_ok t i req ~what =
  match shard_call t i req with
  | Some (Protocol.Ok_ body) -> body
  | Some (Protocol.Err msg) -> move_err "%s: shard %d: %s" what i msg
  | Some (Protocol.Busy why) -> move_err "%s: shard %d busy: %s" what i why
  | None -> move_err "%s: shard %d unavailable" what i

let source_state t source doc =
  let body = call_ok t source Protocol.Repl_state ~what:"REPL STATE" in
  match Replication.decode_state body with
  | Error msg -> move_err "REPL STATE: undecodable reply: %s" msg
  | Ok st -> (
    match
      List.find_opt (fun d -> d.Replication.name = doc) st.Replication.s_docs
    with
    | Some d -> (d.Replication.gen, d.Replication.size)
    | None -> move_err "unknown document %S on shard %d" doc source)

(* Fetch [file] bytes [from, upto) from [source] and stage them on
   [target], one REPL FILE chunk per ADOPT.  [upto = max_int] means "to
   the end as currently reported". *)
let ship_file t ~source ~target ~doc ~file ~from ~upto =
  let rec go offset =
    if offset < upto then begin
      let limit = min Replication.max_chunk (upto - offset) in
      let body =
        call_ok t source
          (Protocol.Repl_file { doc; file; offset; limit })
          ~what:"REPL FILE"
      in
      match Replication.decode_chunk body with
      | Error msg -> move_err "REPL FILE: undecodable chunk: %s" msg
      | Ok chunk ->
        if chunk.Replication.data <> "" then
          ignore
            (call_ok t target
               (Protocol.Adopt
                  { doc; file; last = false; bytes = chunk.Replication.data })
               ~what:"ADOPT");
        let next = offset + String.length chunk.Replication.data in
        let upto = min upto chunk.Replication.size in
        if chunk.Replication.data = "" || next >= upto then ()
        else go next
    end
  in
  go from

let abort_staging t target doc =
  ignore (shard_call t target (Protocol.Adopt_abort doc))

let run_rebalance t doc target =
  let n = Array.length t.shards in
  if target < 0 || target >= n then
    Protocol.Err (Printf.sprintf "REBALANCE: target %d out of range" target)
  else begin
    let source = Shard_map.place t.map doc in
    if source = target then
      Protocol.Ok_
        (Printf.sprintf "doc=%s shard=%d already-placed pause_ms=0.0" doc
           target)
    else
      try
        (* clear any staging a crashed predecessor left behind *)
        ignore (call_ok t target (Protocol.Adopt_abort doc) ~what:"ADOPTABORT");
        let rec attempt tries =
          if tries = 0 then
            move_err "journal kept rotating; gave up after %d attempts"
              rebalance_attempts;
          (* Phase A: bulk transfer while traffic flows *)
          let gen_a, size_a = source_state t source doc in
          let ship file ~from ~upto =
            ship_file t ~source ~target ~doc ~file ~from ~upto
          in
          ship Protocol.Base_xml ~from:0 ~upto:max_int;
          ship Protocol.Base_sidecar ~from:0 ~upto:max_int;
          if gen_a > 0 then begin
            ship (Protocol.Ckpt_xml gen_a) ~from:0 ~upto:max_int;
            ship (Protocol.Ckpt_sidecar gen_a) ~from:0 ~upto:max_int
          end;
          ship Protocol.Active_wal ~from:0 ~upto:size_a;
          (* Phase B: the measured pause *)
          gate_enter_write t;
          let t0 = Unix.gettimeofday () in
          match
            let gen_b, size_b = source_state t source doc in
            if gen_b <> gen_a then `Rotated
            else begin
              if size_b > size_a then
                ship Protocol.Active_wal ~from:size_a ~upto:size_b;
              let body =
                call_ok t target
                  (Protocol.Adopt
                     { doc; file = Protocol.Active_wal; last = true;
                       bytes = "" })
                  ~what:"ADOPT commit"
              in
              let dropped =
                match shard_call t source (Protocol.Drop_doc doc) with
                | Some (Protocol.Ok_ _) -> true
                | _ -> false
              in
              Shard_map.move t.map doc target;
              known_add t doc;
              `Committed (body, dropped)
            end
          with
          | `Rotated ->
            gate_exit_write t;
            abort_staging t target doc;
            attempt (tries - 1)
          | `Committed (body, dropped) ->
            let pause_ms = (Unix.gettimeofday () -. t0) *. 1000. in
            gate_exit_write t;
            Mutex.lock t.stat_mu;
            t.rebalances <- t.rebalances + 1;
            t.rebalance_pause_ms <- t.rebalance_pause_ms +. pause_ms;
            Mutex.unlock t.stat_mu;
            Protocol.Ok_
              (Printf.sprintf "doc=%s from=%d to=%d pause_ms=%.1f %s%s" doc
                 source target pause_ms body
                 (if dropped then "" else " warn=source-drop-failed"))
          | exception e ->
            gate_exit_write t;
            raise e
        in
        attempt rebalance_attempts
      with Move_failed msg ->
        abort_staging t target doc;
        Protocol.Err ("REBALANCE: " ^ msg)
  end

(* --- Sessions ------------------------------------------------------- *)

let stop t =
  let proceed =
    Mutex.lock t.state_mu;
    let p = t.state = `Running in
    if p then t.state <- `Stopping;
    Mutex.unlock t.state_mu;
    p
  in
  if not proceed then begin
    Mutex.lock t.state_mu;
    while t.state <> `Stopped do
      Condition.wait t.state_cond t.state_mu
    done;
    Mutex.unlock t.state_mu
  end
  else begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.sessions_mu;
    let sess = Hashtbl.fold (fun _ v acc -> v :: acc) t.sessions [] in
    Mutex.unlock t.sessions_mu;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sess;
    List.iter (fun (_, th) -> Thread.join th) sess;
    Array.iter
      (fun sh ->
        Mutex.lock sh.smu;
        (match sh.conn with Some c -> Client.close c | None -> ());
        sh.conn <- None;
        Mutex.unlock sh.smu)
      t.shards;
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    Mutex.lock t.state_mu;
    t.state <- `Stopped;
    Condition.broadcast t.state_cond;
    Mutex.unlock t.state_mu
  end

let wait t =
  Mutex.lock t.state_mu;
  while t.state <> `Stopped do
    Condition.wait t.state_cond t.state_mu
  done;
  Mutex.unlock t.state_mu

let request_stop_async t =
  ignore (Thread.create (fun () -> try stop t with _ -> ()) ())

let run_request t (req : Protocol.request) =
  match req with
  (* local verbs: no gate, no shard round-trip *)
  | Protocol.Ping -> Protocol.Ok_ "pong"
  | Protocol.Stats -> Protocol.Ok_ (Metrics.render t.metrics)
  | Protocol.Shutdown ->
    request_stop_async t;
    Protocol.Ok_ "stopping"
  | Protocol.Sleep _ ->
    Protocol.Err "SLEEP: the router runs no workers to hold"
  | Protocol.Repl_state | Protocol.Repl_file _ | Protocol.Repl_wait _
  | Protocol.Promote ->
    Protocol.Err
      (Protocol.verb req ^ ": this node is a router, not a shard or replica")
  | Protocol.Adopt _ | Protocol.Adopt_abort _ ->
    Protocol.Err
      (Protocol.verb req ^ ": shard-internal verb; not valid at the router")
  (* the writer side of the gate *)
  | Protocol.Rebalance { doc; target } -> run_rebalance t doc target
  (* everything else reads the gate and talks to shards *)
  | Protocol.Query _ | Protocol.Count _ | Protocol.Explain _ | Protocol.Docs
  | Protocol.Update _ | Protocol.Check _ | Protocol.Query_doc _
  | Protocol.Count_doc _ | Protocol.Add_doc _ | Protocol.Add_chunk _
  | Protocol.Drop_doc _ ->
    with_read_gate t @@ fun () -> (
      match req with
      | Protocol.Query _ -> scatter_merge t req merge_query
      | Protocol.Count _ -> scatter_merge t req merge_count
      | Protocol.Explain _ -> scatter_merge t req merge_explain
      | Protocol.Docs ->
        scatter_merge t req merge_docs ~on_ok:(absorb_docs_body t)
      | Protocol.Update { doc; _ }
      | Protocol.Check doc
      | Protocol.Query_doc { doc; _ }
      | Protocol.Count_doc { doc; _ } ->
        forward_doc t doc req
      | Protocol.Add_doc { doc; _ } | Protocol.Add_chunk { doc; _ } -> begin
        (* new documents go to their hash home unless the map says
           otherwise; [place] is deterministic, so every chunk of an
           ADDCHUNK sequence lands on the same shard's spool.  A success
           is a catalog fact worth keeping — for ADDCHUNK only the
           committing chunk's reply carries it (nodes= appears only
           there). *)
        let owner = Shard_map.place t.map doc in
        match shard_call t owner req with
        | Some (Protocol.Ok_ _ as r) ->
          let committed =
            match req with
            | Protocol.Add_chunk { last = false; _ } -> false
            | _ -> true
          in
          if committed then known_add t doc;
          r
        | Some r -> r
        | None -> Protocol.Err (Printf.sprintf "shard %d unavailable" owner)
      end
      | Protocol.Drop_doc doc -> begin
        match forward_doc t doc req with
        | Protocol.Ok_ _ as r ->
          Shard_map.forget t.map doc;
          known_remove t doc;
          r
        | r -> r
      end
      | _ -> assert false)

let guarded_run t req =
  try run_request t req
  with
  | Failure msg -> Protocol.Err msg
  | e -> Protocol.Err ("internal error: " ^ Printexc.to_string e)

let handle_frame t oc payload =
  let t0 = Unix.gettimeofday () in
  let verb, response =
    match Protocol.parse_request payload with
    | Error msg -> ("(parse)", Protocol.Err msg)
    | Ok req -> (Protocol.verb req, guarded_run t req)
  in
  Protocol.write_frame oc (Protocol.response_to_string response);
  let outcome =
    match response with
    | Protocol.Ok_ _ -> `Ok
    | Protocol.Err _ -> `Err
    | Protocol.Busy _ -> `Busy
  in
  Metrics.record t.metrics ~verb ~outcome
    ~latency_ns:((Unix.gettimeofday () -. t0) *. 1e9)

let session_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      handle_frame t oc payload;
      loop ()
  in
  (try loop () with
  | Protocol.Protocol_error _ | End_of_file | Sys_error _ ->
    Metrics.record_session_error t.metrics
  | Unix.Unix_error _ -> Metrics.record_session_error t.metrics);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let stopping () =
    Mutex.lock t.state_mu;
    let s = t.state <> `Running in
    Mutex.unlock t.state_mu;
    s
  in
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ when stopping () ->
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
      let id =
        Mutex.lock t.sessions_mu;
        let id = t.next_session in
        t.next_session <- id + 1;
        Mutex.unlock t.sessions_mu;
        id
      in
      let th =
        Thread.create
          (fun () ->
            session_loop t fd;
            Mutex.lock t.sessions_mu;
            Hashtbl.remove t.sessions id;
            Mutex.unlock t.sessions_mu)
          ()
      in
      Mutex.lock t.sessions_mu;
      Hashtbl.replace t.sessions id (fd, th);
      Mutex.unlock t.sessions_mu;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* --- Startup -------------------------------------------------------- *)

let seed_catalog t =
  Array.iteri
    (fun i _ ->
      match shard_call t i Protocol.Docs with
      | Some (Protocol.Ok_ body) -> absorb_docs_body t i body
      | _ -> ())
    t.shards

let start cfg =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Router.start: " ^ msg));
  (* A shard dying mid-write must surface as EPIPE on the pooled
     connection — caught and turned into a down mark — never as a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let n = Array.length cfg.shard_sockets in
  let t =
    {
      cfg;
      shards =
        Array.map
          (fun socket ->
            { socket; smu = Mutex.create (); conn = None; up = true })
          cfg.shard_sockets;
      map = Shard_map.create ~shards:n;
      metrics = Metrics.create ();
      gate_mu = Mutex.create ();
      gate_cond = Condition.create ();
      gate_readers = 0;
      gate_writer = false;
      known = Hashtbl.create 1024;
      stat_mu = Mutex.create ();
      scatters = 0;
      partials = 0;
      fanout_hist = Array.make (n + 1) 0;
      rebalances = 0;
      rebalance_pause_ms = 0.;
      inflight = Atomic.make 0;
      listen_fd;
      accept_thread = None;
      sessions = Hashtbl.create 16;
      sessions_mu = Mutex.create ();
      next_session = 0;
      state_mu = Mutex.create ();
      state_cond = Condition.create ();
      state = `Running;
    }
  in
  Metrics.set_router_probe t.metrics (fun () ->
      Mutex.lock t.stat_mu;
      let known = Hashtbl.fold (fun k () acc -> k :: acc) t.known [] in
      let stats =
        {
          Metrics.shard_up = Array.map (fun sh -> sh.up) t.shards;
          shard_docs = Shard_map.doc_counts t.map ~known;
          inflight = Atomic.get t.inflight;
          scatters = t.scatters;
          partials = t.partials;
          fanout_hist = Array.copy t.fanout_hist;
          rebalances = t.rebalances;
          rebalance_pause_ms = t.rebalance_pause_ms;
        }
      in
      Mutex.unlock t.stat_mu;
      stats);
  seed_catalog t;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t
