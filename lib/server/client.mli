(** Blocking client for the document service: one connection, one request
    in flight (the service replies in order, so that is the protocol's
    natural discipline).  Used by [ruidtool client], the loopback tests
    and the E13 bench driver. *)

type t

val connect : string -> t
(** Connect to the service's Unix socket.
    @raise Unix.Unix_error when nothing listens there. *)

val request : t -> Protocol.request -> Protocol.response
val request_raw : t -> string -> Protocol.response
(** Send one already-rendered request line.
    @raise Protocol.Protocol_error on a framing violation;
    @raise End_of_file if the server hung up before replying. *)

exception Timeout

val request_timeout : t -> timeout_ms:int -> Protocol.request -> Protocol.response
(** {!request} with a deadline on the {e reply arriving}: parks on socket
    readability for at most [timeout_ms] (0 = wait forever).
    @raise Timeout on expiry — the connection is then poisoned (a late
    reply would desynchronize the request/reply stream) and must be
    closed.  The router's per-shard deadline. *)

val close : t -> unit

val with_connection : string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

(** {1 Bounded retry}

    Opt-in retries for the two transient conditions: BUSY replies and
    connect failures against a socket that is about to exist (server
    booting, failover in progress).  Backoff is exponential from 10 ms,
    capped at 500 ms per sleep, with uniform jitter in [0.5, 1.0] of the
    nominal delay — synchronized retries would re-create the burst that
    made the server BUSY.  Total sleeping never exceeds [budget_ms].
    The defaults ([retries = 0]) keep every call one-shot. *)

val default_retry_budget_ms : int
(** 2000. *)

val connect_retry : ?retries:int -> ?budget_ms:int -> string -> t
(** {!connect}, retrying transient failures (ECONNREFUSED, ENOENT,
    ECONNRESET, EAGAIN, EINTR) up to [retries] times within [budget_ms]
    of cumulative backoff.
    @raise Unix.Unix_error when the attempts are exhausted. *)

val request_retry :
  ?retries:int -> ?budget_ms:int -> t -> Protocol.request -> Protocol.response
(** {!request}, re-sending after a BUSY reply up to [retries] times within
    [budget_ms].  Non-BUSY responses return immediately. *)

val request_raw_retry :
  ?retries:int -> ?budget_ms:int -> t -> string -> Protocol.response
(** {!request_raw} with the same BUSY retry policy. *)

(** {1 Streaming ingest} *)

val add_doc_file :
  ?retries:int ->
  ?budget_ms:int ->
  ?chunk:int ->
  t ->
  doc:string ->
  string ->
  Protocol.response
(** [add_doc_file t ~doc path] ships the file at [path] as document
    [doc] without ever materializing it in client memory: a single
    [ADDDOC] frame when the file fits under {!Protocol.max_frame}, else
    an ordered [ADDCHUNK] sequence ([chunk] bytes per frame, default the
    largest that fits) that the shard spools and ingests in one
    streaming pass on the committing chunk.  Returns the first non-OK
    response, or the committing chunk's
    [OK doc=<name> nodes=<n> v=<version>].  The retry knobs are those of
    {!request_retry}, applied per frame. *)

(** {1 Reply token helpers} *)

val kv : string -> string -> string option
(** [kv body key] finds the first [key=value] token in a reply body
    (tokens split on blanks and newlines). *)

val kv_int : string -> string -> int option
