(** Blocking client for the document service: one connection, one request
    in flight (the service replies in order, so that is the protocol's
    natural discipline).  Used by [ruidtool client], the loopback tests
    and the E13 bench driver. *)

type t

val connect : string -> t
(** Connect to the service's Unix socket.
    @raise Unix.Unix_error when nothing listens there. *)

val request : t -> Protocol.request -> Protocol.response
val request_raw : t -> string -> Protocol.response
(** Send one already-rendered request line.
    @raise Protocol.Protocol_error on a framing violation;
    @raise End_of_file if the server hung up before replying. *)

val close : t -> unit

val with_connection : string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

(** {1 Reply token helpers} *)

val kv : string -> string -> string option
(** [kv body key] finds the first [key=value] token in a reply body
    (tokens split on blanks and newlines). *)

val kv_int : string -> string -> int option
