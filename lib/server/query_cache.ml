(* Sharded LRU of per-document query answers, keyed by
   (document name, snapshot version, normalized query text).

   The snapshot version inside the key is the whole invalidation story:
   a published update bumps the version, so every key a reader builds
   afterwards misses and recomputes against the new snapshot, while the
   orphaned old-version entries age out of the LRU tail.  Nothing is ever
   updated in place, so a hit can never be stale — it answers exactly the
   version it names. *)

type entry = {
  key : string;
  value : string;
  size : int;  (* approximate bytes: key + value + bookkeeping *)
  mutable prev : entry option;  (* toward the MRU end *)
  mutable next : entry option;  (* toward the LRU end *)
}

type shard = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  shards : shard array;
  max_entries_per_shard : int;
  max_bytes_per_shard : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let overhead = 64  (* per-entry bookkeeping estimate, in bytes *)

let create ?(shards = 8) ~max_entries ~max_bytes () =
  if shards < 1 then invalid_arg "Query_cache.create: shards < 1";
  if max_entries < 1 then invalid_arg "Query_cache.create: max_entries < 1";
  if max_bytes < 1 then invalid_arg "Query_cache.create: max_bytes < 1";
  {
    shards =
      Array.init shards (fun _ ->
          {
            mu = Mutex.create ();
            tbl = Hashtbl.create 64;
            mru = None;
            lru = None;
            bytes = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
    max_entries_per_shard = max 1 ((max_entries + shards - 1) / shards);
    max_bytes_per_shard = max 1 ((max_bytes + shards - 1) / shards);
  }

(* Canonical query text via the parser round-trip (Rxpath.Xparser), so
   `//a[ b ]`, `//a[b]` and the fully spelled
   `/descendant-or-self::node()/child::a[child::b]` all share one entry.
   Unparsable input degrades to whitespace-run collapse inside the parser's
   fallback.  The plan cache keys on the same normal form, so a query-cache
   key and a plan-cache key for one query always agree. *)
let normalize = Rxpath.Xparser.normalize

let build_key ~doc ~version ~query =
  Printf.sprintf "%s\x00%d\x00%s" doc version query

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

(* DLL maintenance; callers hold the shard mutex. *)

let unlink s e =
  (match e.prev with Some p -> p.next <- e.next | None -> s.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> s.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front s e =
  e.prev <- None;
  e.next <- s.mru;
  (match s.mru with Some m -> m.prev <- Some e | None -> s.lru <- Some e);
  s.mru <- Some e

let drop s e =
  unlink s e;
  Hashtbl.remove s.tbl e.key;
  s.bytes <- s.bytes - e.size

let locked s f =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

let find t ~doc ~version ~query =
  let key = build_key ~doc ~version ~query in
  let s = shard_of t key in
  locked s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some e ->
        s.hits <- s.hits + 1;
        if s.mru != Some e then begin
          unlink s e;
          push_front s e
        end;
        Some e.value
      | None ->
        s.misses <- s.misses + 1;
        None)

let add t ~doc ~version ~query value =
  let key = build_key ~doc ~version ~query in
  let s = shard_of t key in
  let e =
    { key; value; size = String.length key + String.length value + overhead;
      prev = None; next = None }
  in
  (* An entry too large for a whole shard would evict everything and still
     not fit; refuse it instead. *)
  if e.size <= t.max_bytes_per_shard then
    locked s (fun () ->
        (match Hashtbl.find_opt s.tbl key with
        | Some old -> drop s old  (* same key, same version: same value; keep the fresh one *)
        | None -> ());
        Hashtbl.replace s.tbl key e;
        push_front s e;
        s.bytes <- s.bytes + e.size;
        while
          Hashtbl.length s.tbl > t.max_entries_per_shard
          || s.bytes > t.max_bytes_per_shard
        do
          match s.lru with
          | Some victim ->
            drop s victim;
            s.evictions <- s.evictions + 1
          | None -> assert false (* nonempty: bounds exceeded *)
        done)

let stats t =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          {
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            entries = acc.entries + Hashtbl.length s.tbl;
            bytes = acc.bytes + s.bytes;
          }))
    { hits = 0; misses = 0; evictions = 0; entries = 0; bytes = 0 }
    t.shards

let clear t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.reset s.tbl;
          s.mru <- None;
          s.lru <- None;
          s.bytes <- 0))
    t.shards
