module Dom = Rxml.Dom
module R2 = Ruid.Ruid2

type doc = {
  name : string;
  root : Dom.t;
  r2 : R2.t;
  engine : Rxpath.Eval.engine;
  doc_version : int;
}

type t = { version : int; published_at : float; docs : doc array }

(* An isolated copy of a master document: clone the DOM, then re-impose the
   exact identifiers through the persistence sidecar (Ruid2 state references
   its own tree's nodes, so sharing the numbering would share the tree). *)
let capture_doc ~doc_version name (master : R2.t) =
  let bytes = Ruid.Persist.sidecar_to_bytes master in
  let root = Dom.clone (R2.root master) in
  let r2 = Ruid.Persist.sidecar_of_bytes root bytes in
  { name; root; r2; engine = Rxpath.Engine_ruid.create r2; doc_version }

let capture ~version masters =
  {
    version;
    published_at = Unix.gettimeofday ();
    docs =
      Array.of_list
        (List.map
           (fun (name, r2) -> capture_doc ~doc_version:version name r2)
           masters);
  }

let replace_doc t ~version ~doc_version ~doc_index master =
  let docs = Array.copy t.docs in
  docs.(doc_index) <- capture_doc ~doc_version docs.(doc_index).name master;
  { version; published_at = Unix.gettimeofday (); docs }

(* Incremental capture: instead of a sidecar serialize + reparse of the
   master, clone the PREVIOUS snapshot's copy (pointer work, no encoding)
   and replay the batch's logical operations on the clone.  [Wal.apply] is
   deterministic, so the clone converges to identifiers bit-identical to
   the master that already applied the same ops — the equivalence the
   server property test pins across random update sequences.  Returns the
   new doc plus how many area-renumberings the replay performed (the
   [areas_rebuilt] metric: everything else was shared, not rebuilt). *)
let advance_doc prev ~doc_version ops =
  let r2 = R2.clone prev.r2 in
  let areas = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let area, _changed = Rstorage.Wal.apply r2 op in
      Hashtbl.replace areas area ())
    ops;
  ( { name = prev.name; root = R2.root r2; r2;
      engine = Rxpath.Engine_ruid.create r2; doc_version },
    Hashtbl.length areas )

let advance t ~version updates =
  let docs = Array.copy t.docs in
  let rebuilt = ref 0 in
  List.iter
    (fun (doc_index, ops, doc_version) ->
      let doc, areas = advance_doc docs.(doc_index) ~doc_version ops in
      docs.(doc_index) <- doc;
      rebuilt := !rebuilt + areas)
    updates;
  ({ version; published_at = Unix.gettimeofday (); docs }, !rebuilt)

let find t name =
  let rec go i =
    if i >= Array.length t.docs then None
    else if t.docs.(i).name = name then Some (i, t.docs.(i))
    else go (i + 1)
  in
  go 0

let doc_names t = Array.to_list (Array.map (fun d -> d.name) t.docs)

let parse src =
  try Rxpath.Xparser.parse_union src
  with e -> failwith (Printf.sprintf "bad XPath %S: %s" src (Printexc.to_string e))

let query_doc d u = Rxpath.Eval.select_union d.engine u
let count_doc d u = List.length (query_doc d u)

let count t src =
  let u = parse src in
  Array.to_list (Array.map (fun d -> (d.name, count_doc d u)) t.docs)

let query t src =
  let u = parse src in
  Array.to_list t.docs
  |> List.map (fun d -> (d.name, query_doc d u))
  |> List.filter (fun (_, nodes) -> nodes <> [])

let check t name =
  match find t name with
  | None -> raise Not_found
  | Some (_, d) -> R2.check d.r2
