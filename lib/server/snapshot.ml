module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Planner = Rxpath.Planner
module SMap = Map.Make (String)

type doc = {
  name : string;
  root : Dom.t;
  r2 : R2.t;
  engine : Rxpath.Eval.engine;
  planner : Planner.t option;
  doc_version : int;
  live : bool;
}

type t = {
  version : int;
  published_at : float;
  docs : doc array;
  index : int SMap.t;
}

(* An isolated copy of a master document: clone the DOM, then re-impose the
   exact identifiers through the persistence sidecar (Ruid2 state references
   its own tree's nodes, so sharing the numbering would share the tree).
   With [?planner] shared state, the copy also gets a query planner whose
   engine doubles as the doc's evaluator (one Doc_index serves both). *)
let capture_doc ?planner ~doc_version name (master : R2.t) =
  let bytes = Ruid.Persist.sidecar_to_bytes master in
  let root = Dom.clone (R2.root master) in
  let r2 = Ruid.Persist.sidecar_of_bytes root bytes in
  match planner with
  | None ->
    { name; root; r2; engine = Rxpath.Engine_ruid.create r2; planner = None;
      doc_version; live = true }
  | Some shared ->
    let p = Planner.create ~shared r2 in
    { name; root; r2; engine = Planner.engine p; planner = Some p;
      doc_version; live = true }

let index_of_docs docs =
  let m = ref SMap.empty in
  Array.iteri (fun i d -> m := SMap.add d.name i !m) docs;
  !m

let capture ?planner ~version masters =
  let docs =
    Array.of_list
      (List.map
         (fun (name, r2) -> capture_doc ?planner ~doc_version:version name r2)
         masters)
  in
  { version; published_at = Unix.gettimeofday (); docs;
    index = index_of_docs docs }

let replace_doc t ~version ~doc_version ~doc_index master =
  let docs = Array.copy t.docs in
  let prev = docs.(doc_index) in
  let planner = Option.map Planner.shared_of prev.planner in
  docs.(doc_index) <- capture_doc ?planner ~doc_version prev.name master;
  { version; published_at = Unix.gettimeofday (); docs; index = t.index }

(* Runtime document arrival (ADDDOC / a committed ADOPT).  The name map is
   persistent and shared structurally across snapshots, so registering the
   nth document costs O(log n) map work plus the O(n) pointer copy of the
   docs array — cataloguing a large corpus stays far from quadratic
   encode/decode work.  Re-adding a name that maps to a retired slot
   revives that slot (the rebalance A->B->A round trip); indices of other
   documents never move, which the commit queue's [doc_index] references
   rely on. *)
let add_doc t ?planner ~version ~name master =
  match SMap.find_opt name t.index with
  | Some i when t.docs.(i).live ->
    invalid_arg ("Snapshot.add_doc: duplicate document " ^ name)
  | Some i ->
    let docs = Array.copy t.docs in
    docs.(i) <- capture_doc ?planner ~doc_version:version name master;
    ({ version; published_at = Unix.gettimeofday (); docs; index = t.index }, i)
  | None ->
    let i = Array.length t.docs in
    let d = capture_doc ?planner ~doc_version:version name master in
    let docs = Array.append t.docs [| d |] in
    ( { version; published_at = Unix.gettimeofday (); docs;
        index = SMap.add name i t.index },
      i )

(* Retire in place: the slot (and every other document's index) survives so
   in-flight readers and the write path's index-addressed bookkeeping stay
   valid; the document merely stops being listed, queried or checked.  The
   slot's memory is retained until a revival — the cost of never shifting
   an index. *)
let retire_doc t ~version ~doc_index =
  let docs = Array.copy t.docs in
  docs.(doc_index) <- { (docs.(doc_index)) with live = false };
  { version; published_at = Unix.gettimeofday (); docs; index = t.index }

(* Root label path of an element (root label first, elements only — the
   document node contributes nothing). *)
let label_path n =
  List.rev_map Dom.tag
    (List.filter Dom.is_element (n :: Dom.ancestors n))

(* The guide delta of one logical operation, computed against the tree the
   operation is ABOUT to apply to (ranks are pre-apply preorder ranks). *)
let delta_of_op root op =
  match op with
  | Rstorage.Wal.Insert { parent_rank; tag; _ } -> (
    match List.nth_opt (Dom.preorder root) parent_rank with
    | None -> None  (* replay will fail; let Wal.apply report it *)
    | Some parent ->
      let base = if Dom.is_element parent then label_path parent else [] in
      Some [ Planner.Add (base @ [ tag ]) ])
  | Rstorage.Wal.Delete { rank } -> (
    match List.nth_opt (Dom.preorder root) rank with
    | None -> None
    | Some n ->
      Some (List.map (fun e -> Planner.Remove (label_path e)) (Dom.elements n)))

(* Incremental capture: instead of a sidecar serialize + reparse of the
   master, clone the PREVIOUS snapshot's copy (pointer work, no encoding)
   and replay the batch's logical operations on the clone.  [Wal.apply] is
   deterministic, so the clone converges to identifiers bit-identical to
   the master that already applied the same ops — the equivalence the
   server property test pins across random update sequences.  The planner
   advances incrementally too: each op's DataGuide delta is computed
   against the pre-apply tree (ranks are pre-apply), then folded into a
   clone of the previous guide — O(changed paths), no guide rebuild.
   Returns the new doc plus how many area-renumberings the replay performed
   (the [areas_rebuilt] metric: everything else was shared, not rebuilt). *)
let advance_doc prev ~doc_version ops =
  let r2 = R2.clone prev.r2 in
  let areas = Hashtbl.create 8 in
  let deltas = ref (Some []) in
  let track = prev.planner <> None in
  List.iter
    (fun op ->
      if track then
        (match (!deltas, delta_of_op (R2.root r2) op) with
        | Some acc, Some ds -> deltas := Some (acc @ ds)
        | _, None -> deltas := None  (* unresolvable rank: give up tracking *)
        | None, _ -> ());
      let area, _changed = Rstorage.Wal.apply r2 op in
      Hashtbl.replace areas area ())
    ops;
  let planner =
    Option.map
      (fun p ->
        Planner.advance p r2
          ~deltas:
            (match !deltas with
            | Some ds -> ds
            | None -> [ Planner.Remove [] ]  (* inconsistent: force rebuild *)))
      prev.planner
  in
  let engine =
    match planner with
    | Some p -> Planner.engine p
    | None -> Rxpath.Engine_ruid.create r2
  in
  ( { name = prev.name; root = R2.root r2; r2; engine; planner; doc_version;
      live = prev.live },
    Hashtbl.length areas )

(* The stamp a successor of [t] must be published under: strictly above
   [t.version] (cache keys embed the stamp, so it must move on every
   publication) and at least [floor] — the highest update version the
   successor folds in.  With several commit groups publishing concurrently
   through a CAS loop, each contender recomputes its stamp against the
   freshly re-read predecessor, so stamps stay strictly increasing across
   whichever publication wins the race. *)
let next_stamp t ~floor = max floor (t.version + 1)

let advance t ~version updates =
  let docs = Array.copy t.docs in
  let rebuilt = ref 0 in
  List.iter
    (fun (doc_index, ops, doc_version) ->
      let doc, areas = advance_doc docs.(doc_index) ~doc_version ops in
      docs.(doc_index) <- doc;
      rebuilt := !rebuilt + areas)
    updates;
  ( { version; published_at = Unix.gettimeofday (); docs; index = t.index },
    !rebuilt )

let find t name =
  match SMap.find_opt name t.index with
  | Some i when t.docs.(i).live -> Some (i, t.docs.(i))
  | _ -> None

let live_docs t = Array.to_list t.docs |> List.filter (fun d -> d.live)
let doc_names t = List.map (fun d -> d.name) (live_docs t)

let parse src =
  try Rxpath.Xparser.parse_union src
  with e -> failwith (Printf.sprintf "bad XPath %S: %s" src (Printexc.to_string e))

let query_doc d u =
  match d.planner with
  | Some p -> Planner.select_union p u
  | None -> Rxpath.Eval.select_union d.engine u

let count_doc d u = List.length (query_doc d u)

let explain_doc d src =
  match d.planner with
  | Some p -> Ok (Planner.explain p src)
  | None -> Error "planner disabled"

let count t src =
  let u = parse src in
  List.map (fun d -> (d.name, count_doc d u)) (live_docs t)

let query t src =
  let u = parse src in
  live_docs t
  |> List.map (fun d -> (d.name, query_doc d u))
  |> List.filter (fun (_, nodes) -> nodes <> [])

let check t name =
  match find t name with
  | None -> raise Not_found
  | Some (_, d) -> R2.check d.r2
