(** The concurrent document service.

    One long-running process composes the repo's three pillars: numbering
    (a hosted {!Rxpath.Collection}), durability (every structural update
    committed through {!Rstorage.Wal} before it is visible), and query
    evaluation (the numbering-driven engine) — behind a Unix-socket
    protocol ({!Protocol}) served by a worker pool ({!Scheduler}).

    Concurrency contract:
    - {e Reads are snapshot-isolated and never block.}  Workers grab the
      current {!Snapshot} with one atomic load; an update publishes a new
      snapshot with one atomic store.  A reader therefore sees either the
      numbering before an update or after it — never a half-renumbered
      area.
    - {e Reads scale with cores when asked to.}  With [domains > 0],
      QUERY/COUNT/CHECK run on a fixed pool of OCaml 5 domains
      ({!Executor}) instead of systhreads, evaluating in true parallel
      against the immutable snapshot; with [cache_mb > 0] their answers
      are memoized in a snapshot-versioned sharded LRU ({!Query_cache})
      whose keys embed the snapshot version — a cached answer can never
      be stale, and publication needs no invalidation protocol.
    - {e Writes are partitioned into independent commit pipelines.}
      Documents hash by name into [commit_groups] groups (the same stable
      placement hash the collection router uses); each group owns a write
      mutex, a commit queue, and a dedicated pipeline domain, so updates
      to documents of different groups apply, fsync, and publish
      concurrently — the paper's area-confined-update independence turned
      into multicore write throughput.  Within a group, writes are
      serialized and committed in batches: each update is applied to the
      master numbering, sequenced, parked in the group's queue, and the
      pipeline drains up to [commit_max_batch] records into {e one} WAL
      batch frame per touched document, then publishes {e one} snapshot
      for the whole batch — derived incrementally from the previous
      snapshot (clone + replay of just the touched areas) rather than a
      full serialize/reparse, installed by compare-and-set so concurrent
      groups' publications interleave safely.  Records that arrive during
      an in-flight fsync coalesce into the next batch, so concurrent
      writers of one group share fsyncs (group commit) while a lone
      writer commits immediately with unbatched latency.  An UPDATE is
      acknowledged only after its batch's fsync and publication, so the
      on-disk journal is always a redo log of everything any client was
      ever told ([OK seq=...]).  Per-document ordering, quarantine after
      a failed commit, and WAL batch atomicity are all per group — a
      fault in one group never pauses another.  With
      [wal_segment_bytes > 0] a document's journal is rotated once it
      outgrows the threshold: a checkpoint of the durable state is cut
      and replay restarts from it.
    - {e Overload is explicit.}  The admission queue is bounded; beyond it
      clients get [BUSY] immediately, and a per-request deadline turns
      stale queued work into [BUSY] instead of late replies.

    Graceful shutdown stops the accept loop, unblocks every session,
    drains admitted work, and leaves [<doc>.xml] + [<doc>.ruid] + [<doc>.wal]
    in the data directory such that {!Rstorage.Wal.fsck} rates them
    recoverable (0 or 1) — the crash story and the shutdown story are the
    same story. *)

type config = {
  socket_path : string;  (** Unix domain socket (paths are length-limited) *)
  data_dir : string;  (** snapshots + WALs live here; created if absent *)
  workers : int;  (** systhread worker pool size (writes; reads when
                      [domains = 0]) *)
  max_queue : int;  (** admission queue bound per pool; beyond it: [BUSY].
                        0 = default: 4 × the pool's worker count *)
  deadline_ms : int;  (** per-request deadline; 0 disables *)
  max_area_size : int;  (** numbering parameter for hosted documents *)
  max_depth : int;
      (** maximal XML element nesting accepted on every ingest path —
          startup files and runtime ADDDOC/ADDCHUNK alike; deeper input
          is rejected before any node is built *)
  domains : int;  (** read-executor domain count; 0 = reads share the
                      systhread pool (single-domain behavior) *)
  cache_mb : int;  (** result-cache budget in MiB; 0 disables caching *)
  commit_interval_us : int;
      (** extra microseconds a commit leader waits for stragglers before
          flushing a non-full batch; 0 (the default) = natural batching
          only — arrivals during the in-flight fsync form the next batch,
          and a lone writer never waits *)
  commit_max_batch : int;
      (** most records coalesced into one WAL batch frame / one snapshot
          publication; 1 = unbatched (every record its own fsync) *)
  commit_groups : int;
      (** independent commit pipelines; documents hash to one by name.
          0 (the default) = one pipeline per read domain ([domains]),
          minimum 1.  1 = the single-pipeline behavior (all writes share
          one mutex, queue and leader) *)
  wal_segment_bytes : int;
      (** rotate a document's WAL segment once it reaches this size,
          cutting a checkpoint; 0 disables rotation *)
  planner : bool;
      (** route QUERY/COUNT through the cost-based query planner
          ({!Rxpath.Planner}) and serve EXPLAIN; off = every query runs on
          the evaluator directly (identical answers, no plan cache) *)
  plan_cache : int;
      (** compiled-plan cache capacity in plans (shared by the whole
          collection, keyed by DataGuide fingerprint + canonical query
          text); 0 disables plan caching *)
  epoch : int;
      (** fencing generation this primary serves under ({!Replication}):
          persisted to [<data_dir>/EPOCH] at startup and stamped on every
          [REPL *] reply, so followers can refuse a deposed primary *)
}

val default_config : socket_path:string -> data_dir:string -> unit -> config
(** workers 4, max_queue 0 (= 4 × workers), deadline_ms 0,
    max_area_size 64, max_depth 10000, domains 0, cache_mb 0,
    commit_interval_us 0,
    commit_max_batch 64, commit_groups 0 (= one per read domain, min 1),
    wal_segment_bytes 0, planner true, plan_cache 256, epoch 1. *)

val resolved_max_queue : config -> int
(** The effective per-pool admission bound: [max_queue] when positive,
    else 4 × the larger pool ([workers] vs [domains]). *)

val resolved_commit_groups : config -> int
(** The effective commit-pipeline count: [commit_groups] when positive,
    else [max 1 domains]. *)

val validate_config : config -> (unit, string) result
(** Bounds checking for the CLI flags: workers >= 1, max_queue >= 0
    (0 = auto), deadline_ms >= 0, max_area_size >= 2, max_depth >= 1,
    domains >= 0,
    cache_mb >= 0, commit_interval_us >= 0, commit_max_batch >= 1,
    commit_groups >= 0 (0 = auto),
    wal_segment_bytes >= 0, plan_cache >= 0, epoch >= 1,
    socket path non-empty and short enough for
    [sockaddr_un]. *)

type t

val start : config -> (string * Rxml.Dom.t) list -> t
(** Number and host the named documents, persist their snapshots and open
    their WALs under [data_dir], publish snapshot version 1, and begin
    accepting connections.  An empty document list is valid — a shard in
    the collection tier boots bare and is populated by [ADDDOC]/[ADOPT].
    @raise Invalid_argument on an invalid config or a duplicate document
    name. *)

val stop : t -> unit
(** Graceful shutdown as described above.  Idempotent; callable from any
    thread.  Returns once everything is joined and the socket file is
    removed. *)

val wait : t -> unit
(** Block until {!stop} (from any thread, or a [SHUTDOWN] request)
    completes. *)

val metrics : t -> Metrics.t
val snapshot : t -> Snapshot.t
val config : t -> config

val cache_stats : t -> Query_cache.stats option
(** Result-cache counters, when a cache is configured. *)

val collection : t -> Rxpath.Collection.t
(** The hosted collection (the master registry; the write path's state). *)

val doc_files : t -> string -> (string * string * string) option
(** [(xml, sidecar, wal)] paths of a hosted document — what to [fsck]
    after shutdown. *)

val eval_read :
  ?cache:Query_cache.t -> Snapshot.t -> Protocol.request -> Protocol.response
(** Evaluate one of the four read verbs ([QUERY], [COUNT], [EXPLAIN],
    [CHECK]) over an explicit snapshot.  This is the service's own read
    path with the snapshot made a parameter: {!Replica} serves reads
    through it, so a caught-up follower's replies are byte-identical to
    the primary's at the same version.  Any other request is answered
    with an internal [ERR]. *)
