module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Wal = Rstorage.Wal

type config = {
  socket_path : string;
  data_dir : string;
  workers : int;
  max_queue : int;
  deadline_ms : int;
  max_area_size : int;
  domains : int;
  cache_mb : int;
}

let default_config ~socket_path ~data_dir () =
  { socket_path; data_dir; workers = 4; max_queue = 0; deadline_ms = 0;
    max_area_size = 64; domains = 0; cache_mb = 0 }

(* E13 showed the old fixed default rejecting 67% of a 90/10 mix at only
   8 clients: a queue bound that ignores the pool size punishes exactly
   the configurations that could absorb the burst.  The default bound now
   scales with the pool: 4 jobs of headroom per worker. *)
let resolved_max_queue c =
  if c.max_queue > 0 then c.max_queue else 4 * max c.workers (max 1 c.domains)

(* sockaddr_un paths are limited to ~104 bytes portably. *)
let max_socket_path = 100

let validate_config c =
  if c.workers < 1 then Error "workers must be >= 1"
  else if c.max_queue < 0 then
    Error "max-queue must be >= 1 (or 0 for the default of 4 x workers)"
  else if c.deadline_ms < 0 then Error "deadline-ms must be >= 0"
  else if c.max_area_size < 2 then Error "max-area-size must be >= 2"
  else if c.domains < 0 then Error "domains must be >= 0 (0 disables)"
  else if c.cache_mb < 0 then Error "cache-mb must be >= 0 (0 disables)"
  else if c.socket_path = "" then Error "socket path must not be empty"
  else if String.length c.socket_path > max_socket_path then
    Error
      (Printf.sprintf "socket path longer than %d bytes (sockaddr_un limit)"
         max_socket_path)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* One-shot synchronization cell: session threads park on it while a    *)
(* worker computes their reply.                                         *)
(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t x =
    Mutex.lock t.m;
    t.v <- Some x;
    Condition.signal t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let x = Option.get t.v in
    Mutex.unlock t.m;
    x
end

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type master = {
  name : string;
  r2 : R2.t;  (** the writer's private mutable state; never read by readers *)
  wal : Wal.writer;
  xml_path : string;
  sidecar_path : string;
  wal_path : string;
}

type t = {
  cfg : config;
  coll : Rxpath.Collection.t;
  masters : master array;
  current : Snapshot.t Atomic.t;
  write_mu : Mutex.t;
  sched : Scheduler.t;
  exec : Executor.t option;  (** parallel read pool; [None] = systhreads *)
  cache : Query_cache.t option;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  sessions : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  sessions_mu : Mutex.t;
  mutable next_session : int;
  state_mu : Mutex.t;
  state_cond : Condition.t;
  mutable state : [ `Running | `Stopping | `Stopped ];
}

let metrics t = t.metrics
let snapshot t = Atomic.get t.current
let config t = t.cfg
let collection t = t.coll
let cache_stats t = Option.map Query_cache.stats t.cache

let doc_files t name =
  Array.fold_left
    (fun acc m ->
      if m.name = name then Some (m.xml_path, m.sidecar_path, m.wal_path)
      else acc)
    None t.masters

(* ------------------------------------------------------------------ *)
(* Request execution (runs on worker threads)                          *)
(* ------------------------------------------------------------------ *)

let pp_id_compact id =
  Printf.sprintf "(%d,%d,%b)" id.R2.global id.R2.local id.R2.is_root

(* At most this many matching identifiers are listed in a QUERY reply
   (and therefore cached per document — enough to rebuild any reply). *)
let id_cap = 32

(* Per-document answer via the result cache.  The snapshot version is part
   of the cache key, so an entry can only ever answer the exact snapshot it
   was computed against; [kind] separates the COUNT and QUERY namespaces.
   Computed values are small strings (a count, or a count plus at most
   [id_cap] identifiers), so caching cost is bounded per entry. *)
let with_cache t s (d : Snapshot.doc) ~kind ~normq compute =
  match t.cache with
  | None -> compute ()
  | Some cache ->
    let query = kind ^ normq in
    let doc = d.Snapshot.name and version = s.Snapshot.version in
    (match Query_cache.find cache ~doc ~version ~query with
    | Some v -> v
    | None ->
      let v = compute () in
      Query_cache.add cache ~doc ~version ~query v;
      v)

let run_count t src =
  let s = Atomic.get t.current in
  let normq = Query_cache.normalize src in
  let parsed = lazy (Snapshot.parse src) in
  let per_doc =
    Array.to_list s.Snapshot.docs
    |> List.map (fun d ->
           let v =
             with_cache t s d ~kind:"C\x00" ~normq (fun () ->
                 string_of_int (Snapshot.count_doc d (Lazy.force parsed)))
           in
           (d.Snapshot.name, int_of_string v))
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 per_doc in
  Protocol.Ok_
    (Printf.sprintf "v=%d total=%d %s" s.Snapshot.version total
       (String.concat " "
          (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) per_doc)))

let run_query t src =
  let s = Atomic.get t.current in
  let normq = Query_cache.normalize src in
  let parsed = lazy (Snapshot.parse src) in
  (* Cached value: the count followed by the first [id_cap] identifiers,
     space-separated (identifiers contain no spaces). *)
  let per_doc =
    Array.to_list s.Snapshot.docs
    |> List.map (fun d ->
           let v =
             with_cache t s d ~kind:"Q\x00" ~normq (fun () ->
                 let nodes = Snapshot.query_doc d (Lazy.force parsed) in
                 let ids =
                   List.filteri (fun i _ -> i < id_cap) nodes
                   |> List.map (fun n ->
                          pp_id_compact (R2.id_of_node d.Snapshot.r2 n))
                 in
                 String.concat " " (string_of_int (List.length nodes) :: ids))
           in
           match String.split_on_char ' ' v with
           | n :: ids -> (d.Snapshot.name, int_of_string n, ids)
           | [] -> assert false)
    |> List.filter (fun (_, n, _) -> n > 0)
  in
  let total = List.fold_left (fun acc (_, n, _) -> acc + n) 0 per_doc in
  let ids =
    List.concat_map
      (fun (name, _, ids) -> List.map (fun i -> name ^ ":" ^ i) ids)
      per_doc
  in
  let shown = List.filteri (fun i _ -> i < id_cap) ids in
  Protocol.Ok_
    (Printf.sprintf "v=%d total=%d %s%s" s.Snapshot.version total
       (String.concat " "
          (List.map
             (fun (name, n, _) -> Printf.sprintf "%s=%d" name n)
             per_doc))
       (if shown = [] then ""
        else " ids " ^ String.concat " " shown
             ^ if total > id_cap then " ..." else ""))

let run_update t doc op =
  Mutex.lock t.write_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_mu) @@ fun () ->
  let idx =
    let r = ref (-1) in
    Array.iteri (fun i m -> if m.name = doc then r := i) t.masters;
    !r
  in
  if idx < 0 then Protocol.Err (Printf.sprintf "unknown document %S" doc)
  else begin
    let m = t.masters.(idx) in
    match Wal.log_update m.wal m.r2 op with
    | record ->
      (* Durable in the WAL; now publish.  Only this thread swaps the
         snapshot, so read-modify-write under write_mu is safe. *)
      let prev = Atomic.get t.current in
      let next =
        Snapshot.replace_doc prev ~version:(prev.Snapshot.version + 1)
          ~doc_index:idx m.r2
      in
      Atomic.set t.current next;
      Protocol.Ok_
        (Printf.sprintf "v=%d seq=%d area=%d changed=%d"
           next.Snapshot.version record.Wal.seq record.Wal.area
           record.Wal.changed)
    | exception Wal.Replay_error msg -> Protocol.Err ("update rejected: " ^ msg)
  end

let run_check t doc =
  let s = Atomic.get t.current in
  match Snapshot.check s doc with
  | () -> Protocol.Ok_ (Printf.sprintf "v=%d consistent" s.Snapshot.version)
  | exception Not_found -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | exception Failure msg -> Protocol.Err ("inconsistent snapshot: " ^ msg)

let run_request t (req : Protocol.request) =
  match req with
  | Protocol.Count src -> run_count t src
  | Protocol.Query src -> run_query t src
  | Protocol.Update { doc; op } -> run_update t doc op
  | Protocol.Check doc -> run_check t doc
  | Protocol.Sleep ms ->
    Thread.delay (float_of_int ms /. 1000.);
    Protocol.Ok_ (Printf.sprintf "slept=%d" ms)
  | Protocol.Ping | Protocol.Docs | Protocol.Stats | Protocol.Shutdown ->
    (* handled inline by the session *)
    Protocol.Err "internal: control verb reached the worker pool"

let guarded_run t req =
  try run_request t req
  with
  | Failure msg -> Protocol.Err msg
  | e -> Protocol.Err ("internal error: " ^ Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let stop t =
  let proceed =
    Mutex.lock t.state_mu;
    let p = t.state = `Running in
    if p then t.state <- `Stopping;
    Mutex.unlock t.state_mu;
    p
  in
  if not proceed then (
    (* someone else is stopping (or stopped): wait for them *)
    Mutex.lock t.state_mu;
    while t.state <> `Stopped do
      Condition.wait t.state_cond t.state_mu
    done;
    Mutex.unlock t.state_mu)
  else begin
    (* 1. no new connections.  A thread parked in accept() on an AF_UNIX
       socket is not reliably woken by shutdown()/close(), so wake it the
       portable way: hand it one last dummy connection.  The accept loop
       rechecks the state and exits. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* 2. no new requests: sessions see EOF after their in-flight reply *)
    Mutex.lock t.sessions_mu;
    let sess = Hashtbl.fold (fun _ v acc -> v :: acc) t.sessions [] in
    Mutex.unlock t.sessions_mu;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sess;
    List.iter (fun (_, th) -> Thread.join th) sess;
    (* 3. drain the admitted queues, park the workers and the domains *)
    Scheduler.shutdown t.sched;
    (match t.exec with Some ex -> Executor.shutdown ex | None -> ());
    (* 4. the WAL needs no flush — every record was fsynced at commit;
       with the write lock free and workers gone, the files are final *)
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    Mutex.lock t.state_mu;
    t.state <- `Stopped;
    Condition.broadcast t.state_cond;
    Mutex.unlock t.state_mu
  end

let wait t =
  Mutex.lock t.state_mu;
  while t.state <> `Stopped do
    Condition.wait t.state_cond t.state_mu
  done;
  Mutex.unlock t.state_mu

let request_stop_async t =
  (* SHUTDOWN arrives on a session thread; stop joins session threads, so
     it must run elsewhere. *)
  ignore (Thread.create (fun () -> try stop t with _ -> ()) ())

let handle_frame t oc payload =
  let t0 = Unix.gettimeofday () in
  let reply verb response =
    Protocol.write_frame oc (Protocol.response_to_string response);
    let outcome =
      match response with
      | Protocol.Ok_ _ -> `Ok
      | Protocol.Err _ -> `Err
      | Protocol.Busy _ -> `Busy
    in
    Metrics.record t.metrics ~verb ~outcome
      ~latency_ns:((Unix.gettimeofday () -. t0) *. 1e9)
  in
  match Protocol.parse_request payload with
  | Error msg -> reply "INVALID" (Protocol.Err msg)
  | Ok req -> (
    let verb = Protocol.verb req in
    match req with
    (* Control verbs bypass the admission queue: they must stay
       observable exactly when the queue is saturated. *)
    | Protocol.Ping -> reply verb (Protocol.Ok_ "pong")
    | Protocol.Stats -> reply verb (Protocol.Ok_ (Metrics.render t.metrics))
    | Protocol.Docs ->
      let s = Atomic.get t.current in
      reply verb
        (Protocol.Ok_
           (Printf.sprintf "v=%d docs=%d %s" s.Snapshot.version
              (List.length (Snapshot.doc_names s))
              (String.concat " " (Snapshot.doc_names s))))
    | Protocol.Shutdown ->
      reply verb (Protocol.Ok_ "stopping");
      request_stop_async t
    | Protocol.Query _ | Protocol.Count _ | Protocol.Update _
    | Protocol.Check _ | Protocol.Sleep _ ->
      let deadline =
        if t.cfg.deadline_ms = 0 then infinity
        else t0 +. (float_of_int t.cfg.deadline_ms /. 1000.)
      in
      let iv = Ivar.create () in
      let job () =
        let response =
          if Unix.gettimeofday () > deadline then
            Protocol.Busy "deadline exceeded in queue"
          else guarded_run t req
        in
        Ivar.fill iv response
      in
      (* Reads go to the parallel executor when one is configured: they
         only touch domain-safe state (the immutable snapshot, the sharded
         cache).  UPDATE (and the testing verb SLEEP) stays on the
         systhread pool of the main domain — the WAL + write-mutex path. *)
      let admitted =
        match (t.exec, req) with
        | Some ex, (Protocol.Query _ | Protocol.Count _ | Protocol.Check _) ->
          Executor.submit ~label:verb ex job
        | _ -> Scheduler.submit ~label:verb t.sched job
      in
      if admitted then reply verb (Ivar.read iv)
      else reply verb (Protocol.Busy "queue full"))

let session_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      handle_frame t oc payload;
      loop ()
  in
  (try loop () with
  | Protocol.Protocol_error _ | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let stopping () =
    Mutex.lock t.state_mu;
    let s = t.state <> `Running in
    Mutex.unlock t.state_mu;
    s
  in
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ when stopping () ->
      (* the wake-up connection made by stop, or a late client *)
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
      let id =
        Mutex.lock t.sessions_mu;
        let id = t.next_session in
        t.next_session <- id + 1;
        Mutex.unlock t.sessions_mu;
        id
      in
      let th =
        Thread.create
          (fun () ->
            session_loop t fd;
            Mutex.lock t.sessions_mu;
            Hashtbl.remove t.sessions id;
            Mutex.unlock t.sessions_mu)
          ()
      in
      Mutex.lock t.sessions_mu;
      (* A finished session may already have run its removal, leaving a
         stale entry here; stop tolerates that (shutdown on a closed fd
         and join on a dead thread are both harmless). *)
      Hashtbl.replace t.sessions id (fd, th);
      Mutex.unlock t.sessions_mu;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let ensure_dir d =
  if not (Sys.file_exists d) then Unix.mkdir d 0o755
  else if not (Sys.is_directory d) then
    invalid_arg (Printf.sprintf "Service.start: %s is not a directory" d)

let start cfg docs =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Service.start: " ^ msg));
  if docs = [] then invalid_arg "Service.start: no documents to host";
  ensure_dir cfg.data_dir;
  let coll = Rxpath.Collection.create ~max_area_size:cfg.max_area_size () in
  let masters =
    Array.of_list
      (List.map
         (fun (name, root) ->
           if not (String.for_all (fun c -> c > ' ' && c <> '/') name)
              || name = "" || name.[0] = '.' then
             invalid_arg
               (Printf.sprintf "Service.start: bad document name %S" name);
           let doc_id = Rxpath.Collection.add coll ~name root in
           let r2 = Rxpath.Collection.ruid coll doc_id in
           let base = Filename.concat cfg.data_dir name in
           let xml_path = base ^ ".xml" in
           let sidecar_path = base ^ ".ruid" in
           let wal_path = base ^ ".wal" in
           Ruid.Persist.save r2 ~xml:xml_path ~sidecar:sidecar_path;
           let wal = Wal.create wal_path in
           { name; r2; wal; xml_path; sidecar_path; wal_path })
         docs)
  in
  let snapshot0 =
    Snapshot.capture ~version:1
      (Array.to_list (Array.map (fun m -> (m.name, m.r2)) masters))
  in
  let metrics = Metrics.create () in
  let on_exn ~label e = Metrics.record_dropped metrics ~verb:label e in
  let max_queue = resolved_max_queue cfg in
  let sched = Scheduler.create ~on_exn ~workers:cfg.workers ~max_queue () in
  let exec =
    if cfg.domains = 0 then None
    else Some (Executor.create ~on_exn ~domains:cfg.domains ~max_queue ())
  in
  let cache =
    if cfg.cache_mb = 0 then None
    else
      (* ~1 KiB budgeted per entry: answers are counts plus at most
         [id_cap] identifiers, so the byte cap binds first only for
         unusually long query strings. *)
      Some
        (Query_cache.create ~max_entries:(cfg.cache_mb * 1024)
           ~max_bytes:(cfg.cache_mb * 1024 * 1024) ())
  in
  (* the socket *)
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      coll;
      masters;
      current = Atomic.make snapshot0;
      write_mu = Mutex.create ();
      sched;
      exec;
      cache;
      metrics;
      listen_fd;
      accept_thread = None;
      sessions = Hashtbl.create 16;
      sessions_mu = Mutex.create ();
      next_session = 0;
      state_mu = Mutex.create ();
      state_cond = Condition.create ();
      state = `Running;
    }
  in
  Metrics.set_queue_probe metrics (fun () ->
      Scheduler.queue_depth t.sched
      + match t.exec with Some ex -> Executor.queue_depth ex | None -> 0);
  Metrics.set_snapshot_probe metrics (fun () ->
      let s = Atomic.get t.current in
      (s.Snapshot.version, s.Snapshot.published_at));
  (match t.cache with
  | Some c ->
    Metrics.set_cache_probe metrics (fun () ->
        let s = Query_cache.stats c in
        {
          Metrics.hits = s.Query_cache.hits;
          misses = s.Query_cache.misses;
          evictions = s.Query_cache.evictions;
          entries = s.Query_cache.entries;
          bytes = s.Query_cache.bytes;
        })
  | None -> ());
  (match t.exec with
  | Some ex -> Metrics.set_domain_probe metrics (fun () -> Executor.busy_seconds ex)
  | None -> ());
  t.accept_thread <- Some (Thread.create accept_loop t);
  t
