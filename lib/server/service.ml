module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Wal = Rstorage.Wal

type config = {
  socket_path : string;
  data_dir : string;
  workers : int;
  max_queue : int;
  deadline_ms : int;
  max_area_size : int;
  max_depth : int;
  domains : int;
  cache_mb : int;
  commit_interval_us : int;
  commit_max_batch : int;
  commit_groups : int;
  wal_segment_bytes : int;
  planner : bool;
  plan_cache : int;
  epoch : int;
}

let default_config ~socket_path ~data_dir () =
  { socket_path; data_dir; workers = 4; max_queue = 0; deadline_ms = 0;
    max_area_size = 64; max_depth = 10_000; domains = 0; cache_mb = 0;
    commit_interval_us = 0; commit_max_batch = 64; commit_groups = 0;
    wal_segment_bytes = 0; planner = true; plan_cache = 256; epoch = 1 }

(* E13 showed the old fixed default rejecting 67% of a 90/10 mix at only
   8 clients: a queue bound that ignores the pool size punishes exactly
   the configurations that could absorb the burst.  The default bound now
   scales with the pool: 4 jobs of headroom per worker. *)
let resolved_max_queue c =
  if c.max_queue > 0 then c.max_queue else 4 * max c.workers (max 1 c.domains)

(* Default the commit-pipeline count to the read-executor domain count: a
   box granted N domains for reads deserves N write pipelines too, and a
   single-domain configuration keeps the single-pipeline (= old global
   mutex) behavior. *)
let resolved_commit_groups c =
  if c.commit_groups > 0 then c.commit_groups else max 1 c.domains

(* sockaddr_un paths are limited to ~104 bytes portably. *)
let max_socket_path = 100

let validate_config c =
  if c.workers < 1 then Error "workers must be >= 1"
  else if c.max_queue < 0 then
    Error "max-queue must be >= 1 (or 0 for the default of 4 x workers)"
  else if c.deadline_ms < 0 then Error "deadline-ms must be >= 0"
  else if c.max_area_size < 2 then Error "max-area-size must be >= 2"
  else if c.max_depth < 1 then Error "max-depth must be >= 1"
  else if c.domains < 0 then Error "domains must be >= 0 (0 disables)"
  else if c.cache_mb < 0 then Error "cache-mb must be >= 0 (0 disables)"
  else if c.commit_interval_us < 0 then Error "commit-interval-us must be >= 0"
  else if c.commit_max_batch < 1 then Error "commit-batch must be >= 1"
  else if c.commit_groups < 0 then
    Error "commit-groups must be >= 0 (0 = one per read domain, min 1)"
  else if c.wal_segment_bytes < 0 then
    Error "wal-segment-bytes must be >= 0 (0 disables rotation)"
  else if c.plan_cache < 0 then
    Error "plan-cache must be >= 0 (0 disables plan caching)"
  else if c.epoch < 1 then
    Error "epoch must be >= 1 (the fencing generation this primary serves)"
  else if c.socket_path = "" then Error "socket path must not be empty"
  else if String.length c.socket_path > max_socket_path then
    Error
      (Printf.sprintf "socket path longer than %d bytes (sockaddr_un limit)"
         max_socket_path)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* One-shot synchronization cell: session threads park on it while a    *)
(* worker computes their reply.                                         *)
(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t x =
    Mutex.lock t.m;
    t.v <- Some x;
    Condition.signal t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let x = Option.get t.v in
    Mutex.unlock t.m;
    x
end

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type master = {
  name : string;
  group : int;
      (** commit group this document hashes to ({!Shard_map.hash} of the
          name); fixed for the document's whole life — the name determines
          it, and slot revival keeps the name *)
  mutable retired : bool;
      (** set (under the group's write mutex, all commit queues quiesced)
          by DROPDOC: the slot stays — the commit queues address masters by
          index — but the document refuses updates and stops being served *)
  r2 : R2.t;  (** the writer's private mutable state; never read by readers *)
  wal : Wal.writer;
  mutable applied_seq : int;
      (** sequence number of the last operation applied to [r2]; runs ahead
          of [Wal.seq wal] while records sit in the commit queue *)
  mutable applied_version : int;
      (** snapshot version of the last operation applied to [r2]; guarded
          by the group's write mutex like [applied_seq] *)
  mutable durable_version : int;
      (** version of the last operation fsynced to [wal]; written and read
          only by the group's commit leader *)
  mutable wedged : string option;
      (** set (under the group's write mutex) when a failed commit left
          this document's journal or published snapshot out of step with
          its master; all further updates are refused until a restart
          replays the journal *)
  xml_path : string;
  sidecar_path : string;
  wal_path : string;
  rotate_mu : Mutex.t;
      (** makes ([Wal.generation], active-segment bytes) reads atomic
          against {!Wal.rotate}: rotation swaps the file and bumps the
          writer's generation as two steps, and it runs on the group's
          pipeline {e domain} — a replication session reading the pair
          unsynchronized could serve new-generation bytes labeled with
          the old generation, which a follower would splice into the
          wrong mirror.  Held only across rotation itself and across
          each replication chunk read, never across a wait. *)
}

(* One applied-but-not-yet-durable update, parked in the commit queue. *)
type pending = {
  doc_index : int;
  record : Wal.record;
  version : int;  (** the snapshot version this update introduces *)
  iv : Protocol.response Ivar.t;
}

type write_counters = {
  mutable w_batches : int;
  mutable w_records : int;
  mutable w_max_batch : int;
  mutable w_flush_ns : float;
  mutable w_pub_inc : int;
  mutable w_pub_full : int;
  mutable w_areas : int;
  mutable w_rotations : int;
}

(* One independent commit pipeline.  Documents hash to a group by name;
   the group exclusively owns its documents' masters and journal families,
   so groups apply, fsync and publish with no ordering between them —
   only the snapshot-pointer CAS is shared. *)
type group = {
  g_id : int;
  g_write_mu : Mutex.t;
      (** orders phase 1 (apply + sequence + enqueue) for this group's
          documents; also taken by the full-fallback publication and by
          quarantine, which read masters a writer may be mutating *)
  g_mu : Mutex.t;  (** guards queue, leader flag, counters, histograms *)
  g_cond : Condition.t;  (** signals the pipeline domain on arrival/stop *)
  g_queue : pending Queue.t;
  mutable g_committing : bool;
      (** the pipeline is draining; arrivals coalesce into its next batch *)
  mutable g_stop : bool;
  g_writes : write_counters;
  mutable g_handoffs : int;  (** idle→draining transitions of the leader *)
  g_lock_wait : int array;  (** log2-ns histogram of [g_write_mu] waits *)
  g_fsync_wait : int array;
      (** log2-ns histogram of per-document batch append+fsync times *)
}

type t = {
  cfg : config;
  coll : Rxpath.Collection.t;
  mutable masters : master array;
      (** grows (never shrinks, never reorders) with every group's write
          mutex held and every commit queue quiesced; the array itself is
          replaced wholesale on growth, so a reader holding the old array
          keeps valid indices *)
  catalog : (string, int) Hashtbl.t;  (** name -> masters index *)
  catalog_mu : Mutex.t;
  adopt_mu : Mutex.t;
      (** serializes ADOPT/ADDCHUNK staging appends + commits *)
  planner_shared : Rxpath.Planner.shared option;
  current : Snapshot.t Atomic.t;
  groups : group array;  (** the commit pipelines; length >= 1, fixed *)
  mutable pipelines : unit Domain.t array;
      (** one dedicated domain per group, spawned at start, joined at stop;
          written once after construction *)
  last_version : int Atomic.t;
      (** version of the last applied update — the global stamp source,
          shared by every group (fetch-and-add) *)
  repl_requests : int Atomic.t;  (** REPL-* requests served *)
  repl_bytes : int Atomic.t;  (** journal/snapshot bytes shipped *)
  sched : Scheduler.t;
  exec : Executor.t option;  (** parallel read pool; [None] = systhreads *)
  cache : Query_cache.t option;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  sessions : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  sessions_mu : Mutex.t;
  mutable next_session : int;
  state_mu : Mutex.t;
  state_cond : Condition.t;
  mutable state : [ `Running | `Stopping | `Stopped ];
}

let metrics t = t.metrics
let snapshot t = Atomic.get t.current
let config t = t.cfg
let collection t = t.coll
let cache_stats t = Option.map Query_cache.stats t.cache

let find_master_idx t doc =
  Mutex.lock t.catalog_mu;
  let idx = Hashtbl.find_opt t.catalog doc in
  Mutex.unlock t.catalog_mu;
  match idx with
  | Some i when not t.masters.(i).retired -> Some i
  | _ -> None

let find_master t doc =
  Option.map (fun i -> t.masters.(i)) (find_master_idx t doc)

let doc_files t name =
  Option.map (fun m -> (m.xml_path, m.sidecar_path, m.wal_path))
    (find_master t name)

(* ------------------------------------------------------------------ *)
(* Request execution (runs on worker threads)                          *)
(* ------------------------------------------------------------------ *)

let pp_id_compact id =
  Printf.sprintf "(%d,%d,%b)" id.R2.global id.R2.local id.R2.is_root

(* At most this many matching identifiers are listed in a QUERY reply
   (and therefore cached per document — enough to rebuild any reply). *)
let id_cap = 32

(* Per-document answer via the result cache.  The snapshot version is part
   of the cache key, so an entry can only ever answer the exact snapshot it
   was computed against; [kind] separates the COUNT and QUERY namespaces.
   Computed values are small strings (a count, or a count plus at most
   [id_cap] identifiers), so caching cost is bounded per entry. *)
let with_cache cache s (d : Snapshot.doc) ~kind ~normq compute =
  match cache with
  | None -> compute ()
  | Some cache ->
    let query = kind ^ normq in
    let doc = d.Snapshot.name and version = s.Snapshot.version in
    (match Query_cache.find cache ~doc ~version ~query with
    | Some v -> v
    | None ->
      let v = compute () in
      Query_cache.add cache ~doc ~version ~query v;
      v)

(* At most this many per-document [name=count] tokens are listed in a
   COUNT/QUERY reply body (the totals always cover every document): a
   shard hosting a 100k-document corpus must not blow the 1 MiB frame cap
   on every collection-wide answer.  Small collections — everything the
   pre-collection tests exercise — are listed in full, unchanged. *)
let doc_cap = 64

let capped_tokens render per_doc =
  let listed = List.filteri (fun i _ -> i < doc_cap) per_doc in
  String.concat " " (List.map render listed)
  ^ if List.length per_doc > doc_cap then " ..." else ""

let count_one cache s d ~normq parsed =
  let v =
    with_cache cache s d ~kind:"C\x00" ~normq (fun () ->
        string_of_int (Snapshot.count_doc d (Lazy.force parsed)))
  in
  (d.Snapshot.name, int_of_string v)

let eval_count ?cache s src =
  let normq = Query_cache.normalize src in
  let parsed = lazy (Snapshot.parse src) in
  let per_doc =
    List.map (fun d -> count_one cache s d ~normq parsed) (Snapshot.live_docs s)
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 per_doc in
  Protocol.Ok_
    (Printf.sprintf "v=%d total=%d %s" s.Snapshot.version total
       (capped_tokens (fun (name, n) -> Printf.sprintf "%s=%d" name n) per_doc))

(* Cached value: the count followed by the first [id_cap] identifiers,
   space-separated (identifiers contain no spaces). *)
let query_one cache s d ~normq parsed =
  let v =
    with_cache cache s d ~kind:"Q\x00" ~normq (fun () ->
        let nodes = Snapshot.query_doc d (Lazy.force parsed) in
        let ids =
          List.filteri (fun i _ -> i < id_cap) nodes
          |> List.map (fun n -> pp_id_compact (R2.id_of_node d.Snapshot.r2 n))
        in
        String.concat " " (string_of_int (List.length nodes) :: ids))
  in
  match String.split_on_char ' ' v with
  | n :: ids -> (d.Snapshot.name, int_of_string n, ids)
  | [] -> assert false

let query_reply version per_doc =
  let total = List.fold_left (fun acc (_, n, _) -> acc + n) 0 per_doc in
  let ids =
    List.concat_map
      (fun (name, _, ids) -> List.map (fun i -> name ^ ":" ^ i) ids)
      per_doc
  in
  let shown = List.filteri (fun i _ -> i < id_cap) ids in
  Protocol.Ok_
    (Printf.sprintf "v=%d total=%d %s%s" version total
       (capped_tokens (fun (name, n, _) -> Printf.sprintf "%s=%d" name n)
          per_doc)
       (if shown = [] then ""
        else " ids " ^ String.concat " " shown
             ^ if total > id_cap then " ..." else ""))

let eval_query ?cache s src =
  let normq = Query_cache.normalize src in
  let parsed = lazy (Snapshot.parse src) in
  let per_doc =
    List.map (fun d -> query_one cache s d ~normq parsed) (Snapshot.live_docs s)
    |> List.filter (fun (_, n, _) -> n > 0)
  in
  query_reply s.Snapshot.version per_doc

(* The per-document read verbs (QUERYD/COUNTD): the router's no-scatter
   fast path.  Same per-document cache entries as the collection-wide
   verbs — a COUNTD warms the COUNT of the same snapshot and vice versa. *)
let eval_count_doc ?cache s doc src =
  match Snapshot.find s doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some (_, d) ->
    let normq = Query_cache.normalize src in
    let parsed = lazy (Snapshot.parse src) in
    let name, n = count_one cache s d ~normq parsed in
    Protocol.Ok_
      (Printf.sprintf "v=%d total=%d %s=%d" s.Snapshot.version n name n)

let eval_query_doc ?cache s doc src =
  match Snapshot.find s doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some (_, d) ->
    let normq = Query_cache.normalize src in
    let parsed = lazy (Snapshot.parse src) in
    let (_, n, _) as one = query_one cache s d ~normq parsed in
    query_reply s.Snapshot.version (if n > 0 then [ one ] else [])

(* EXPLAIN renders the plan per document.  Always uncached and never in
   the result cache: the point is measured actual cardinalities and
   timings for THIS execution. *)
let eval_explain s src =
  match Snapshot.parse src with
  | exception Failure msg -> Protocol.Err msg
  | _ ->
    let parts =
      Snapshot.live_docs s
      |> List.map (fun d ->
             match Snapshot.explain_doc d src with
             | Ok text -> Printf.sprintf "doc %s\n%s" d.Snapshot.name text
             | Error why ->
               Printf.sprintf "doc %s\nexplain unavailable: %s"
                 d.Snapshot.name why)
    in
    Protocol.Ok_
      (Printf.sprintf "v=%d\n%s" s.Snapshot.version
         (String.concat "\n" parts))

(* --- Commit pipelines ---------------------------------------------

   An UPDATE splits into two phases.  Under its document's {e group} write
   mutex the operation is applied to the master numbering, given a
   sequence number and a snapshot version, and parked in the group's
   commit queue — microseconds of work.  The durable part (one WAL append
   + fsync per touched document, one snapshot publication per batch) is
   done by the group's {e pipeline}: a dedicated domain that drains the
   queue whenever it is nonempty.  Every record that arrives while the
   pipeline's fsync is in the kernel coalesces into its next batch frame,
   so N concurrent writers of one group share one fsync instead of paying
   N — the group commit.  A lone writer's record is picked up immediately:
   its latency is one wake-up + append + fsync + publish, the unbatched
   path.  Writers park on their response ivar; the pipeline fills it after
   the batch's fsync and publication, so an UPDATE is never acknowledged
   before it is durable {e and} visible.

   Documents hash to groups by name ({!Shard_map.hash}, the same stable
   placement hash the collection router uses), so a group owns a fixed,
   disjoint set of masters and their per-document journal families.
   Everything per-document — ordering, quarantine, WAL batch atomicity,
   segment rotation — therefore needs no cross-group coordination at all.
   The only shared write state is the snapshot pointer: concurrent
   publications race on [Atomic.compare_and_set] and retry against the
   freshly-read current (their document sets are disjoint, so the folds
   commute), and the global version stamp, pre-assigned per update by a
   fetch-and-add counter. *)

let record_wait hist ns =
  let b = Metrics.hist_bucket ns in
  hist.(b) <- hist.(b) + 1

(* Drain up to [commit_max_batch] queued updates (pipeline only). *)
let take_batch t (g : group) =
  Mutex.lock g.g_mu;
  let rec go acc n =
    if n = 0 || Queue.is_empty g.g_queue then List.rev acc
    else go (Queue.pop g.g_queue :: acc) (n - 1)
  in
  let batch = go [] t.cfg.commit_max_batch in
  Mutex.unlock g.g_mu;
  batch

(* Rotate the WAL of every document whose segment outgrew the threshold,
   checkpointing from the just-published snapshot copy — but only when that
   copy is exactly the document's durable prefix: its cursor equals the
   version of the last fsynced record.  A copy that ran ahead through the
   full fallback (queued-but-unfsynced operations captured from the master)
   would checkpoint operations no journal holds yet; such a document just
   skips rotation this round and retries on a later batch.  The snapshot
   copy is already isolated from the master, so serializing it races with
   nothing. *)
let maybe_rotate t (g : group) snap by_doc =
  if t.cfg.wal_segment_bytes > 0 then
    List.iter
      (fun (idx, _) ->
        let m = t.masters.(idx) in
        if Wal.should_rotate m.wal ~threshold:t.cfg.wal_segment_bytes then
          match Snapshot.find snap m.name with
          | None -> ()
          | Some (_, d) when d.Snapshot.doc_version <> m.durable_version ->
            ()
          | Some (_, d) ->
            let r2 = d.Snapshot.r2 in
            (* Under [rotate_mu]: rotation swaps the segment file and
               bumps the writer's generation as two steps, and we are on
               the pipeline domain — a replication session must never
               read the pair in between. *)
            Mutex.lock m.rotate_mu;
            ignore
              (Wal.rotate m.wal
                 ~xml:(Ruid.Persist.xml_to_bytes r2)
                 ~sidecar:(Ruid.Persist.sidecar_to_bytes r2));
            Mutex.unlock m.rotate_mu;
            Mutex.lock g.g_mu;
            g.g_writes.w_rotations <- g.g_writes.w_rotations + 1;
            Mutex.unlock g.g_mu)
      by_doc

let quarantine_reply why =
  Protocol.Err
    (Printf.sprintf
       "update dropped: document quarantined after a failed commit (%s); \
        restart the server to recover from the journal" why)

let commit_batch t (g : group) batch =
  (* A document wedged by an earlier failed commit has a master running
     ahead of its journal: appending for it can only fail again (sequence
     break) and would drag this batch's healthy documents down with it.
     Reject its records up front.  [wedged] on this group's documents is
     written only by this group's pipeline, so this read needs no lock. *)
  let batch, quarantined =
    List.partition (fun p -> t.masters.(p.doc_index).wedged = None) batch
  in
  List.iter
    (fun p ->
      let why =
        Option.value ~default:"unknown" t.masters.(p.doc_index).wedged
      in
      Ivar.fill p.iv (quarantine_reply why))
    quarantined;
  if batch = [] then ()
  else begin
  (* Per-document record groups, queue order preserved (per-document
     subsequences of a FIFO queue keep their sequence numbers consecutive,
     which is what [Wal.append_batch] checks). *)
  let grouped = Hashtbl.create 4 and order = ref [] in
  List.iter
    (fun p ->
      match Hashtbl.find_opt grouped p.doc_index with
      | Some l -> l := p :: !l
      | None ->
        Hashtbl.replace grouped p.doc_index (ref [ p ]);
        order := p.doc_index :: !order)
    batch;
  (* [order] holds first-touch indexes newest first; rev_map restores
     first-touch order. *)
  let by_doc =
    List.rev_map (fun idx -> (idx, List.rev !(Hashtbl.find grouped idx)))
      !order
  in
  (* 1. Durability: one batch frame + one fsync per touched document.
     Groups fsync their disjoint journals concurrently — this is the wait
     the whole refactor parallelizes, so it is also the one we histogram. *)
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (idx, ps) ->
      let m = t.masters.(idx) in
      let d0 = Unix.gettimeofday () in
      Wal.append_batch m.wal (List.map (fun p -> p.record) ps);
      let dns = (Unix.gettimeofday () -. d0) *. 1e9 in
      Mutex.lock g.g_mu;
      record_wait g.g_fsync_wait dns;
      Mutex.unlock g.g_mu;
      m.durable_version <-
        List.fold_left (fun acc p -> max acc p.version) m.durable_version ps)
    by_doc;
  let flush_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  (* 2. Publication, once for the whole batch.  A document's snapshot copy
     can already be ahead of some records here (a previous full-fallback
     publication captured its master mid-queue), so each pending is
     filtered against its own document's cursor — never the global stamp,
     which a publication of {e different} documents may have pushed past
     this record's version — and never applied to a snapshot twice.

     Other groups publish concurrently: the successor is derived from the
     freshly-read current and installed by compare-and-set, retried from
     the new current on a lost race.  The document sets are disjoint, so
     the re-derivation folds exactly the same per-document copies; only
     the stamp is recomputed ({!Snapshot.next_stamp}). *)
  let last_version =
    List.fold_left (fun acc p -> max acc p.version) 0 batch
  in
  let fresh_updates prev =
    List.filter_map
      (fun (idx, ps) ->
        let cursor = prev.Snapshot.docs.(idx).Snapshot.doc_version in
        match List.filter (fun p -> p.version > cursor) ps with
        | [] -> None
        | fresh ->
          let doc_version =
            List.fold_left (fun acc p -> max acc p.version) cursor fresh
          in
          Some (idx, List.map (fun p -> p.record.Wal.op) fresh, doc_version))
      by_doc
  in
  (* Full fallback: re-capture the touched documents from their masters
     through the sidecar round-trip.  Under this group's write mutex the
     masters cannot advance, but they may already be ahead of this batch
     (later arrivals applied during our fsync), so each capture carries
     its own master's applied version as its cursor — those queued records
     are fsynced by this same pipeline before their acks, and the
     per-document filter above keeps them from ever being replayed twice.
     The stamp floor is the max of the captured cursors, never the global
     update counter: a version assigned to some other document's queued
     update must stay strictly above this snapshot's stamp-covered
     range. *)
  let publish_full () =
    Mutex.lock g.g_write_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock g.g_write_mu)
    @@ fun () ->
    let floor =
      List.fold_left
        (fun acc (idx, _) -> max acc t.masters.(idx).applied_version)
        0 by_doc
    in
    let rec install () =
      let prev = Atomic.get t.current in
      let version = Snapshot.next_stamp prev ~floor in
      let next =
        List.fold_left
          (fun s (idx, _) ->
            let m = t.masters.(idx) in
            Snapshot.replace_doc s ~version
              ~doc_version:m.applied_version ~doc_index:idx m.r2)
          prev by_doc
      in
      if Atomic.compare_and_set t.current prev next then begin
        Mutex.lock g.g_mu;
        g.g_writes.w_pub_full <- g.g_writes.w_pub_full + 1;
        Mutex.unlock g.g_mu;
        next
      end
      else install ()
    in
    install ()
  in
  let rec publish () =
    let prev = Atomic.get t.current in
    match fresh_updates prev with
    | [] -> prev
    | updates -> (
      let version = Snapshot.next_stamp prev ~floor:last_version in
      match Snapshot.advance prev ~version updates with
      | next, areas ->
        if Atomic.compare_and_set t.current prev next then begin
          Mutex.lock g.g_mu;
          g.g_writes.w_pub_inc <- g.g_writes.w_pub_inc + 1;
          g.g_writes.w_areas <- g.g_writes.w_areas + areas;
          Mutex.unlock g.g_mu;
          next
        end
        else publish ()
      | exception _ -> publish_full ())
  in
  let published = publish () in
  (* 3. Acknowledge: durable and visible. *)
  let n = List.length batch in
  Mutex.lock g.g_mu;
  g.g_writes.w_batches <- g.g_writes.w_batches + 1;
  g.g_writes.w_records <- g.g_writes.w_records + n;
  if n > g.g_writes.w_max_batch then g.g_writes.w_max_batch <- n;
  g.g_writes.w_flush_ns <- g.g_writes.w_flush_ns +. flush_ns;
  Mutex.unlock g.g_mu;
  List.iter
    (fun p ->
      Ivar.fill p.iv
        (Protocol.Ok_
           (Printf.sprintf "v=%d seq=%d area=%d changed=%d batch=%d"
              p.version p.record.Wal.seq p.record.Wal.area
              p.record.Wal.changed n)))
    batch;
  (* 4. Segment rotation; [maybe_rotate] skips any document whose published
     copy is not exactly its durable prefix. *)
  maybe_rotate t g published by_doc
  end

let leader_loop t (g : group) =
  let rec drain () =
    (* Optional pacing: with a configured interval, wait for stragglers
       unless the queue already fills a batch.  The default interval of 0
       relies on natural batching — whatever arrives during the in-flight
       fsync forms the next batch — and costs a lone writer nothing. *)
    if t.cfg.commit_interval_us > 0 then begin
      Mutex.lock g.g_mu;
      let n = Queue.length g.g_queue in
      Mutex.unlock g.g_mu;
      if n < t.cfg.commit_max_batch then
        Thread.delay (float_of_int t.cfg.commit_interval_us *. 1e-6)
    end;
    let batch = take_batch t g in
    (try commit_batch t g batch
     with e ->
       (* Never strand a writer: a failed commit (I/O error mid-batch)
          reports to every parked session rather than hanging them.  The
          records' durability is unknown; the error says so.  And never let
          a half-committed document keep taking writes: a master whose
          applied state ran ahead of its journal would reject every later
          append with a sequence break (write-wedged until restart), and
          one that ran ahead of the published snapshot would have later
          incremental publications replay onto a base that silently misses
          these records.  Such documents are quarantined — updates refused
          explicitly — until a restart re-derives state from the journal.
          A document whose journal and snapshot both caught up before the
          failure (e.g. the exception came from a segment rotation after
          the acks) stays live.  Only this group's documents are in the
          batch, so only this group pauses to quarantine — other pipelines
          keep committing. *)
       let msg =
         Printf.sprintf "commit failed (durability unknown): %s"
           (Printexc.to_string e)
       in
       Mutex.lock g.g_write_mu;
       let snap = Atomic.get t.current in
       List.iter
         (fun p ->
           let m = t.masters.(p.doc_index) in
           let consistent =
             m.applied_seq = Wal.seq m.wal
             && snap.Snapshot.docs.(p.doc_index).Snapshot.doc_version
                >= m.applied_version
           in
           if (not consistent) && m.wedged = None then m.wedged <- Some msg)
         batch;
       Mutex.unlock g.g_write_mu;
       List.iter (fun p -> Ivar.fill p.iv (Protocol.Err msg)) batch);
    (* Retire only on an empty queue: arrivals since the drain saw the
       committing flag up and parked without waking the pipeline. *)
    let continue =
      Mutex.lock g.g_mu;
      let more = not (Queue.is_empty g.g_queue) in
      if not more then g.g_committing <- false;
      Mutex.unlock g.g_mu;
      more
    in
    if continue then drain ()
  in
  drain ()

(* The pipeline domain: parked on the condition until a writer enqueues
   (or stop is requested), then drains as the group's commit leader.
   Dedicated domains — not elected session threads — because publication
   is CPU-bound (clone + replay of the touched areas): systhreads all
   share one domain, so elected leaders could never overlap publication
   work; domains can. *)
let rec pipeline_loop t (g : group) =
  Mutex.lock g.g_mu;
  while Queue.is_empty g.g_queue && not g.g_stop do
    Condition.wait g.g_cond g.g_mu
  done;
  if Queue.is_empty g.g_queue then Mutex.unlock g.g_mu
    (* stopping, queue drained: exit *)
  else begin
    g.g_committing <- true;
    g.g_handoffs <- g.g_handoffs + 1;
    Mutex.unlock g.g_mu;
    leader_loop t g;
    pipeline_loop t g
  end

let run_update t doc op =
  match find_master_idx t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some idx -> begin
    (* The slot's group never changes (it is a pure function of the name,
       and revival keeps the name), so it is safe to read before locking. *)
    let g = t.groups.(t.masters.(idx).group) in
    (* Phase 1: apply + enqueue, under the group's write lock only. *)
    let w0 = Unix.gettimeofday () in
    Mutex.lock g.g_write_mu;
    let wait_ns = (Unix.gettimeofday () -. w0) *. 1e9 in
    let queued =
      let m = t.masters.(idx) in
      match m.wedged with
      | Some why ->
        Error
          (Printf.sprintf
             "document %S is quarantined after a failed commit (%s); \
              restart the server to recover from the journal" doc why)
      | None -> (
        match
          let area, changed = Wal.apply m.r2 op in
          m.applied_seq <- m.applied_seq + 1;
          let version = 1 + Atomic.fetch_and_add t.last_version 1 in
          m.applied_version <- version;
          let p =
            {
              doc_index = idx;
              record = { Wal.seq = m.applied_seq; op; area; changed };
              version;
              iv = Ivar.create ();
            }
          in
          Mutex.lock g.g_mu;
          Queue.add p g.g_queue;
          record_wait g.g_lock_wait wait_ns;
          Condition.signal g.g_cond;
          Mutex.unlock g.g_mu;
          p
        with
        | p -> Ok p
        | exception Wal.Replay_error msg -> Error msg)
    in
    Mutex.unlock g.g_write_mu;
    (* Phase 2: park on the ivar; the group's pipeline folds this record
       into its next batch and fills it after fsync + publication. *)
    match queued with
    | Error msg -> Protocol.Err ("update rejected: " ^ msg)
    | Ok p -> Ivar.read p.iv
  end

let eval_check s doc =
  match Snapshot.check s doc with
  | () -> Protocol.Ok_ (Printf.sprintf "v=%d consistent" s.Snapshot.version)
  | exception Not_found -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | exception Failure msg -> Protocol.Err ("inconsistent snapshot: " ^ msg)

(* The four read verbs over an explicit snapshot: the replica serves them
   through this same code, so a caught-up follower's replies are
   byte-identical to the primary's at the same version. *)
let eval_read ?cache s (req : Protocol.request) =
  match req with
  | Protocol.Count src -> eval_count ?cache s src
  | Protocol.Query src -> eval_query ?cache s src
  | Protocol.Explain src -> eval_explain s src
  | Protocol.Check doc -> eval_check s doc
  | Protocol.Count_doc { doc; xpath } -> eval_count_doc ?cache s doc xpath
  | Protocol.Query_doc { doc; xpath } -> eval_query_doc ?cache s doc xpath
  | _ -> Protocol.Err "internal: non-read verb reached the read path"

let run_request t (req : Protocol.request) =
  match req with
  | Protocol.Count src -> eval_count ?cache:t.cache (Atomic.get t.current) src
  | Protocol.Query src -> eval_query ?cache:t.cache (Atomic.get t.current) src
  | Protocol.Explain src -> eval_explain (Atomic.get t.current) src
  | Protocol.Update { doc; op } -> run_update t doc op
  | Protocol.Check doc -> eval_check (Atomic.get t.current) doc
  | Protocol.Count_doc { doc; xpath } ->
    eval_count_doc ?cache:t.cache (Atomic.get t.current) doc xpath
  | Protocol.Query_doc { doc; xpath } ->
    eval_query_doc ?cache:t.cache (Atomic.get t.current) doc xpath
  | Protocol.Sleep ms ->
    Thread.delay (float_of_int ms /. 1000.);
    Protocol.Ok_ (Printf.sprintf "slept=%d" ms)
  | Protocol.Ping | Protocol.Docs | Protocol.Stats | Protocol.Shutdown
  | Protocol.Repl_state | Protocol.Repl_file _ | Protocol.Repl_wait _
  | Protocol.Promote | Protocol.Add_doc _ | Protocol.Add_chunk _
  | Protocol.Adopt _ | Protocol.Adopt_abort _ | Protocol.Drop_doc _
  | Protocol.Rebalance _ ->
    (* handled inline by the session *)
    Protocol.Err "internal: control verb reached the worker pool"

let guarded_run t req =
  try run_request t req
  with
  | Failure msg -> Protocol.Err msg
  | e -> Protocol.Err ("internal error: " ^ Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let stop t =
  let proceed =
    Mutex.lock t.state_mu;
    let p = t.state = `Running in
    if p then t.state <- `Stopping;
    Mutex.unlock t.state_mu;
    p
  in
  if not proceed then (
    (* someone else is stopping (or stopped): wait for them *)
    Mutex.lock t.state_mu;
    while t.state <> `Stopped do
      Condition.wait t.state_cond t.state_mu
    done;
    Mutex.unlock t.state_mu)
  else begin
    (* 1. no new connections.  A thread parked in accept() on an AF_UNIX
       socket is not reliably woken by shutdown()/close(), so wake it the
       portable way: hand it one last dummy connection.  The accept loop
       rechecks the state and exits. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* 2. no new requests: sessions see EOF after their in-flight reply *)
    Mutex.lock t.sessions_mu;
    let sess = Hashtbl.fold (fun _ v acc -> v :: acc) t.sessions [] in
    Mutex.unlock t.sessions_mu;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sess;
    List.iter (fun (_, th) -> Thread.join th) sess;
    (* 3. drain the admitted queues, park the workers and the domains *)
    Scheduler.shutdown t.sched;
    (match t.exec with Some ex -> Executor.shutdown ex | None -> ());
    (* 4. stop the commit pipelines — only now: until every session and
       worker is joined, a writer may still be parked on an ivar only a
       live pipeline can fill.  By here the queues are provably empty
       (each queued record's session was joined above, which required its
       ack, which a pipeline only issues after the batch's fsync), so the
       domains exit at once. *)
    Array.iter
      (fun g ->
        Mutex.lock g.g_mu;
        g.g_stop <- true;
        Condition.broadcast g.g_cond;
        Mutex.unlock g.g_mu)
      t.groups;
    Array.iter Domain.join t.pipelines;
    (* 5. the WAL needs no flush — every batch was fsynced at commit.
       The files are final. *)
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    Mutex.lock t.state_mu;
    t.state <- `Stopped;
    Condition.broadcast t.state_cond;
    Mutex.unlock t.state_mu
  end

let wait t =
  Mutex.lock t.state_mu;
  while t.state <> `Stopped do
    Condition.wait t.state_cond t.state_mu
  done;
  Mutex.unlock t.state_mu

let request_stop_async t =
  (* SHUTDOWN arrives on a session thread; stop joins session threads, so
     it must run elsewhere. *)
  ignore (Thread.create (fun () -> try stop t with _ -> ()) ())

(* --- Replication endpoint ------------------------------------------

   Followers pull: the primary serves nothing but its own on-disk
   artifacts (base pair, checkpoint pairs, archived segments, the live
   journal) plus a long-poll on journal growth.  All REPL verbs run inline
   on the session thread — a replication connection is dedicated, so
   blocking it in REPL WAIT costs no worker, and the verbs stay observable
   when the admission queue is saturated. *)

let repl_reply t chunk =
  Atomic.incr t.repl_requests;
  ignore
    (Atomic.fetch_and_add t.repl_bytes
       (String.length chunk.Replication.data));
  Protocol.Ok_ (Replication.encode_chunk chunk)

let run_repl_state t =
  Atomic.incr t.repl_requests;
  let s = Atomic.get t.current in
  let s_docs =
    Array.to_list t.masters
    |> List.map (fun m ->
           {
             Replication.name = m.name;
             gen = Wal.generation m.wal;
             seq = Wal.seq m.wal;
             size = Replication.file_size m.wal_path;
           })
  in
  Protocol.Ok_
    (Replication.encode_state
       { Replication.s_epoch = t.cfg.epoch;
         s_version = s.Snapshot.version; s_docs })

(* A chunk must be bytes of the generation the reply names.  [rotate_mu]
   excludes the rotation in the group's pipeline domain, making the
   (generation, file bytes) pair atomic; the generation re-check is kept
   as a cheap invariant (it can no longer fail under the lock). *)
let read_stable_chunk m path ~offset ~limit =
  Mutex.lock m.rotate_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.rotate_mu) @@ fun () ->
  let rec go tries =
    let g0 = Wal.generation m.wal in
    let data, size = Replication.read_chunk path ~offset ~limit in
    let g1 = Wal.generation m.wal in
    if g0 = g1 || tries = 0 then (data, size, g1) else go (tries - 1)
  in
  go 3

let run_repl_file t doc file offset limit =
  match find_master t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some m ->
    let path =
      Replication.resolve_path ~xml:m.xml_path ~sidecar:m.sidecar_path
        ~wal:m.wal_path file
    in
    let data, size, gen = read_stable_chunk m path ~offset ~limit in
    repl_reply t { Replication.epoch = t.cfg.epoch; gen; size; data }

let run_repl_wait t doc want_gen offset timeout_ms =
  match find_master t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some m ->
    let deadline =
      Unix.gettimeofday ()
      +. (float_of_int (min timeout_ms Replication.max_wait_ms) /. 1000.)
    in
    let stopping () =
      Mutex.lock t.state_mu;
      let s = t.state <> `Running in
      Mutex.unlock t.state_mu;
      s
    in
    let rec loop () =
      let gen = Wal.generation m.wal in
      if gen <> want_gen then
        (* rotated past the follower's generation: an empty chunk naming
           the live generation sends it to the archived segment *)
        repl_reply t
          { Replication.epoch = t.cfg.epoch; gen;
            size = Replication.file_size m.wal_path; data = "" }
      else begin
        let size = Replication.file_size m.wal_path in
        if size > offset then begin
          let data, size, gen =
            read_stable_chunk m m.wal_path ~offset
              ~limit:Replication.max_chunk
          in
          repl_reply t { Replication.epoch = t.cfg.epoch; gen; size; data }
        end
        else if stopping () || Unix.gettimeofday () > deadline then
          repl_reply t
            { Replication.epoch = t.cfg.epoch; gen; size; data = "" }
        else begin
          Thread.delay 0.005;
          loop ()
        end
      end
    in
    loop ()

(* --- Collection membership (ADDDOC / ADOPT / DROPDOC) --------------

   Documents arrive and leave at runtime: streamed ingest adds fresh
   documents, rebalance adopts a document shipped from another shard and
   drops the source copy.  All three mutate [masters] and publish a
   snapshot outside the commit pipelines, so they run with {e every}
   group's write lock held AND every commit queue quiesced: no enqueued
   update can be awaiting publication while we swap the membership under
   the pipelines' feet, and no pipeline can be mid-publication (its CAS
   would clobber, or be clobbered by, the membership's [Atomic.set]).  The
   quiesce loop releases the write locks while any pipeline is draining —
   the full-fallback publication path takes its group's write lock, so
   holding them while waiting would deadlock. *)

let with_quiesced t f =
  let lock_all () =
    Array.iter (fun g -> Mutex.lock g.g_write_mu) t.groups
  and unlock_all () =
    Array.iter (fun g -> Mutex.unlock g.g_write_mu) t.groups
  in
  let rec go () =
    lock_all ();
    let busy =
      Array.exists
        (fun g ->
          Mutex.lock g.g_mu;
          let b = g.g_committing || not (Queue.is_empty g.g_queue) in
          Mutex.unlock g.g_mu;
          b)
        t.groups
    in
    if busy then begin
      unlock_all ();
      Thread.delay 0.001;
      go ()
    end
    else Fun.protect ~finally:unlock_all f
  in
  go ()

let valid_doc_name name =
  name <> "" && name.[0] <> '.'
  && String.for_all (fun c -> c > ' ' && c <> '/') name

let master_paths t name =
  let base = Filename.concat t.cfg.data_dir name in
  (base ^ ".xml", base ^ ".ruid", base ^ ".wal")

(* Register a master + publish the document.  Caller holds the quiesced
   write locks (all groups).  A name mapping to a retired slot is revived
   in place — the commit queues are empty, so no pending record can
   reference the old master being replaced.  Publication is a plain
   [Atomic.set]: quiescence guarantees no pipeline is racing a CAS. *)
let install_master t ~name ~r2 ~wal ~applied_seq =
  let xml_path, sidecar_path, wal_path = master_paths t name in
  let version = 1 + Atomic.fetch_and_add t.last_version 1 in
  let group = Shard_map.hash ~shards:(Array.length t.groups) name in
  let m =
    { name; group; retired = false; r2; wal; applied_seq;
      applied_version = version; durable_version = version; wedged = None;
      xml_path; sidecar_path; wal_path; rotate_mu = Mutex.create () }
  in
  let next, idx =
    Snapshot.add_doc (Atomic.get t.current) ?planner:t.planner_shared ~version
      ~name r2
  in
  if idx = Array.length t.masters then
    t.masters <- Array.append t.masters [| m |]
  else begin
    (* revival of a retired slot: replace the array so a concurrent reader
       of the old array never observes a half-written record *)
    let grown = Array.copy t.masters in
    grown.(idx) <- m;
    t.masters <- grown
  end;
  Mutex.lock t.catalog_mu;
  Hashtbl.replace t.catalog name idx;
  Mutex.unlock t.catalog_mu;
  Atomic.set t.current next;
  version

let append_to_file path bytes =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc bytes

(* Shared tail of ADDDOC and the committing ADDCHUNK: the streaming build
   already parsed and numbered the document in one pass; persist it and
   publish under quiescence. *)
let install_built t ~verb name (b : Ruid.Stream_build.built) =
  with_quiesced t @@ fun () ->
  if find_master_idx t name <> None then
    Protocol.Err (Printf.sprintf "%s: duplicate document %S" verb name)
  else begin
    let r2 = b.Ruid.Stream_build.r2 in
    let xml_path, sidecar_path, wal_path = master_paths t name in
    Ruid.Persist.save r2 ~xml:xml_path ~sidecar:sidecar_path;
    let wal = Wal.create wal_path in
    let version = install_master t ~name ~r2 ~wal ~applied_seq:0 in
    (try ignore (Rxpath.Collection.add_numbered t.coll ~name r2)
     with Invalid_argument _ -> () (* revived name: already registered *));
    Protocol.Ok_
      (Printf.sprintf "doc=%s nodes=%d v=%d" name
         b.Ruid.Stream_build.stats.Ruid.Stream_build.nodes version)
  end

let run_add_doc t name xml =
  if not (valid_doc_name name) then
    Protocol.Err (Printf.sprintf "ADDDOC: bad document name %S" name)
  else
    match
      Ruid.Stream_build.of_string ~max_depth:t.cfg.max_depth
        ~max_area_size:t.cfg.max_area_size xml
    with
    | exception e ->
      Protocol.Err
        (Printf.sprintf "ADDDOC: unparsable XML for %S: %s" name
           (Printexc.to_string e))
    | b -> install_built t ~verb:"ADDDOC" name b

(* ADDCHUNK spooling: a document too large for one protocol frame arrives
   as ordered chunks that accumulate in a dot-prefixed spool file; the
   committing chunk streams the spool through the same single-pass build
   as ADDDOC (Stream_build.of_file — the source text is never resident).
   An offset mismatch discards the spool so a confused client restarts
   from zero instead of silently corrupting the document. *)

let addchunk_spool_path t doc =
  Filename.concat t.cfg.data_dir (".addchunk." ^ doc ^ ".xml")

let run_add_chunk t doc off last bytes =
  if not (valid_doc_name doc) then
    Protocol.Err (Printf.sprintf "ADDCHUNK: bad document name %S" doc)
  else begin
    Mutex.lock t.adopt_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.adopt_mu) @@ fun () ->
    let spool = addchunk_spool_path t doc in
    let spooled =
      match Unix.stat spool with
      | st -> st.Unix.st_size
      | exception Unix.Unix_error _ -> 0
    in
    if off = 0 && spooled > 0 then Sys.remove spool;
    if off <> 0 && off <> spooled then begin
      (try Sys.remove spool with Sys_error _ -> ());
      Protocol.Err
        (Printf.sprintf
           "ADDCHUNK: offset %d does not match spooled %d bytes for %S; \
            spool discarded, restart from offset 0"
           off spooled doc)
    end
    else begin
      match append_to_file spool bytes with
      | exception Sys_error msg ->
        (try Sys.remove spool with Sys_error _ -> ());
        Protocol.Err ("ADDCHUNK: spooling failed: " ^ msg)
      | () ->
        if not last then
          Protocol.Ok_
            (Printf.sprintf "doc=%s off=%d" doc (off + String.length bytes))
        else begin
          let finally () = try Sys.remove spool with Sys_error _ -> () in
          Fun.protect ~finally @@ fun () ->
          match
            Ruid.Stream_build.of_file ~max_depth:t.cfg.max_depth
              ~max_area_size:t.cfg.max_area_size spool
          with
          | exception e ->
            Protocol.Err
              (Printf.sprintf "ADDCHUNK: unparsable XML for %S: %s" doc
                 (Printexc.to_string e))
          | b -> install_built t ~verb:"ADDCHUNK" doc b
        end
    end
  end

(* ADOPT staging: chunks accumulate in dot-prefixed files (invisible to
   document-name rules) until the committing chunk arrives; then the
   staged artifacts are renamed into place, the journal is replayed over
   them exactly as a restart would, and the document goes live.  Every
   failure before the final rename sequence leaves the data dir without
   the document, staging removed — the source still owns it. *)

let adopt_stage_path t doc file =
  let kind =
    String.map (fun c -> if c = ':' then '@' else c)
      (Protocol.repl_file_to_string file)
  in
  Filename.concat t.cfg.data_dir
    (Printf.sprintf ".adopt.%s.%s" doc kind)

let adopt_target_path t doc file =
  let xml, sidecar, wal = master_paths t doc in
  Replication.resolve_path ~xml ~sidecar ~wal file

let adopt_cleanup t doc =
  let prefix = ".adopt." ^ doc ^ "." in
  Array.iter
    (fun f ->
      if String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix then
        try Sys.remove (Filename.concat t.cfg.data_dir f)
        with Sys_error _ -> ())
    (try Sys.readdir t.cfg.data_dir with Sys_error _ -> [||])

let adopt_staged_files t doc =
  let prefix = ".adopt." ^ doc ^ "." in
  Array.to_list (try Sys.readdir t.cfg.data_dir with Sys_error _ -> [||])
  |> List.filter_map (fun f ->
         if String.length f > String.length prefix
            && String.sub f 0 (String.length prefix) = prefix then
           let kind =
             String.map
               (fun c -> if c = '@' then ':' else c)
               (String.sub f (String.length prefix)
                  (String.length f - String.length prefix))
           in
           match Protocol.parse_repl_file kind with
           | Ok file -> Some (Filename.concat t.cfg.data_dir f, file)
           | Error _ -> None
         else None)

let commit_adopt t doc =
  let staged = adopt_staged_files t doc in
  let has f = List.exists (fun (_, file) -> file = f) staged in
  if not (has Protocol.Base_xml && has Protocol.Base_sidecar) then begin
    adopt_cleanup t doc;
    Protocol.Err "ADOPT: staged set is missing the base xml/ruid pair"
  end
  else
    with_quiesced t @@ fun () ->
    if find_master_idx t doc <> None then begin
      adopt_cleanup t doc;
      Protocol.Err (Printf.sprintf "ADOPT: duplicate document %S" doc)
    end
    else begin
      List.iter
        (fun (path, file) -> Sys.rename path (adopt_target_path t doc file))
        staged;
      let xml_path, sidecar_path, wal_path = master_paths t doc in
      match
        Wal.replay ~xml:xml_path ~sidecar:sidecar_path ~wal:wal_path ()
      with
      | exception e ->
        (* the artifacts are exactly what the source shipped; leave them
           for diagnosis but do not host the document *)
        List.iter
          (fun (_, file) ->
            try Sys.remove (adopt_target_path t doc file) with Sys_error _ -> ())
          staged;
        Protocol.Err
          (Printf.sprintf "ADOPT: staged artifacts do not replay: %s"
             (Printexc.to_string e))
      | recovery ->
        let wal = Wal.open_append wal_path in
        let version =
          install_master t ~name:doc ~r2:recovery.Wal.r2 ~wal
            ~applied_seq:(Wal.seq wal)
        in
        (try
           ignore
             (Rxpath.Collection.add_numbered t.coll ~name:doc recovery.Wal.r2)
         with Invalid_argument _ -> ());
        Protocol.Ok_
          (Printf.sprintf "doc=%s seq=%d gen=%d v=%d" doc (Wal.seq wal)
             (Wal.generation wal) version)
    end

let run_adopt t doc file last bytes =
  if not (valid_doc_name doc) then
    Protocol.Err (Printf.sprintf "ADOPT: bad document name %S" doc)
  else begin
    Mutex.lock t.adopt_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.adopt_mu) @@ fun () ->
    match append_to_file (adopt_stage_path t doc file) bytes with
    | exception Sys_error msg ->
      adopt_cleanup t doc;
      Protocol.Err ("ADOPT: staging failed: " ^ msg)
    | () ->
      if not last then
        Protocol.Ok_ (Printf.sprintf "doc=%s staged=%d" doc (String.length bytes))
      else commit_adopt t doc
  end

let run_adopt_abort t doc =
  if not (valid_doc_name doc) then
    Protocol.Err (Printf.sprintf "ADOPTABORT: bad document name %S" doc)
  else begin
    Mutex.lock t.adopt_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.adopt_mu) @@ fun () ->
    adopt_cleanup t doc;
    Protocol.Ok_ (Printf.sprintf "doc=%s aborted" doc)
  end

let run_drop_doc t doc =
  with_quiesced t @@ fun () ->
  match find_master_idx t doc with
  | None -> Protocol.Err (Printf.sprintf "unknown document %S" doc)
  | Some idx ->
    let m = t.masters.(idx) in
    m.retired <- true;
    let version = 1 + Atomic.fetch_and_add t.last_version 1 in
    let next =
      Snapshot.retire_doc (Atomic.get t.current) ~version ~doc_index:idx
    in
    Atomic.set t.current next;
    (* Delete the artifacts: the document moved; a crash-restart of this
       shard must not resurrect a stale copy.  The journal's whole segment
       family (active segment, checkpoint pairs, archives) is enumerated
       rather than guessed from the live generation. *)
    List.iter
      (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
      (Wal.family m.wal_path);
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ m.xml_path; m.sidecar_path ];
    Protocol.Ok_ (Printf.sprintf "doc=%s dropped v=%d" doc version)

let handle_frame t oc payload =
  let t0 = Unix.gettimeofday () in
  let reply verb response =
    Protocol.write_frame oc (Protocol.response_to_string response);
    let outcome =
      match response with
      | Protocol.Ok_ _ -> `Ok
      | Protocol.Err _ -> `Err
      | Protocol.Busy _ -> `Busy
    in
    Metrics.record t.metrics ~verb ~outcome
      ~latency_ns:((Unix.gettimeofday () -. t0) *. 1e9)
  in
  match Protocol.parse_request payload with
  | Error msg -> reply "INVALID" (Protocol.Err msg)
  | Ok req -> (
    let verb = Protocol.verb req in
    match req with
    (* Control verbs bypass the admission queue: they must stay
       observable exactly when the queue is saturated. *)
    | Protocol.Ping -> reply verb (Protocol.Ok_ "pong")
    | Protocol.Stats -> reply verb (Protocol.Ok_ (Metrics.render t.metrics))
    | Protocol.Docs ->
      let s = Atomic.get t.current in
      reply verb
        (Protocol.Ok_
           (Printf.sprintf "v=%d docs=%d %s" s.Snapshot.version
              (List.length (Snapshot.doc_names s))
              (String.concat " " (Snapshot.doc_names s))))
    | Protocol.Shutdown ->
      reply verb (Protocol.Ok_ "stopping");
      request_stop_async t
    (* The replication verbs are control verbs too: a follower's pull must
       keep draining even when the admission queue is saturated, and a
       REPL WAIT long-poll may hold its (dedicated) session thread without
       costing a worker. *)
    | Protocol.Repl_state -> reply verb (run_repl_state t)
    | Protocol.Repl_file { doc; file; offset; limit } ->
      reply verb (run_repl_file t doc file offset limit)
    | Protocol.Repl_wait { doc; gen; offset; timeout_ms } ->
      reply verb (run_repl_wait t doc gen offset timeout_ms)
    | Protocol.Promote ->
      reply verb
        (Protocol.Err
           "PROMOTE: this node is a primary, not a replica (already \
            accepting writes)")
    (* Collection membership runs inline too: ingest and rebalance use
       dedicated connections (blocking one costs no worker), and the verbs
       must stay available while the admission queue is saturated — a
       rebalance is often the cure for the saturation. *)
    | Protocol.Add_doc { doc; xml } -> reply verb (run_add_doc t doc xml)
    | Protocol.Add_chunk { doc; off; last; bytes } ->
      reply verb (run_add_chunk t doc off last bytes)
    | Protocol.Adopt { doc; file; last; bytes } ->
      reply verb (run_adopt t doc file last bytes)
    | Protocol.Adopt_abort doc -> reply verb (run_adopt_abort t doc)
    | Protocol.Drop_doc doc -> reply verb (run_drop_doc t doc)
    | Protocol.Rebalance _ ->
      reply verb
        (Protocol.Err
           "REBALANCE: this node is a shard; connect to the router")
    | Protocol.Query _ | Protocol.Count _ | Protocol.Explain _
    | Protocol.Update _ | Protocol.Check _ | Protocol.Sleep _
    | Protocol.Query_doc _ | Protocol.Count_doc _ ->
      let deadline =
        if t.cfg.deadline_ms = 0 then infinity
        else t0 +. (float_of_int t.cfg.deadline_ms /. 1000.)
      in
      let iv = Ivar.create () in
      let job () =
        let response =
          if Unix.gettimeofday () > deadline then
            Protocol.Busy "deadline exceeded in queue"
          else guarded_run t req
        in
        Ivar.fill iv response
      in
      (* Reads go to the parallel executor when one is configured: they
         only touch domain-safe state (the immutable snapshot, the sharded
         cache).  UPDATE (and the testing verb SLEEP) stays on the
         systhread pool of the main domain — the WAL + write-mutex path. *)
      let admitted =
        match (t.exec, req) with
        | Some ex,
          ( Protocol.Query _ | Protocol.Count _ | Protocol.Explain _
          | Protocol.Check _ | Protocol.Query_doc _ | Protocol.Count_doc _ ) ->
          Executor.submit ~label:verb ex job
        | _ -> Scheduler.submit ~label:verb t.sched job
      in
      if admitted then reply verb (Ivar.read iv)
      else reply verb (Protocol.Busy "queue full"))

let session_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some payload ->
      handle_frame t oc payload;
      loop ()
  in
  (* A peer that drops mid-frame or vanishes before reading its reply
     (EPIPE on the write — surfaced as Sys_error/Unix_error with SIGPIPE
     ignored) ends this session alone, counted, never the process. *)
  (try loop () with
  | Protocol.Protocol_error _ | End_of_file | Sys_error _ ->
    Metrics.record_session_error t.metrics
  | Unix.Unix_error _ -> Metrics.record_session_error t.metrics);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let stopping () =
    Mutex.lock t.state_mu;
    let s = t.state <> `Running in
    Mutex.unlock t.state_mu;
    s
  in
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ when stopping () ->
      (* the wake-up connection made by stop, or a late client *)
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
      let id =
        Mutex.lock t.sessions_mu;
        let id = t.next_session in
        t.next_session <- id + 1;
        Mutex.unlock t.sessions_mu;
        id
      in
      let th =
        Thread.create
          (fun () ->
            session_loop t fd;
            Mutex.lock t.sessions_mu;
            Hashtbl.remove t.sessions id;
            Mutex.unlock t.sessions_mu)
          ()
      in
      Mutex.lock t.sessions_mu;
      (* A finished session may already have run its removal, leaving a
         stale entry here; stop tolerates that (shutdown on a closed fd
         and join on a dead thread are both harmless). *)
      Hashtbl.replace t.sessions id (fd, th);
      Mutex.unlock t.sessions_mu;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let ensure_dir d =
  if not (Sys.file_exists d) then Unix.mkdir d 0o755
  else if not (Sys.is_directory d) then
    invalid_arg (Printf.sprintf "Service.start: %s is not a directory" d)

let start cfg docs =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Service.start: " ^ msg));
  (* An empty collection is a valid start: a shard in the collection
     tier boots bare and is filled by ADDDOC / ADOPT at runtime. *)
  (* A peer closing its socket before reading a reply must surface as
     EPIPE on the write — caught per-session — not as a process-killing
     SIGPIPE.  (No-op on platforms without the signal.) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  ensure_dir cfg.data_dir;
  (* Persist the fencing epoch before serving: a follower's refusal rule
     depends on every node knowing which generation it speaks for. *)
  Replication.store_epoch cfg.data_dir cfg.epoch;
  let coll = Rxpath.Collection.create ~max_area_size:cfg.max_area_size () in
  let n_groups = resolved_commit_groups cfg in
  let masters =
    Array.of_list
      (List.map
         (fun (name, root) ->
           if not (String.for_all (fun c -> c > ' ' && c <> '/') name)
              || name = "" || name.[0] = '.' then
             invalid_arg
               (Printf.sprintf "Service.start: bad document name %S" name);
           let doc_id = Rxpath.Collection.add coll ~name root in
           let r2 = Rxpath.Collection.ruid coll doc_id in
           let base = Filename.concat cfg.data_dir name in
           let xml_path = base ^ ".xml" in
           let sidecar_path = base ^ ".ruid" in
           let wal_path = base ^ ".wal" in
           Ruid.Persist.save r2 ~xml:xml_path ~sidecar:sidecar_path;
           let wal = Wal.create wal_path in
           (* version 1 is the startup snapshot's stamp; every cursor
              starts there, matching [Snapshot.capture ~version:1] below *)
           { name; group = Shard_map.hash ~shards:n_groups name;
             retired = false; r2; wal; applied_seq = 0;
             applied_version = 1; durable_version = 1; wedged = None;
             xml_path; sidecar_path; wal_path;
             rotate_mu = Mutex.create () })
         docs)
  in
  let catalog = Hashtbl.create (2 * Array.length masters) in
  Array.iteri (fun i m -> Hashtbl.replace catalog m.name i) masters;
  let planner_shared =
    if cfg.planner then
      Some (Rxpath.Planner.make_shared ~plan_cache:cfg.plan_cache ())
    else None
  in
  let snapshot0 =
    Snapshot.capture ?planner:planner_shared ~version:1
      (Array.to_list (Array.map (fun m -> (m.name, m.r2)) masters))
  in
  let metrics = Metrics.create () in
  let on_exn ~label e = Metrics.record_dropped metrics ~verb:label e in
  let max_queue = resolved_max_queue cfg in
  let sched = Scheduler.create ~on_exn ~workers:cfg.workers ~max_queue () in
  let exec =
    if cfg.domains = 0 then None
    else Some (Executor.create ~on_exn ~domains:cfg.domains ~max_queue ())
  in
  let cache =
    if cfg.cache_mb = 0 then None
    else
      (* ~1 KiB budgeted per entry: answers are counts plus at most
         [id_cap] identifiers, so the byte cap binds first only for
         unusually long query strings. *)
      Some
        (Query_cache.create ~max_entries:(cfg.cache_mb * 1024)
           ~max_bytes:(cfg.cache_mb * 1024 * 1024) ())
  in
  (* the socket *)
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      coll;
      masters;
      catalog;
      catalog_mu = Mutex.create ();
      adopt_mu = Mutex.create ();
      planner_shared;
      current = Atomic.make snapshot0;
      groups =
        Array.init n_groups (fun g_id ->
            { g_id;
              g_write_mu = Mutex.create ();
              g_mu = Mutex.create ();
              g_cond = Condition.create ();
              g_queue = Queue.create ();
              g_committing = false;
              g_stop = false;
              g_writes =
                { w_batches = 0; w_records = 0; w_max_batch = 0;
                  w_flush_ns = 0.; w_pub_inc = 0; w_pub_full = 0;
                  w_areas = 0; w_rotations = 0 };
              g_handoffs = 0;
              g_lock_wait = Array.make Metrics.hist_buckets 0;
              g_fsync_wait = Array.make Metrics.hist_buckets 0;
            });
      pipelines = [||];
      last_version = Atomic.make snapshot0.Snapshot.version;
      repl_requests = Atomic.make 0;
      repl_bytes = Atomic.make 0;
      sched;
      exec;
      cache;
      metrics;
      listen_fd;
      accept_thread = None;
      sessions = Hashtbl.create 16;
      sessions_mu = Mutex.create ();
      next_session = 0;
      state_mu = Mutex.create ();
      state_cond = Condition.create ();
      state = `Running;
    }
  in
  Metrics.set_queue_probe metrics (fun () ->
      Scheduler.queue_depth t.sched
      + match t.exec with Some ex -> Executor.queue_depth ex | None -> 0);
  Metrics.set_snapshot_probe metrics (fun () ->
      let s = Atomic.get t.current in
      (s.Snapshot.version, s.Snapshot.published_at));
  (match t.cache with
  | Some c ->
    Metrics.set_cache_probe metrics (fun () ->
        let s = Query_cache.stats c in
        {
          Metrics.hits = s.Query_cache.hits;
          misses = s.Query_cache.misses;
          evictions = s.Query_cache.evictions;
          entries = s.Query_cache.entries;
          bytes = s.Query_cache.bytes;
        })
  | None -> ());
  (match t.exec with
  | Some ex -> Metrics.set_domain_probe metrics (fun () -> Executor.busy_seconds ex)
  | None -> ());
  (match planner_shared with
  | None -> ()
  | Some sh ->
    Metrics.set_planner_probe metrics (fun () ->
        let s = Rxpath.Planner.shared_stats sh in
        let hits, misses, evictions, entries =
          match s.Rxpath.Planner.cache_stats with
          | None -> (0, 0, 0, 0)
          | Some c ->
            Rxpath.Plan_cache.
              (c.hits, c.misses, c.evictions, c.entries)
        in
        {
          Metrics.chain = s.Rxpath.Planner.chain;
          twig = s.Rxpath.Planner.twig;
          engine = s.Rxpath.Planner.engine;
          pruned = s.Rxpath.Planner.pruned;
          plan_hits = hits;
          plan_misses = misses;
          plan_evictions = evictions;
          plan_entries = entries;
        }));
  (* [wal_*]/[publish_*] keys stay aggregated across groups — every
     existing consumer (tests, benches, dashboards) keeps its totals —
     while the per-group contention detail goes out via the pipeline
     probe. *)
  Metrics.set_write_probe metrics (fun () ->
      Array.fold_left
        (fun acc g ->
          Mutex.lock g.g_mu;
          let w = g.g_writes in
          let acc =
            {
              Metrics.batches = acc.Metrics.batches + w.w_batches;
              records = acc.Metrics.records + w.w_records;
              max_batch = max acc.Metrics.max_batch w.w_max_batch;
              flush_ns = acc.Metrics.flush_ns +. w.w_flush_ns;
              publish_incremental =
                acc.Metrics.publish_incremental + w.w_pub_inc;
              publish_full = acc.Metrics.publish_full + w.w_pub_full;
              areas_rebuilt = acc.Metrics.areas_rebuilt + w.w_areas;
              rotations = acc.Metrics.rotations + w.w_rotations;
            }
          in
          Mutex.unlock g.g_mu;
          acc)
        {
          Metrics.batches = 0; records = 0; max_batch = 0; flush_ns = 0.;
          publish_incremental = 0; publish_full = 0; areas_rebuilt = 0;
          rotations = 0;
        }
        t.groups);
  Metrics.set_pipeline_probe metrics (fun () ->
      Array.map
        (fun g ->
          Mutex.lock g.g_mu;
          let s =
            {
              Metrics.gq_depth = Queue.length g.g_queue;
              g_batches = g.g_writes.w_batches;
              g_records = g.g_writes.w_records;
              g_handoffs = g.g_handoffs;
              g_lock_wait = Array.copy g.g_lock_wait;
              g_fsync_wait = Array.copy g.g_fsync_wait;
            }
          in
          Mutex.unlock g.g_mu;
          s)
        t.groups);
  Metrics.set_repl_probe metrics (fun () ->
      {
        Metrics.role = "primary";
        epoch = cfg.epoch;
        served_requests = Atomic.get t.repl_requests;
        served_bytes = Atomic.get t.repl_bytes;
        lag_versions = 0;
        lag_bytes = 0;
        last_applied_seq = -1;
        reconnects = 0;
        refused_epoch = 0;
      });
  t.pipelines <-
    Array.map (fun g -> Domain.spawn (fun () -> pipeline_loop t g)) t.groups;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t
