(** Disk-access accounting for the simulated storage layer.

    The paper's performance claims (Lemma 1, Section 3.3) are about which
    operations require {e no} I/O once kappa and K are memory-resident;
    these counters are the measurement instrument.

    Counters are lock-free atomics, so several worker threads (the document
    service's pool) can account against one shared instance; {!snapshot}
    gives a consistent-enough point-in-time copy for per-request
    accounting, and {!reset} rearms all counters. *)

type t

type snapshot = {
  page_reads : int;  (** buffer-pool misses: simulated disk reads *)
  page_writes : int;
  hits : int;  (** buffer-pool hits: served from memory *)
}

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit
val record_hit : t -> unit

val page_reads : t -> int
val page_writes : t -> int
val hits : t -> int

val snapshot : t -> snapshot
(** Point-in-time copy.  Each counter is read atomically; the three reads
    are not a single transaction, which is harmless for accounting. *)

val diff : after:snapshot -> before:snapshot -> snapshot
(** Per-request accounting: counter deltas between two snapshots. *)

val reset : t -> unit
val add : t -> t -> unit
(** [add into from] accumulates [from]'s current counters into [into]. *)

val pp : Format.formatter -> t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
