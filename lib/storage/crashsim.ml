module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Updates = Rworkload.Updates
module Rng = Rworkload.Rng

exception Mismatch of string

let mismatch fmt = Format.kasprintf (fun s -> raise (Mismatch s)) fmt

type outcome = {
  nodes : int;
  ops_total : int;
  ops_survived : int;
  cut : int;
  journal_bytes : int;
  touched_areas : int;
  untouched_checked : int;
  batches : int;
  checkpoint_ops : int;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d nodes; %d/%d ops survived a cut at byte %d of %d (%d via \
     checkpoint, %d batch frame(s)); %d area(s) touched, %d untouched \
     identifier(s) verified byte-identical"
    o.nodes o.ops_survived o.ops_total o.cut o.journal_bytes o.checkpoint_ops
    o.batches o.touched_areas o.untouched_checked

let wal_op_of_update = function
  | Updates.Insert { parent_rank; pos } ->
    Wal.Insert { parent_rank; pos; tag = "upd" }
  | Updates.Delete { rank } -> Wal.Delete { rank }

(* Identifiers of every live node, in document order, as their wire bytes —
   the strongest equality the scheme offers. *)
let encoded_ids r2 =
  List.map
    (fun n -> Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node r2 n)))
    (R2.all_nodes r2)

let run ?(vfs = Ruid.Vfs.real) ~dir ~seed ?(ops = 64) ?(size = 200)
    ?(area = 8) ?cut ?(batch = 1) ?checkpoint_after () =
  if batch < 1 then invalid_arg "Crashsim.run: batch must be >= 1";
  let xml = Filename.concat dir "snapshot.xml"
  and sidecar = Filename.concat dir "snapshot.ruid"
  and wal = Filename.concat dir "journal.wal" in
  let base =
    Rworkload.Shape.generate ~seed ~target:size
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let script =
    List.map wal_op_of_update (Updates.script ~seed:(seed + 1) ~ops base)
  in
  (* Live instance: snapshot, then run the whole script through the log,
     [batch] records per commit frame, optionally rotating to a checkpoint
     segment after [checkpoint_after] operations. *)
  let live = R2.number ~max_area_size:area base in
  Ruid.Persist.save ~vfs live ~xml ~sidecar;
  let w = Wal.create ~vfs wal in
  let groups =
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | op :: rest ->
        if k = batch then go (List.rev cur :: acc) [ op ] 1 rest
        else go acc (op :: cur) (k + 1) rest
    in
    go [] [] 0 script
  in
  let appended = ref 0 and checkpoint_ops = ref 0 and cut_floor = ref 0 in
  List.iter
    (fun group ->
      let base_seq = Wal.seq w in
      let records =
        List.mapi
          (fun i op ->
            let area, changed = Wal.apply live op in
            { Wal.seq = base_seq + 1 + i; op; area; changed })
          group
      in
      Wal.append_batch w records;
      appended := !appended + List.length records;
      match checkpoint_after with
      | Some n when !checkpoint_ops = 0 && !appended >= n ->
        (* The rotation protocol fsyncs the new segment before renaming it
           into place, so the simulated tear never reaches below the
           post-rotation journal size. *)
        checkpoint_ops := !appended;
        ignore
          (Wal.rotate w
             ~xml:(Ruid.Persist.xml_to_bytes live)
             ~sidecar:(Ruid.Persist.sidecar_to_bytes live));
        cut_floor := vfs.Ruid.Vfs.size wal
      | _ -> ())
    groups;
  (* The crash: the journal survives only up to [cut] bytes. *)
  let journal_bytes = vfs.Ruid.Vfs.size wal in
  let cut =
    match cut with
    | Some c -> max !cut_floor (min c journal_bytes)
    | None ->
      Rng.int_in
        (Rng.create ((seed * 2654435761) lor 1))
        !cut_floor journal_bytes
  in
  Fault.torn_tail ~vfs wal ~keep:cut;
  (* Recovery under test. *)
  let recovery = Wal.replay ~vfs ~xml ~sidecar ~wal () in
  let survived = !checkpoint_ops + List.length recovery.Wal.replayed in
  (* Authoritative replica: reload the snapshot and re-apply the surviving
     prefix entirely in memory, remembering every pre-crash identifier and
     which areas the prefix re-enumerated. *)
  let _doc, replica = Ruid.Persist.load ~vfs ~xml ~sidecar () in
  let snapshot_ids = Hashtbl.create 512 in
  List.iter
    (fun n ->
      Hashtbl.replace snapshot_ids n.Dom.serial
        (Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node replica n))))
    (R2.all_nodes replica);
  let touched = Hashtbl.create 16 in
  List.iteri
    (fun i op ->
      if i < survived then begin
        let area, _changed = Wal.apply replica op in
        Hashtbl.replace touched area ()
      end)
    script;
  (* (a) The recovered numbering equals the replica, byte for byte. *)
  if encoded_ids recovery.Wal.r2 <> encoded_ids replica then
    mismatch "recovered identifiers differ from the in-memory replica";
  (* (b) Identifiers in areas no surviving operation touched are
     byte-identical to the snapshot (the paper's locality claim). *)
  let untouched_checked = ref 0 in
  List.iter
    (fun n ->
      match Hashtbl.find_opt snapshot_ids n.Dom.serial with
      | None -> () (* inserted after the snapshot *)
      | Some old ->
        let id = R2.id_of_node replica n in
        if not (Hashtbl.mem touched (R2.enumeration_area replica id)) then begin
          incr untouched_checked;
          let now = Bytes.to_string (Ruid.Codec.encode_ruid2 id) in
          if now <> old then
            mismatch "identifier %s in untouched area %d changed across crash"
              (R2.id_to_string id)
              (R2.enumeration_area replica id)
        end)
    (R2.all_nodes replica);
  {
    nodes = List.length (R2.all_nodes recovery.Wal.r2);
    ops_total = List.length script;
    ops_survived = survived;
    cut;
    journal_bytes;
    touched_areas = Hashtbl.length touched;
    untouched_checked = !untouched_checked;
    batches = recovery.Wal.journal.Wal.batches;
    checkpoint_ops = !checkpoint_ops;
  }
