module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Updates = Rworkload.Updates
module Rng = Rworkload.Rng

exception Mismatch of string

let mismatch fmt = Format.kasprintf (fun s -> raise (Mismatch s)) fmt

type outcome = {
  nodes : int;
  ops_total : int;
  ops_survived : int;
  cut : int;
  journal_bytes : int;
  touched_areas : int;
  untouched_checked : int;
  batches : int;
  checkpoint_ops : int;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "%d nodes; %d/%d ops survived a cut at byte %d of %d (%d via \
     checkpoint, %d batch frame(s)); %d area(s) touched, %d untouched \
     identifier(s) verified byte-identical"
    o.nodes o.ops_survived o.ops_total o.cut o.journal_bytes o.checkpoint_ops
    o.batches o.touched_areas o.untouched_checked

let wal_op_of_update = function
  | Updates.Insert { parent_rank; pos } ->
    Wal.Insert { parent_rank; pos; tag = "upd" }
  | Updates.Delete { rank } -> Wal.Delete { rank }

type group_outcome = {
  g_docs : int;
  g_groups : int;
  g_victim : string;
  g_victim_group : int;
  g_victim_survived : int;
  g_victim_total : int;
  g_intact_docs : int;
}

let pp_group_outcome ppf o =
  Format.fprintf ppf
    "%d documents over %d commit group(s); %s (group %d) torn to %d/%d \
     op(s); %d other document(s) replayed every operation byte-identical \
     and fsck clean"
    o.g_docs o.g_groups o.g_victim o.g_victim_group o.g_victim_survived
    o.g_victim_total o.g_intact_docs

(* The server's placement hash ({!Rserver.Shard_map.hash}, FNV-1a 64),
   restated because rstorage sits below rserver in the dependency order.
   The labels only annotate the outcome — per-document journals mean the
   blast radius is one document regardless of grouping — but matching the
   server's hash makes the simulated layout the one a real collection
   would produce for the same names. *)
let group_of ~groups name =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  (!h land max_int) mod groups

(* Identifiers of every live node, in document order, as their wire bytes —
   the strongest equality the scheme offers. *)
let encoded_ids r2 =
  List.map
    (fun n -> Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node r2 n)))
    (R2.all_nodes r2)

let run ?(vfs = Ruid.Vfs.real) ~dir ~seed ?(ops = 64) ?(size = 200)
    ?(area = 8) ?cut ?(batch = 1) ?checkpoint_after () =
  if batch < 1 then invalid_arg "Crashsim.run: batch must be >= 1";
  let xml = Filename.concat dir "snapshot.xml"
  and sidecar = Filename.concat dir "snapshot.ruid"
  and wal = Filename.concat dir "journal.wal" in
  let base =
    Rworkload.Shape.generate ~seed ~target:size
      (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
  in
  let script =
    List.map wal_op_of_update (Updates.script ~seed:(seed + 1) ~ops base)
  in
  (* Live instance: snapshot, then run the whole script through the log,
     [batch] records per commit frame, optionally rotating to a checkpoint
     segment after [checkpoint_after] operations. *)
  let live = R2.number ~max_area_size:area base in
  Ruid.Persist.save ~vfs live ~xml ~sidecar;
  let w = Wal.create ~vfs wal in
  let groups =
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | op :: rest ->
        if k = batch then go (List.rev cur :: acc) [ op ] 1 rest
        else go acc (op :: cur) (k + 1) rest
    in
    go [] [] 0 script
  in
  let appended = ref 0 and checkpoint_ops = ref 0 and cut_floor = ref 0 in
  List.iter
    (fun group ->
      let base_seq = Wal.seq w in
      let records =
        List.mapi
          (fun i op ->
            let area, changed = Wal.apply live op in
            { Wal.seq = base_seq + 1 + i; op; area; changed })
          group
      in
      Wal.append_batch w records;
      appended := !appended + List.length records;
      match checkpoint_after with
      | Some n when !checkpoint_ops = 0 && !appended >= n ->
        (* The rotation protocol fsyncs the new segment before renaming it
           into place, so the simulated tear never reaches below the
           post-rotation journal size. *)
        checkpoint_ops := !appended;
        ignore
          (Wal.rotate w
             ~xml:(Ruid.Persist.xml_to_bytes live)
             ~sidecar:(Ruid.Persist.sidecar_to_bytes live));
        cut_floor := vfs.Ruid.Vfs.size wal
      | _ -> ())
    groups;
  (* The crash: the journal survives only up to [cut] bytes. *)
  let journal_bytes = vfs.Ruid.Vfs.size wal in
  let cut =
    match cut with
    | Some c -> max !cut_floor (min c journal_bytes)
    | None ->
      Rng.int_in
        (Rng.create ((seed * 2654435761) lor 1))
        !cut_floor journal_bytes
  in
  Fault.torn_tail ~vfs wal ~keep:cut;
  (* Recovery under test. *)
  let recovery = Wal.replay ~vfs ~xml ~sidecar ~wal () in
  let survived = !checkpoint_ops + List.length recovery.Wal.replayed in
  (* Authoritative replica: reload the snapshot and re-apply the surviving
     prefix entirely in memory, remembering every pre-crash identifier and
     which areas the prefix re-enumerated. *)
  let _doc, replica = Ruid.Persist.load ~vfs ~xml ~sidecar () in
  let snapshot_ids = Hashtbl.create 512 in
  List.iter
    (fun n ->
      Hashtbl.replace snapshot_ids n.Dom.serial
        (Bytes.to_string (Ruid.Codec.encode_ruid2 (R2.id_of_node replica n))))
    (R2.all_nodes replica);
  let touched = Hashtbl.create 16 in
  List.iteri
    (fun i op ->
      if i < survived then begin
        let area, _changed = Wal.apply replica op in
        Hashtbl.replace touched area ()
      end)
    script;
  (* (a) The recovered numbering equals the replica, byte for byte. *)
  if encoded_ids recovery.Wal.r2 <> encoded_ids replica then
    mismatch "recovered identifiers differ from the in-memory replica";
  (* (b) Identifiers in areas no surviving operation touched are
     byte-identical to the snapshot (the paper's locality claim). *)
  let untouched_checked = ref 0 in
  List.iter
    (fun n ->
      match Hashtbl.find_opt snapshot_ids n.Dom.serial with
      | None -> () (* inserted after the snapshot *)
      | Some old ->
        let id = R2.id_of_node replica n in
        if not (Hashtbl.mem touched (R2.enumeration_area replica id)) then begin
          incr untouched_checked;
          let now = Bytes.to_string (Ruid.Codec.encode_ruid2 id) in
          if now <> old then
            mismatch "identifier %s in untouched area %d changed across crash"
              (R2.id_to_string id)
              (R2.enumeration_area replica id)
        end)
    (R2.all_nodes replica);
  {
    nodes = List.length (R2.all_nodes recovery.Wal.r2);
    ops_total = List.length script;
    ops_survived = survived;
    cut;
    journal_bytes;
    touched_areas = Hashtbl.length touched;
    untouched_checked = !untouched_checked;
    batches = recovery.Wal.journal.Wal.batches;
    checkpoint_ops = !checkpoint_ops;
  }

(* Cross-group crash independence: [docs] documents, labeled with the
   commit group the server would place them in, grow their per-document
   journals in interleaved order (the way independent pipelines drive
   them); then ONE document's journal is torn.  Every other document —
   in the victim's group or not — must replay all of its operations
   byte-identical to an in-memory replica and fsck Clean; the victim
   recovers its valid prefix.  This is the structural property the
   commit-pipeline split rests on: journal families are per-document,
   so a fault's blast radius is one document, never a group. *)
let run_group ?(vfs = Ruid.Vfs.real) ~dir ~seed ?(docs = 4) ?(groups = 2)
    ?(ops = 24) ?(size = 120) ?(area = 8) () =
  if docs < 2 then invalid_arg "Crashsim.run_group: docs must be >= 2";
  if groups < 1 then invalid_arg "Crashsim.run_group: groups must be >= 1";
  let name d = Printf.sprintf "doc%d" d in
  let paths d =
    let base = Filename.concat dir (name d) in
    (base ^ ".xml", base ^ ".ruid", base ^ ".wal")
  in
  (* Per-document worlds: base tree, snapshot pair, journal, script. *)
  let live =
    Array.init docs (fun d ->
        let base =
          Rworkload.Shape.generate ~seed:(seed + (d * 17)) ~target:size
            (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 4 })
        in
        let r2 = R2.number ~max_area_size:area base in
        let xml, sidecar, wal = paths d in
        Ruid.Persist.save ~vfs r2 ~xml ~sidecar;
        let w = Wal.create ~vfs wal in
        let script =
          Array.of_list
            (List.map wal_op_of_update
               (Updates.script ~seed:(seed + 1 + (d * 31)) ~ops base))
        in
        (r2, w, script))
  in
  (* Interleaved appends: round-robin over the documents so every journal
     grows while the others do, like concurrent pipelines on one disk. *)
  for i = 0 to ops - 1 do
    Array.iter
      (fun (r2, w, script) ->
        let op = script.(i) in
        let area, changed = Wal.apply r2 op in
        Wal.append_batch w [ { Wal.seq = Wal.seq w + 1; op; area; changed } ])
      live
  done;
  (* The crash: one document's journal survives only up to [cut] bytes;
     every other journal is untouched. *)
  let victim = seed mod docs in
  let _, _, vwal = paths victim in
  let vsize = vfs.Ruid.Vfs.size vwal in
  let cut = Rng.int_in (Rng.create ((seed * 2654435761) lor 1)) 0 vsize in
  Fault.torn_tail ~vfs vwal ~keep:cut;
  (* Recovery under test, document by document. *)
  let intact = ref 0 and victim_survived = ref 0 in
  Array.iteri
    (fun d (_, _, script) ->
      let xml, sidecar, wal = paths d in
      let recovery = Wal.replay ~vfs ~xml ~sidecar ~wal () in
      let survived = List.length recovery.Wal.replayed in
      (* Authoritative replica: snapshot + exactly the surviving prefix. *)
      let _doc, replica = Ruid.Persist.load ~vfs ~xml ~sidecar () in
      Array.iteri
        (fun i op -> if i < survived then ignore (Wal.apply replica op))
        script;
      if encoded_ids recovery.Wal.r2 <> encoded_ids replica then
        mismatch "document %s: recovered identifiers differ from the replica"
          (name d);
      if d = victim then begin
        victim_survived := survived;
        match Wal.fsck ~vfs ~xml ~sidecar ~wal () with
        | Wal.Unrecoverable why ->
          mismatch "torn document %s unrecoverable: %s" (name d) why
        | Wal.Clean | Wal.Recoverable _ -> ()
      end
      else begin
        if survived <> ops then
          mismatch "document %s lost %d operation(s) to another journal's tear"
            (name d) (ops - survived);
        (match Wal.fsck ~vfs ~xml ~sidecar ~wal () with
        | Wal.Clean -> ()
        | st ->
          mismatch "document %s: fsck not clean after a foreign tear: %a"
            (name d) Wal.pp_status st);
        incr intact
      end)
    live;
  {
    g_docs = docs;
    g_groups = groups;
    g_victim = name victim;
    g_victim_group = group_of ~groups (name victim);
    g_victim_survived = !victim_survived;
    g_victim_total = ops;
    g_intact_docs = !intact;
  }
