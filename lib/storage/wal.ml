module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Codec = Ruid.Codec
module Crc32 = Ruid.Crc32
module Vfs = Ruid.Vfs

(* Two headers distinguish a base segment from one that starts at a
   checkpoint: if the first frame of an "RWAC" segment does not decode to a
   checkpoint record, recovery must refuse rather than silently fall back
   to the (stale) base snapshot.  The fifth byte is the format version: a
   well-formed journal of another version is recognized and refused as
   such — never mistaken for a torn header and "repaired" into an empty
   file. *)
let format_version = 2
let header = "RWAL\x02"
let header_ckpt = "RWAC\x02"

type op =
  | Insert of { parent_rank : int; pos : int; tag : string }
  | Delete of { rank : int }

type record = { seq : int; op : op; area : int; changed : int }

type checkpoint = {
  gen : int;
  base_seq : int;
  xml_crc : int;
  sidecar_crc : int;
}

let pp_op ppf = function
  | Insert { parent_rank; pos; tag } ->
    Format.fprintf ppf "insert(<%s> at parent@%d, pos %d)" tag parent_rank pos
  | Delete { rank } -> Format.fprintf ppf "delete(@%d)" rank

let pp_record ppf r =
  Format.fprintf ppf "#%d %a -> area %d, %d ids rewritten" r.seq pp_op r.op
    r.area r.changed

let pp_checkpoint ppf c =
  Format.fprintf ppf "checkpoint gen %d after record #%d" c.gen c.base_seq

exception Replay_error of string

let replay_error fmt = Format.kasprintf (fun s -> raise (Replay_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Applying logical operations                                         *)
(* ------------------------------------------------------------------ *)

let area_enumerating t parent =
  let r = Ruid.Frame.own_area_root (R2.frame t) parent in
  match R2.global_of_area t r with
  | Some g -> g
  | None -> replay_error "area root of node %d has no global index" r.Dom.serial

let apply t op =
  let nodes = Dom.preorder (R2.root t) in
  let total = List.length nodes in
  let nth rank =
    match List.nth_opt nodes rank with
    | Some n -> n
    | None -> replay_error "rank %d out of range (%d nodes)" rank total
  in
  try
    match op with
    | Insert { parent_rank; pos; tag } ->
      let parent = nth parent_rank in
      let area = area_enumerating t parent in
      let changed = R2.insert_node t ~parent ~pos (Dom.element tag) in
      (area, changed)
    | Delete { rank } ->
      if rank = 0 then replay_error "cannot delete the tree root (rank 0)";
      let node = nth rank in
      let parent =
        match node.Dom.parent with
        | Some p -> p
        | None -> replay_error "node at rank %d is detached" rank
      in
      let area = area_enumerating t parent in
      let changed = R2.delete_subtree t node in
      (area, changed)
  with Invalid_argument msg -> replay_error "operation rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

(* Every frame is [varint payload-length | payload | CRC-32 LE], and every
   payload starts with a kind tag: 0 = one record, 1 = a commit batch of
   consecutive records (one checksum covers the whole batch, so a torn
   batch drops atomically), 2 = a checkpoint. *)
let kind_record = 0
let kind_batch = 1
let kind_checkpoint = 2

let encode_record_body buf r =
  Codec.write_varint buf r.seq;
  (match r.op with
  | Insert { parent_rank; pos; tag } ->
    Codec.write_varint buf 0;
    Codec.write_varint buf parent_rank;
    Codec.write_varint buf pos;
    Codec.write_varint buf (String.length tag);
    Buffer.add_string buf tag
  | Delete { rank } ->
    Codec.write_varint buf 1;
    Codec.write_varint buf rank);
  Codec.write_varint buf r.area;
  Codec.write_varint buf r.changed

let frame_of_payload payload =
  let buf = Buffer.create (String.length payload + 8) in
  Codec.write_varint buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Crc32.string payload in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.to_bytes buf

let encode_record_frame r =
  let buf = Buffer.create 32 in
  Codec.write_varint buf kind_record;
  encode_record_body buf r;
  frame_of_payload (Buffer.contents buf)

let encode_batch_frame records =
  let buf = Buffer.create 128 in
  Codec.write_varint buf kind_batch;
  Codec.write_varint buf (List.length records);
  List.iter (encode_record_body buf) records;
  frame_of_payload (Buffer.contents buf)

let encode_checkpoint_frame c =
  let buf = Buffer.create 32 in
  Codec.write_varint buf kind_checkpoint;
  Codec.write_varint buf c.gen;
  Codec.write_varint buf c.base_seq;
  Codec.write_varint buf c.xml_crc;
  Codec.write_varint buf c.sidecar_crc;
  frame_of_payload (Buffer.contents buf)

type entry = Records of record list | Ckpt of checkpoint

let decode_payload bytes ~pos ~len =
  let stop = pos + len in
  let cur = ref pos in
  let next () =
    if !cur >= stop then failwith "truncated payload";
    let v, p = Codec.read_varint bytes ~pos:!cur in
    if p > stop then failwith "truncated payload";
    cur := p;
    v
  in
  let record () =
    let seq = next () in
    let op =
      match next () with
      | 0 ->
        let parent_rank = next () in
        let pos = next () in
        let tag_len = next () in
        if tag_len < 0 || !cur + tag_len > stop then failwith "truncated tag";
        let tag = Bytes.sub_string bytes !cur tag_len in
        cur := !cur + tag_len;
        Insert { parent_rank; pos; tag }
      | 1 -> Delete { rank = next () }
      | k -> failwith (Printf.sprintf "unknown operation tag %d" k)
    in
    let area = next () in
    let changed = next () in
    { seq; op; area; changed }
  in
  let entry =
    match next () with
    | 0 -> Records [ record () ]
    | 1 ->
      let count = next () in
      if count < 1 then failwith "empty batch";
      Records (List.init count (fun _ -> record ()))
    | 2 ->
      let gen = next () in
      let base_seq = next () in
      let xml_crc = next () in
      let sidecar_crc = next () in
      Ckpt { gen; base_seq; xml_crc; sidecar_crc }
    | k -> failwith (Printf.sprintf "unknown frame kind %d" k)
  in
  if !cur <> stop then failwith "trailing bytes in payload";
  entry

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)
(* ------------------------------------------------------------------ *)

type scan = {
  records : record list;
  checkpoint : checkpoint option;
  ckpt_expected : bool;
  batches : int;
  valid_bytes : int;
  total_bytes : int;
  version : int;
  damage : string option;
}

let u32_le bytes pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (pos + i))
  done;
  !v

(* One frame at [pos]; [Ok (entry, next)] or [Error why] (torn/corrupt). *)
let frame_at bytes ~pos total =
  match Codec.read_varint bytes ~pos with
  | exception Invalid_argument _ -> Error "torn record length"
  | len, payload_start ->
    if payload_start + len + 4 > total then
      Error (Printf.sprintf "torn record (%d payload bytes promised)" len)
    else begin
      let stored = u32_le bytes (payload_start + len) in
      let actual = Crc32.bytes bytes ~pos:payload_start ~len in
      if stored <> actual then
        Error
          (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
             stored actual)
      else
        match decode_payload bytes ~pos:payload_start ~len with
        | e -> Ok (e, payload_start + len + 4)
        | exception (Failure msg | Invalid_argument msg) ->
          Error (Printf.sprintf "undecodable record: %s" msg)
    end

let header_length = String.length header

(* Longest varint a frame length can need: 9 continuation groups. *)
let max_varint_bytes = 10

let decode_stream bytes ~pos =
  let total = Bytes.length bytes in
  let entries = ref [] and cur = ref pos and corrupt = ref None in
  (try
     while !cur < total && !corrupt = None do
       match Codec.read_varint bytes ~pos:!cur with
       | exception Invalid_argument _ ->
         (* A varint cut off by the end of the buffer is an incomplete
            tail (more bytes may complete it); anywhere else it is
            corruption. *)
         if total - !cur < max_varint_bytes then raise Exit
         else begin
           corrupt := Some (Printf.sprintf "bad frame length at byte %d" !cur);
           raise Exit
         end
       | len, payload_start ->
         if payload_start + len + 4 > total then raise Exit (* incomplete *)
         else begin
           let stored = u32_le bytes (payload_start + len) in
           let actual = Crc32.bytes bytes ~pos:payload_start ~len in
           if stored <> actual then
             corrupt :=
               Some
                 (Printf.sprintf
                    "checksum mismatch at byte %d (stored %08x, computed \
                     %08x)" !cur stored actual)
           else
             match decode_payload bytes ~pos:payload_start ~len with
             | e ->
               entries := e :: !entries;
               cur := payload_start + len + 4
             | exception (Failure msg | Invalid_argument msg) ->
               corrupt :=
                 Some
                   (Printf.sprintf "undecodable frame at byte %d: %s" !cur msg)
         end
     done
   with Exit -> ());
  (List.rev !entries, !cur, !corrupt)

let scan ?(vfs = Vfs.real) ?(attempts = 5) path =
  let bytes = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load path) in
  let total = Bytes.length bytes in
  let hlen = String.length header in
  let head = if total < hlen then "" else Bytes.sub_string bytes 0 hlen in
  if head <> header && head <> header_ckpt then
    if
      total >= hlen
      && (String.sub head 0 4 = "RWAL" || String.sub head 0 4 = "RWAC")
    then
      (* A well-formed journal of another format version: diagnose it by
         name.  [repair]/[open_append] must never truncate or restart it —
         to this build it looks like damage, but to the matching build it
         is a perfectly good journal. *)
      let v = Char.code head.[4] in
      { records = []; checkpoint = None; ckpt_expected = false; batches = 0;
        valid_bytes = 0; total_bytes = total; version = v;
        damage =
          Some
            (Printf.sprintf
               "unsupported journal version %d (this build reads version \
                %d)" v format_version) }
    else
      { records = []; checkpoint = None; ckpt_expected = false; batches = 0;
        valid_bytes = 0; total_bytes = total; version = 0;
        damage = Some "bad journal header" }
  else begin
    let ckpt_expected = head = header_ckpt in
    let pos = ref hlen and valid = ref hlen in
    let records = ref [] and damage = ref None and last_seq = ref 0 in
    let ckpt = ref None and batches = ref 0 and first = ref true in
    while !pos < total && !damage = None do
      (match frame_at bytes ~pos:!pos total with
      | Error why ->
        damage :=
          Some (Printf.sprintf "record %d at byte %d: %s"
                  (!last_seq + 1) !pos why)
      | Ok (entry, next) -> (
        match entry with
        | Ckpt c ->
          if not (!first && ckpt_expected) then
            damage :=
              Some (Printf.sprintf
                      "unexpected checkpoint record at byte %d" !pos)
          else begin
            ckpt := Some c;
            last_seq := c.base_seq;
            pos := next;
            valid := next
          end
        | Records rs ->
          if ckpt_expected && !first then
            damage :=
              Some "journal declares a checkpoint but starts with a record"
          else begin
            let break = ref None in
            List.iter
              (fun r ->
                if !break = None then
                  if r.seq <> !last_seq + 1 then
                    break :=
                      Some (Printf.sprintf
                              "record at byte %d: sequence break (%d after %d)"
                              !pos r.seq !last_seq)
                  else begin
                    records := r :: !records;
                    last_seq := r.seq
                  end)
              rs;
            match !break with
            | Some why -> damage := Some why
            | None ->
              if List.length rs > 1 then incr batches;
              pos := next;
              valid := next
          end));
      first := false
    done;
    { records = List.rev !records; checkpoint = !ckpt; ckpt_expected;
      batches = !batches; valid_bytes = !valid; total_bytes = total;
      version = format_version; damage = !damage }
  end

let repair ?(vfs = Vfs.real) ?(attempts = 5) path =
  let s = scan ~vfs ~attempts path in
  if s.version <> 0 && s.version <> format_version then
    (* A well-formed journal of another format version.  The only "repair"
       this build could perform is destroying every record it cannot read;
       leave the file byte-for-byte alone and let the caller see the
       unsupported-version damage. *)
    s
  else if s.ckpt_expected && s.checkpoint = None then
    (* The checkpoint record itself did not survive: truncating would
       silently discard everything up to the checkpoint's base sequence.
       Leave the file alone; replay/fsck report it unrecoverable.  (The
       rotation protocol fsyncs the new segment before renaming it into
       place, so this state indicates external corruption, not a crash.) *)
    s
  else if s.valid_bytes < String.length header then
    (* Header itself was torn: restart the journal. *)
    (Vfs.with_retries ~attempts (fun () ->
         vfs.Vfs.store path (Bytes.of_string header));
     s)
  else begin
    if s.valid_bytes < s.total_bytes then
      Vfs.with_retries ~attempts (fun () ->
          vfs.Vfs.truncate path s.valid_bytes);
    s
  end

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  path : string;
  vfs : Vfs.t;
  attempts : int;
  mutable last_seq : int;
  mutable gen : int;  (* checkpoint generation of the active segment *)
}

let create ?(vfs = Vfs.real) ?(attempts = 5) path =
  Vfs.with_retries ~attempts (fun () ->
      vfs.Vfs.store path (Bytes.of_string header));
  { path; vfs; attempts; last_seq = 0; gen = 0 }

let open_append ?(vfs = Vfs.real) ?(attempts = 5) ?(repair = false) path =
  if not (vfs.Vfs.exists path) then create ~vfs ~attempts path
  else begin
    let s = scan ~vfs ~attempts path in
    if s.version <> 0 && s.version <> format_version then
      invalid_arg
        (Printf.sprintf
           "Wal.open_append: unsupported journal version %d (this build \
            writes version %d); refusing to append or repair" s.version
           format_version);
    if s.ckpt_expected && s.checkpoint = None then
      invalid_arg
        "Wal.open_append: journal declares a checkpoint that did not \
         survive";
    let s =
      match s.damage with
      | None -> s
      | Some why ->
        if not repair then
          invalid_arg
            (Printf.sprintf "Wal.open_append: damaged journal: %s" why);
        if s.valid_bytes < String.length header then
          Vfs.with_retries ~attempts (fun () ->
              vfs.Vfs.store path (Bytes.of_string header))
        else
          Vfs.with_retries ~attempts (fun () ->
              vfs.Vfs.truncate path s.valid_bytes);
        { s with total_bytes = s.valid_bytes; damage = None }
    in
    let last_seq =
      match List.rev s.records with
      | r :: _ -> r.seq
      | [] -> ( match s.checkpoint with Some c -> c.base_seq | None -> 0)
    in
    let gen = match s.checkpoint with Some c -> c.gen | None -> 0 in
    { path; vfs; attempts; last_seq; gen }
  end

let seq w = w.last_seq
let generation w = w.gen

let append_record w r =
  let frame = encode_record_frame r in
  Vfs.with_retries ~attempts:w.attempts (fun () ->
      w.vfs.Vfs.append w.path frame);
  w.last_seq <- r.seq

let append_batch w records =
  (match records with
  | [] -> invalid_arg "Wal.append_batch: empty batch"
  | _ -> ());
  List.iteri
    (fun i r ->
      if r.seq <> w.last_seq + 1 + i then
        invalid_arg
          (Printf.sprintf
             "Wal.append_batch: non-consecutive sequence %d (expected %d)"
             r.seq (w.last_seq + 1 + i)))
    records;
  let frame =
    match records with
    | [ r ] -> encode_record_frame r
    | rs -> encode_batch_frame rs
  in
  Vfs.with_retries ~attempts:w.attempts (fun () ->
      w.vfs.Vfs.append w.path frame);
  w.last_seq <- (List.nth records (List.length records - 1)).seq

let log_update ?(sync = true) w t op =
  let area, changed = apply t op in
  let r = { seq = w.last_seq + 1; op; area; changed } in
  let frame = encode_record_frame r in
  Vfs.with_retries ~attempts:w.attempts (fun () ->
      if sync then w.vfs.Vfs.append w.path frame
      else w.vfs.Vfs.append_nosync w.path frame);
  w.last_seq <- r.seq;
  r

let flush w =
  Vfs.with_retries ~attempts:w.attempts (fun () -> w.vfs.Vfs.sync w.path)

(* ------------------------------------------------------------------ *)
(* Segment rotation + checkpointing                                    *)
(* ------------------------------------------------------------------ *)

let checkpoint_files path gen =
  (Printf.sprintf "%s.ckpt%d.xml" path gen,
   Printf.sprintf "%s.ckpt%d.ruid" path gen)

let segment_archive path gen = Printf.sprintf "%s.seg%d" path gen

type family_member =
  | Active
  | Checkpoint_xml of int
  | Checkpoint_sidecar of int
  | Segment of int

(* A journal path owns a whole segment family on disk; enumerating it by
   re-deriving the names from generations would miss artifacts of crashed
   rotations, so the family is discovered by scanning the directory for
   the path's suffix grammar instead. *)
let family path =
  let dir = Filename.dirname path and base = Filename.basename path in
  let blen = String.length base in
  let parse f =
    if f = base then Some Active
    else if String.length f > blen && String.sub f 0 blen = base then begin
      let suffix = String.sub f blen (String.length f - blen) in
      match
        Scanf.sscanf suffix ".ckpt%d.%s" (fun g ext ->
            match ext with
            | "xml" -> Some (Checkpoint_xml g)
            | "ruid" -> Some (Checkpoint_sidecar g)
            | _ -> None)
      with
      | some_or_none -> some_or_none
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> (
        match Scanf.sscanf suffix ".seg%d%!" (fun g -> Segment g) with
        | seg -> Some seg
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None)
    end
    else None
  in
  let key = function
    | Active -> (-1, 0)
    | Checkpoint_xml g -> (g, 0)
    | Checkpoint_sidecar g -> (g, 1)
    | Segment g -> (g, 2)
  in
  (try Sys.readdir dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter_map (fun f ->
         Option.map (fun m -> (m, Filename.concat dir f)) (parse f))
  |> List.sort (fun (a, _) (b, _) -> compare (key a) (key b))

let should_rotate w ~threshold =
  threshold > 0
  && (try w.vfs.Vfs.size w.path >= threshold with _ -> false)

(* Crash-safe rotation order: (1) checkpoint files for the new generation
   land atomically at paths the active segment does not reference; (2) the
   retiring segment is archived by copy (the active path stays untouched);
   (3) the new segment — header + checkpoint record — is published with one
   atomic rename, the commit point.  A crash before (3) leaves the old
   segment fully in force; after (3) the new one.  Every generation's
   checkpoint pair is retained alongside its archived segment: the archive
   [<wal>.seg<g>] is a copy of the generation-(g-1) segment, whose header
   still binds replay to the generation-(g-1) checkpoint files, so removing
   retired checkpoints would leave every archive unreplayable the moment it
   was created. *)
let rotate w ~xml ~sidecar =
  let gen = w.gen + 1 in
  let xml_p, side_p = checkpoint_files w.path gen in
  Ruid.Persist.store_atomic w.vfs ~attempts:w.attempts xml_p xml;
  Ruid.Persist.store_atomic w.vfs ~attempts:w.attempts side_p sidecar;
  let old_bytes =
    Vfs.with_retries ~attempts:w.attempts (fun () -> w.vfs.Vfs.load w.path)
  in
  Vfs.with_retries ~attempts:w.attempts (fun () ->
      w.vfs.Vfs.store (segment_archive w.path gen) old_bytes);
  let c =
    {
      gen;
      base_seq = w.last_seq;
      xml_crc = Crc32.bytes xml ~pos:0 ~len:(Bytes.length xml);
      sidecar_crc = Crc32.bytes sidecar ~pos:0 ~len:(Bytes.length sidecar);
    }
  in
  let seg = Buffer.create 64 in
  Buffer.add_string seg header_ckpt;
  Buffer.add_bytes seg (encode_checkpoint_frame c);
  Ruid.Persist.store_atomic w.vfs ~attempts:w.attempts w.path
    (Buffer.to_bytes seg);
  w.gen <- gen;
  gen

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  doc : Rxml.Dom.t;
  r2 : Ruid.Ruid2.t;
  replayed : record list;
  journal : scan;
}

let replay_records t records =
  List.iter
    (fun r ->
      let area, changed = apply t r.op in
      if area <> r.area || changed <> r.changed then
        replay_error
          "record #%d journaled (area %d, %d rewritten) but replay gave \
           (area %d, %d rewritten): journal does not match this snapshot"
          r.seq r.area r.changed area changed)
    records

let replay ?(vfs = Vfs.real) ?(attempts = 5) ?(check = true) ~xml ~sidecar
    ~wal () =
  let journal =
    if vfs.Vfs.exists wal then scan ~vfs ~attempts wal
    else
      { records = []; checkpoint = None; ckpt_expected = false; batches = 0;
        valid_bytes = 0; total_bytes = 0; version = format_version;
        damage = None }
  in
  if journal.version <> 0 && journal.version <> format_version then
    (* Recovering "around" an unreadable older journal would silently drop
       every record it holds; refuse instead. *)
    replay_error
      "unsupported journal version %d (this build replays version %d)"
      journal.version format_version;
  let doc, r2 =
    match journal.checkpoint with
    | Some c ->
      (* Replay starts from the checkpointed snapshot, not the base one:
         recovery cost is bounded by the active segment.  The checkpoint
         record vouches for the exact bytes it was cut against. *)
      let xml_p, side_p = checkpoint_files wal c.gen in
      let xb = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load xml_p) in
      let sb = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load side_p) in
      if Crc32.bytes xb ~pos:0 ~len:(Bytes.length xb) <> c.xml_crc then
        replay_error "checkpoint %d: xml bytes fail the checkpoint checksum"
          c.gen;
      if Crc32.bytes sb ~pos:0 ~len:(Bytes.length sb) <> c.sidecar_crc then
        replay_error
          "checkpoint %d: sidecar bytes fail the checkpoint checksum" c.gen;
      Ruid.Persist.of_bytes ~xml:xb ~sidecar:sb
    | None ->
      if journal.ckpt_expected then
        replay_error
          "journal declares a checkpoint that did not survive: refusing to \
           recover from the base snapshot";
      Ruid.Persist.load ~vfs ~attempts ~xml ~sidecar ()
  in
  replay_records r2 journal.records;
  if check then R2.check r2;
  { doc; r2; replayed = journal.records; journal }

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

type status = Clean | Recoverable of string | Unrecoverable of string

let pp_status ppf = function
  | Clean -> Format.fprintf ppf "clean"
  | Recoverable why -> Format.fprintf ppf "recoverable: %s" why
  | Unrecoverable why -> Format.fprintf ppf "unrecoverable: %s" why

let exit_code = function Clean -> 0 | Recoverable _ -> 1 | Unrecoverable _ -> 2

let fsck ?(vfs = Vfs.real) ?(attempts = 5) ~xml ~sidecar ?wal () =
  (* [replay] treats a missing journal file as an empty journal, so a bare
     snapshot checks the same way as snapshot + journal. *)
  let wal = Option.value wal ~default:(sidecar ^ ".wal-absent") in
  match replay ~vfs ~attempts ~check:true ~xml ~sidecar ~wal () with
  | exception Invalid_argument msg -> Unrecoverable msg
  | exception Failure msg -> Unrecoverable msg
  | exception Replay_error msg -> Unrecoverable msg
  | exception Rxml.Parser.Parse_error e ->
    Unrecoverable (Format.asprintf "%a" Rxml.Parser.pp_error e)
  | exception Sys_error msg -> Unrecoverable msg
  | { journal; _ } ->
    (match journal.damage with
    | None -> Clean
    | Some why -> Recoverable why)
