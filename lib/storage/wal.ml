module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Codec = Ruid.Codec
module Crc32 = Ruid.Crc32
module Vfs = Ruid.Vfs

let header = "RWAL\x01"

type op =
  | Insert of { parent_rank : int; pos : int; tag : string }
  | Delete of { rank : int }

type record = { seq : int; op : op; area : int; changed : int }

let pp_op ppf = function
  | Insert { parent_rank; pos; tag } ->
    Format.fprintf ppf "insert(<%s> at parent@%d, pos %d)" tag parent_rank pos
  | Delete { rank } -> Format.fprintf ppf "delete(@%d)" rank

let pp_record ppf r =
  Format.fprintf ppf "#%d %a -> area %d, %d ids rewritten" r.seq pp_op r.op
    r.area r.changed

exception Replay_error of string

let replay_error fmt = Format.kasprintf (fun s -> raise (Replay_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Applying logical operations                                         *)
(* ------------------------------------------------------------------ *)

let area_enumerating t parent =
  let r = Ruid.Frame.own_area_root (R2.frame t) parent in
  match R2.global_of_area t r with
  | Some g -> g
  | None -> replay_error "area root of node %d has no global index" r.Dom.serial

let apply t op =
  let nodes = Dom.preorder (R2.root t) in
  let total = List.length nodes in
  let nth rank =
    match List.nth_opt nodes rank with
    | Some n -> n
    | None -> replay_error "rank %d out of range (%d nodes)" rank total
  in
  try
    match op with
    | Insert { parent_rank; pos; tag } ->
      let parent = nth parent_rank in
      let area = area_enumerating t parent in
      let changed = R2.insert_node t ~parent ~pos (Dom.element tag) in
      (area, changed)
    | Delete { rank } ->
      if rank = 0 then replay_error "cannot delete the tree root (rank 0)";
      let node = nth rank in
      let parent =
        match node.Dom.parent with
        | Some p -> p
        | None -> replay_error "node at rank %d is detached" rank
      in
      let area = area_enumerating t parent in
      let changed = R2.delete_subtree t node in
      (area, changed)
  with Invalid_argument msg -> replay_error "operation rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

let encode_payload r =
  let buf = Buffer.create 32 in
  Codec.write_varint buf r.seq;
  (match r.op with
  | Insert { parent_rank; pos; tag } ->
    Codec.write_varint buf 0;
    Codec.write_varint buf parent_rank;
    Codec.write_varint buf pos;
    Codec.write_varint buf (String.length tag);
    Buffer.add_string buf tag
  | Delete { rank } ->
    Codec.write_varint buf 1;
    Codec.write_varint buf rank);
  Codec.write_varint buf r.area;
  Codec.write_varint buf r.changed;
  Buffer.contents buf

let encode_frame r =
  let payload = encode_payload r in
  let buf = Buffer.create (String.length payload + 8) in
  Codec.write_varint buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Crc32.string payload in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.to_bytes buf

let decode_payload bytes ~pos ~len =
  let stop = pos + len in
  let cur = ref pos in
  let next () =
    if !cur >= stop then failwith "truncated payload";
    let v, p = Codec.read_varint bytes ~pos:!cur in
    if p > stop then failwith "truncated payload";
    cur := p;
    v
  in
  let seq = next () in
  let op =
    match next () with
    | 0 ->
      let parent_rank = next () in
      let pos = next () in
      let tag_len = next () in
      if tag_len < 0 || !cur + tag_len > stop then failwith "truncated tag";
      let tag = Bytes.sub_string bytes !cur tag_len in
      cur := !cur + tag_len;
      Insert { parent_rank; pos; tag }
    | 1 -> Delete { rank = next () }
    | k -> failwith (Printf.sprintf "unknown operation tag %d" k)
  in
  let area = next () in
  let changed = next () in
  if !cur <> stop then failwith "trailing bytes in payload";
  { seq; op; area; changed }

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)
(* ------------------------------------------------------------------ *)

type scan = {
  records : record list;
  valid_bytes : int;
  total_bytes : int;
  damage : string option;
}

let u32_le bytes pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (pos + i))
  done;
  !v

(* One frame at [pos]; [Ok (record, next)] or [Error why] (torn/corrupt). *)
let frame_at bytes ~pos total =
  match Codec.read_varint bytes ~pos with
  | exception Invalid_argument _ -> Error "torn record length"
  | len, payload_start ->
    if payload_start + len + 4 > total then
      Error (Printf.sprintf "torn record (%d payload bytes promised)" len)
    else begin
      let stored = u32_le bytes (payload_start + len) in
      let actual = Crc32.bytes bytes ~pos:payload_start ~len in
      if stored <> actual then
        Error
          (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
             stored actual)
      else
        match decode_payload bytes ~pos:payload_start ~len with
        | r -> Ok (r, payload_start + len + 4)
        | exception (Failure msg | Invalid_argument msg) ->
          Error (Printf.sprintf "undecodable record: %s" msg)
    end

let scan ?(vfs = Vfs.real) ?(attempts = 5) path =
  let bytes = Vfs.with_retries ~attempts (fun () -> vfs.Vfs.load path) in
  let total = Bytes.length bytes in
  let hlen = String.length header in
  if total < hlen || Bytes.sub_string bytes 0 hlen <> header then
    { records = []; valid_bytes = 0; total_bytes = total;
      damage = Some "bad journal header" }
  else begin
    let pos = ref hlen and valid = ref hlen in
    let records = ref [] and damage = ref None and last_seq = ref 0 in
    while !pos < total && !damage = None do
      match frame_at bytes ~pos:!pos total with
      | Error why ->
        damage :=
          Some (Printf.sprintf "record %d at byte %d: %s"
                  (!last_seq + 1) !pos why)
      | Ok (r, next) ->
        if r.seq <> !last_seq + 1 then
          damage :=
            Some (Printf.sprintf
                    "record at byte %d: sequence break (%d after %d)"
                    !pos r.seq !last_seq)
        else begin
          records := r :: !records;
          last_seq := r.seq;
          pos := next;
          valid := next
        end
    done;
    { records = List.rev !records; valid_bytes = !valid; total_bytes = total;
      damage = !damage }
  end

let repair ?(vfs = Vfs.real) ?(attempts = 5) path =
  let s = scan ~vfs ~attempts path in
  if s.valid_bytes < String.length header then
    (* Header itself was torn: restart the journal. *)
    Vfs.with_retries ~attempts (fun () ->
        vfs.Vfs.store path (Bytes.of_string header))
  else if s.valid_bytes < s.total_bytes then
    Vfs.with_retries ~attempts (fun () -> vfs.Vfs.truncate path s.valid_bytes);
  s

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  path : string;
  vfs : Vfs.t;
  attempts : int;
  mutable last_seq : int;
}

let create ?(vfs = Vfs.real) ?(attempts = 5) path =
  Vfs.with_retries ~attempts (fun () ->
      vfs.Vfs.store path (Bytes.of_string header));
  { path; vfs; attempts; last_seq = 0 }

let open_append ?(vfs = Vfs.real) ?(attempts = 5) ?(repair = false) path =
  if not (vfs.Vfs.exists path) then create ~vfs ~attempts path
  else begin
    let s = scan ~vfs ~attempts path in
    let s =
      match s.damage with
      | None -> s
      | Some why ->
        if not repair then
          invalid_arg
            (Printf.sprintf "Wal.open_append: damaged journal: %s" why);
        if s.valid_bytes < String.length header then
          Vfs.with_retries ~attempts (fun () ->
              vfs.Vfs.store path (Bytes.of_string header))
        else
          Vfs.with_retries ~attempts (fun () ->
              vfs.Vfs.truncate path s.valid_bytes);
        { s with total_bytes = s.valid_bytes; damage = None }
    in
    let last_seq =
      match List.rev s.records with r :: _ -> r.seq | [] -> 0
    in
    { path; vfs; attempts; last_seq }
  end

let seq w = w.last_seq

let append_record w r =
  let frame = encode_frame r in
  Vfs.with_retries ~attempts:w.attempts (fun () ->
      w.vfs.Vfs.append w.path frame);
  w.last_seq <- r.seq

let log_update w t op =
  let area, changed = apply t op in
  let r = { seq = w.last_seq + 1; op; area; changed } in
  append_record w r;
  r

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  doc : Rxml.Dom.t;
  r2 : Ruid.Ruid2.t;
  replayed : record list;
  journal : scan;
}

let replay_records t records =
  List.iter
    (fun r ->
      let area, changed = apply t r.op in
      if area <> r.area || changed <> r.changed then
        replay_error
          "record #%d journaled (area %d, %d rewritten) but replay gave \
           (area %d, %d rewritten): journal does not match this snapshot"
          r.seq r.area r.changed area changed)
    records

let replay ?(vfs = Vfs.real) ?(attempts = 5) ?(check = true) ~xml ~sidecar
    ~wal () =
  let doc, r2 = Ruid.Persist.load ~vfs ~attempts ~xml ~sidecar () in
  let journal =
    if vfs.Vfs.exists wal then scan ~vfs ~attempts wal
    else
      { records = []; valid_bytes = 0; total_bytes = 0; damage = None }
  in
  replay_records r2 journal.records;
  if check then R2.check r2;
  { doc; r2; replayed = journal.records; journal }

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

type status = Clean | Recoverable of string | Unrecoverable of string

let pp_status ppf = function
  | Clean -> Format.fprintf ppf "clean"
  | Recoverable why -> Format.fprintf ppf "recoverable: %s" why
  | Unrecoverable why -> Format.fprintf ppf "unrecoverable: %s" why

let exit_code = function Clean -> 0 | Recoverable _ -> 1 | Unrecoverable _ -> 2

let fsck ?(vfs = Vfs.real) ?(attempts = 5) ~xml ~sidecar ?wal () =
  (* [replay] treats a missing journal file as an empty journal, so a bare
     snapshot checks the same way as snapshot + journal. *)
  let wal = Option.value wal ~default:(sidecar ^ ".wal-absent") in
  match replay ~vfs ~attempts ~check:true ~xml ~sidecar ~wal () with
  | exception Invalid_argument msg -> Unrecoverable msg
  | exception Failure msg -> Unrecoverable msg
  | exception Replay_error msg -> Unrecoverable msg
  | exception Rxml.Parser.Parse_error e ->
    Unrecoverable (Format.asprintf "%a" Rxml.Parser.pp_error e)
  | exception Sys_error msg -> Unrecoverable msg
  | { journal; _ } ->
    (match journal.damage with
    | None -> Clean
    | Some why -> Recoverable why)
