(* Doubly-linked LRU list with a hashtable from page id to list cell.
   A single mutex serializes structural mutation so worker-pool threads can
   share one pool; counter updates go through the atomic Io_stats. *)

type cell = {
  page : int;
  mutable prev : cell option;
  mutable next : cell option;
}

type t = {
  capacity : int;
  stats : Io_stats.t;
  mu : Mutex.t;
  table : (int, cell) Hashtbl.t;
  mutable head : cell option;  (* most recently used *)
  mutable tail : cell option;  (* least recently used *)
  mutable size : int;
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  { capacity; stats; mu = Mutex.create ();
    table = Hashtbl.create (capacity * 2);
    head = None; tail = None; size = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let unlink t cell =
  (match cell.prev with
  | Some p -> p.next <- cell.next
  | None -> t.head <- cell.next);
  (match cell.next with
  | Some n -> n.prev <- cell.prev
  | None -> t.tail <- cell.prev);
  cell.prev <- None;
  cell.next <- None

let push_front t cell =
  cell.next <- t.head;
  cell.prev <- None;
  (match t.head with Some h -> h.prev <- Some cell | None -> t.tail <- Some cell);
  t.head <- Some cell

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
    unlink t lru;
    Hashtbl.remove t.table lru.page;
    t.size <- t.size - 1

let touch t page =
  locked t (fun () ->
      match Hashtbl.find_opt t.table page with
      | Some cell ->
        Io_stats.record_hit t.stats;
        unlink t cell;
        push_front t cell
      | None ->
        Io_stats.record_read t.stats;
        if t.size >= t.capacity then evict_lru t;
        let cell = { page; prev = None; next = None } in
        Hashtbl.replace t.table page cell;
        push_front t cell;
        t.size <- t.size + 1)

let touch_write t page =
  touch t page;
  Io_stats.record_write t.stats

let resident t page = locked t (fun () -> Hashtbl.mem t.table page)
let capacity t = t.capacity
let stats t = t.stats

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.size <- 0)
