(** Crash-safe journaling of structural updates (redo log + recovery).

    The paper's robustness claim (Section 3.2, Lemmas 1-3) is that an
    insertion or deletion renumbers a single UID-local area.  That claim is
    only worth having if the numbering survives a crash: this module pairs a
    {!Ruid.Persist} snapshot with an append-only journal of the structural
    operations applied since, so a process can die at any byte and recovery
    reproduces the exact numbering — including the untouched areas, byte for
    byte.

    Journal format v2: a 5-byte header — ["RWAL\x02"] for a base segment,
    ["RWAC\x02"] for a rotated segment whose {e first} frame must be a
    checkpoint.  The fifth header byte is the format version: a journal
    carrying an ["RWAL"]/["RWAC"] magic with any other version byte (e.g. a
    v1 journal from an older build) is reported as {e unsupported} — never
    treated as a torn header — and {!repair}/{!open_append} refuse to touch
    it, so an older journal is diagnosed, not silently emptied.  The header
    is followed by framed entries
    {v varint payload-length | payload | CRC-32 of payload (4 bytes LE) v}
    Every payload begins with a kind tag:
    - [0] one record: sequence number, the logical operation (insert of a
      fresh leaf / cascading delete, addressed by preorder rank as in
      [Rworkload.Updates]), and the {e renumber record} it triggered — the
      global index of the one area re-enumerated and how many pre-existing
      identifiers were rewritten;
    - [1] a commit batch: a count followed by that many record bodies with
      consecutive sequence numbers.  One checksum covers the whole batch,
      so a torn batch drops {e atomically} — recovery never surfaces a
      prefix of a group commit;
    - [2] a checkpoint: generation number, the sequence number it was cut
      after, and CRC-32s of the checkpointed XML and sidecar bytes.

    Recovery replays the longest checksum-valid prefix over the snapshot
    the segment names (the base {!Ruid.Persist} snapshot, or the
    checkpoint files for a rotated segment), verifies each renumber record
    against what the replay actually did, truncates a torn tail, and
    finishes with the deep invariant checker {!Ruid.Ruid2.check}.  A
    ["RWAC"] segment whose checkpoint frame did not survive is
    {e unrecoverable} — falling back to the base snapshot would silently
    lose every record up to the checkpoint.

    All I/O goes through {!Ruid.Vfs.t} (default {!Ruid.Vfs.real});
    {!Ruid.Vfs.Transient} errors are retried with bounded backoff, which is
    how the deterministic fault plans of {!Fault} are exercised. *)

type op =
  | Insert of { parent_rank : int; pos : int; tag : string }
      (** insert a fresh leaf element [<tag>] as the [pos]-th child of the
          node at preorder rank [parent_rank] *)
  | Delete of { rank : int }  (** cascading delete, never rank 0 *)

type record = {
  seq : int;  (** 1-based, consecutive *)
  op : op;
  area : int;  (** global index of the area the operation re-enumerated *)
  changed : int;  (** pre-existing identifiers rewritten by the operation *)
}

type checkpoint = {
  gen : int;  (** checkpoint generation, 1-based *)
  base_seq : int;  (** last sequence number folded into the checkpoint *)
  xml_crc : int;  (** CRC-32 of the checkpointed XML bytes *)
  sidecar_crc : int;  (** CRC-32 of the checkpointed sidecar bytes *)
}

val pp_op : Format.formatter -> op -> unit
val pp_record : Format.formatter -> record -> unit
val pp_checkpoint : Format.formatter -> checkpoint -> unit

exception Replay_error of string
(** The journal does not describe the snapshot it is replayed over: a rank
    out of range, an operation that cannot apply, a renumber record
    disagreeing with what the replay did, or checkpoint bytes failing the
    checksums the checkpoint record vouches for.  Unrecoverable. *)

(** {1 Applying logical operations} *)

val apply : Ruid.Ruid2.t -> op -> int * int
(** Resolve the operation positionally against the numbered tree and apply
    it; returns [(area, changed)] — the renumber record.
    @raise Replay_error if the operation does not apply. *)

(** {1 Writing} *)

type writer

val create :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> writer
(** Start a fresh journal at the path (truncating any previous file). *)

val open_append :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> ?repair:bool -> string -> writer
(** Continue an existing journal (creating it if absent), resuming the
    sequence numbering after its last valid record (or the checkpoint's
    [base_seq] for a freshly rotated segment).  With [repair] (default
    [false]) a torn tail is truncated first; without it a damaged journal
    is refused.
    @raise Invalid_argument on a damaged journal when [repair] is false,
    on a checkpoint segment whose checkpoint frame did not survive, or on
    a journal of an unsupported format version (repair cannot help with
    either). *)

val log_update : ?sync:bool -> writer -> Ruid.Ruid2.t -> op -> record
(** Apply the operation to the live numbering and append its record.  With
    [sync] (the default) the append is fsynced before returning — the
    journal is a redo log: a record is present iff the operation committed.
    [~sync:false] leaves the frame in the page cache for a later {!flush}
    (or a batch-closing synced append); a crash in between can lose or tear
    it, which recovery handles as a torn tail. *)

val flush : writer -> unit
(** fsync the journal file: make every {!log_update} [~sync:false] record
    written so far durable. *)

val append_record : writer -> record -> unit
(** Append a pre-built record without touching any numbering (tests,
    replication). *)

val append_batch : writer -> record list -> unit
(** Append a commit batch as one frame with one fsync.  Sequence numbers
    must be consecutive starting at [seq w + 1].  A single-record batch is
    written as an ordinary record frame (a batch frame would claim a
    coalescing that never happened).
    @raise Invalid_argument on an empty or non-consecutive batch. *)

val seq : writer -> int
(** Sequence number of the last record written (0 for a fresh journal). *)

(** {1 Segment rotation} *)

val generation : writer -> int
(** Checkpoint generation of the active segment (0 until first rotation). *)

val should_rotate : writer -> threshold:int -> bool
(** Whether the active segment has reached [threshold] bytes.  A
    [threshold] of 0 disables rotation. *)

val rotate : writer -> xml:bytes -> sidecar:bytes -> int
(** Cut a checkpoint and start a fresh segment; returns the new generation.
    [xml]/[sidecar] must serialize the exact state after the last appended
    record ({!seq}).  Ordering is crash-safe: the generation's checkpoint
    files are published atomically first, the retiring segment is archived
    by copy (to [path ^ ".seg<gen>"]), and only then is the new segment —
    header plus checkpoint frame — renamed over the journal path, which is
    the commit point.  A crash anywhere before that rename leaves the old
    segment fully in force.  Every generation's checkpoint pair is retained
    alongside its archived segment (the archive's header references the
    {e previous} generation's pair), so each archive remains independently
    replayable. *)

val checkpoint_files : string -> int -> string * string
(** [(xml, sidecar)] checkpoint paths for a journal path and generation:
    [path ^ ".ckpt<gen>.xml"] and [path ^ ".ckpt<gen>.ruid"]. *)

val segment_archive : string -> int -> string
(** Archive path of the segment retired when generation [gen] was cut:
    [path ^ ".seg<gen>"], a byte-for-byte copy of the generation-[gen-1]
    segment.  Replication catch-up reads these when a follower is behind
    the live generation. *)

type family_member =
  | Active  (** the live journal at the path itself *)
  | Checkpoint_xml of int
  | Checkpoint_sidecar of int
  | Segment of int  (** an archived segment *)

val family : string -> (family_member * string) list
(** Every on-disk artifact of the journal's segment family, discovered by
    scanning the path's directory (not by re-deriving names from the live
    generation, which would miss leftovers of a crashed rotation): the
    active journal if present, then each generation's checkpoint pair and
    archived segment in generation order.  Used by [DROPDOC] to delete a
    document without guessing at its rotation history, and by tests to
    assert the family a run produced. *)

(** {1 Reading and recovery} *)

type scan = {
  records : record list;  (** the longest valid prefix *)
  checkpoint : checkpoint option;
      (** the checkpoint frame of a rotated segment, if it survived *)
  ckpt_expected : bool;
      (** the header declares a checkpoint-leading segment *)
  batches : int;  (** frames that coalesced 2 or more records *)
  valid_bytes : int;  (** file offset where the valid prefix ends *)
  total_bytes : int;
  version : int;
      (** journal format version found: 2 for this build's format, the
          header's version byte for a recognized-but-unsupported version
          (e.g. 1), 0 when there is no ["RWAL"]/["RWAC"] magic at all *)
  damage : string option;
      (** why scanning stopped before [total_bytes], if it did *)
}

val scan : ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> scan
(** Decode the journal, stopping cleanly at the first torn or corrupt
    entry (truncated frame, checksum mismatch, undecodable payload,
    sequence break, or a checkpoint frame anywhere but first in a
    checkpoint segment). *)

(** {1 Incremental stream decoding (replication)} *)

type entry = Records of record list | Ckpt of checkpoint
(** One decoded journal frame: a record or batch frame (a batch surfaces
    as the list it coalesced), or a rotated segment's checkpoint frame. *)

val header_length : int
(** Bytes of the segment header ([RWAL\x02]/[RWAC\x02]) preceding the
    first frame. *)

val decode_stream : bytes -> pos:int -> entry list * int * string option
(** Decode consecutive complete frames from a raw buffer of journal bytes
    (no header) starting at [pos] — the incremental consumer for a shipped
    WAL stream.  Returns [(entries, consumed, corrupt)]: every
    checksum-valid complete frame in order, the offset just past the last
    one, and [Some why] when a {e complete but invalid} frame (checksum
    mismatch, undecodable payload) stopped decoding — a trailing torn
    frame is not corruption, merely bytes still in flight, and simply
    stops the decode at [consumed]. *)

val repair : ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> scan
(** {!scan}, then truncate the file to the valid prefix (rewriting the
    header when the header itself was damaged).  Returns the scan that
    describes what survived.  Two states are left byte-for-byte untouched:
    a checkpoint segment whose checkpoint frame is gone (truncating it
    would discard everything up to the checkpoint's base sequence), and a
    journal of an unsupported format version (well-formed for its own
    build; "repairing" it could only destroy it). *)

type recovery = {
  doc : Rxml.Dom.t;
  r2 : Ruid.Ruid2.t;
  replayed : record list;
  journal : scan;
}

val replay :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> ?check:bool ->
  xml:string -> sidecar:string -> wal:string -> unit -> recovery
(** Recovery: load the snapshot the journal names — the checkpoint files
    (verified against the checkpoint record's checksums) when the segment
    carries a checkpoint, the base {!Ruid.Persist} snapshot otherwise —
    replay the journal's valid prefix over it (verifying every renumber
    record), and run {!Ruid.Ruid2.check} as postcondition (disable with
    [check:false]).  A missing journal file recovers to the bare snapshot.
    The journal file is not modified; pair with {!repair} to also drop the
    torn tail.
    @raise Replay_error if the journal does not match the snapshot, the
    checkpoint bytes fail their checksums, a declared checkpoint did not
    survive, or the journal is of an unsupported format version (its
    records cannot be read, so recovering {e around} them would silently
    drop them).
    @raise Invalid_argument if the snapshot itself is corrupt. *)

(** {1 Integrity checking (fsck)} *)

type status =
  | Clean  (** snapshot and journal fully intact; exit code 0 *)
  | Recoverable of string
      (** torn journal tail; the valid prefix replays cleanly; exit 1 *)
  | Unrecoverable of string
      (** corrupt snapshot, or a journal that does not describe it; exit 2 *)

val pp_status : Format.formatter -> status -> unit

val fsck :
  ?vfs:Ruid.Vfs.t -> ?attempts:int ->
  xml:string -> sidecar:string -> ?wal:string -> unit -> status
(** Verify the snapshot (checksums + restore + deep invariants) and, when a
    journal is given and exists, its replay.  Read-only. *)

val exit_code : status -> int
(** 0 / 1 / 2 as above — the contract of [ruidtool fsck]. *)
