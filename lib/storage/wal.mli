(** Crash-safe journaling of structural updates (redo log + recovery).

    The paper's robustness claim (Section 3.2, Lemmas 1-3) is that an
    insertion or deletion renumbers a single UID-local area.  That claim is
    only worth having if the numbering survives a crash: this module pairs a
    {!Ruid.Persist} snapshot with an append-only journal of the structural
    operations applied since, so a process can die at any byte and recovery
    reproduces the exact numbering — including the untouched areas, byte for
    byte.

    Journal format: a 5-byte header ["RWAL\x01"] followed by framed records
    {v varint payload-length | payload | CRC-32 of payload (4 bytes LE) v}
    Each payload carries a sequence number, the logical operation (insert of
    a fresh leaf / cascading delete, addressed by preorder rank as in
    [Rworkload.Updates]), and the {e renumber record} the operation
    triggered: the global index of the one area it re-enumerated and the
    number of pre-existing identifiers rewritten.  Recovery replays the
    longest checksum-valid prefix, verifies each renumber record against
    what the replay actually did, truncates a torn tail, and finishes with
    the deep invariant checker {!Ruid.Ruid2.check}.

    All I/O goes through {!Ruid.Vfs.t} (default {!Ruid.Vfs.real});
    {!Ruid.Vfs.Transient} errors are retried with bounded backoff, which is
    how the deterministic fault plans of {!Fault} are exercised. *)

type op =
  | Insert of { parent_rank : int; pos : int; tag : string }
      (** insert a fresh leaf element [<tag>] as the [pos]-th child of the
          node at preorder rank [parent_rank] *)
  | Delete of { rank : int }  (** cascading delete, never rank 0 *)

type record = {
  seq : int;  (** 1-based, consecutive *)
  op : op;
  area : int;  (** global index of the area the operation re-enumerated *)
  changed : int;  (** pre-existing identifiers rewritten by the operation *)
}

val pp_op : Format.formatter -> op -> unit
val pp_record : Format.formatter -> record -> unit

exception Replay_error of string
(** The journal does not describe the snapshot it is replayed over: a rank
    out of range, an operation that cannot apply, or a renumber record
    disagreeing with what the replay did.  Unrecoverable. *)

(** {1 Applying logical operations} *)

val apply : Ruid.Ruid2.t -> op -> int * int
(** Resolve the operation positionally against the numbered tree and apply
    it; returns [(area, changed)] — the renumber record.
    @raise Replay_error if the operation does not apply. *)

(** {1 Writing} *)

type writer

val create :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> writer
(** Start a fresh journal at the path (truncating any previous file). *)

val open_append :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> ?repair:bool -> string -> writer
(** Continue an existing journal (creating it if absent), resuming the
    sequence numbering after its last valid record.  With [repair] (default
    [false]) a torn tail is truncated first; without it a damaged journal
    is refused.
    @raise Invalid_argument on a damaged journal when [repair] is false. *)

val log_update : writer -> Ruid.Ruid2.t -> op -> record
(** Apply the operation to the live numbering and append its record
    durably (fsync before returning).  The journal is a redo log: a record
    is present iff the operation committed. *)

val append_record : writer -> record -> unit
(** Append a pre-built record without touching any numbering (tests,
    replication). *)

val seq : writer -> int
(** Sequence number of the last record written (0 for a fresh journal). *)

(** {1 Reading and recovery} *)

type scan = {
  records : record list;  (** the longest valid prefix *)
  valid_bytes : int;  (** file offset where that prefix ends *)
  total_bytes : int;
  damage : string option;
      (** why scanning stopped before [total_bytes], if it did *)
}

val scan : ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> scan
(** Decode the journal, stopping cleanly at the first torn or corrupt
    record (truncated frame, checksum mismatch, undecodable payload,
    sequence break). *)

val repair : ?vfs:Ruid.Vfs.t -> ?attempts:int -> string -> scan
(** {!scan}, then truncate the file to the valid prefix (rewriting the
    header when the header itself was damaged).  Returns the scan that
    describes what survived. *)

type recovery = {
  doc : Rxml.Dom.t;
  r2 : Ruid.Ruid2.t;
  replayed : record list;
  journal : scan;
}

val replay :
  ?vfs:Ruid.Vfs.t -> ?attempts:int -> ?check:bool ->
  xml:string -> sidecar:string -> wal:string -> unit -> recovery
(** Recovery: load the {!Ruid.Persist} snapshot, replay the journal's valid
    prefix over it (verifying every renumber record), and run
    {!Ruid.Ruid2.check} as postcondition (disable with [check:false]).  A
    missing journal file recovers to the bare snapshot.  The journal file
    is not modified; pair with {!repair} to also drop the torn tail.
    @raise Replay_error if the journal does not match the snapshot.
    @raise Invalid_argument if the snapshot itself is corrupt. *)

(** {1 Integrity checking (fsck)} *)

type status =
  | Clean  (** snapshot and journal fully intact; exit code 0 *)
  | Recoverable of string
      (** torn journal tail; the valid prefix replays cleanly; exit 1 *)
  | Unrecoverable of string
      (** corrupt snapshot, or a journal that does not describe it; exit 2 *)

val pp_status : Format.formatter -> status -> unit

val fsck :
  ?vfs:Ruid.Vfs.t -> ?attempts:int ->
  xml:string -> sidecar:string -> ?wal:string -> unit -> status
(** Verify the snapshot (checksums + restore + deep invariants) and, when a
    journal is given and exists, its replay.  Read-only. *)

val exit_code : status -> int
(** 0 / 1 / 2 as above — the contract of [ruidtool fsck]. *)
