module Vfs = Ruid.Vfs
module Rng = Rworkload.Rng

type event =
  | Short_write of { path : string; kept : int; intended : int }
  | Bit_flip of { path : string; bit : int }
  | Transient_error of { path : string; op : string }

let pp_event ppf = function
  | Short_write { path; kept; intended } ->
    Format.fprintf ppf "short write %s: %d of %d bytes" path kept intended
  | Bit_flip { path; bit } -> Format.fprintf ppf "bit flip %s: bit %d" path bit
  | Transient_error { path; op } ->
    Format.fprintf ppf "transient %s on %s" op path

type plan = {
  rng : Rng.t;
  p_short_write : float;
  p_bit_flip : float;
  p_transient : float;
  transient_burst : int;
  mutable pending_transient : int;
  mutable events : event list;
}

let plan ~seed ?(p_short_write = 0.) ?(p_bit_flip = 0.) ?(p_transient = 0.)
    ?(transient_burst = 2) () =
  {
    rng = Rng.create seed;
    p_short_write;
    p_bit_flip;
    p_transient;
    transient_burst;
    pending_transient = 0;
    events = [];
  }

let events p = List.rev p.events
let clear_events p = p.events <- []

let record p e = p.events <- e :: p.events

(* A transient burst fails [transient_burst] consecutive calls, then the
   retry goes through — deterministic, so tests can assert both the
   failures and the eventual success. *)
let maybe_transient p ~path ~op =
  if p.pending_transient > 0 then begin
    p.pending_transient <- p.pending_transient - 1;
    record p (Transient_error { path; op });
    raise (Vfs.Transient (Printf.sprintf "injected transient %s on %s" op path))
  end;
  if p.p_transient > 0. && Rng.float p.rng < p.p_transient then begin
    p.pending_transient <- p.transient_burst - 1;
    record p (Transient_error { path; op });
    raise (Vfs.Transient (Printf.sprintf "injected transient %s on %s" op path))
  end

let maybe_short_write p inner ~op ~path bytes =
  maybe_transient p ~path ~op;
  if p.p_short_write > 0. && Rng.float p.rng < p.p_short_write then begin
    let intended = Bytes.length bytes in
    let kept = if intended = 0 then 0 else Rng.int p.rng intended in
    inner path (Bytes.sub bytes 0 kept);
    record p (Short_write { path; kept; intended });
    raise
      (Vfs.Crash
         (Printf.sprintf "injected crash after %d of %d bytes of %s to %s"
            kept intended op path))
  end
  else inner path bytes

let wrap p (v : Vfs.t) =
  {
    Vfs.load =
      (fun path ->
        maybe_transient p ~path ~op:"load";
        let b = v.Vfs.load path in
        if
          p.p_bit_flip > 0.
          && Bytes.length b > 0
          && Rng.float p.rng < p.p_bit_flip
        then begin
          let bit = Rng.int p.rng (Bytes.length b * 8) in
          Bytes.set b (bit / 8)
            (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
          record p (Bit_flip { path; bit })
        end;
        b);
    store = (fun path b -> maybe_short_write p v.Vfs.store ~op:"store" ~path b);
    append =
      (fun path b -> maybe_short_write p v.Vfs.append ~op:"append" ~path b);
    append_nosync =
      (fun path b ->
        maybe_short_write p v.Vfs.append_nosync ~op:"append_nosync" ~path b);
    sync =
      (fun path ->
        maybe_transient p ~path ~op:"sync";
        v.Vfs.sync path);
    rename =
      (fun ~src ~dst ->
        maybe_transient p ~path:src ~op:"rename";
        v.Vfs.rename ~src ~dst);
    remove =
      (fun path ->
        maybe_transient p ~path ~op:"remove";
        v.Vfs.remove path);
    exists = v.Vfs.exists;
    size =
      (fun path ->
        maybe_transient p ~path ~op:"size";
        v.Vfs.size path);
    truncate =
      (fun path n ->
        maybe_transient p ~path ~op:"truncate";
        v.Vfs.truncate path n);
  }

(* The replication-stream face of a short-write plan: with probability
   [p_short_write] the connection "dies" after delivering a random prefix
   of the chunk — the same seeded decision a torn write would make, so a
   follower's resume logic is exercised at arbitrary byte offsets,
   including mid-frame. *)
let torn_stream p data =
  let n = String.length data in
  if n > 0 && p.p_short_write > 0. && Rng.float p.rng < p.p_short_write then begin
    let kept = Rng.int p.rng n in
    record p (Short_write { path = "<repl-stream>"; kept; intended = n });
    Some (String.sub data 0 kept)
  end
  else None

let torn_tail ?(vfs = Vfs.real) path ~keep = vfs.Vfs.truncate path keep

let flip_bit ?(vfs = Vfs.real) path ~bit =
  let b = vfs.Vfs.load path in
  if bit < 0 || bit >= Bytes.length b * 8 then
    invalid_arg "Fault.flip_bit: bit out of range";
  Bytes.set b (bit / 8)
    (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
  vfs.Vfs.store path b
