(** Self-contained crash/recovery equivalence experiment.

    One run builds a synthetic document, snapshots it with {!Ruid.Persist},
    streams a random update script through a {!Wal} journal, tears the
    journal at an arbitrary byte (the simulated power cut), recovers, and
    checks the headline property of the PR: the recovered numbering is
    byte-identical to an in-memory replica that applied exactly the
    surviving prefix — and identifiers in areas no surviving operation
    touched are byte-identical to the pre-crash snapshot, which is the
    paper's area-confined renumbering claim carried across a crash.

    Shared by the test suite, [ruidtool crash-test] and bench E12 so CI,
    the CLI and the benchmarks all exercise the same oracle. *)

exception Mismatch of string
(** The recovered state violates the equivalence property. *)

type outcome = {
  nodes : int;  (** live nodes after recovery *)
  ops_total : int;  (** operations journaled before the cut *)
  ops_survived : int;
      (** operations recovery reproduced: those folded into a checkpoint
          plus the records in the active segment's valid prefix *)
  cut : int;  (** byte offset the journal was torn at *)
  journal_bytes : int;  (** journal size before the tear *)
  touched_areas : int;  (** distinct areas the surviving prefix renumbered *)
  untouched_checked : int;
      (** identifiers verified byte-identical to the snapshot *)
  batches : int;  (** surviving frames that coalesced 2 or more records *)
  checkpoint_ops : int;
      (** operations already folded into the checkpoint (0 when the run
          did not rotate) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val wal_op_of_update : Rworkload.Updates.op -> Wal.op
(** Positional update op to journal op (inserted elements are tagged
    [upd]). *)

val run :
  ?vfs:Ruid.Vfs.t ->
  dir:string ->
  seed:int ->
  ?ops:int ->
  ?size:int ->
  ?area:int ->
  ?cut:int ->
  ?batch:int ->
  ?checkpoint_after:int ->
  unit ->
  outcome
(** Run one experiment in [dir] (which must exist; files [snapshot.xml],
    [snapshot.ruid] and [journal.wal] are created or overwritten).  [cut]
    fixes the tear point; by default it is drawn deterministically from
    [seed].  [batch] (default 1) groups that many records per commit frame
    ({!Wal.append_batch}), so a tear can drop a whole group at once.
    [checkpoint_after] rotates the journal ({!Wal.rotate}) once, after that
    many operations; the tear point then never falls below the fresh
    segment's size, because rotation publishes it with fsync + rename.
    @raise Mismatch when recovery and replica disagree. *)

(** {1 Cross-group crash independence} *)

type group_outcome = {
  g_docs : int;  (** documents simulated *)
  g_groups : int;  (** commit groups the documents were labeled with *)
  g_victim : string;  (** the one document whose journal was torn *)
  g_victim_group : int;  (** the victim's commit-group label *)
  g_victim_survived : int;  (** operations the victim's valid prefix kept *)
  g_victim_total : int;  (** operations journaled per document *)
  g_intact_docs : int;
      (** non-victim documents that replayed {e every} operation
          byte-identical and fsck'd [Clean] (always [g_docs - 1] on
          success) *)
}

val pp_group_outcome : Format.formatter -> group_outcome -> unit

val group_of : groups:int -> string -> int
(** Commit-group label for a document name: the server's stable FNV-1a
    placement hash, [mod groups]. *)

val run_group :
  ?vfs:Ruid.Vfs.t ->
  dir:string ->
  seed:int ->
  ?docs:int ->
  ?groups:int ->
  ?ops:int ->
  ?size:int ->
  ?area:int ->
  unit ->
  group_outcome
(** Multi-document crash experiment in [dir]: [docs] (default 4, >= 2)
    documents labeled over [groups] (default 2) commit groups journal
    [ops] operations each in interleaved order, then exactly one
    journal — the victim's, chosen from [seed] — is torn at a random
    byte.  Recovery must confine the damage to the victim: every other
    document replays all [ops] operations byte-identical to an
    in-memory replica and fscks [Clean]; the victim recovers its valid
    prefix and must not be [Unrecoverable].  This is the property that
    lets commit pipelines fail independently: journal families are
    per-document, so no tear crosses a document boundary, let alone a
    group one.
    @raise Mismatch when any document violates its clause. *)
