type t = {
  page_reads : int Atomic.t;
  page_writes : int Atomic.t;
  hits : int Atomic.t;
}

type snapshot = { page_reads : int; page_writes : int; hits : int }

let create () : t =
  { page_reads = Atomic.make 0; page_writes = Atomic.make 0; hits = Atomic.make 0 }

let record_read (t : t) = Atomic.incr t.page_reads
let record_write (t : t) = Atomic.incr t.page_writes
let record_hit (t : t) = Atomic.incr t.hits

let page_reads (t : t) = Atomic.get t.page_reads
let page_writes (t : t) = Atomic.get t.page_writes
let hits (t : t) = Atomic.get t.hits

let snapshot (t : t) : snapshot =
  {
    page_reads = Atomic.get t.page_reads;
    page_writes = Atomic.get t.page_writes;
    hits = Atomic.get t.hits;
  }

let diff ~after ~before : snapshot =
  {
    page_reads = after.page_reads - before.page_reads;
    page_writes = after.page_writes - before.page_writes;
    hits = after.hits - before.hits;
  }

let reset (t : t) =
  Atomic.set t.page_reads 0;
  Atomic.set t.page_writes 0;
  Atomic.set t.hits 0

let add (into : t) (from : t) =
  ignore (Atomic.fetch_and_add into.page_reads (Atomic.get from.page_reads));
  ignore (Atomic.fetch_and_add into.page_writes (Atomic.get from.page_writes));
  ignore (Atomic.fetch_and_add into.hits (Atomic.get from.hits))

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" s.page_reads s.page_writes
    s.hits

let pp ppf t = pp_snapshot ppf (snapshot t)
