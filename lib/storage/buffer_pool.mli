(** Fixed-capacity LRU buffer pool over page identifiers.

    Models the memory/disk boundary: touching a resident page is a hit,
    touching an evicted or cold page is a simulated disk read.  The RDBMS
    the paper ran against has exactly this behaviour underneath.

    All operations are thread-safe: the LRU structure is mutex-protected
    and the counters live in an atomic {!Io_stats}, so the document
    service's worker pool can account against a shared pool. *)

type t

val create : capacity:int -> stats:Io_stats.t -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val touch : t -> int -> unit
(** Access a page: records a hit or a read-miss (with eviction) in the
    shared {!Io_stats}. *)

val touch_write : t -> int -> unit
(** Like {!touch} but also counts a page write. *)

val resident : t -> int -> bool
val capacity : t -> int

val stats : t -> Io_stats.t
(** The counter instance the pool accounts against. *)

val clear : t -> unit
