(** Deterministic fault injection under the storage layer.

    Wraps a {!Ruid.Vfs.t} so that file traffic suffers the failures real
    disks produce — short (torn) writes, flipped bits on read, transient
    errors — drawn from a seeded generator, so every failing schedule is
    exactly reproducible from its seed.  This is what lets the test suite
    assert crash recovery rather than hope for it.

    Injected failures surface as:
    - {!Ruid.Vfs.Crash} after a short write: the prefix reached the file,
      the process is presumed dead.  Only recovery code runs afterwards.
    - corrupted [load] results (single flipped bit) — the checksums in
      {!Ruid.Persist} v3 sidecars and {!Wal} records must catch these.
    - {!Ruid.Vfs.Transient} bursts — absorbed by {!Ruid.Vfs.with_retries}
      as long as the burst is shorter than the retry budget. *)

type event =
  | Short_write of { path : string; kept : int; intended : int }
  | Bit_flip of { path : string; bit : int }
  | Transient_error of { path : string; op : string }

val pp_event : Format.formatter -> event -> unit

type plan

val plan :
  seed:int ->
  ?p_short_write:float ->
  ?p_bit_flip:float ->
  ?p_transient:float ->
  ?transient_burst:int ->
  unit ->
  plan
(** A fault plan.  Probabilities default to 0 (no injection of that kind);
    [transient_burst] (default 2) is how many consecutive calls fail with
    {!Ruid.Vfs.Transient} once a transient fault fires — keep it below the
    caller's retry budget for faults that must be survivable. *)

val wrap : plan -> Ruid.Vfs.t -> Ruid.Vfs.t
(** Route a vfs through the plan.  [store]/[append] may keep only a random
    prefix and raise {!Ruid.Vfs.Crash}; [load] may flip one random bit of
    the returned bytes; any operation may open a transient burst. *)

val torn_stream : plan -> string -> string option
(** Replication-stream face of the short-write machinery: with the plan's
    [p_short_write] probability, decide the connection died after a random
    prefix of [data] — [Some prefix] (possibly empty) means the follower
    received only that much and must reconnect/resume; [None] means the
    chunk arrived whole.  Counted as a {!Short_write} event. *)

val events : plan -> event list
(** Everything injected so far, oldest first. *)

val clear_events : plan -> unit

(** {1 Directed damage (no plan needed)} *)

val torn_tail : ?vfs:Ruid.Vfs.t -> string -> keep:int -> unit
(** Truncate the file to its first [keep] bytes — the canonical torn-write
    crash image. *)

val flip_bit : ?vfs:Ruid.Vfs.t -> string -> bit:int -> unit
(** Flip the given bit (bit 0 = LSB of byte 0) in place — the canonical
    silent-corruption image.
    @raise Invalid_argument if the bit is out of range. *)
