(** DataGuide structural summaries (Goldman & Widom, cited as the paper's
    Related Work on structural summaries).

    For tree-shaped data the strong DataGuide is the label-path trie: one
    guide node per distinct root label path, annotated with the target set
    of document nodes reachable by that path.  It serves as a path index —
    a child-only location path is answered by one trie walk — and as the
    "guide by which users can perform meaningful and valid queries"
    (Section 6).

    The trie hangs below a {e virtual root}: a document node may carry
    several top-level elements (rank-0 inserts), each of which gets its own
    guide child.  The virtual root itself is not a label path — it never
    counts toward {!guide_nodes} and never appears in {!paths}.

    Beyond the summary proper, the guide carries what a cost-based query
    planner needs: per-path occurrence counts ({!count}), a read-only
    cursor API over the trie, a structure-only {!fingerprint} for plan-cache
    keying, and incremental maintenance ({!add_path}/{!remove_path}/
    {!prune}) so a guide can follow a stream of structural updates without
    a rebuild. *)

type t

val build : Rxml.Dom.t -> t
(** Summarize the element tree rooted at the argument (an element, or a
    document node whose element children are summarized side by side). *)

val guide_nodes : t -> int
(** Number of distinct label paths — the summary's size. *)

val document_nodes : t -> int

val paths : t -> string list list
(** All label paths in document order of first occurrence, root path
    first. *)

val targets : t -> string list -> Rxml.Dom.t list
(** Document nodes reachable by the given label path (document order);
    empty if the path does not occur.  Target sets reflect the build —
    they go stale under {!add_path}/{!remove_path} (counts do not). *)

val mem : t -> string list -> bool

val count : t -> string list -> int
(** Number of document nodes with exactly this label path; 0 if absent.
    Kept exact by {!add_path}/{!remove_path}. *)

val child_labels : t -> string list -> string list
(** Labels observed immediately below a path — what a query assistant
    offers for completion. *)

val answer_child_path : t -> string list -> Rxml.Dom.t list option
(** Answer an absolute child-only path [/l1/l2/...] from the summary alone:
    [Some targets] when the first label matches the root, [None] never (an
    absent path yields [Some []]).  Verified against the XPath evaluator in
    tests. *)

(** {1 Cursors}

    A zero-copy read view of the trie for planners: walk from the virtual
    root, read labels, occurrence counts and children.  Cursors observe
    later mutations of the same guide — hold them only within one planning
    pass. *)

type cursor

val cursor : t -> cursor
(** The virtual root (label ["" ], count 0). *)

val cursor_label : cursor -> string
val cursor_count : cursor -> int

val cursor_children : cursor -> cursor list
(** First-occurrence order. *)

(** {1 Planner maintenance} *)

val clone : t -> t
(** Deep copy; the original may keep serving readers while the copy is
    mutated (snapshot publication relies on this). *)

val fingerprint : t -> int
(** Structure-only hash of the label-path set — counts do not contribute,
    so pure cardinality drift keeps the fingerprint (and any plan cache
    keyed on it) intact.  Canonical: an incrementally maintained guide and
    a fresh build of the same structure fingerprint identically.  Cached;
    recomputed only after a structural change. *)

val add_path : t -> string list -> unit
(** Record one more document node with this label path, creating guide
    nodes as needed.
    @raise Invalid_argument on the empty path. *)

val remove_path : t -> string list -> bool
(** Remove one occurrence; [false] when the path has no occurrences to
    remove (the guide no longer describes the document — rebuild).  Leaves
    zero-count nodes in place; run {!prune} to drop dead subtrees. *)

val prune : t -> unit
(** Drop guide subtrees with no occurrences left — O(guide). *)

val pp : Format.formatter -> t -> unit
(** The trie with per-path occurrence counts. *)
