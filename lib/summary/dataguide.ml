module Dom = Rxml.Dom

type node = {
  label : string;
  mutable count : int;  (* document nodes whose label path ends here *)
  mutable targets : Dom.t list;  (* reverse document order while building *)
  children : (string, node) Hashtbl.t;
  mutable child_order : string list;  (* first-occurrence order, reversed *)
}

type t = {
  (* A virtual root above the top-level element labels: a document may hold
     several top-level elements (rank-0 inserts), and the virtual root gives
     each its own guide child instead of conflating them. *)
  root : node;
  mutable doc_nodes : int;
  mutable fp : int option;  (* cached structure fingerprint *)
}

type cursor = node

let make_node label =
  { label; count = 0; targets = []; children = Hashtbl.create 4;
    child_order = [] }

let child_of guide label =
  match Hashtbl.find_opt guide.children label with
  | Some g -> g
  | None ->
    let g = make_node label in
    Hashtbl.replace guide.children label g;
    guide.child_order <- label :: guide.child_order;
    g

let build doc_root =
  let t = { root = make_node ""; doc_nodes = 0; fp = None } in
  let rec go guide n =
    t.doc_nodes <- t.doc_nodes + 1;
    guide.count <- guide.count + 1;
    guide.targets <- n :: guide.targets;
    List.iter
      (fun c ->
        if Dom.is_element c then go (child_of guide (Dom.tag c)) c)
      n.Dom.children
  in
  if Dom.is_element doc_root then go (child_of t.root (Dom.tag doc_root)) doc_root
  else
    List.iter
      (fun c -> if Dom.is_element c then go (child_of t.root (Dom.tag c)) c)
      doc_root.Dom.children;
  t

let document_nodes t = t.doc_nodes

let rec count_guide n =
  Hashtbl.fold (fun _ c acc -> acc + count_guide c) n.children 1

let guide_nodes t = count_guide t.root - 1  (* the virtual root is not a path *)

let find t path =
  match path with
  | [] -> None
  | _ ->
    let rec go guide = function
      | [] -> Some guide
      | l :: rest -> (
        match Hashtbl.find_opt guide.children l with
        | Some c -> go c rest
        | None -> None)
    in
    go t.root path

let targets t path =
  match find t path with
  | Some g -> List.rev g.targets
  | None -> []

let mem t path = find t path <> None

let count t path = match find t path with Some g -> g.count | None -> 0

let child_labels t path =
  match find t path with
  | Some g -> List.rev g.child_order
  | None -> []

let paths t =
  let acc = ref [] in
  let rec go prefix n =
    let path = List.rev (n.label :: prefix) in
    acc := path :: !acc;
    List.iter
      (fun l -> go (n.label :: prefix) (Hashtbl.find n.children l))
      (List.rev n.child_order)
  in
  List.iter
    (fun l -> go [] (Hashtbl.find t.root.children l))
    (List.rev t.root.child_order);
  List.rev !acc

let answer_child_path t path = Some (targets t path)

(* ------------------------------------------------------------------ *)
(* Planner support: cursors, cloning, fingerprint, incremental edits   *)
(* ------------------------------------------------------------------ *)

let cursor t = t.root
let cursor_label c = c.label
let cursor_count c = c.count

let cursor_children c =
  List.rev_map (fun l -> Hashtbl.find c.children l) c.child_order

let clone t =
  let rec cp n =
    let children = Hashtbl.create (max 4 (Hashtbl.length n.children)) in
    Hashtbl.iter (fun l c -> Hashtbl.replace children l (cp c)) n.children;
    { label = n.label; count = n.count; targets = n.targets; children;
      child_order = n.child_order }
  in
  { root = cp t.root; doc_nodes = t.doc_nodes; fp = t.fp }

(* Structure-only hash: label-path set, independent of counts and of the
   order nodes were discovered (children folded in sorted label order), so
   an incrementally maintained guide and a fresh build of the same
   structure always agree. *)
let rec fp_node n =
  let labels =
    List.sort compare
      (Hashtbl.fold (fun l _ acc -> l :: acc) n.children [])
  in
  List.fold_left
    (fun acc l ->
      let h = fp_node (Hashtbl.find n.children l) in
      (acc * 1000003) lxor Hashtbl.hash (l, h))
    17 labels

let fingerprint t =
  match t.fp with
  | Some h -> h
  | None ->
    let h = fp_node t.root land max_int in
    t.fp <- Some h;
    h

let add_path t path =
  if path = [] then invalid_arg "Dataguide.add_path: empty path";
  let rec go guide = function
    | [] ->
      guide.count <- guide.count + 1;
      t.doc_nodes <- t.doc_nodes + 1
    | l :: rest ->
      let child =
        match Hashtbl.find_opt guide.children l with
        | Some c -> c
        | None ->
          t.fp <- None;  (* new label path: structure changed *)
          child_of guide l
      in
      go child rest
  in
  go t.root path

let remove_path t path =
  match find t path with
  | Some g when g.count > 0 ->
    g.count <- g.count - 1;
    t.doc_nodes <- t.doc_nodes - 1;
    true
  | _ -> false

let prune t =
  let pruned = ref false in
  (* A guide node is dead when no document node ends there and every child
     is dead; dead subtrees are unlinked (the virtual root always stays). *)
  let rec go n =
    let dead = ref [] in
    List.iter
      (fun l ->
        match Hashtbl.find_opt n.children l with
        | Some c -> if go c then dead := l :: !dead
        | None -> ())
      n.child_order;
    if !dead <> [] then begin
      pruned := true;
      List.iter (Hashtbl.remove n.children) !dead;
      n.child_order <-
        List.filter (Hashtbl.mem n.children) n.child_order
    end;
    n.count = 0 && Hashtbl.length n.children = 0
  in
  ignore (go t.root);
  if !pruned then t.fp <- None

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s (%d)@," indent n.label n.count;
    List.iter
      (fun l -> go (indent ^ "  ") (Hashtbl.find n.children l))
      (List.rev n.child_order)
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l -> go "" (Hashtbl.find t.root.children l))
    (List.rev t.root.child_order);
  Format.fprintf ppf "@]"
