(* The overflow story of Section 1 / observation O1, end to end.

   A deeply recursive document and a deep-AND-wide one are numbered three
   ways: the original UID over native integers (overflows), the original
   UID over bignums (works, at hundreds of bits per identifier), and the
   recursive multilevel ruid (small components, a few levels).

   Run with: dune exec examples/deep_recursion.exe *)

module Dom = Rxml.Dom
module B = Bignum.Bignat
module U_int = Ruid.Uid.Over_int
module U_big = Ruid.Uid.Over_big
module Shape = Rworkload.Shape

let inspect name root =
  let st = Rxml.Stats.compute root in
  Printf.printf "\n%s: %d nodes, depth %d, max fan-out %d\n" name
    st.Rxml.Stats.nodes st.Rxml.Stats.max_depth st.Rxml.Stats.max_fanout;
  (* 1. Original UID over native ints. *)
  (match U_int.label root with
  | _ -> print_endline "  uid over int     : fits (tree is small enough)"
  | exception Ruid.Uid.Overflow ->
    print_endline "  uid over int     : OVERFLOW - identifiers exceed 63 bits");
  (* 2. Original UID over the bignum substrate. *)
  let lb = U_big.label root in
  let widest =
    Hashtbl.fold (fun _ v acc -> max acc (B.bit_length v)) lb.U_big.id_of 0
  in
  Printf.printf "  uid over bignums : works, widest identifier = %d bits\n"
    widest;
  (* 3. 2-level ruid, if it fits. *)
  (match Ruid.Ruid2.number root with
  | r2 ->
    Printf.printf "  2-level ruid     : works, widest index = %d bits, %d areas\n"
      (Ruid.Ruid2.max_local_bits r2)
      (Ruid.Ruid2.area_count r2)
  | exception Ruid.Uid.Overflow ->
    print_endline
      "  2-level ruid     : frame overflows - this document needs more levels");
  (* 4. Recursive multilevel ruid. *)
  let m = Ruid.Mruid.build root in
  Ruid.Mruid.check_consistency m;
  Printf.printf "  multilevel ruid  : works, %d levels, widest component = %d bits\n"
    (Ruid.Mruid.levels m)
    (Ruid.Mruid.max_component_bits m);
  (* Navigate from the deepest node purely by identifier arithmetic. *)
  let deepest =
    List.fold_left
      (fun best n -> if Dom.depth_of n > Dom.depth_of best then n else best)
      root (Dom.preorder root)
  in
  let chain = Ruid.Mruid.rancestors m (Ruid.Mruid.id_of_node m deepest) in
  Printf.printf "  rancestor from depth %d: %d identifiers, e.g. parent = %s\n"
    (Dom.depth_of deepest) (List.length chain)
    (match chain with p :: _ -> Ruid.Mruid.id_to_string p | [] -> "-")

let () =
  print_endline "Identifier magnitude on hostile document shapes";
  inspect "deep recursive document"
    (Shape.generate ~seed:99 ~target:5_000 (Shape.Deep { fanout = 3; bias = 0.9 }));
  inspect "deep and wide comb" (Shape.comb ~depth:12 ~width:200 ());
  inspect "bibliography (3000 publications under one root)"
    (Rworkload.Dblp.generate ~seed:1 ~publications:3_000);
  print_endline "\ndone."
