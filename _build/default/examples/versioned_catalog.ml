(* A product catalogue under continuous editing — the update-heavy scenario
   that motivates ruid (Sections 1 and 3.2).  The same random edit stream is
   applied to one copy of the catalogue per numbering scheme; the example
   prints how many stored identifiers each scheme had to rewrite.

   Run with: dune exec examples/versioned_catalog.exe *)

module Dom = Rxml.Dom
module Rng = Rworkload.Rng
module Updates = Rworkload.Updates

let schemes : (module Ruid.Scheme.S) list =
  [
    (module Ruid.Scheme_uid);
    (module Ruid.Scheme_ruid2);
    (module Ruid.Scheme_multilevel);
    (module Baselines.Prepost);
    (module Baselines.Interval);
    (module Baselines.Dewey);
  ]

(* Build a catalogue: departments -> products -> (sku, price, stock). *)
let catalogue () =
  let rng = Rng.create 2002 in
  let root = Dom.element "catalog" in
  for d = 1 to 12 do
    let dept =
      Dom.element ~attrs:[ ("name", Printf.sprintf "dept-%d" d) ] "department"
    in
    for p = 1 to Rng.int_in rng 20 60 do
      let prod =
        Dom.element ~attrs:[ ("sku", Printf.sprintf "%d-%d" d p) ] "product"
      in
      List.iter
        (fun (tag, value) ->
          let f = Dom.element tag in
          Dom.append_child f (Dom.text value);
          Dom.append_child prod f)
        [
          ("name", Printf.sprintf "Product %d/%d" d p);
          ("price", string_of_int (Rng.int_in rng 1 500));
          ("stock", string_of_int (Rng.int_in rng 0 100));
        ];
      Dom.append_child dept prod
    done;
    Dom.append_child root dept
  done;
  root

let () =
  let base = catalogue () in
  Printf.printf "catalogue: %d nodes (%d products)\n" (Dom.size base)
    (List.length
       (List.filter (fun n -> Dom.tag n = "product") (Dom.preorder base)));
  (* One day of edits: new products arrive, discontinued ones disappear. *)
  let ops = Updates.script ~seed:404 ~ops:500 ~delete_ratio:0.35 base in
  Printf.printf "replaying %d edits against each scheme...\n\n" (List.length ops);
  Printf.printf "%-12s %16s %10s %12s\n" "scheme" "ids rewritten" "worst op"
    "label bits";
  List.iter
    (fun (module S : Ruid.Scheme.S) ->
      let tree = Dom.clone base in
      let t = S.build tree in
      let total = ref 0 and worst = ref 0 in
      List.iter
        (fun op ->
          let changed =
            Updates.apply tree
              ~insert:(fun ~parent ~pos node -> S.insert t ~parent ~pos node)
              ~delete:(fun n -> S.delete t n)
              op
          in
          total := !total + changed;
          if changed > !worst then worst := changed)
        ops;
      Printf.printf "%-12s %16d %10d %12d\n" S.name !total !worst
        (S.max_label_bits t))
    schemes;
  print_endline
    "\nA secondary index keyed by node identifier must be patched once per";
  print_endline
    "rewritten id: the ruid rows are the cost of keeping such an index live."
