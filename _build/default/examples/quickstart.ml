(* Quickstart: parse an XML document, number it with the 2-level ruid, and
   navigate using nothing but identifier arithmetic.

   Run with: dune exec examples/quickstart.exe *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2

let xml =
  {|<catalog>
      <section name="databases">
        <book id="b1"><title>Data on the Web</title><year>1999</year></book>
        <book id="b2"><title>Transaction Processing</title><year>1992</year></book>
      </section>
      <section name="xml">
        <book id="b3"><title>XML Numbering Schemes</title><year>2002</year></book>
      </section>
    </catalog>|}

let () =
  (* 1. Parse. *)
  let doc = Rxml.Parser.parse_string xml in
  let root = Dom.root_element doc in
  Printf.printf "parsed <%s> with %d nodes\n" (Dom.tag root) (Dom.size root);

  (* 2. Number: partition into UID-local areas and enumerate. *)
  let r2 = R2.number ~max_area_size:6 root in
  Printf.printf "kappa = %d, %d UID-local areas, K table:\n" (R2.kappa r2)
    (R2.area_count r2);
  Format.printf "%a@." Ruid.Ktable.pp (R2.ktable r2);

  (* 3. Every node now carries a (global, local, root?) identifier. *)
  List.iter
    (fun n ->
      if Dom.tag n = "book" then
        Printf.printf "  book id=%s  ->  %s\n"
          (Option.value ~default:"?" (Dom.attr n "id"))
          (R2.id_to_string (R2.id_of_node r2 n)))
    (Dom.preorder root);

  (* 4. Parent and ancestors from the identifier alone (no tree access). *)
  let some_title =
    List.find (fun n -> Dom.tag n = "title") (Dom.preorder root)
  in
  let tid = R2.id_of_node r2 some_title in
  Printf.printf "\ntitle %s has identifier %s\n"
    (Dom.text_content some_title) (R2.id_to_string tid);
  List.iter
    (fun anc_id ->
      match R2.node_of_id r2 anc_id with
      | Some n ->
        Printf.printf "  ancestor %s = <%s>\n" (R2.id_to_string anc_id) (Dom.tag n)
      | None -> ())
    (R2.rancestors r2 tid);

  (* 5. Structural relations decided by arithmetic over kappa and K. *)
  let books = List.filter (fun n -> Dom.tag n = "book") (Dom.preorder root) in
  (match books with
  | b1 :: b2 :: _ ->
    Printf.printf "\nrelationship(book1, book2) = %s\n"
      (Ruid.Rel.to_string
         (R2.relationship r2 (R2.id_of_node r2 b1) (R2.id_of_node r2 b2)))
  | _ -> ());

  (* 6. A structural update stays local: insert a new book up front. *)
  let section = List.find (fun n -> Dom.tag n = "section") (Dom.preorder root) in
  let changed =
    R2.insert_node r2 ~parent:section ~pos:0 (Dom.element "book")
  in
  Printf.printf "inserted a book; %d existing identifiers changed\n" changed;
  R2.check_consistency r2;
  print_endline "numbering still consistent - done."
