examples/deep_recursion.mli:
