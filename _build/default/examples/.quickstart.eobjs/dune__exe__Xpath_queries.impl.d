examples/xpath_queries.ml: List Printf Ruid Rworkload Rxml Rxpath Unix
