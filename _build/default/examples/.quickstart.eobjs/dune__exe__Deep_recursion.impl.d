examples/deep_recursion.ml: Bignum Hashtbl List Printf Ruid Rworkload Rxml
