examples/xpath_queries.mli:
