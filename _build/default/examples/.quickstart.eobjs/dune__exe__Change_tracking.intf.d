examples/change_tracking.mli:
