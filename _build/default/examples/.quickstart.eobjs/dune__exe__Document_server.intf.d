examples/document_server.mli:
