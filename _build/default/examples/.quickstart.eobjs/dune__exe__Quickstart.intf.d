examples/quickstart.mli:
