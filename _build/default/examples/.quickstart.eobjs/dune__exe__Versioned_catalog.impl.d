examples/versioned_catalog.ml: Baselines List Printf Ruid Rworkload Rxml
