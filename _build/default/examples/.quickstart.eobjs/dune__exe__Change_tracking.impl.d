examples/change_tracking.ml: Baselines List Printf Ruid Rworkload Rxml
