examples/quickstart.ml: Format List Option Printf Ruid Rxml
