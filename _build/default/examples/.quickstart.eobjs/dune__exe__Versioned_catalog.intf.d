examples/versioned_catalog.mli:
