examples/document_server.ml: Filename List Option Printf Rsummary Ruid Rworkload Rxml Rxpath String Sys
