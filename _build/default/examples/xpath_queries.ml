(* XPath over an auction document: the same queries answered by walking the
   DOM and by ruid identifier arithmetic over a tag index (Section 3.5).

   Run with: dune exec examples/xpath_queries.exe *)

module Dom = Rxml.Dom
module Eval = Rxpath.Eval

let () =
  let site = Rworkload.Xmark.generate ~seed:7 ~scale:2.0 in
  (* Wrap in a document node so absolute paths like /site/... resolve. *)
  let doc = Dom.document () in
  Dom.append_child doc site;
  Printf.printf "auction site document: %d nodes\n" (Dom.size doc);
  let naive = Rxpath.Engine_naive.create doc in
  let r2 = Ruid.Ruid2.number doc in
  let ruid = Rxpath.Engine_ruid.create r2 in
  Printf.printf "numbered with kappa = %d over %d UID-local areas\n\n"
    (Ruid.Ruid2.kappa r2) (Ruid.Ruid2.area_count r2);
  Printf.printf "%-44s %8s %12s %12s\n" "query" "results" "naive" "ruid";
  List.iter
    (fun q ->
      let p = Rxpath.Xparser.parse q in
      let t0 = Unix.gettimeofday () in
      let rn = Eval.select naive p in
      let t1 = Unix.gettimeofday () in
      let rr = Eval.select ruid p in
      let t2 = Unix.gettimeofday () in
      assert (List.length rn = List.length rr);
      Printf.printf "%-44s %8d %10.2fms %10.2fms\n" q (List.length rn)
        ((t1 -. t0) *. 1e3)
        ((t2 -. t1) *. 1e3))
    Rworkload.Xmark.queries;
  (* Show one result set concretely. *)
  let q = "//person[creditcard]/name" in
  print_endline ("\nfirst five results of " ^ q ^ ":");
  Eval.query ruid q
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun n -> Printf.printf "  %s\n" (Dom.text_content n));
  (* And the paper's grandparent pattern, element1/*/element2. *)
  let q = "/site/*/person" in
  Printf.printf "\n%s selects %d nodes (checked equal under both engines)\n" q
    (List.length (Eval.query ruid q));
  assert (
    List.map (fun n -> n.Dom.serial) (Eval.query ruid q)
    = List.map (fun n -> n.Dom.serial) (Eval.query naive q));
  print_endline "done."
