(* Stable identifiers under churn (Section 4, "Generating stable
   identifiers"): an application keeps external annotations — bookmarks,
   review comments, cross-references — keyed by node identifier.  Every
   identifier a structural update rewrites invalidates such a key.  This
   example attaches bookmarks to random elements, replays an edit stream,
   and reports how many bookmarks survive per scheme.

   Run with: dune exec examples/change_tracking.exe *)

module Dom = Rxml.Dom
module Rng = Rworkload.Rng
module Updates = Rworkload.Updates
module Shape = Rworkload.Shape

let schemes : (module Ruid.Scheme.S) list =
  [
    (module Ruid.Scheme_uid);
    (module Ruid.Scheme_ruid2);
    (module Ruid.Scheme_multilevel);
    (module Baselines.Prepost);
    (module Baselines.Interval);
    (module Baselines.Dewey);
  ]

let () =
  let base =
    Shape.generate ~seed:2002 ~target:3_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 })
  in
  let rng = Rng.create 17 in
  (* Choose bookmark targets by preorder rank so the same nodes are marked
     in every clone; avoid ranks near the end so deletions rarely remove
     the target itself (we only want to observe relabelling). *)
  let bookmark_ranks =
    List.init 60 (fun _ -> Rng.int rng (Dom.size base / 2))
  in
  let ops = Updates.script ~seed:18 ~ops:300 base in
  Printf.printf
    "document: %d nodes; %d bookmarks; %d edits replayed per scheme\n\n"
    (Dom.size base) (List.length bookmark_ranks) (List.length ops);
  Printf.printf "%-12s %10s %10s %12s\n" "scheme" "surviving" "stale" "%% stale";
  List.iter
    (fun (module S : Ruid.Scheme.S) ->
      let tree = Dom.clone base in
      let t = S.build tree in
      (* A bookmark stores the label *string* of its target at creation. *)
      let bookmarks =
        List.map
          (fun rank ->
            let n = Updates.node_at_rank tree rank in
            (n, S.label_string t n))
          bookmark_ranks
      in
      List.iter
        (fun op ->
          ignore
            (Updates.apply tree
               ~insert:(fun ~parent ~pos node -> S.insert t ~parent ~pos node)
               ~delete:(fun n -> S.delete t n)
               op))
        ops;
      let surviving, stale =
        List.fold_left
          (fun (ok, bad) (n, saved_label) ->
            (* A bookmark survives if its target still exists with the same
               label; deleted targets (no label any more) count as neither. *)
            match S.label_string t n with
            | exception Not_found -> (ok, bad)
            | l when l = saved_label -> (ok + 1, bad)
            | _ -> (ok, bad + 1))
          (0, 0) bookmarks
      in
      let pct =
        100. *. float_of_int stale /. float_of_int (max 1 (surviving + stale))
      in
      Printf.printf "%-12s %10d %10d %11.1f%%\n" S.name surviving stale pct)
    schemes;
  print_endline
    "\nStale bookmarks are keys an external system must chase after each edit;";
  print_endline
    "ruid's area-confined relabelling keeps most identifiers stable (Section 4)."
