lib/summary/dataguide.mli: Format Rxml
