lib/summary/dataguide.ml: Format Hashtbl List Rxml
