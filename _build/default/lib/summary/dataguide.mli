(** DataGuide structural summaries (Goldman & Widom, cited as the paper's
    Related Work on structural summaries).

    For tree-shaped data the strong DataGuide is the label-path trie: one
    guide node per distinct root label path, annotated with the target set
    of document nodes reachable by that path.  It serves as a path index —
    a child-only location path is answered by one trie walk — and as the
    "guide by which users can perform meaningful and valid queries"
    (Section 6). *)

type t

val build : Rxml.Dom.t -> t
(** Summarize the element tree rooted at the argument. *)

val guide_nodes : t -> int
(** Number of distinct label paths — the summary's size. *)

val document_nodes : t -> int

val paths : t -> string list list
(** All label paths in document order of first occurrence, root path
    first. *)

val targets : t -> string list -> Rxml.Dom.t list
(** Document nodes reachable by the given label path (document order);
    empty if the path does not occur. *)

val mem : t -> string list -> bool

val child_labels : t -> string list -> string list
(** Labels observed immediately below a path — what a query assistant
    offers for completion. *)

val answer_child_path : t -> string list -> Rxml.Dom.t list option
(** Answer an absolute child-only path [/l1/l2/...] from the summary alone:
    [Some targets] when the first label matches the root, [None] never (an
    absent path yields [Some []]).  Verified against the XPath evaluator in
    tests. *)

val pp : Format.formatter -> t -> unit
(** The trie with target-set cardinalities. *)
