module Dom = Rxml.Dom

type node = {
  label : string;
  mutable targets : Dom.t list;  (* reverse document order while building *)
  children : (string, node) Hashtbl.t;
  mutable child_order : string list;  (* first-occurrence order, reversed *)
}

type t = { root : node; doc_nodes : int }

let make_node label =
  { label; targets = []; children = Hashtbl.create 4; child_order = [] }

let build doc_root =
  let root = make_node (Dom.tag doc_root) in
  let count = ref 0 in
  let rec go guide n =
    incr count;
    guide.targets <- n :: guide.targets;
    List.iter
      (fun c ->
        if Dom.is_element c then begin
          let label = Dom.tag c in
          let child =
            match Hashtbl.find_opt guide.children label with
            | Some g -> g
            | None ->
              let g = make_node label in
              Hashtbl.replace guide.children label g;
              guide.child_order <- label :: guide.child_order;
              g
          in
          go child c
        end)
      n.Dom.children
  in
  if Dom.is_element doc_root then go root doc_root
  else
    (* A document node: summarize its root element. *)
    List.iter
      (fun c -> if Dom.is_element c then go root c)
      doc_root.Dom.children;
  { root; doc_nodes = !count }

let document_nodes t = t.doc_nodes

let rec count_guide n =
  Hashtbl.fold (fun _ c acc -> acc + count_guide c) n.children 1

let guide_nodes t = count_guide t.root

let find t path =
  match path with
  | [] -> None
  | first :: rest ->
    if first <> t.root.label then None
    else begin
      let rec go guide = function
        | [] -> Some guide
        | l :: rest -> (
          match Hashtbl.find_opt guide.children l with
          | Some c -> go c rest
          | None -> None)
      in
      go t.root rest
    end

let targets t path =
  match find t path with
  | Some g -> List.rev g.targets
  | None -> []

let mem t path = find t path <> None

let child_labels t path =
  match find t path with
  | Some g -> List.rev g.child_order
  | None -> []

let paths t =
  let acc = ref [] in
  let rec go prefix n =
    let path = List.rev (n.label :: prefix) in
    acc := path :: !acc;
    List.iter
      (fun l -> go (n.label :: prefix) (Hashtbl.find n.children l))
      (List.rev n.child_order)
  in
  go [] t.root;
  List.rev !acc

let answer_child_path t path = Some (targets t path)

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s (%d)@," indent n.label (List.length n.targets);
    List.iter
      (fun l -> go (indent ^ "  ") (Hashtbl.find n.children l))
      (List.rev n.child_order)
  in
  Format.fprintf ppf "@[<v>";
  go "" t.root;
  Format.fprintf ppf "@]"
