(** XMark-like auction-site documents.

    A deterministic, scaled-down rendition of the XMark benchmark schema
    (site / regions / items, people, open and closed auctions) standing in
    for the unnamed "sample XML documents" of the paper's Section 5.  The
    shape carries the features the experiments need: a wide, shallow region
    catalogue, recursive [parlist]/[listitem] descriptions, moderate-depth
    auction records and a tag alphabet realistic enough for tag-index
    driven query plans. *)

val generate : seed:int -> scale:float -> Rxml.Dom.t
(** A document of roughly [scale * 2000] element nodes ([scale >= 0.01]).
    Returns the [site] root element. *)

val queries : string list
(** Representative XPath queries over the schema (used by E4 and the
    examples): child chains, descendant searches, predicates, axis mixes. *)
