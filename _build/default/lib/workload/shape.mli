(** Synthetic element trees with controlled shape.

    The paper's observations hinge on tree shape — fan-out disparity, depth,
    degree of recursion (Sections 1, 3.1, 5) — so the generators here sweep
    those dimensions deterministically.  All generated nodes are elements
    with small tag alphabets, which is what the numbering layer sees. *)

type profile =
  | Uniform of { fanout_lo : int; fanout_hi : int }
      (** every internal node draws its degree uniformly *)
  | Fixed of int  (** complete-ish tree of constant fan-out *)
  | Deep of { fanout : int; bias : float }
      (** mostly-path tree: with probability [bias] a node gets exactly one
          child, otherwise up to [fanout]; models highly recursive documents *)
  | Skewed of { max_fanout : int; s : float }
      (** Zipf-distributed degrees: a few huge fan-outs, many small ones —
          the fan-out disparity of Section 3.1 *)

val generate :
  ?tags:string array -> seed:int -> target:int -> profile -> Rxml.Dom.t
(** Grow a tree of approximately [target] element nodes (never fewer than 1,
    overshoot bounded by one node's fan-out), breadth-first so depth stays
    balanced except for [Deep].  Returns the root element. *)

val chain : ?tags:string array -> depth:int -> unit -> Rxml.Dom.t
(** A pure path of the given edge count: the extreme recursive document. *)

val comb : ?tags:string array -> depth:int -> width:int -> unit -> Rxml.Dom.t
(** A spine of [depth] nodes, each also carrying [width - 1] leaf children:
    deep {e and} wide, the original UID's worst case. *)

val random_node : Rng.t -> Rxml.Dom.t -> Rxml.Dom.t
(** Uniformly random node of the tree. *)

val random_internal : Rng.t -> Rxml.Dom.t -> Rxml.Dom.t
(** Uniformly random node that has at least one child (falls back to the
    root on a single-node tree). *)
