module Dom = Rxml.Dom

type op =
  | Insert of { parent_rank : int; pos : int }
  | Delete of { rank : int }

let pp_op ppf = function
  | Insert { parent_rank; pos } ->
    Format.fprintf ppf "insert(parent@%d, pos %d)" parent_rank pos
  | Delete { rank } -> Format.fprintf ppf "delete(@%d)" rank

let node_at_rank root rank =
  let nodes = Dom.preorder root in
  match List.nth_opt nodes rank with
  | Some n -> n
  | None -> invalid_arg "Updates.node_at_rank: rank out of range"

let apply root ~insert ~delete op =
  match op with
  | Insert { parent_rank; pos } ->
    let parent = node_at_rank root parent_rank in
    insert ~parent ~pos (Dom.element "upd")
  | Delete { rank } -> delete (node_at_rank root rank)

let script ~seed ~ops ?(delete_ratio = 0.3) tree =
  let rng = Rng.create seed in
  let scratch = Dom.clone tree in
  let out = ref [] in
  for _ = 1 to ops do
    let size = Dom.size scratch in
    let do_delete = size > 2 && Rng.float rng < delete_ratio in
    if do_delete then begin
      let rank = Rng.int_in rng 1 (size - 1) in
      let victim = node_at_rank scratch rank in
      (match victim.Dom.parent with
      | Some p -> Dom.remove_child p victim
      | None -> assert false);
      out := Delete { rank } :: !out
    end
    else begin
      let parent_rank = Rng.int rng size in
      let parent = node_at_rank scratch parent_rank in
      let pos = Rng.int rng (Dom.degree parent + 1) in
      Dom.insert_child parent ~pos (Dom.element "upd");
      out := Insert { parent_rank; pos } :: !out
    end
  done;
  List.rev !out

let deep_insert_script root ~depth_fraction =
  if depth_fraction < 0. || depth_fraction > 1. then
    invalid_arg "Updates.deep_insert_script: fraction out of range";
  let max_depth =
    Dom.fold_preorder (fun acc n -> max acc (Dom.depth_of n)) 0 root
  in
  let target = int_of_float (Float.round (depth_fraction *. float_of_int max_depth)) in
  (* First internal node in document order at the target depth, so the
     insertion has right siblings to displace; fall back to any node
     there. *)
  let chosen = ref None and fallback = ref None in
  Dom.iter_preorder
    (fun n ->
      if Dom.depth_of n = target then begin
        if !fallback = None then fallback := Some n;
        if !chosen = None && Dom.degree n > 0 then chosen := Some n
      end)
    root;
  let parent =
    match (!chosen, !fallback) with
    | Some n, _ | None, Some n -> n
    | None, None -> root
  in
  let rank =
    let r = ref 0 and found = ref (-1) in
    Dom.iter_preorder
      (fun n ->
        if Dom.equal n parent then found := !r;
        incr r)
      root;
    !found
  in
  Insert { parent_rank = rank; pos = 0 }
