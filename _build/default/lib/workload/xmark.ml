module Dom = Rxml.Dom

let words =
  [| "quick"; "brown"; "fox"; "auction"; "vintage"; "rare"; "mint"; "boxed";
     "signed"; "limited"; "edition"; "classic"; "antique"; "modern" |]

let sentence rng n =
  String.concat " " (List.init n (fun _ -> Rng.pick rng words))

let el = Dom.element
let txt parent s = Dom.append_child parent (Dom.text s)

let leaf tag s =
  let n = el tag in
  txt n s;
  n

(* Recursive parlist/listitem description, the recursive part of XMark. *)
let rec description rng depth =
  let parlist = el "parlist" in
  let items = Rng.int_in rng 1 3 in
  for _ = 1 to items do
    let li = el "listitem" in
    if depth > 0 && Rng.float rng < 0.35 then
      Dom.append_child li (description rng (depth - 1))
    else Dom.append_child li (leaf "text" (sentence rng 6));
    Dom.append_child parlist li
  done;
  parlist

let item rng i region =
  let it = el ~attrs:[ ("id", Printf.sprintf "item%s%d" region i) ] "item" in
  Dom.append_child it (leaf "location" (sentence rng 1));
  Dom.append_child it (leaf "name" (sentence rng 2));
  Dom.append_child it (leaf "payment" "Cash");
  let d = el "description" in
  Dom.append_child d (description rng 3);
  Dom.append_child it d;
  Dom.append_child it (leaf "quantity" (string_of_int (Rng.int_in rng 1 5)));
  it

let person rng i =
  let p = el ~attrs:[ ("id", Printf.sprintf "person%d" i) ] "person" in
  Dom.append_child p (leaf "name" (sentence rng 2));
  Dom.append_child p (leaf "emailaddress" (Printf.sprintf "mailto:p%d@example.org" i));
  if Rng.bool rng then
    Dom.append_child p (leaf "creditcard" (string_of_int (Rng.int rng 10_000)));
  let prof =
    el ~attrs:[ ("income", string_of_int (Rng.int_in rng 10_000 99_999)) ] "profile"
  in
  for _ = 1 to Rng.int_in rng 0 3 do
    Dom.append_child prof
      (el ~attrs:[ ("category", Printf.sprintf "category%d" (Rng.int rng 10)) ]
         "interest")
  done;
  Dom.append_child p prof;
  p

let open_auction rng i n_people n_items =
  let a = el ~attrs:[ ("id", Printf.sprintf "open_auction%d" i) ] "open_auction" in
  Dom.append_child a (leaf "initial" (string_of_int (Rng.int_in rng 1 200)));
  for _ = 1 to Rng.int_in rng 0 4 do
    let b = el "bidder" in
    Dom.append_child b (leaf "date" (Printf.sprintf "%02d/%02d/2001" (Rng.int_in rng 1 12) (Rng.int_in rng 1 28)));
    Dom.append_child b (leaf "increase" (string_of_int (Rng.int_in rng 1 50)));
    Dom.append_child a b
  done;
  Dom.append_child a (leaf "current" (string_of_int (Rng.int_in rng 1 500)));
  Dom.append_child a
    (el ~attrs:[ ("item", Printf.sprintf "itemafrica%d" (Rng.int rng (max 1 n_items))) ] "itemref");
  Dom.append_child a
    (el ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng (max 1 n_people))) ] "seller");
  a

let closed_auction rng i n_people n_items =
  let a = el ~attrs:[ ("id", Printf.sprintf "closed_auction%d" i) ] "closed_auction" in
  Dom.append_child a (leaf "price" (string_of_int (Rng.int_in rng 1 500)));
  Dom.append_child a
    (el ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng (max 1 n_people))) ] "buyer");
  Dom.append_child a
    (el ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng (max 1 n_people))) ] "seller");
  Dom.append_child a
    (el ~attrs:[ ("item", Printf.sprintf "itemasia%d" (Rng.int rng (max 1 n_items))) ] "itemref");
  let ann = el "annotation" in
  Dom.append_child ann (description rng 2);
  Dom.append_child a ann;
  a

let generate ~seed ~scale =
  if scale < 0.01 then invalid_arg "Xmark.generate: scale too small";
  let rng = Rng.create seed in
  let n_items_per_region = max 1 (int_of_float (scale *. 20.)) in
  let n_people = max 1 (int_of_float (scale *. 50.)) in
  let n_open = max 1 (int_of_float (scale *. 25.)) in
  let n_closed = max 1 (int_of_float (scale *. 15.)) in
  let site = el "site" in
  let regions = el "regions" in
  List.iter
    (fun region ->
      let r = el region in
      for i = 1 to n_items_per_region do
        Dom.append_child r (item rng i region)
      done;
      Dom.append_child regions r)
    [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ];
  Dom.append_child site regions;
  let people = el "people" in
  for i = 1 to n_people do
    Dom.append_child people (person rng i)
  done;
  Dom.append_child site people;
  let opens = el "open_auctions" in
  for i = 1 to n_open do
    Dom.append_child opens (open_auction rng i n_people n_items_per_region)
  done;
  Dom.append_child site opens;
  let closeds = el "closed_auctions" in
  for i = 1 to n_closed do
    Dom.append_child closeds (closed_auction rng i n_people n_items_per_region)
  done;
  Dom.append_child site closeds;
  site

let queries =
  [
    "/site/regions/africa/item";
    "//item/name";
    "//open_auction/bidder/increase";
    "//person[creditcard]/name";
    "//closed_auction//listitem";
    "//listitem/ancestor::item";
    "/site/people/person[1]";
    "//bidder[position()=last()]";
    "//item[quantity>3]/name";
    "//annotation/preceding::bidder";
    "/site/*/person";
    "//parlist//text";
  ]
