module Dom = Rxml.Dom

type profile =
  | Uniform of { fanout_lo : int; fanout_hi : int }
  | Fixed of int
  | Deep of { fanout : int; bias : float }
  | Skewed of { max_fanout : int; s : float }

let default_tags = [| "a"; "b"; "c"; "d"; "item"; "entry"; "sec"; "p" |]

let draw_degree rng = function
  | Uniform { fanout_lo; fanout_hi } -> Rng.int_in rng fanout_lo fanout_hi
  | Fixed k -> k
  | Deep { fanout; bias } ->
    if Rng.float rng < bias then 1 else Rng.int_in rng 0 fanout
  | Skewed { max_fanout; s } -> Rng.zipf rng ~s ~n:max_fanout

let generate ?(tags = default_tags) ~seed ~target profile =
  let rng = Rng.create seed in
  let root = Dom.element (Rng.pick rng tags) in
  let produced = ref 1 in
  let queue = Queue.create () in
  Queue.add root queue;
  while !produced < target && not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    let deg = draw_degree rng profile in
    for _ = 1 to deg do
      if !produced < target + deg then begin
        let c = Dom.element (Rng.pick rng tags) in
        Dom.append_child n c;
        incr produced;
        Queue.add c queue
      end
    done;
    (* Keep growth alive if every frontier node drew degree zero. *)
    if Queue.is_empty queue && !produced < target then begin
      let c = Dom.element (Rng.pick rng tags) in
      Dom.append_child n c;
      incr produced;
      Queue.add c queue
    end
  done;
  root

let chain ?(tags = default_tags) ~depth () =
  let root = Dom.element tags.(0) in
  let rec go n d =
    if d > 0 then begin
      let c = Dom.element tags.(d mod Array.length tags) in
      Dom.append_child n c;
      go c (d - 1)
    end
  in
  go root depth;
  root

let comb ?(tags = default_tags) ~depth ~width () =
  let root = Dom.element tags.(0) in
  let rec go n d =
    for i = 1 to width - 1 do
      Dom.append_child n (Dom.element tags.(i mod Array.length tags))
    done;
    if d > 0 then begin
      let spine = Dom.element tags.(d mod Array.length tags) in
      Dom.append_child n spine;
      go spine (d - 1)
    end
  in
  go root depth;
  root

let random_node rng root =
  let nodes = Array.of_list (Dom.preorder root) in
  Rng.pick rng nodes

let random_internal rng root =
  let nodes =
    Array.of_list (List.filter (fun n -> Dom.degree n > 0) (Dom.preorder root))
  in
  if Array.length nodes = 0 then root else Rng.pick rng nodes
