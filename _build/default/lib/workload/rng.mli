(** Deterministic pseudo-random numbers (splitmix64).

    Every workload and experiment in the repository draws randomness from
    this generator with an explicit seed, so each reported row is exactly
    reproducible.  Not cryptographic. *)

type t

val create : int -> t
(** Seeded generator. *)

val copy : t -> t

val next64 : t -> int64
(** Next raw 64-bit state output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo .. hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val zipf : t -> s:float -> n:int -> int
(** Zipf-distributed rank in [1 .. n] with exponent [s] (inverse-CDF by
    bisection over the precomputed partial sums is avoided: simple linear
    scan over n <= a few thousand). *)
