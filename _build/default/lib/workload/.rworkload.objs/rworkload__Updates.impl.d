lib/workload/updates.ml: Float Format List Rng Rxml
