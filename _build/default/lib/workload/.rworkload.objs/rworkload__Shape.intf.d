lib/workload/shape.mli: Rng Rxml
