lib/workload/xmark.mli: Rxml
