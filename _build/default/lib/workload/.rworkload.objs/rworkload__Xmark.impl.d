lib/workload/xmark.ml: List Printf Rng Rxml String
