lib/workload/updates.mli: Format Rxml
