lib/workload/dblp.ml: Printf Rng Rxml
