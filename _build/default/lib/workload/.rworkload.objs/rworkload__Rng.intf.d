lib/workload/rng.mli:
