lib/workload/dblp.mli: Rxml
