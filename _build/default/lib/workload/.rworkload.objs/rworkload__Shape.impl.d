lib/workload/shape.ml: Array List Queue Rng Rxml
