(** DBLP-like bibliography documents: one extremely wide root with shallow
    publication records underneath.

    This is the original UID's worst realistic case (Section 1): the root's
    fan-out equals the number of publications, so UID identifiers blow past
    native integers after just a few levels, while most nodes have tiny
    fan-out — maximal fan-out disparity (Section 3.1). *)

val generate : seed:int -> publications:int -> Rxml.Dom.t
(** Returns the [dblp] root element with the given number of publication
    children. *)

val queries : string list
