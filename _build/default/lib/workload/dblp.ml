module Dom = Rxml.Dom

let authors =
  [| "Abiteboul"; "Widom"; "Suciu"; "Gray"; "Yoshikawa"; "Uemura"; "Kha";
     "Moon"; "Zaniolo"; "Tsotras"; "Naughton"; "DeWitt" |]

let venues = [| "VLDB"; "SIGMOD"; "ICDE"; "EDBT"; "TODS"; "WISE" |]

let leaf tag s =
  let n = Dom.element tag in
  Dom.append_child n (Dom.text s);
  n

let generate ~seed ~publications =
  let rng = Rng.create seed in
  let root = Dom.element "dblp" in
  for i = 1 to publications do
    let kind = if Rng.bool rng then "article" else "inproceedings" in
    let p =
      Dom.element ~attrs:[ ("key", Printf.sprintf "%s/%d" kind i) ] kind
    in
    for _ = 1 to Rng.int_in rng 1 4 do
      Dom.append_child p (leaf "author" (Rng.pick rng authors))
    done;
    Dom.append_child p (leaf "title" (Printf.sprintf "Paper number %d" i));
    Dom.append_child p
      (leaf
         (if kind = "article" then "journal" else "booktitle")
         (Rng.pick rng venues));
    Dom.append_child p (leaf "year" (string_of_int (Rng.int_in rng 1990 2002)));
    Dom.append_child root p
  done;
  root

let queries =
  [
    "//article/author";
    "//article[year=2001]/title";
    "//inproceedings[booktitle='EDBT']";
    "//author[.='Yoshikawa']/..";
    "/dblp/article[1]";
    "//title/following-sibling::year";
  ]
