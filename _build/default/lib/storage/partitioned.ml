module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

type t = {
  r2 : R2.t;
  (* (tag, area global) -> rows in document order *)
  tables : (string * int, Dom.t list ref) Hashtbl.t;
  rows : int;
}

let table_name ~tag ~global = Printf.sprintf "%s.%d" tag global

(* The area in which a node is enumerated: the global component of its
   position (an area root belongs to the upper area's tables, matching the
   enumeration that Section 2.1 sorts by). *)
let pos_global r2 n =
  let i = R2.id_of_node r2 n in
  if not i.R2.is_root then i.R2.global
  else
    (* An area root is enumerated in the upper area, which is also its
       parent's area whatever the parent's own identifier form. *)
    match R2.rparent r2 i with Some p -> p.R2.global | None -> 1

let create r2 =
  let tables = Hashtbl.create 256 in
  let rows = ref 0 in
  List.iter
    (fun n ->
      if Dom.is_element n then begin
        incr rows;
        let key = (Dom.tag n, pos_global r2 n) in
        match Hashtbl.find_opt tables key with
        | Some l -> l := n :: !l
        | None -> Hashtbl.replace tables key (ref [ n ])
      end)
    (List.rev (R2.all_nodes r2));
  { r2; tables; rows = !rows }

let table_count t = Hashtbl.length t.tables
let row_count t = t.rows

let select t ~tag ~global =
  match Hashtbl.find_opt t.tables (tag, global) with
  | Some l -> !l
  | None -> []

let tables_for_tag t tag =
  Hashtbl.fold
    (fun (tg, _) _ acc -> if tg = tag then acc + 1 else acc)
    t.tables 0

let descendant_query t ~context ~tag =
  (* An area can hold descendants of the context node iff it is the
     context's own area or its root lies below the context — decided by
     identifier arithmetic only (Lemmas 1-3). *)
  (* For a non-root context this is its enumeration area; for an area root
     it is its own area — in both cases, the one area whose table may hold
     descendants not covered by a descendant area root. *)
  let ctx_area = context.R2.global in
  let consult g =
    if g = ctx_area then true
    else
      match R2.area_root_node t.r2 g with
      | None -> false
      | Some root_node ->
        (match R2.relationship t.r2 (R2.id_of_node t.r2 root_node) context with
        | Rel.Descendant | Rel.Self -> true
        | Rel.Ancestor | Rel.Before | Rel.After -> false)
  in
  let opened = ref [] in
  let hits = ref [] in
  Hashtbl.iter
    (fun (tg, g) rows ->
      if tg = tag && consult g then begin
        opened := table_name ~tag ~global:g :: !opened;
        List.iter
          (fun n ->
            if
              R2.relationship t.r2 context (R2.id_of_node t.r2 n)
              = Rel.Ancestor
            then hits := n :: !hits)
          !rows
      end)
    t.tables;
  let hits =
    List.sort
      (fun a b -> R2.doc_order t.r2 (R2.id_of_node t.r2 a) (R2.id_of_node t.r2 b))
      !hits
  in
  (List.sort Stdlib.compare !opened, hits)
