(** Disk-access accounting for the simulated storage layer.

    The paper's performance claims (Lemma 1, Section 3.3) are about which
    operations require {e no} I/O once kappa and K are memory-resident;
    these counters are the measurement instrument. *)

type t = {
  mutable page_reads : int;  (** buffer-pool misses: simulated disk reads *)
  mutable page_writes : int;
  mutable hits : int;  (** buffer-pool hits: served from memory *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
val pp : Format.formatter -> t -> unit
