(** A paged store of node records, indexed by ruid identifier through a
    B+tree, with all accesses metered through an LRU buffer pool.

    This substitutes for the RDBMS of the paper's experiments: records are
    laid out in document order (sorted by global then local index, as
    Section 2.1 prescribes), and every record fetch touches its page.  The
    point of experiment E5 is the contrast between operations that can be
    answered from identifiers alone (zero reads once kappa and K are
    resident) and operations that must chase records through the pool. *)

type record = {
  id : Ruid.Ruid2.id;
  tag : string;
  parent_id : Ruid.Ruid2.id option;  (** stored parent pointer *)
  serial : int;  (** DOM serial, for cross-checking *)
}

type t

val create :
  ?records_per_page:int -> ?cache_pages:int -> Ruid.Ruid2.t -> t
(** Lay out every node of the numbered document (defaults: 32 records per
    page, 8 cached pages). *)

val stats : t -> Io_stats.t
val reset_stats : t -> unit
val clear_cache : t -> unit
val page_count : t -> int
val record_count : t -> int
val index_height : t -> int

val fetch : t -> Ruid.Ruid2.id -> record option
(** Look up a record by identifier: walks the B+tree (memory-resident, as
    an RDBMS index largely is) and touches the record's page. *)

val fetch_by_node : t -> Rxml.Dom.t -> record option

(** {1 The two ancestor-listing strategies of experiment E5} *)

val ancestor_ids_arithmetic : t -> Ruid.Ruid2.id -> Ruid.Ruid2.id list
(** [rancestor]: the full ancestor identifier list computed from kappa and
    K only — no page is touched. *)

val ancestor_ids_pointer_chase : t -> Ruid.Ruid2.id -> Ruid.Ruid2.id list
(** The same list obtained the way a store without derivable parents must:
    fetch the record, read its parent pointer, fetch again — one record
    access per ancestor. *)

val is_ancestor_arithmetic : t -> anc:Ruid.Ruid2.id -> desc:Ruid.Ruid2.id -> bool
val is_ancestor_pointer_chase : t -> anc:Ruid.Ruid2.id -> desc:Ruid.Ruid2.id -> bool

val fetch_subtree : t -> Ruid.Ruid2.id -> record list
(** Range-scan the B+tree for the contiguous (global, local) block of a
    subtree's own area and recurse into descendant areas — the
    "reconstruction of a portion of an XML document" of Section 3.3. *)
