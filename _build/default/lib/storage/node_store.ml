module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

type record = {
  id : R2.id;
  tag : string;
  parent_id : R2.id option;
  serial : int;
}

type t = {
  r2 : R2.t;
  stats : Io_stats.t;
  pool : Buffer_pool.t;
  index : (int * record) Btree.t;  (* identifier key -> (page, record) *)
  pages : int;
  records : int;
}

(* A root identifier (g, l, true) and a member identifier (g, l, false) can
   denote different nodes, so the root flag is part of the key; ordering by
   (global, local) is preserved, as Section 2.1 prescribes for storage. *)
let key_of_id (i : R2.id) =
  (i.R2.global lsl 32) lor (i.R2.local lsl 1) lor (if i.R2.is_root then 1 else 0)

let create ?(records_per_page = 32) ?(cache_pages = 8) r2 =
  if records_per_page < 1 then invalid_arg "Node_store: records_per_page < 1";
  let stats = Io_stats.create () in
  let pool = Buffer_pool.create ~capacity:cache_pages ~stats in
  let index = Btree.create ~order:32 () in
  let nodes = R2.all_nodes r2 in
  List.iteri
    (fun i n ->
      let id = R2.id_of_node r2 n in
      let parent_id = R2.rparent r2 id in
      let record = { id; tag = Dom.tag n; parent_id; serial = n.Dom.serial } in
      Btree.insert index (key_of_id id) (i / records_per_page, record))
    nodes;
  {
    r2;
    stats;
    pool;
    index;
    pages = ((List.length nodes + records_per_page - 1) / records_per_page);
    records = List.length nodes;
  }

let stats t = t.stats
let reset_stats t = Io_stats.reset t.stats
let clear_cache t = Buffer_pool.clear t.pool
let page_count t = t.pages
let record_count t = t.records
let index_height t = Btree.height t.index

let fetch t id =
  match Btree.find t.index (key_of_id id) with
  | None -> None
  | Some (page, record) ->
    Buffer_pool.touch t.pool page;
    Some record

let fetch_by_node t n = fetch t (R2.id_of_node t.r2 n)

let ancestor_ids_arithmetic t id = R2.rancestors t.r2 id

let ancestor_ids_pointer_chase t id =
  let rec go acc id =
    match fetch t id with
    | None -> List.rev acc
    | Some r -> (
      match r.parent_id with
      | None -> List.rev acc
      | Some p -> go (p :: acc) p)
  in
  go [] id

let is_ancestor_arithmetic t ~anc ~desc =
  Rel.equal (R2.relationship t.r2 anc desc) Rel.Ancestor

let is_ancestor_pointer_chase t ~anc ~desc =
  let rec go id =
    match fetch t id with
    | None -> false
    | Some r -> (
      match r.parent_id with
      | None -> false
      | Some p -> R2.id_equal p anc || go p)
  in
  go desc

let fetch_subtree t id =
  let rec go id =
    match fetch t id with
    | None -> []
    | Some r -> r :: List.concat_map go (R2.possible_children_ids t.r2 id)
  in
  go id
