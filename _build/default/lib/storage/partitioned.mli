(** Partitioned table naming (Section 4, "Database file/table selection").

    "One solution is to create the name of data files or tables using two
    parts: the first part is extracted from the text value such as the
    element or attribute names.  The second part is the common global index
    of ruid of items."

    This module simulates that layout: one table per (element name, global
    index) pair holding the nodes of that tag enumerated in that UID-local
    area.  A structural query — all [tag] descendants of a context node —
    then needs to open only the tables whose area can lie below the
    context, a decision made from identifiers alone. *)

type t

val create : Ruid.Ruid2.t -> t

val table_name : tag:string -> global:int -> string
(** The two-part name, e.g. ["item.27"]. *)

val table_count : t -> int
val row_count : t -> int

val select : t -> tag:string -> global:int -> Rxml.Dom.t list
(** Rows of one table (document order). *)

val descendant_query :
  t -> context:Ruid.Ruid2.id -> tag:string -> string list * Rxml.Dom.t list
(** All [tag] descendants of the context node: returns the names of the
    tables that had to be opened (chosen by frame arithmetic) and the
    matching nodes.  Correctness is checked against the axes in tests; the
    point is the table count, reported by the E5 bench. *)

val tables_for_tag : t -> string -> int
(** How many tables exist for a tag — the denominator for the "fraction of
    tables opened" measurement. *)
