type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable hits : int;
}

let create () = { page_reads = 0; page_writes = 0; hits = 0 }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.hits <- 0

let add into from =
  into.page_reads <- into.page_reads + from.page_reads;
  into.page_writes <- into.page_writes + from.page_writes;
  into.hits <- into.hits + from.hits

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" t.page_reads t.page_writes
    t.hits
