(* Doubly-linked LRU list with a hashtable from page id to list cell. *)

type cell = {
  page : int;
  mutable prev : cell option;
  mutable next : cell option;
}

type t = {
  capacity : int;
  stats : Io_stats.t;
  table : (int, cell) Hashtbl.t;
  mutable head : cell option;  (* most recently used *)
  mutable tail : cell option;  (* least recently used *)
  mutable size : int;
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  { capacity; stats; table = Hashtbl.create (capacity * 2);
    head = None; tail = None; size = 0 }

let unlink t cell =
  (match cell.prev with
  | Some p -> p.next <- cell.next
  | None -> t.head <- cell.next);
  (match cell.next with
  | Some n -> n.prev <- cell.prev
  | None -> t.tail <- cell.prev);
  cell.prev <- None;
  cell.next <- None

let push_front t cell =
  cell.next <- t.head;
  cell.prev <- None;
  (match t.head with Some h -> h.prev <- Some cell | None -> t.tail <- Some cell);
  t.head <- Some cell

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
    unlink t lru;
    Hashtbl.remove t.table lru.page;
    t.size <- t.size - 1

let touch t page =
  match Hashtbl.find_opt t.table page with
  | Some cell ->
    t.stats.Io_stats.hits <- t.stats.Io_stats.hits + 1;
    unlink t cell;
    push_front t cell
  | None ->
    t.stats.Io_stats.page_reads <- t.stats.Io_stats.page_reads + 1;
    if t.size >= t.capacity then evict_lru t;
    let cell = { page; prev = None; next = None } in
    Hashtbl.replace t.table page cell;
    push_front t cell;
    t.size <- t.size + 1

let touch_write t page =
  touch t page;
  t.stats.Io_stats.page_writes <- t.stats.Io_stats.page_writes + 1

let resident t page = Hashtbl.mem t.table page
let capacity t = t.capacity

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
