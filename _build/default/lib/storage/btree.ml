type 'a leaf = {
  mutable lkeys : int array;
  mutable lvals : 'a array;
  mutable lnext : 'a leaf option;
}

type 'a inner = {
  mutable ikeys : int array;
      (* ikeys.(i) separates children.(i) and children.(i+1): it is the
         smallest key reachable under children.(i+1). *)
  mutable children : 'a node array;
}

and 'a node = Leaf of 'a leaf | Internal of 'a inner

type 'a t = {
  mutable root : 'a node;
  order : int;
  mutable count : int;
}

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order < 4";
  { root = Leaf { lkeys = [||]; lvals = [||]; lnext = None }; order; count = 0 }

(* Index of the child to descend into for [key]. *)
let child_index ikeys key =
  let n = Array.length ikeys in
  let rec go lo hi =
    (* smallest i with key < ikeys.(i); descend into child i *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key < ikeys.(mid) then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

(* Position of [key] in a sorted array, or the insertion point. *)
let search keys key =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if keys.(mid) < key then go (mid + 1) hi else go lo mid
    end
  in
  go 0 n

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j ->
      if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let rec insert_node t node key value =
  match node with
  | Leaf l ->
    let i = search l.lkeys key in
    if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
      l.lvals.(i) <- value;
      None
    end
    else begin
      l.lkeys <- array_insert l.lkeys i key;
      l.lvals <- array_insert l.lvals i value;
      t.count <- t.count + 1;
      if Array.length l.lkeys <= t.order then None
      else begin
        (* Split the leaf in half; the new right leaf's first key is the
           separator pushed up. *)
        let n = Array.length l.lkeys in
        let mid = n / 2 in
        let right =
          {
            lkeys = Array.sub l.lkeys mid (n - mid);
            lvals = Array.sub l.lvals mid (n - mid);
            lnext = l.lnext;
          }
        in
        l.lkeys <- Array.sub l.lkeys 0 mid;
        l.lvals <- Array.sub l.lvals 0 mid;
        l.lnext <- Some right;
        Some (right.lkeys.(0), Leaf right)
      end
    end
  | Internal inode -> (
    let ci = child_index inode.ikeys key in
    match insert_node t inode.children.(ci) key value with
    | None -> None
    | Some (sep, right) ->
      inode.ikeys <- array_insert inode.ikeys ci sep;
      inode.children <- array_insert inode.children (ci + 1) right;
      if Array.length inode.children <= t.order then None
      else begin
        let n = Array.length inode.ikeys in
        let mid = n / 2 in
        let push_up = inode.ikeys.(mid) in
        let right_keys = Array.sub inode.ikeys (mid + 1) (n - mid - 1) in
        let right_children =
          Array.sub inode.children (mid + 1) (Array.length inode.children - mid - 1)
        in
        inode.ikeys <- Array.sub inode.ikeys 0 mid;
        inode.children <- Array.sub inode.children 0 (mid + 1);
        Some (push_up, Internal { ikeys = right_keys; children = right_children })
      end)

let insert t key value =
  match insert_node t t.root key value with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] }

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Internal inode -> find_leaf inode.children.(child_index inode.ikeys key) key

let find t key =
  let l = find_leaf t.root key in
  let i = search l.lkeys key in
  if i < Array.length l.lkeys && l.lkeys.(i) = key then Some l.lvals.(i)
  else None

(* Deletion with rebalancing.  Minimum occupancy for non-root nodes:
   ceil(order/2) keys in a leaf, ceil(order/2) children in an internal
   node — exactly what splits produce, so the invariants are stable. *)
let min_occupancy t = (t.order + 1) / 2

let node_size = function
  | Leaf l -> Array.length l.lkeys
  | Internal i -> Array.length i.children

(* Re-join child [ci] of [inode] with a sibling after it dropped below the
   minimum: borrow one entry if a sibling has spare capacity, otherwise
   merge with a sibling and drop one separator. *)
let fix_underflow t (inode : _ inner) ci =
  let child = inode.children.(ci) in
  let nsib = Array.length inode.children in
  let borrow_from_left li =
    match (inode.children.(li), child) with
    | Leaf left, Leaf c ->
      let n = Array.length left.lkeys in
      c.lkeys <- array_insert c.lkeys 0 left.lkeys.(n - 1);
      c.lvals <- array_insert c.lvals 0 left.lvals.(n - 1);
      left.lkeys <- array_remove left.lkeys (n - 1);
      left.lvals <- array_remove left.lvals (n - 1);
      inode.ikeys.(li) <- c.lkeys.(0)
    | Internal left, Internal c ->
      let nk = Array.length left.ikeys in
      let moved_child = left.children.(Array.length left.children - 1) in
      c.ikeys <- array_insert c.ikeys 0 inode.ikeys.(li);
      c.children <- array_insert c.children 0 moved_child;
      inode.ikeys.(li) <- left.ikeys.(nk - 1);
      left.ikeys <- array_remove left.ikeys (nk - 1);
      left.children <- array_remove left.children (Array.length left.children - 1)
    | _ -> assert false
  and borrow_from_right ri =
    match (child, inode.children.(ri)) with
    | Leaf c, Leaf right ->
      c.lkeys <- array_insert c.lkeys (Array.length c.lkeys) right.lkeys.(0);
      c.lvals <- array_insert c.lvals (Array.length c.lvals) right.lvals.(0);
      right.lkeys <- array_remove right.lkeys 0;
      right.lvals <- array_remove right.lvals 0;
      inode.ikeys.(ri - 1) <- right.lkeys.(0)
    | Internal c, Internal right ->
      c.ikeys <- array_insert c.ikeys (Array.length c.ikeys) inode.ikeys.(ri - 1);
      c.children <-
        array_insert c.children (Array.length c.children) right.children.(0);
      inode.ikeys.(ri - 1) <- right.ikeys.(0);
      right.ikeys <- array_remove right.ikeys 0;
      right.children <- array_remove right.children 0
    | _ -> assert false
  and merge li ri =
    (* Merge children li and ri (adjacent, li < ri) into li; drop the
       separator ikeys.(li). *)
    (match (inode.children.(li), inode.children.(ri)) with
    | Leaf left, Leaf right ->
      left.lkeys <- Array.append left.lkeys right.lkeys;
      left.lvals <- Array.append left.lvals right.lvals;
      left.lnext <- right.lnext
    | Internal left, Internal right ->
      left.ikeys <-
        Array.concat [ left.ikeys; [| inode.ikeys.(li) |]; right.ikeys ];
      left.children <- Array.append left.children right.children
    | _ -> assert false);
    inode.ikeys <- array_remove inode.ikeys li;
    inode.children <- array_remove inode.children ri
  in
  let min = min_occupancy t in
  if ci > 0 && node_size inode.children.(ci - 1) > min then
    borrow_from_left (ci - 1)
  else if ci < nsib - 1 && node_size inode.children.(ci + 1) > min then
    borrow_from_right (ci + 1)
  else if ci > 0 then merge (ci - 1) ci
  else merge ci (ci + 1)

let delete t key =
  let rec del node =
    match node with
    | Leaf l ->
      let i = search l.lkeys key in
      if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
        l.lkeys <- array_remove l.lkeys i;
        l.lvals <- array_remove l.lvals i;
        t.count <- t.count - 1;
        true
      end
      else false
    | Internal inode ->
      let ci = child_index inode.ikeys key in
      let deleted = del inode.children.(ci) in
      if deleted && node_size inode.children.(ci) < min_occupancy t then
        fix_underflow t inode ci;
      deleted
  in
  let deleted = del t.root in
  (* Collapse a root left with a single child. *)
  (match t.root with
  | Internal inode when Array.length inode.children = 1 ->
    t.root <- inode.children.(0)
  | Internal _ | Leaf _ -> ());
  deleted

let range t ~lo ~hi =
  let acc = ref [] in
  let rec walk = function
    | None -> ()
    | Some l ->
      let n = Array.length l.lkeys in
      let stop = ref false in
      for i = 0 to n - 1 do
        let k = l.lkeys.(i) in
        if k > hi then stop := true
        else if k >= lo then acc := (k, l.lvals.(i)) :: !acc
      done;
      if not !stop then walk l.lnext
  in
  walk (Some (find_leaf t.root lo));
  List.rev !acc

let iter f t =
  let rec leftmost = function
    | Leaf l -> l
    | Internal inode -> leftmost inode.children.(0)
  in
  let rec walk = function
    | None -> ()
    | Some l ->
      Array.iteri (fun i k -> f k l.lvals.(i)) l.lkeys;
      walk l.lnext
  in
  walk (Some (leftmost t.root))

let length t = t.count

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal inode -> 1 + go inode.children.(0)
  in
  go t.root

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Occupancy: every non-root node holds at least ceil(order/2) entries
     (keys in a leaf, children in an internal node). *)
  let min = min_occupancy t in
  let rec occupancy ~is_root = function
    | Leaf l ->
      if (not is_root) && Array.length l.lkeys < min then
        fail "leaf under-occupied: %d < %d" (Array.length l.lkeys) min
    | Internal inode ->
      let n = Array.length inode.children in
      if (not is_root) && n < min then
        fail "internal node under-occupied: %d < %d" n min;
      if is_root && n < 2 then fail "internal root with fewer than 2 children";
      Array.iter (occupancy ~is_root:false) inode.children
  in
  occupancy ~is_root:true t.root;
  let rec check lo hi = function
    | Leaf l ->
      Array.iteri
        (fun i k ->
          if i > 0 && l.lkeys.(i - 1) >= k then fail "leaf keys out of order";
          (match lo with Some b when k < b -> fail "leaf key below bound" | _ -> ());
          (match hi with Some b when k >= b -> fail "leaf key above bound" | _ -> ()))
        l.lkeys
    | Internal inode ->
      let n = Array.length inode.ikeys in
      if Array.length inode.children <> n + 1 then
        fail "internal node arity mismatch";
      Array.iteri
        (fun i k -> if i > 0 && inode.ikeys.(i - 1) >= k then fail "separators out of order")
        inode.ikeys;
      Array.iteri
        (fun i c ->
          let lo' = if i = 0 then lo else Some inode.ikeys.(i - 1) in
          let hi' = if i = n then hi else Some inode.ikeys.(i) in
          check lo' hi' c)
        inode.children
  in
  check None None t.root;
  (* Leaf chain covers exactly [count] entries in sorted order. *)
  let seen = ref 0 in
  let last = ref min_int in
  iter
    (fun k _ ->
      if k < !last then fail "leaf chain out of order";
      last := k;
      incr seen)
    t;
  if !seen <> t.count then fail "count mismatch: %d vs %d" !seen t.count

let pack_key ~global ~local =
  if global < 0 || local < 0 then invalid_arg "Btree.pack_key: negative";
  if local > 0x7FFFFFFF then invalid_arg "Btree.pack_key: local too large";
  (global lsl 31) lor local
