lib/storage/btree.mli:
