lib/storage/partitioned.ml: Hashtbl List Printf Ruid Rxml Stdlib
