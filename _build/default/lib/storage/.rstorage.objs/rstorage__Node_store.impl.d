lib/storage/node_store.ml: Btree Buffer_pool Io_stats List Ruid Rxml
