lib/storage/partitioned.mli: Ruid Rxml
