lib/storage/node_store.mli: Io_stats Ruid Rxml
