(** An in-memory B+tree from integer keys to arbitrary values.

    Plays the role of the RDBMS index in the paper's setup: data items are
    "sorted first by the global index, and then by local index"
    (Section 2.1), which we realize by indexing the packed
    [(global << 31) | local] key.  Leaves are chained for range scans;
    deletion rebalances (borrow from a sibling, else merge and collapse),
    so non-root nodes always hold at least ceil(order/2) entries. *)

type 'a t

val create : ?order:int -> unit -> 'a t
(** [order] is the maximal number of keys per node (default 32, minimum 4). *)

val insert : 'a t -> int -> 'a -> unit
(** Inserts or replaces. *)

val find : 'a t -> int -> 'a option

val delete : 'a t -> int -> bool
(** Removes the key, rebalancing on underflow; [false] if absent. *)

val range : 'a t -> lo:int -> hi:int -> (int * 'a) list
(** All pairs with [lo <= key <= hi] in increasing key order. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** In increasing key order. *)

val length : 'a t -> int
val height : 'a t -> int

val check_invariants : 'a t -> unit
(** Key ordering, separator correctness, leaf chaining, minimum occupancy.
    @raise Failure on violation. *)

val pack_key : global:int -> local:int -> int
(** The composite (global, local) key used throughout the storage layer.
    @raise Invalid_argument if either component is negative or the local
    index exceeds 2{^31} - 1. *)
