module Dom = Rxml.Dom
module Rel = Ruid.Rel

let name = "interval"
let parent_derivable = false

type label = { lo : int; hi : int; level : int }

type t = {
  root : Dom.t;
  gap : int;
  mutable labels : (int, label) Hashtbl.t;
  mutable renumbers : int;
}

let relabel t =
  let labels = Hashtbl.create 256 in
  let counter = ref 0 in
  let next () =
    counter := !counter + t.gap;
    !counter
  in
  let rec go level n =
    let lo = next () in
    List.iter (go (level + 1)) n.Dom.children;
    let hi = next () in
    Hashtbl.replace labels n.Dom.serial { lo; hi; level }
  in
  go 0 t.root;
  t.labels <- labels

let build_with_gap ~gap root =
  if gap < 2 then invalid_arg "Interval.build_with_gap: gap < 2";
  let t = { root; gap; labels = Hashtbl.create 16; renumbers = 0 } in
  relabel t;
  t

let build root = build_with_gap ~gap:16 root

let label_of t n = Hashtbl.find t.labels n.Dom.serial

let relation t a b =
  let la = label_of t a and lb = label_of t b in
  if la.lo = lb.lo then Rel.Self
  else if la.lo < lb.lo && lb.hi < la.hi then Rel.Ancestor
  else if lb.lo < la.lo && la.hi < lb.hi then Rel.Descendant
  else if la.lo < lb.lo then Rel.Before
  else Rel.After

let label_string t n =
  let l = label_of t n in
  Printf.sprintf "[%d, %d] lvl=%d" l.lo l.hi l.level

let renumber_count t = t.renumbers

(* Free space for the new leaf: strictly between the previous boundary
   (left sibling's hi, or parent's lo) and the next one (right sibling's
   lo, or parent's hi). *)
let insert t ~parent ~pos node =
  Dom.insert_child parent ~pos node;
  let lp = label_of t parent in
  let pos = Dom.child_index node in
  let left =
    if pos = 0 then lp.lo
    else (label_of t (List.nth parent.Dom.children (pos - 1))).hi
  in
  let right =
    if pos = Dom.degree parent - 1 then lp.hi
    else (label_of t (List.nth parent.Dom.children (pos + 1))).lo
  in
  if right - left > 2 then begin
    let third = (right - left) / 3 in
    let lo = left + max 1 third in
    let hi = min (right - 1) (lo + max 1 third) in
    Hashtbl.replace t.labels node.Dom.serial { lo; hi; level = lp.level + 1 };
    0
  end
  else begin
    (* Gap exhausted: global renumbering. *)
    let old_labels = t.labels in
    relabel t;
    t.renumbers <- t.renumbers + 1;
    Ruid.Scheme.diff_count ~old_labels ~new_labels:t.labels
      ~skip:(Some node.Dom.serial)
  end

let delete t node =
  match node.Dom.parent with
  | None -> invalid_arg "Interval.delete: cannot delete the root"
  | Some p ->
    List.iter
      (fun x -> Hashtbl.remove t.labels x.Dom.serial)
      (Dom.preorder node);
    Dom.remove_child p node;
    0

let max_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  Hashtbl.fold
    (fun _ l acc -> max acc ((2 * bits l.hi) + bits l.level))
    t.labels 0

let total_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    max 1 (go 0 v)
  in
  Hashtbl.fold
    (fun _ l acc -> acc + bits l.lo + bits l.hi + bits l.level)
    t.labels 0

let aux_memory_words _ = 0
