(** Pre/post/level numbering (Dietz-style traversal pairs, as used by
    Li-Moon and Zhang et al. containment joins — Related Work, Section 6).

    Ancestorship is [pre_a < pre_b && post_a > post_b]; document order is
    pre-order rank.  The parent label is {e not} derivable from a node's
    label alone — the property the UID family adds.  Insertion shifts the
    pre ranks of everything after the insertion point and the post ranks of
    everything after it in post order, which is what experiment E2
    measures. *)

include Ruid.Scheme.S

type label = { pre : int; post : int; level : int }

val label_of : t -> Rxml.Dom.t -> label
