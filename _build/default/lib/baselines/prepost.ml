module Dom = Rxml.Dom
module Rel = Ruid.Rel

let name = "prepost"
let parent_derivable = false

type label = { pre : int; post : int; level : int }

type t = { root : Dom.t; mutable labels : (int, label) Hashtbl.t }

let relabel t =
  let labels = Hashtbl.create 256 in
  let pre = ref 0 and post = ref 0 in
  let rec go level n =
    let my_pre = !pre in
    incr pre;
    List.iter (go (level + 1)) n.Dom.children;
    let my_post = !post in
    incr post;
    Hashtbl.replace labels n.Dom.serial { pre = my_pre; post = my_post; level }
  in
  go 0 t.root;
  t.labels <- labels

let build root =
  let t = { root; labels = Hashtbl.create 16 } in
  relabel t;
  t

let label_of t n = Hashtbl.find t.labels n.Dom.serial

let relation t a b =
  let la = label_of t a and lb = label_of t b in
  if la.pre = lb.pre then Rel.Self
  else if la.pre < lb.pre && la.post > lb.post then Rel.Ancestor
  else if lb.pre < la.pre && lb.post > la.post then Rel.Descendant
  else if la.pre < lb.pre then Rel.Before
  else Rel.After

let label_string t n =
  let l = label_of t n in
  Printf.sprintf "(pre=%d, post=%d, lvl=%d)" l.pre l.post l.level

let change ?skip t mutate =
  let old_labels = t.labels in
  mutate ();
  relabel t;
  Ruid.Scheme.diff_count ~old_labels ~new_labels:t.labels ~skip

let insert t ~parent ~pos node =
  change ~skip:node.Dom.serial t (fun () -> Dom.insert_child parent ~pos node)

let delete t node =
  change t (fun () ->
      match node.Dom.parent with
      | None -> invalid_arg "Prepost.delete: cannot delete the root"
      | Some p -> Dom.remove_child p node)

let max_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  Hashtbl.fold
    (fun _ l acc -> max acc (bits l.pre + bits l.post + bits l.level))
    t.labels 0

let total_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    max 1 (go 0 v)
  in
  Hashtbl.fold
    (fun _ l acc -> acc + bits l.pre + bits l.post + bits l.level)
    t.labels 0

let aux_memory_words _ = 0
