(** Interval (range) numbering with gaps — "durable node numbers" in the
    style of Chien, Tsotras, Zaniolo & Zhang (Related Work, Section 6).

    Each node carries [lo < hi]; descendants nest strictly inside their
    ancestors' intervals.  Boundaries are spaced [gap] apart at build time,
    so insertions can usually squeeze a fresh interval between existing
    boundaries without touching any other label; only when the local gap is
    exhausted does the document renumber.  Deletion never relabels. *)

include Ruid.Scheme.S

type label = { lo : int; hi : int; level : int }

val label_of : t -> Rxml.Dom.t -> label

val build_with_gap : gap:int -> Rxml.Dom.t -> t
(** [build] uses a gap of 16; small gaps exhaust quickly (more global
    renumberings), large gaps burn label bits — the classic trade-off,
    exercised by the E2 sweep. *)

val renumber_count : t -> int
(** How many full renumberings insertions have forced so far. *)
