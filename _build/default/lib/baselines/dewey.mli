(** Dewey (path) labelling: a node's label is the sequence of 1-based child
    ordinals on its root path.  The parent label is derivable (drop the last
    component) like the UID family, but label length grows with depth, and
    an insertion relabels every right sibling's entire subtree. *)

include Ruid.Scheme.S

type label = int list

val label_of : t -> Rxml.Dom.t -> label
