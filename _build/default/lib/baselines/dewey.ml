module Dom = Rxml.Dom
module Rel = Ruid.Rel

let name = "dewey"
let parent_derivable = true

type label = int list

type t = { root : Dom.t; mutable labels : (int, label) Hashtbl.t }

let relabel t =
  let labels = Hashtbl.create 256 in
  let rec go path n =
    Hashtbl.replace labels n.Dom.serial (List.rev path);
    List.iteri (fun i c -> go ((i + 1) :: path) c) n.Dom.children
  in
  go [] t.root;
  t.labels <- labels

let build root =
  let t = { root; labels = Hashtbl.create 16 } in
  relabel t;
  t

let label_of t n = Hashtbl.find t.labels n.Dom.serial

let relation t a b =
  let rec cmp la lb =
    match (la, lb) with
    | [], [] -> Rel.Self
    | [], _ :: _ -> Rel.Ancestor
    | _ :: _, [] -> Rel.Descendant
    | x :: la', y :: lb' ->
      if x = y then cmp la' lb' else if x < y then Rel.Before else Rel.After
  in
  cmp (label_of t a) (label_of t b)

let label_string t n =
  "(" ^ String.concat "." (List.map string_of_int (label_of t n)) ^ ")"

let change ?skip t mutate =
  let old_labels = t.labels in
  mutate ();
  relabel t;
  Ruid.Scheme.diff_count ~old_labels ~new_labels:t.labels ~skip

let insert t ~parent ~pos node =
  change ~skip:node.Dom.serial t (fun () -> Dom.insert_child parent ~pos node)

let delete t node =
  change t (fun () ->
      match node.Dom.parent with
      | None -> invalid_arg "Dewey.delete: cannot delete the root"
      | Some p -> Dom.remove_child p node)

let max_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  Hashtbl.fold
    (fun _ l acc -> max acc (List.fold_left (fun s c -> s + bits c) 0 l))
    t.labels 0

let total_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    max 1 (go 0 v)
  in
  Hashtbl.fold
    (fun _ l acc -> acc + List.fold_left (fun s c -> s + bits c) 1 l)
    t.labels 0

let aux_memory_words _ = 0
