lib/baselines/dewey.mli: Ruid Rxml
