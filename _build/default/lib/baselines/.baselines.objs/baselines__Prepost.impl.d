lib/baselines/prepost.ml: Hashtbl List Printf Ruid Rxml
