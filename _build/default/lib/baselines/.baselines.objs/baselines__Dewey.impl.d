lib/baselines/dewey.ml: Hashtbl List Ruid Rxml String
