lib/baselines/interval.ml: Hashtbl List Printf Ruid Rxml
