lib/baselines/prepost.mli: Ruid Rxml
