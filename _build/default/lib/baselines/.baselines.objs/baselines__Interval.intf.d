lib/baselines/interval.mli: Ruid Rxml
