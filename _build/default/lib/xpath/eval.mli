(** XPath evaluation core, parameterized by an axis {e engine}.

    The paper's Section 3.5 point is that the same location-path semantics
    can be driven either by walking the tree or by identifier arithmetic
    over kappa and K; the two engines ({!Engine_naive}, {!Engine_ruid})
    plug into this shared evaluator, which implements node tests,
    predicates with proximity positions (reverse axes count backwards),
    document-order result merging and the core function library. *)

type engine = {
  root : Rxml.Dom.t;
  axis : Ast.axis -> Rxml.Dom.t -> Rxml.Dom.t list;
      (** nodes of the axis in {e axis order} (reverse axes nearest-first);
          never called with {!Ast.Attribute} *)
  named_axis : Ast.axis -> string -> Rxml.Dom.t -> Rxml.Dom.t list option;
      (** optional fast path for a name test on an axis; must return the
          same nodes as filtering [axis] by tag, in axis order *)
  compare_order : Rxml.Dom.t -> Rxml.Dom.t -> int;  (** document order *)
  rank_of : Rxml.Dom.t -> int option;
      (** snapshot preorder rank when the engine keeps one; [None] lets
          sorts fall back to [compare_order] *)
}

type value =
  | Bool of bool
  | Num of float
  | Str of string
  | Nodes of Rxml.Dom.t list  (** in document order *)
  | Attrs of string list  (** attribute values, when a path ends in [@...] *)

val select : engine -> ?context:Rxml.Dom.t -> Ast.path -> Rxml.Dom.t list
(** Evaluate a location path; context defaults to the root.  Results are in
    document order without duplicates.
    @raise Invalid_argument if the path ends on the attribute axis. *)

val eval : engine -> ?context:Rxml.Dom.t -> Ast.path -> value
(** Like {!select} but keeps attribute results. *)

val select_union : engine -> ?context:Rxml.Dom.t -> Ast.union_path -> Rxml.Dom.t list
(** Union of the alternatives, merged into document order. *)

val query : engine -> ?context:Rxml.Dom.t -> string -> Rxml.Dom.t list
(** Parse (unions allowed) and select. *)

val to_bool : value -> bool
val to_num : value -> float
val to_str : value -> string
