(** Structural-join query plans for simple location paths.

    A path consisting only of child and descendant name-test steps (the
    common [/a/b//c] shape) can be evaluated without walking the tree at
    all: take each tag's posting list from the {!Tag_index} and connect
    adjacent step candidates with the semijoins of {!Rjoin.Structural_join}
    — one [rparent] probe per candidate for child steps, one [rancestor]
    probe for descendant steps.  This is the query-evaluation application
    of Section 4 spelled out as an operator pipeline.

    Paths with predicates, other axes, wildcards or text tests are not
    plannable and {!compile} returns [None]; callers fall back to
    {!Eval}. *)

type connector = Child | Descendant

type plan = { absolute : bool; steps : (connector * string) list }

val compile : Ast.path -> plan option

val pp_plan : Format.formatter -> plan -> unit

val run :
  Ruid.Ruid2.t -> Tag_index.t -> ?context:Rxml.Dom.t -> plan -> Rxml.Dom.t list
(** Evaluate by forward semijoins; context defaults to the numbered root.
    Results are in document order (the final posting list's own order
    filtered in place). *)

val query :
  Ruid.Ruid2.t -> Tag_index.t -> ?context:Rxml.Dom.t -> string -> Rxml.Dom.t list option
(** Parse, compile and run; [None] when the path is not plannable. *)
