module Dom = Rxml.Dom

type strategy = Plan | Twig_join | Engine

let pp_strategy ppf = function
  | Plan -> Format.pp_print_string ppf "join-plan"
  | Twig_join -> Format.pp_print_string ppf "twig-semijoin"
  | Engine -> Format.pp_print_string ppf "ruid-engine"

type t = {
  r2 : Ruid.Ruid2.t;
  index : Tag_index.t;
  engine : Eval.engine;
}

let create r2 =
  { r2; index = Tag_index.create r2; engine = Engine_ruid.create r2 }

let classify src =
  match Xparser.parse_union src with
  | [ single ] -> (
    match Pathplan.compile single with
    | Some plan -> `Plan plan
    | None -> (
      match Twig.of_xpath single with
      | Some twig -> `Twig twig
      | None -> `Union [ single ]))
  | union -> `Union union

let choose (_ : t) src =
  match classify src with
  | `Plan _ -> Plan
  | `Twig _ -> Twig_join
  | `Union _ -> Engine

let query t ?context src =
  match classify src with
  | `Plan plan ->
    (* Plans keep the final posting order, which is document order. *)
    Pathplan.run t.r2 t.index ?context plan
  | `Twig twig -> Twig.run t.r2 t.index ?context twig
  | `Union union -> Eval.select_union t.engine ?context union
