module Dom = Rxml.Dom

type doc_id = int

type gid = { doc : doc_id; id : Ruid.Ruid2.id }

let pp_gid ppf g = Format.fprintf ppf "doc%d:%a" g.doc Ruid.Ruid2.pp_id g.id

type entry = { name : string; r2 : Ruid.Ruid2.t }

type t = { max_area_size : int; mutable docs : entry array }

let create ?(max_area_size = 64) () = { max_area_size; docs = [||] }

let doc_count t = Array.length t.docs
let names t = Array.to_list (Array.map (fun e -> e.name) t.docs)

let find t name =
  let rec go i =
    if i >= Array.length t.docs then None
    else if t.docs.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let entry t doc =
  if doc < 0 || doc >= Array.length t.docs then
    invalid_arg "Collection: unknown document id";
  t.docs.(doc)

let name_of t doc = (entry t doc).name
let ruid t doc = (entry t doc).r2

let add t ~name root =
  (match find t name with
  | Some _ -> invalid_arg ("Collection.add: duplicate name " ^ name)
  | None -> ());
  let r2 = Ruid.Ruid2.number ~max_area_size:t.max_area_size root in
  t.docs <- Array.append t.docs [| { name; r2 } |];
  Array.length t.docs - 1

let gid_of_node t doc n = { doc; id = Ruid.Ruid2.id_of_node (ruid t doc) n }

let node_of_gid t g =
  if g.doc < 0 || g.doc >= Array.length t.docs then None
  else Ruid.Ruid2.node_of_id (ruid t g.doc) g.id

let relationship t a b =
  if a.doc <> b.doc then None
  else Some (Ruid.Ruid2.relationship (ruid t a.doc) a.id b.id)

let query t src =
  let u = Xparser.parse_union src in
  Array.to_list t.docs
  |> List.mapi (fun i e ->
         let eng = Engine_ruid.create e.r2 in
         (i, Eval.select_union eng u))
  |> List.filter (fun (_, nodes) -> nodes <> [])

let total_nodes t =
  Array.fold_left
    (fun acc e -> acc + List.length (Ruid.Ruid2.all_nodes e.r2))
    0 t.docs

let aux_memory_words t =
  Array.fold_left (fun acc e -> acc + Ruid.Ruid2.aux_memory_words e.r2) 0 t.docs
