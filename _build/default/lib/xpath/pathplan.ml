module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module J = Rjoin.Structural_join

type connector = Child | Descendant

type plan = { absolute : bool; steps : (connector * string) list }

let pp_plan ppf p =
  List.iteri
    (fun i (c, tag) ->
      let sep = match c with Child -> "/" | Descendant -> "//" in
      if i > 0 || p.absolute || c = Descendant then
        Format.pp_print_string ppf sep;
      Format.pp_print_string ppf tag)
    p.steps

let compile (path : Ast.path) : plan option =
  (* Recognize alternating [descendant-or-self::node()] + [child::name]
     (the // expansion) and plain [child::name] / [descendant::name]
     steps, all without predicates. *)
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
      :: { Ast.axis = Ast.Child; test = Ast.Name t; preds = [] }
      :: rest ->
      go ((Descendant, t) :: acc) rest
    | { Ast.axis = Ast.Child; test = Ast.Name t; preds = [] } :: rest ->
      go ((Child, t) :: acc) rest
    | { Ast.axis = Ast.Descendant; test = Ast.Name t; preds = [] } :: rest ->
      go ((Descendant, t) :: acc) rest
    | _ -> None
  in
  match go [] path.Ast.steps with
  | Some ((_ :: _) as steps) -> Some { absolute = path.Ast.absolute; steps }
  | Some [] | None -> None

let run r2 index ?context plan =
  let context = Option.value ~default:(R2.root r2) context in
  let start = [ context ] in
  List.fold_left
    (fun frontier (connector, tag) ->
      let candidates = Tag_index.find index tag in
      match connector with
      | Descendant -> J.semijoin_descendants r2 ~anc:frontier ~desc:candidates
      | Child ->
        (* One rparent probe per candidate. *)
        let table = Hashtbl.create (List.length frontier * 2) in
        List.iter
          (fun p -> Hashtbl.replace table (R2.id_of_node r2 p) ())
          frontier;
        List.filter
          (fun c ->
            match R2.rparent r2 (R2.id_of_node r2 c) with
            | Some pid -> Hashtbl.mem table pid
            | None -> false)
          candidates)
    start plan.steps

let query r2 index ?context src =
  match Xparser.parse src with
  | exception Xparser.Syntax_error _ -> None
  | path -> (
    match compile path with
    | None -> None
    | Some plan -> Some (run r2 index ?context plan))
