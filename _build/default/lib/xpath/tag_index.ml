module Dom = Rxml.Dom

type t = (string, Dom.t list ref) Hashtbl.t

let create r2 =
  let index = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if Dom.is_element n then begin
        let tag = Dom.tag n in
        match Hashtbl.find_opt index tag with
        | Some l -> l := n :: !l
        | None -> Hashtbl.replace index tag (ref [ n ])
      end)
    (List.rev (Ruid.Ruid2.all_nodes r2));
  index

let find t tag =
  match Hashtbl.find_opt t tag with Some l -> !l | None -> []

let cardinality t tag = List.length (find t tag)
let tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t []
let total t = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t 0
