module Dom = Rxml.Dom
module R2 = Ruid.Ruid2

type edge = Child | Descendant

type pattern = {
  tag : string;
  edge : edge;
  branches : pattern list;
  spine : pattern option;
}

type t = pattern

let pattern t = t

(* ------------------------------------------------------------------ *)
(* Compilation from XPath                                              *)
(* ------------------------------------------------------------------ *)

(* A predicate usable as a twig branch: a relative child/descendant
   name-test path without further predicates except nested twig branches. *)
let rec branch_of_path (p : Ast.path) : pattern option =
  if p.Ast.absolute then None
  else steps_to_chain ~first_edge:Child p.Ast.steps

and steps_to_chain ~first_edge steps : pattern option =
  match steps with
  | [] -> None
  | _ ->
    let rec go edge = function
      | { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
        :: ({ Ast.axis = Ast.Child; test = Ast.Name _; _ } as nxt) :: rest ->
        go Descendant (nxt :: rest)
      | { Ast.axis = Ast.Child; test = Ast.Name tag; preds } :: rest ->
        finish edge tag preds rest
      | { Ast.axis = Ast.Descendant; test = Ast.Name tag; preds } :: rest ->
        finish Descendant tag preds rest
      | _ -> None
    and finish edge tag preds rest =
      let branches =
        List.fold_left
          (fun acc pred ->
            match acc with
            | None -> None
            | Some bs -> (
              match branch_of_pred pred with
              | Some more -> Some (bs @ more)
              | None -> None))
          (Some []) preds
      in
      match branches with
      | None -> None
      | Some branches -> (
        match rest with
        | [] -> Some { tag; edge; branches; spine = None }
        | rest -> (
          match go Child rest with
          | Some spine -> Some { tag; edge; branches; spine = Some spine }
          | None -> None))
    in
    go first_edge steps

(* A predicate contributes branches when it is a relative path, or a
   conjunction of such. *)
and branch_of_pred (e : Ast.expr) : pattern list option =
  match e with
  | Ast.Path p -> (
    match branch_of_path p with Some b -> Some [ b ] | None -> None)
  | Ast.And (a, b) -> (
    match (branch_of_pred a, branch_of_pred b) with
    | Some x, Some y -> Some (x @ y)
    | _ -> None)
  | _ -> None

let of_xpath (p : Ast.path) : t option =
  (* A leading descendant edge only ever comes from the steps themselves
     (the // expansion or an explicit descendant axis). *)
  steps_to_chain ~first_edge:Child p.Ast.steps

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Keep only [upper] nodes having a [lower] candidate related per [edge]:
   one rparent / rancestor probe per lower candidate. *)
let restrict_upper r2 edge ~upper ~lower =
  let keep = Hashtbl.create 64 in
  let table = Hashtbl.create (List.length upper * 2) in
  List.iter (fun u -> Hashtbl.replace table (R2.id_of_node r2 u) u) upper;
  List.iter
    (fun l ->
      let lid = R2.id_of_node r2 l in
      match edge with
      | Child -> (
        match R2.rparent r2 lid with
        | Some pid -> (
          match Hashtbl.find_opt table pid with
          | Some u -> Hashtbl.replace keep u.Dom.serial ()
          | None -> ())
        | None -> ())
      | Descendant ->
        List.iter
          (fun aid ->
            match Hashtbl.find_opt table aid with
            | Some u -> Hashtbl.replace keep u.Dom.serial ()
            | None -> ())
          (R2.rancestors r2 lid))
    lower;
  List.filter (fun u -> Hashtbl.mem keep u.Dom.serial) upper

(* Keep only [lower] nodes whose parent (Child) or some ancestor
   (Descendant) lies in [upper]. *)
let restrict_lower r2 edge ~upper ~lower =
  let table = Hashtbl.create (List.length upper * 2) in
  List.iter (fun u -> Hashtbl.replace table (R2.id_of_node r2 u) ()) upper;
  List.filter
    (fun l ->
      let lid = R2.id_of_node r2 l in
      match edge with
      | Child -> (
        match R2.rparent r2 lid with
        | Some pid -> Hashtbl.mem table pid
        | None -> false)
      | Descendant ->
        List.exists (fun aid -> Hashtbl.mem table aid) (R2.rancestors r2 lid))
    lower

let run r2 index ?context t =
  let context = Option.value ~default:(R2.root r2) context in
  (* Pass 1, bottom-up: candidate sets satisfying all downward
     constraints (branches and the spine continuation). *)
  let rec up (p : pattern) : Dom.t list =
    let cands = Tag_index.find index p.tag in
    let cands =
      List.fold_left
        (fun cands b -> restrict_upper r2 b.edge ~upper:cands ~lower:(up b))
        cands p.branches
    in
    match p.spine with
    | None -> cands
    | Some s -> restrict_upper r2 s.edge ~upper:cands ~lower:(up s)
  in
  let root_cands = up t in
  (* Anchor the twig root below the context. *)
  let root_cands =
    restrict_lower r2 t.edge ~upper:[ context ] ~lower:root_cands
  in
  (* Pass 2, top-down along the spine only: the output node must sit under
     surviving spine ancestors.  Branch candidates need no refinement —
     they only certify existence. *)
  let rec down (p : pattern) survivors =
    match p.spine with
    | None -> survivors
    | Some s ->
      let sc = restrict_lower r2 s.edge ~upper:survivors ~lower:(up s) in
      down s sc
  in
  let out = down t root_cands in
  List.sort
    (fun a b -> R2.doc_order r2 (R2.id_of_node r2 a) (R2.id_of_node r2 b))
    out

let query r2 index ?context src =
  match Xparser.parse src with
  | exception Xparser.Syntax_error _ -> None
  | path -> (
    match of_xpath path with
    | None -> None
    | Some t -> Some (run r2 index ?context t))
