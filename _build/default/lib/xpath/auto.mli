(** Automatic strategy selection for XPath queries over a numbered document.

    One entry point that picks the cheapest applicable machinery, most
    specific first:

    + {!Pathplan} — child/descendant name-test chains run as semijoin
      pipelines over the tag index;
    + {!Twig} — the same with structural predicates;
    + {!Engine_ruid} — everything else (all axes, positional and value
      predicates, unions), by identifier arithmetic.

    All three produce evaluator-identical node sets (property-tested), so
    the choice is purely a matter of cost. *)

type strategy = Plan | Twig_join | Engine

val pp_strategy : Format.formatter -> strategy -> unit

type t

val create : Ruid.Ruid2.t -> t
(** Builds the tag index and the ruid engine once. *)

val choose : t -> string -> strategy
(** Which machinery {!query} will use for this source text.
    @raise Xparser.Syntax_error on malformed input. *)

val query : t -> ?context:Rxml.Dom.t -> string -> Rxml.Dom.t list
(** Evaluate with the selected strategy.  Union expressions always use the
    engine. *)
