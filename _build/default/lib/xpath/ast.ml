type axis =
  | Child
  | Descendant
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Self
  | Descendant_or_self
  | Ancestor_or_self
  | Attribute

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Self -> "self"
  | Descendant_or_self -> "descendant-or-self"
  | Ancestor_or_self -> "ancestor-or-self"
  | Attribute -> "attribute"

let is_reverse_axis = function
  | Parent | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling -> true
  | Child | Descendant | Following_sibling | Following | Self
  | Descendant_or_self | Attribute -> false

type node_test = Name of string | Wildcard | Text_test | Node_any | Comment_test

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Or of expr * expr
  | And of expr * expr
  | Cmp of cmp * expr * expr
  | Num of float
  | Str of string
  | Position
  | Last
  | Count of path
  | Not of expr
  | Contains of expr * expr
  | Starts_with of expr * expr
  | String_length of expr
  | Name_fun
  | Path of path

and step = { axis : axis; test : node_test; preds : expr list }
and path = { absolute : bool; steps : step list }

type union_path = path list

let cmp_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let test_name = function
  | Name s -> s
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Node_any -> "node()"
  | Comment_test -> "comment()"

let rec pp_expr ppf = function
  | Or (a, b) -> Format.fprintf ppf "%a or %a" pp_expr a pp_expr b
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_expr a pp_expr b
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (cmp_name op) pp_expr b
  | Num f ->
    if Float.is_integer f then Format.fprintf ppf "%d" (int_of_float f)
    else Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Position -> Format.pp_print_string ppf "position()"
  | Last -> Format.pp_print_string ppf "last()"
  | Count p -> Format.fprintf ppf "count(%a)" pp_path p
  | Not e -> Format.fprintf ppf "not(%a)" pp_expr e
  | Contains (a, b) -> Format.fprintf ppf "contains(%a, %a)" pp_expr a pp_expr b
  | Starts_with (a, b) ->
    Format.fprintf ppf "starts-with(%a, %a)" pp_expr a pp_expr b
  | String_length e -> Format.fprintf ppf "string-length(%a)" pp_expr e
  | Name_fun -> Format.pp_print_string ppf "name()"
  | Path p -> pp_path ppf p

and pp_step ppf s =
  Format.fprintf ppf "%s::%s" (axis_name s.axis) (test_name s.test);
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_expr p) s.preds

and pp_path ppf p =
  if p.absolute then Format.pp_print_string ppf "/";
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "/")
    pp_step ppf p.steps

let path_to_string p = Format.asprintf "%a" pp_path p

let pp_union ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
    pp_path ppf u

let union_to_string u = Format.asprintf "%a" pp_union u
