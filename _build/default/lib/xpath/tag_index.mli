(** Element-name index over a numbered document: tag -> nodes in document
    order.  The paper's query-processing strategy (Section 3.5) starts from
    "the set of nodes satisfying C" — for name tests, exactly this index —
    and decides axis membership per candidate by identifier arithmetic. *)

type t

val create : Ruid.Ruid2.t -> t
val find : t -> string -> Rxml.Dom.t list
(** Document order; empty for unknown tags. *)

val cardinality : t -> string -> int
val tags : t -> string list
val total : t -> int
