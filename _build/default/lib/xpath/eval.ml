module Dom = Rxml.Dom

type engine = {
  root : Dom.t;
  axis : Ast.axis -> Dom.t -> Dom.t list;
  named_axis : Ast.axis -> string -> Dom.t -> Dom.t list option;
  compare_order : Dom.t -> Dom.t -> int;
  rank_of : Dom.t -> int option;
      (* snapshot document-order rank, when the engine has one: lets sorts
         decorate once instead of paying table lookups per comparison *)
}

type value =
  | Bool of bool
  | Num of float
  | Str of string
  | Nodes of Dom.t list
  | Attrs of string list

let to_bool = function
  | Bool b -> b
  | Num f -> f <> 0. && not (Float.is_nan f)
  | Str s -> s <> ""
  | Nodes l -> l <> []
  | Attrs l -> l <> []

let node_string n = Dom.text_content n

let to_str = function
  | Str s -> s
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else string_of_float f
  | Bool b -> if b then "true" else "false"
  | Nodes [] -> ""
  | Nodes (n :: _) -> node_string n
  | Attrs [] -> ""
  | Attrs (v :: _) -> v

let num_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let to_num = function
  | Num f -> f
  | Str s -> num_of_string s
  | Bool b -> if b then 1. else 0.
  | (Nodes _ | Attrs _) as v -> num_of_string (to_str v)

let matches_test test (n : Dom.t) =
  match (test, n.Dom.kind) with
  | Ast.Name t, Dom.Element e -> e.Dom.tag = t
  | Ast.Wildcard, Dom.Element _ -> true
  | Ast.Text_test, Dom.Text _ -> true
  | Ast.Comment_test, Dom.Comment _ -> true
  | Ast.Node_any, _ -> true
  | (Ast.Name _ | Ast.Wildcard | Ast.Text_test | Ast.Comment_test), _ -> false

(* Existential comparison semantics of XPath 1.0. *)
let cmp_op op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let compare_values op va vb =
  let strings_of = function
    | Nodes l -> List.map node_string l
    | Attrs l -> l
    | v -> [ to_str v ]
  in
  let is_set = function Nodes _ | Attrs _ -> true | Bool _ | Num _ | Str _ -> false in
  let numeric =
    match (op, va, vb) with
    | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _ -> true
    | _, Num _, _ | _, _, Num _ -> true
    | _ -> false
  in
  if is_set va || is_set vb then begin
    let sa = strings_of va and sb = strings_of vb in
    List.exists
      (fun a ->
        List.exists
          (fun b ->
            if numeric then cmp_op op (compare (num_of_string a) (num_of_string b)) 0
            else cmp_op op (compare a b) 0)
          sb)
      sa
  end
  else if numeric then cmp_op op (compare (to_num va) (to_num vb)) 0
  else
    match (va, vb) with
    | Bool _, _ | _, Bool _ -> cmp_op op (compare (to_bool va) (to_bool vb)) 0
    | _ -> cmp_op op (compare (to_str va) (to_str vb)) 0

let sort_doc eng nodes =
  let tbl = Hashtbl.create (List.length nodes * 2) in
  let uniq =
    List.filter
      (fun n ->
        if Hashtbl.mem tbl n.Dom.serial then false
        else begin
          Hashtbl.replace tbl n.Dom.serial ();
          true
        end)
      nodes
  in
  (* Decorate with snapshot ranks when available (one lookup per node
     instead of two per comparison). *)
  let decorated = List.map (fun n -> (eng.rank_of n, n)) uniq in
  if List.for_all (fun (r, _) -> r <> None) decorated then
    List.map snd
      (List.sort
         (fun (a, _) (b, _) -> Stdlib.compare a b)
         (List.map (fun (r, n) -> (Option.get r, n)) decorated))
  else List.sort eng.compare_order uniq

(* [steps] maintains the invariant that [current] is already in document
   order without duplicates, so each step sorts only its own output. *)
let rec eval_path eng context (p : Ast.path) : value =
  let start = if p.Ast.absolute then eng.root else context in
  let rec steps current = function
    | [] -> Nodes current
    | [ ({ Ast.axis = Ast.Attribute; _ } as step) ] ->
      let values =
        List.concat_map
          (fun n ->
            match step.Ast.test with
            | Ast.Name a -> (
              match Dom.attr n a with Some v -> [ v ] | None -> [])
            | Ast.Wildcard | Ast.Node_any -> (
              match n.Dom.kind with
              | Dom.Element e -> List.map snd e.Dom.attrs
              | _ -> [])
            | Ast.Text_test | Ast.Comment_test -> [])
          current
      in
      (* Attribute predicates beyond existence are not supported. *)
      if step.Ast.preds <> [] then
        invalid_arg "Eval: predicates on the attribute axis are unsupported";
      Attrs values
    | { Ast.axis = Ast.Attribute; _ } :: _ ->
      invalid_arg "Eval: attribute step must be the last step"
    | step :: rest ->
      let out = List.concat_map (eval_step eng step) current in
      steps (sort_doc eng out) rest
  in
  steps [ start ] p.Ast.steps

and eval_step eng (step : Ast.step) context_node =
  let candidates =
    match step.Ast.test with
    | Ast.Name t -> (
      match eng.named_axis step.Ast.axis t context_node with
      | Some nodes -> nodes
      | None ->
        List.filter (matches_test step.Ast.test)
          (eng.axis step.Ast.axis context_node))
    | test ->
      List.filter (matches_test test) (eng.axis step.Ast.axis context_node)
  in
  List.fold_left (fun nodes pred -> filter_pred eng pred nodes) candidates
    step.Ast.preds

and filter_pred eng pred nodes =
  let size = List.length nodes in
  List.filteri
    (fun i n ->
      let position = i + 1 in
      match eval_expr eng ~node:n ~position ~size pred with
      | Num f -> Float.equal f (float_of_int position)
      | v -> to_bool v)
    nodes

and eval_expr eng ~node ~position ~size = function
  | Ast.Or (a, b) ->
    Bool
      (to_bool (eval_expr eng ~node ~position ~size a)
      || to_bool (eval_expr eng ~node ~position ~size b))
  | Ast.And (a, b) ->
    Bool
      (to_bool (eval_expr eng ~node ~position ~size a)
      && to_bool (eval_expr eng ~node ~position ~size b))
  | Ast.Cmp (op, a, b) ->
    Bool
      (compare_values op
         (eval_expr eng ~node ~position ~size a)
         (eval_expr eng ~node ~position ~size b))
  | Ast.Num f -> Num f
  | Ast.Str s -> Str s
  | Ast.Position -> Num (float_of_int position)
  | Ast.Last -> Num (float_of_int size)
  | Ast.Count p -> (
    match eval_path eng node p with
    | Nodes l -> Num (float_of_int (List.length l))
    | Attrs l -> Num (float_of_int (List.length l))
    | v -> Num (to_num v))
  | Ast.Not e -> Bool (not (to_bool (eval_expr eng ~node ~position ~size e)))
  | Ast.Contains (a, b) ->
    let sa = to_str (eval_expr eng ~node ~position ~size a) in
    let sb = to_str (eval_expr eng ~node ~position ~size b) in
    let m = String.length sb in
    let rec scan i =
      i + m <= String.length sa && (String.sub sa i m = sb || scan (i + 1))
    in
    Bool (scan 0)
  | Ast.Starts_with (a, b) ->
    let sa = to_str (eval_expr eng ~node ~position ~size a) in
    let sb = to_str (eval_expr eng ~node ~position ~size b) in
    Bool
      (String.length sa >= String.length sb
      && String.sub sa 0 (String.length sb) = sb)
  | Ast.String_length e ->
    Num (float_of_int (String.length (to_str (eval_expr eng ~node ~position ~size e))))
  | Ast.Name_fun -> Str (Dom.tag node)
  | Ast.Path p -> eval_path eng node p

(* A predicate is positional if its outcome can depend on the proximity
   position, in which case step rewrites that change candidate grouping are
   unsound: a bare number (shorthand for [position() = n]) or any use of
   [position()]/[last()]. *)
let rec uses_position = function
  | Ast.Position | Ast.Last -> true
  | Ast.Num _ | Ast.Str _ -> false
  | Ast.Or (a, b) | Ast.And (a, b) | Ast.Cmp (_, a, b) ->
    uses_position a || uses_position b
  | Ast.Not e | Ast.String_length e -> uses_position e
  | Ast.Contains (a, b) | Ast.Starts_with (a, b) ->
    uses_position a || uses_position b
  | Ast.Name_fun -> false
  | Ast.Count p | Ast.Path p ->
    List.exists (fun s -> List.exists positional s.Ast.preds) p.Ast.steps

and positional = function
  | Ast.Num _ -> true
  | e -> uses_position e

(* Collapse [descendant-or-self::node()/child::T] (the expansion of [//T])
   into [descendant::T]: same node-set, and it lets engines answer the name
   test from a tag index.  Sound only without positional predicates, whose
   grouping differs between the two forms. *)
let rec optimize (p : Ast.path) : Ast.path =
  let rec steps = function
    | ({ Ast.axis = Ast.Descendant_or_self; test = Ast.Node_any; preds = [] }
      :: ({ Ast.axis = Ast.Child; test = Ast.Name _; preds } as nxt) :: rest)
      when not (List.exists positional preds) ->
      { nxt with Ast.axis = Ast.Descendant;
        preds = List.map optimize_expr preds }
      :: steps rest
    | s :: rest -> { s with Ast.preds = List.map optimize_expr s.Ast.preds } :: steps rest
    | [] -> []
  in
  { p with Ast.steps = steps p.Ast.steps }

and optimize_expr = function
  | Ast.Or (a, b) -> Ast.Or (optimize_expr a, optimize_expr b)
  | Ast.And (a, b) -> Ast.And (optimize_expr a, optimize_expr b)
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, optimize_expr a, optimize_expr b)
  | Ast.Not e -> Ast.Not (optimize_expr e)
  | Ast.Contains (a, b) -> Ast.Contains (optimize_expr a, optimize_expr b)
  | Ast.Starts_with (a, b) -> Ast.Starts_with (optimize_expr a, optimize_expr b)
  | Ast.String_length e -> Ast.String_length (optimize_expr e)
  | Ast.Count p -> Ast.Count (optimize p)
  | Ast.Path p -> Ast.Path (optimize p)
  | (Ast.Num _ | Ast.Str _ | Ast.Position | Ast.Last | Ast.Name_fun) as e -> e

let eval eng ?context p =
  let context = Option.value ~default:eng.root context in
  eval_path eng context (optimize p)

let select eng ?context p =
  match eval eng ?context p with
  | Nodes l -> l
  | Attrs _ -> invalid_arg "Eval.select: path ends on the attribute axis"
  | Bool _ | Num _ | Str _ -> assert false

let select_union eng ?context (u : Ast.union_path) =
  sort_doc eng (List.concat_map (fun p -> select eng ?context p) u)

let query eng ?context src = select_union eng ?context (Xparser.parse_union src)
