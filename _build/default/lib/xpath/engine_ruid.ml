module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

let create r2 =
  let root = R2.root r2 in
  let index = Tag_index.create r2 in
  let by_tag tag = Tag_index.find index tag in
  let id n = R2.id_of_node r2 n in
  (* Document-order ranks are snapshotted alongside the tag index; pairwise
     order between arbitrary identifiers is still available through
     [R2.doc_order], but result merging sorts by rank. *)
  let rank = Hashtbl.create 1024 in
  List.iteri (fun i n -> Hashtbl.replace rank n.Dom.serial i) (R2.all_nodes r2);
  let compare_order a b =
    match (Hashtbl.find_opt rank a.Dom.serial, Hashtbl.find_opt rank b.Dom.serial) with
    | Some ra, Some rb -> Stdlib.compare ra rb
    | _ -> R2.doc_order r2 (id a) (id b)
  in
  let rank_sorted nodes =
    List.map
      (fun n ->
        (Option.value ~default:max_int (Hashtbl.find_opt rank n.Dom.serial), n))
      nodes
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
    |> List.map snd
  in
  let axis (a : Ast.axis) n =
    match a with
    | Ast.Self -> [ n ]
    | Ast.Child -> R2.children r2 n
    | Ast.Descendant -> rank_sorted (R2.descendants_unordered r2 n)
    | Ast.Descendant_or_self ->
      n :: rank_sorted (R2.descendants_unordered r2 n)
    | Ast.Parent -> (
      match R2.parent_node r2 n with Some p -> [ p ] | None -> [])
    | Ast.Ancestor -> R2.ancestors r2 n
    | Ast.Ancestor_or_self -> n :: R2.ancestors r2 n
    | Ast.Following_sibling -> R2.following_siblings r2 n
    | Ast.Preceding_sibling -> List.rev (R2.preceding_siblings r2 n)
    | Ast.Following -> R2.following r2 n
    | Ast.Preceding -> List.rev (R2.preceding r2 n)
    | Ast.Attribute -> invalid_arg "Engine_ruid: attribute axis"
  in
  (* Name tests on unbounded axes: take the tag's posting list and decide
     membership per candidate by identifier arithmetic alone. *)
  let named_axis (a : Ast.axis) tag n =
    let rel_filter want =
      let nid = id n in
      List.filter (fun c -> Rel.equal (R2.relationship r2 (id c) nid) want)
        (by_tag tag)
    in
    match a with
    | Ast.Descendant ->
      (* Filtering the posting list costs one relationship check per posted
         node; past a point, generating the axis and testing the tag is
         cheaper (the trade-off Section 3.5 discusses). *)
      if List.length (by_tag tag) <= 256 then Some (rel_filter Rel.Descendant)
      else None
    | Ast.Following -> Some (rel_filter Rel.After)
    | Ast.Preceding -> Some (List.rev (rel_filter Rel.Before))
    | Ast.Ancestor ->
      (* rancestor, then tag filter: O(depth) identifiers. *)
      Some (List.filter (fun x -> Dom.tag x = tag) (R2.ancestors r2 n))
    | Ast.Child | Ast.Parent | Ast.Self | Ast.Descendant_or_self
    | Ast.Ancestor_or_self | Ast.Following_sibling | Ast.Preceding_sibling
    | Ast.Attribute -> None
  in
  {
    Eval.root;
    axis;
    named_axis;
    compare_order;
    rank_of = (fun n -> Hashtbl.find_opt rank n.Dom.serial);
  }
