(** Twig (branching path) pattern matching over a numbered document.

    A twig is a tree of (tag, edge) nodes — edges are child or descendant —
    the shape behind XPath steps with structural predicates, e.g.
    [//item[name][description//text]/payment].  Matching runs in two
    semijoin passes over the tag index, every structural test being
    identifier arithmetic:

    - bottom-up: a node survives if, for every pattern child, some
      candidate of that child has it as parent ([rparent]) or ancestor
      ([rancestor]);
    - top-down: a node survives if its own parent/ancestor chain reaches a
      surviving candidate of the pattern parent.

    The result is the match set of a designated {e output} node (the last
    spine step of the originating XPath).  Equivalence with the full XPath
    evaluator is property-tested. *)

type edge = Child | Descendant

type pattern = {
  tag : string;
  edge : edge;  (** relation to the pattern parent (or to the context for
                    the root) *)
  branches : pattern list;  (** structural predicates *)
  spine : pattern option;  (** continuation of the extraction path *)
}

type t

val pattern : t -> pattern

val of_xpath : Ast.path -> t option
(** Compile an XPath whose steps are child/descendant name tests and whose
    predicates are (conjunctions of) relative child/descendant name-test
    paths — the twig fragment.  [None] for anything else. *)

val run :
  Ruid.Ruid2.t -> Tag_index.t -> ?context:Rxml.Dom.t -> t -> Rxml.Dom.t list
(** Matches of the output node, in document order. *)

val query :
  Ruid.Ruid2.t -> Tag_index.t -> ?context:Rxml.Dom.t -> string ->
  Rxml.Dom.t list option
(** Parse, compile and run; [None] when not a twig. *)
