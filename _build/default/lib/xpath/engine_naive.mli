(** Baseline axis engine: every axis is computed by walking the DOM, with a
    precomputed preorder-rank table for document-order comparisons.  This is
    the "scan the tree" evaluation the paper's numbering-driven approach is
    measured against in experiment E4. *)

val create : Rxml.Dom.t -> Eval.engine
(** Snapshot the tree rooted at the argument.  Rebuild after structural
    updates. *)
