lib/xpath/xparser.mli: Ast
