lib/xpath/pathplan.mli: Ast Format Ruid Rxml Tag_index
