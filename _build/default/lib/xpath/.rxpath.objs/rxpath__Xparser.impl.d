lib/xpath/xparser.ml: Ast Format List String
