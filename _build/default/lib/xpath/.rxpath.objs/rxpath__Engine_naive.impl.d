lib/xpath/engine_naive.ml: Ast Eval Hashtbl List Rxml Stdlib
