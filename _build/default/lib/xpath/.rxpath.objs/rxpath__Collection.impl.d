lib/xpath/collection.ml: Array Engine_ruid Eval Format List Ruid Rxml Xparser
