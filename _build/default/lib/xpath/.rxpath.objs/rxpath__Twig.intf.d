lib/xpath/twig.mli: Ast Ruid Rxml Tag_index
