lib/xpath/pathplan.ml: Ast Format Hashtbl List Option Rjoin Ruid Rxml Tag_index Xparser
