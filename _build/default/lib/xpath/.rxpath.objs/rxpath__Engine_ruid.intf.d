lib/xpath/engine_ruid.mli: Eval Ruid
