lib/xpath/engine_ruid.ml: Ast Eval Hashtbl List Option Ruid Rxml Stdlib Tag_index
