lib/xpath/auto.ml: Engine_ruid Eval Format Pathplan Ruid Rxml Tag_index Twig Xparser
