lib/xpath/eval.ml: Ast Float Hashtbl List Option Rxml Stdlib String Xparser
