lib/xpath/twig.ml: Ast Hashtbl List Option Ruid Rxml Tag_index Xparser
