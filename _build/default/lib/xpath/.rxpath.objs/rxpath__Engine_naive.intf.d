lib/xpath/engine_naive.mli: Eval Rxml
