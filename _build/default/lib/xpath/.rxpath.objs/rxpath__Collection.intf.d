lib/xpath/collection.mli: Format Ruid Rxml
