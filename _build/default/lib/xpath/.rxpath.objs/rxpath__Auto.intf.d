lib/xpath/auto.mli: Format Ruid Rxml
