lib/xpath/tag_index.ml: Hashtbl List Ruid Rxml
