lib/xpath/tag_index.mli: Ruid Rxml
