lib/xpath/eval.mli: Ast Rxml
