(** Parser for the XPath subset (lexing included).

    Supported syntax: absolute and relative location paths; all axes of
    {!Ast.axis} in explicit [axis::test] form; the abbreviations [//], [.],
    [..], [@name]; name, [*], [text()], [node()], [comment()] node tests;
    predicates with [or]/[and], the six comparison operators, numeric and
    string literals, [position()], [last()], [count(path)], [not(expr)],
    and nested relative paths. *)

exception Syntax_error of string

val parse : string -> Ast.path
(** @raise Syntax_error on malformed input (including union expressions —
    use {!parse_union} for those). *)

val parse_union : string -> Ast.union_path
(** Parse a ['|']-separated union of location paths (a single path yields
    a one-element union).
    @raise Syntax_error on malformed input. *)
