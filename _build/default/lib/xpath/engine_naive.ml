module Dom = Rxml.Dom

let create root =
  let rank = Hashtbl.create 1024 in
  let i = ref 0 in
  Dom.iter_preorder
    (fun n ->
      Hashtbl.replace rank n.Dom.serial !i;
      incr i)
    root;
  let rank_of n =
    match Hashtbl.find_opt rank n.Dom.serial with
    | Some r -> r
    | None -> invalid_arg "Engine_naive: node outside the snapshot"
  in
  let compare_order a b = Stdlib.compare (rank_of a) (rank_of b) in
  let siblings ~before n =
    match n.Dom.parent with
    | None -> []
    | Some p ->
      let idx = Dom.child_index n in
      let keep i _ = if before then i < idx else i > idx in
      let l = List.filteri keep p.Dom.children in
      if before then List.rev l else l
  in
  let axis (a : Ast.axis) n =
    match a with
    | Ast.Self -> [ n ]
    | Ast.Child -> n.Dom.children
    | Ast.Descendant -> Dom.descendants n
    | Ast.Descendant_or_self -> n :: Dom.descendants n
    | Ast.Parent -> ( match n.Dom.parent with Some p -> [ p ] | None -> [])
    | Ast.Ancestor -> Dom.ancestors n
    | Ast.Ancestor_or_self -> n :: Dom.ancestors n
    | Ast.Following_sibling -> siblings ~before:false n
    | Ast.Preceding_sibling -> siblings ~before:true n
    | Ast.Following ->
      let r = rank_of n in
      List.filter
        (fun x ->
          rank_of x > r
          && not (Dom.is_ancestor ~anc:n ~desc:x))
        (Dom.preorder root)
    | Ast.Preceding ->
      let r = rank_of n in
      List.rev
        (List.filter
           (fun x ->
             rank_of x < r
             && not (Dom.is_ancestor ~anc:x ~desc:n))
           (Dom.preorder root))
    | Ast.Attribute -> invalid_arg "Engine_naive: attribute axis"
  in
  {
    Eval.root;
    axis;
    named_axis = (fun _ _ _ -> None);
    compare_order;
    rank_of = (fun n -> Hashtbl.find_opt rank n.Dom.serial);
  }
