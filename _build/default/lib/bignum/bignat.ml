(* Unsigned bignums in base 2^30, little-endian int arrays, normalized so the
   top digit is non-zero (zero = empty array).  Base 2^30 keeps every
   intermediate product of two digits below 2^60, safely inside OCaml's
   63-bit native ints. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let is_zero a = Array.length a = 0

(* Drop trailing zero digits. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr base_bits) in
    let len = count 0 n in
    Array.init len (fun i -> (n lsr (i * base_bits)) land base_mask)
  end

let to_int_opt a =
  (* max_int has 62 bits: at most three digits (30 + 30 + 2). *)
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl base_bits))
  | 3 when a.(2) < 1 lsl (Sys.int_size - 1 - (2 * base_bits)) ->
    Some (a.(0) lor (a.(1) lsl base_bits) lor (a.(2) lsl (2 * base_bits)))
  | _ -> None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let succ a = add a one

let pred a = if is_zero a then invalid_arg "Bignat.pred: zero" else sub a one

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- v land base_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land base_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_int a m =
  if m < 0 then invalid_arg "Bignat.mul_int: negative";
  mul a (of_int m)

let add_int a m =
  if m < 0 then invalid_arg "Bignat.add_int: negative";
  add a (of_int m)

let sub_int a m =
  if m < 0 then invalid_arg "Bignat.sub_int: negative";
  sub a (of_int m)

let divmod_int a d =
  if d = 0 then raise Division_by_zero;
  if d < 0 || d >= base then invalid_arg "Bignat.divmod_int: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let bit_length a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    ((la - 1) * base_bits) + bits 0 top
  end

let nth_bit a i =
  let w = i / base_bits and b = i mod base_bits in
  if w >= Array.length a then 0 else (a.(w) lsr b) land 1

(* Binary long division: process the dividend's bits from most significant
   to least, maintaining remainder < divisor.  O(bits(a) * words(b)), ample
   for identifier-sized numbers. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let nb = bit_length a in
    let qwords = (nb + base_bits - 1) / base_bits in
    let q = Array.make qwords 0 in
    let r = ref zero in
    for i = nb - 1 downto 0 do
      (* r := 2r + bit i of a *)
      let r2 = mul_int !r 2 in
      r := if nth_bit a i = 1 then succ r2 else r2;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize q, !r)
  end

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        (* Peel nine decimal digits at a time (10^9 < 2^30). *)
        let q, r = divmod_int a 1_000_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go a;
    Buffer.contents buf
  end

let of_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> String.of_seq
  in
  let digits =
    if String.length digits > 0 && digits.[0] = '+' then
      String.sub digits 1 (String.length digits - 1)
    else digits
  in
  if String.length digits = 0 then invalid_arg "Bignat.of_string: empty";
  String.fold_left
    (fun acc c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: bad digit"
      else add_int (mul_int acc 10) (Char.code c - Char.code '0'))
    zero digits

let pp ppf a = Format.pp_print_string ppf (to_string a)

let to_float a =
  Array.to_list a
  |> List.rev
  |> List.fold_left (fun acc d -> (acc *. float_of_int base) +. float_of_int d) 0.
