lib/bignum/bignat.ml: Array Buffer Char Format List Printf Seq Stdlib String Sys
