(** Arbitrary-precision natural numbers.

    The original UID numbering scheme assigns identifiers that grow as
    [k^depth] where [k] is the maximal fan-out of the document; the paper
    (Section 1) notes that such values "easily exceed the maximal manageable
    integer value" and that "additional purpose-specific libraries are
    necessary".  This module is that library: an unsigned bignum sufficient
    to represent, compare and do the UID parent/children arithmetic on
    identifiers of arbitrarily large virtual trees.

    Representation: little-endian array of base-2{^30} digits, no trailing
    zero digit, the number zero being the empty array.  All values are
    immutable. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] converts a non-negative machine integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a non-negative OCaml [int]. *)

val of_string : string -> t
(** [of_string s] parses a decimal string (optional leading [+], underscores
    allowed as separators).
    @raise Invalid_argument on empty or malformed input. *)

val to_string : t -> string
(** Decimal rendering, no leading zeros. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a]. *)

val pred : t -> t
(** @raise Invalid_argument on zero. *)

val mul : t -> t -> t

val mul_int : t -> int -> t
(** [mul_int a m] with [0 <= m]. *)

val add_int : t -> int -> t
(** [add_int a m] with [0 <= m]. *)

val sub_int : t -> int -> t
(** [sub_int a m] with [0 <= m].
    @raise Invalid_argument if [a < m]. *)

val divmod_int : t -> int -> t * int
(** [divmod_int a d] is [(a / d, a mod d)] for [0 < d < 2{^30}].
    @raise Division_by_zero if [d = 0].
    @raise Invalid_argument if [d] is negative or too large. *)

val divmod : t -> t -> t * t
(** Long division. @raise Division_by_zero on a zero divisor. *)

val pow : t -> int -> t
(** [pow b e] with [e >= 0]. *)

val bit_length : t -> int
(** Number of bits in the binary representation; [bit_length zero = 0]. *)

val to_float : t -> float
(** Nearest float, [infinity] when out of range; for reporting magnitudes. *)
