(** Multilevel ruid (3 levels, small areas) packaged as a {!Scheme.S}. *)

include Scheme.S with type t = Mruid.t
