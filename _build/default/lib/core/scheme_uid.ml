(* The original UID as a Scheme.S: identifiers over Bignat (they overflow
   native ints by design), full re-enumeration on every structural change —
   the behaviour Section 1 and Fig. 1 describe. *)

module Dom = Rxml.Dom
module U = Uid.Over_big
module B = Bignum.Bignat

let name = "uid"
let parent_derivable = true

type t = {
  root : Dom.t;
  mutable k : int;
  mutable labels : (int, B.t) Hashtbl.t;
}

let relabel t =
  let lb = U.label ~k:t.k t.root in
  t.labels <- lb.U.id_of

let build root =
  let max_fanout = Dom.fold_preorder (fun acc n -> max acc (Dom.degree n)) 1 root in
  let t = { root; k = max_fanout; labels = Hashtbl.create 16 } in
  relabel t;
  t

let label t n = Hashtbl.find t.labels n.Dom.serial

let relation t a b = U.relation ~k:t.k (label t a) (label t b)

let label_string t n = B.to_string (label t n)

let change ?skip t mutate =
  let old_labels = t.labels in
  mutate ();
  relabel t;
  Scheme.diff_count ~old_labels ~new_labels:t.labels ~skip

let insert t ~parent ~pos node =
  change ~skip:node.Dom.serial t (fun () ->
      Dom.insert_child parent ~pos node;
      (* Fan-out overflow forces a larger enumeration tree — and with it a
         renumbering of the entire document. *)
      if Dom.degree parent > t.k then t.k <- Dom.degree parent)

let delete t node =
  change t (fun () ->
      match node.Dom.parent with
      | None -> invalid_arg "Scheme_uid.delete: cannot delete the root"
      | Some p -> Dom.remove_child p node)

let max_label_bits t =
  Hashtbl.fold (fun _ l acc -> max acc (B.bit_length l)) t.labels 0

let total_label_bits t =
  Hashtbl.fold (fun _ l acc -> acc + max 1 (B.bit_length l)) t.labels 0

let aux_memory_words _ = 1 (* just k *)
let k t = t.k
