(** Persistence of numbered documents.

    Identifiers are only useful as external keys if they survive process
    restarts without a renumbering (which would defeat the stability the
    scheme buys).  This module writes a numbered document as the XML text
    plus a compact binary sidecar — kappa, the K table, and the varint
    identifier stream in document order — and restores the exact numbering
    on load.

    Sidecar format (all integers LEB128 varints):
    {v magic "RUID2\x02" | root-kind (1 = document node) | kappa | #K rows
       | rows (global, root_local, fanout) | #nodes | per node: root flag
       + global + local v} *)

val save : Ruid2.t -> xml:string -> sidecar:string -> unit
(** Write the document (compact XML) and its numbering. *)

val load : xml:string -> sidecar:string -> Rxml.Dom.t * Ruid2.t
(** Parse, restore and verify (via {!Ruid2.restore}); returns the document
    node and the numbering over its root element.
    @raise Invalid_argument if the sidecar is malformed or does not match
    the document. *)

val sidecar_to_bytes : Ruid2.t -> bytes
val sidecar_of_bytes : Rxml.Dom.t -> bytes -> Ruid2.t
(** In-memory variants (the file functions are thin wrappers); the [Dom.t]
    argument is the numbered root element. *)
