(** The original UID technique packaged as a {!Scheme.S}: identifiers over
    arbitrary-precision naturals, with the full-document renumbering
    behaviour on structural updates that Section 1 and Fig. 1 describe. *)

include Scheme.S

val k : t -> int
(** Current fan-out of the enumeration tree. *)
