module Dom = Rxml.Dom

type component = { index : int; is_root : bool }
type id = { top : int; components : component list }

let pp_id ppf i =
  Format.fprintf ppf "{%d" i.top;
  List.iter
    (fun c -> Format.fprintf ppf ", (%d, %b)" c.index c.is_root)
    i.components;
  Format.fprintf ppf "}"

let id_to_string i = Format.asprintf "%a" pp_id i
let id_equal (a : id) (b : id) = a = b

type level = {
  ruid : Ruid2.t;
  (* Mapping between this level's area roots and the next level's mirror
     nodes; [None] at the topmost level. *)
  mirror_of : (int, Dom.t) Hashtbl.t option;
  orig_of : (int, Dom.t) Hashtbl.t option;
}

type t = { levels : level array; doc_root : Dom.t }

let levels t = Array.length t.levels + 1
let base t = t.levels.(0).ruid

(* Mirror a frame as a fresh element tree whose shape is the frame's. *)
let mirror_frame frame =
  let mirror_of = Hashtbl.create 64 in
  let orig_of = Hashtbl.create 64 in
  let rec go orig =
    let m = Dom.element "frame-node" in
    Hashtbl.replace mirror_of orig.Dom.serial m;
    Hashtbl.replace orig_of m.Dom.serial orig;
    List.iter
      (fun c -> Dom.append_child m (go c))
      (Frame.frame_children frame orig);
    m
  in
  let root = go (Frame.root frame) in
  (root, mirror_of, orig_of)

let build ?(levels = 3) ?max_area_size doc_root =
  if levels < 2 then invalid_arg "Multilevel.build: need at least 2 levels";
  let rec go depth tree =
    let ruid = Ruid2.number ?max_area_size tree in
    if depth >= levels - 1 || Ruid2.area_count ruid <= 1 then
      [ { ruid; mirror_of = None; orig_of = None } ]
    else begin
      let mroot, mirror_of, orig_of = mirror_frame (Ruid2.frame ruid) in
      { ruid; mirror_of = Some mirror_of; orig_of = Some orig_of }
      :: go (depth + 1) mroot
    end
  in
  { levels = Array.of_list (go 1 doc_root); doc_root }

let id_of_node t n =
  let rec go lvl node comps =
    let level = t.levels.(lvl) in
    let i = Ruid2.id_of_node level.ruid node in
    let comps = { index = i.Ruid2.local; is_root = i.Ruid2.is_root } :: comps in
    match level.mirror_of with
    | None -> { top = i.Ruid2.global; components = comps }
    | Some mirror_of ->
      let area_root =
        match Ruid2.area_root_node level.ruid i.Ruid2.global with
        | Some r -> r
        | None -> assert false
      in
      go (lvl + 1) (Hashtbl.find mirror_of area_root.Dom.serial) comps
  in
  go 0 n []

let node_of_id t i =
  (* Resolve top-down: reconstruct each level's Ruid2 identifier, starting
     from the topmost global. *)
  let top_level = Array.length t.levels - 1 in
  let rec go lvl global comps =
    match comps with
    | [] -> None
    | c :: rest ->
      let level = t.levels.(lvl) in
      let rid = { Ruid2.global; local = c.index; is_root = c.is_root } in
      (match Ruid2.node_of_id level.ruid rid with
      | None -> None
      | Some node ->
        if lvl = 0 then Some node
        else begin
          (* [node] mirrors an area root one level down. *)
          match t.levels.(lvl - 1).orig_of with
          | None -> assert false
          | Some orig_of ->
            (match Hashtbl.find_opt orig_of node.Dom.serial with
            | None -> None
            | Some orig ->
              (match Ruid2.global_of_area t.levels.(lvl - 1).ruid orig with
              | None -> None
              | Some g -> go (lvl - 1) g rest))
        end)
  in
  if List.length i.components <> top_level + 1 then None
  else go top_level i.top i.components

let parent t i =
  match node_of_id t i with
  | None -> None
  | Some n -> (
    match Ruid2.rparent (base t) (Ruid2.id_of_node (base t) n) with
    | None -> None
    | Some p -> (
      match Ruid2.node_of_id (base t) p with
      | None -> None
      | Some pn -> Some (id_of_node t pn)))

let relationship t a b =
  match (node_of_id t a, node_of_id t b) with
  | Some na, Some nb ->
    Ruid2.relationship (base t)
      (Ruid2.id_of_node (base t) na)
      (Ruid2.id_of_node (base t) nb)
  | _ -> invalid_arg "Multilevel.relationship: unresolvable identifier"

let insert_node ?slack t ~parent ~pos node =
  Ruid2.insert_node ?slack (base t) ~parent ~pos node

let delete_subtree t node = Ruid2.delete_subtree (base t) node

let aux_memory_words t =
  Array.fold_left
    (fun acc l -> acc + Ruid2.aux_memory_words l.ruid)
    0 t.levels

let max_component_bits t =
  Array.fold_left
    (fun acc l -> max acc (Ruid2.max_local_bits l.ruid))
    0 t.levels

let addressable ~e ~levels =
  Bignum.Bignat.pow (Bignum.Bignat.of_int e) levels

let check_consistency t =
  Array.iter (fun l -> Ruid2.check_consistency l.ruid) t.levels;
  (* Identifier round-trip for every document node. *)
  Dom.iter_preorder
    (fun n ->
      let i = id_of_node t n in
      match node_of_id t i with
      | Some m when Dom.equal m n -> ()
      | _ ->
        Format.kasprintf failwith "multilevel id %s does not resolve back"
          (id_to_string i))
    t.doc_root
