module Dom = Rxml.Dom
module Bignat = Bignum.Bignat

exception Overflow

module type NUM = sig
  type t

  val one : t
  val of_int : int -> t
  val to_int_opt : t -> int option
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val add_int : t -> int -> t
  val sub_int : t -> int -> t
  val mul_int : t -> int -> t
  val divmod_int : t -> int -> t * int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Int_num : NUM with type t = int = struct
  type t = int

  let one = 1
  let of_int n = n
  let to_int_opt n = Some n
  let compare = Stdlib.compare
  let equal = Int.equal

  let add_int a b =
    let r = a + b in
    if b >= 0 && r < a then raise Overflow;
    r

  let sub_int a b = a - b

  let mul_int a b =
    if a <> 0 && b <> 0 then begin
      let r = a * b in
      if r / a <> b then raise Overflow;
      r
    end
    else 0

  let divmod_int a b = (a / b, a mod b)
  let pp = Format.pp_print_int
  let to_string = string_of_int
end

module Big_num : NUM with type t = Bignat.t = struct
  type t = Bignat.t

  let one = Bignat.one
  let of_int = Bignat.of_int
  let to_int_opt = Bignat.to_int_opt
  let compare = Bignat.compare
  let equal = Bignat.equal
  let add_int = Bignat.add_int
  let sub_int = Bignat.sub_int
  let mul_int = Bignat.mul_int
  let divmod_int = Bignat.divmod_int
  let pp = Bignat.pp
  let to_string = Bignat.to_string
end

module Make (N : NUM) = struct
  type id = N.t

  let root = N.one
  let is_root i = N.equal i root

  let check_k k = if k < 1 then invalid_arg "Uid: k must be >= 1"

  (* parent(i) = (i - 2) / k + 1, formula (1) of the paper. *)
  let parent ~k i =
    check_k k;
    if is_root i then None
    else begin
      let q, _ = N.divmod_int (N.sub_int i 2) k in
      Some (N.add_int q 1)
    end

  let child ~k i j =
    check_k k;
    if j < 0 || j >= k then invalid_arg "Uid.child: slot out of range";
    N.add_int (N.mul_int (N.sub_int i 1) k) (2 + j)

  let children_range ~k i =
    (child ~k i 0, child ~k i (k - 1))

  let child_rank ~k i =
    check_k k;
    if is_root i then invalid_arg "Uid.child_rank: root has no rank";
    let _, r = N.divmod_int (N.sub_int i 2) k in
    r

  let level ~k i =
    let rec go acc i =
      match parent ~k i with None -> acc | Some p -> go (acc + 1) p
    in
    go 0 i

  let ancestors ~k i =
    let rec go acc i =
      match parent ~k i with
      | None -> List.rev acc
      | Some p -> go (p :: acc) p
    in
    go [] i

  (* Lift [i] up [steps] levels. *)
  let rec lift ~k i steps =
    if steps = 0 then i
    else
      match parent ~k i with
      | None -> invalid_arg "Uid.lift: passed the root"
      | Some p -> lift ~k p (steps - 1)

  (* Within one level of the k-ary embedding, numeric order equals
     left-to-right order, which for nodes with disjoint subtrees equals
     document order; so the relation of two identifiers is decided by
     lifting the deeper one to the level of the other and comparing. *)
  let relation ~k a b =
    let c = N.compare a b in
    if c = 0 then Rel.Self
    else begin
      let la = level ~k a and lb = level ~k b in
      if la = lb then (if c < 0 then Rel.Before else Rel.After)
      else if la < lb then begin
        let b' = lift ~k b (lb - la) in
        if N.equal a b' then Rel.Ancestor
        else if N.compare a b' < 0 then Rel.Before
        else Rel.After
      end
      else begin
        let a' = lift ~k a (la - lb) in
        if N.equal a' b then Rel.Descendant
        else if N.compare a' b < 0 then Rel.Before
        else Rel.After
      end
    end

  let is_ancestor ~k ~anc ~desc = relation ~k anc desc = Rel.Ancestor
  let order ~k a b = Rel.to_order (relation ~k a b)

  let max_id_at_depth ~k ~depth =
    check_k k;
    if depth < 0 then invalid_arg "Uid.max_id_at_depth: negative depth";
    (* Number of nodes of the complete k-ary tree of that depth: the last
       identifier.  Computed iteratively: n_{d+1} = n_d * k + 1. *)
    let rec go d acc = if d = 0 then acc else go (d - 1) (N.add_int (N.mul_int acc k) 1) in
    go depth N.one

  type labeling = {
    k : int;
    root_node : Dom.t;
    id_of : (int, id) Hashtbl.t;
    node_of : (id, Dom.t) Hashtbl.t;
  }

  let label ?k root_node =
    let max_fanout =
      Dom.fold_preorder (fun acc n -> max acc (Dom.degree n)) 0 root_node
    in
    let k = match k with Some k -> k | None -> max 1 max_fanout in
    check_k k;
    if k < max_fanout then
      invalid_arg
        (Printf.sprintf "Uid.label: k = %d below maximal fan-out %d" k max_fanout);
    let id_of = Hashtbl.create 256 in
    let node_of = Hashtbl.create 256 in
    let rec go i n =
      Hashtbl.replace id_of n.Dom.serial i;
      Hashtbl.replace node_of i n;
      List.iteri (fun j c -> go (child ~k i j) c) n.Dom.children
    in
    go root root_node;
    { k; root_node; id_of; node_of }

  let id_of_node lb n = Hashtbl.find lb.id_of n.Dom.serial
  let node_of_id lb i = Hashtbl.find_opt lb.node_of i
end

module Over_int = Make (Int_num)
module Over_big = Make (Big_num)
