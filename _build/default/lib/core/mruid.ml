module Dom = Rxml.Dom
module U = Uid.Over_int

type comp = { index : int; is_root : bool }
type id = { top : int; comps : comp list }

let pp_id ppf i =
  Format.fprintf ppf "{%d" i.top;
  List.iter (fun c -> Format.fprintf ppf ", (%d, %b)" c.index c.is_root) i.comps;
  Format.fprintf ppf "}"

let id_to_string i = Format.asprintf "%a" pp_id i
let id_equal (a : id) (b : id) = a = b

(* Split an identifier into its prefix (the id of the relevant area one
   level up) and its last component. *)
let split i =
  match List.rev i.comps with
  | [] -> invalid_arg "Mruid: top-level identifier has no component"
  | c :: rest -> ({ top = i.top; comps = List.rev rest }, c)

let extend i index is_root = { top = i.top; comps = i.comps @ [ { index; is_root } ] }

type krow = { root_local : int; fanout : int }

(* One partitioned level: level 0 is the document; each further level's
   tree is a mirror of the previous level's frame. *)
type level = {
  frame : Frame.t;
  ktable : (id, krow) Hashtbl.t;  (* area identity (one level up) -> row *)
  lid_of : (int, id) Hashtbl.t;  (* node serial (this level's tree) -> id *)
  node_at : (id, (int, Dom.t) Hashtbl.t) Hashtbl.t;
      (* area identity -> (local -> node); index 1 is the area root *)
  mirror_of : (int, Dom.t) Hashtbl.t;  (* area-root serial -> next-level node *)
  orig_of : (int, Dom.t) Hashtbl.t;
}

type t = {
  doc_root : Dom.t;
  levels : level array;  (* levels.(0) = document level *)
  mutable top_k : int;
  mutable top_ids : (int, int) Hashtbl.t;  (* top-tree serial -> original UID *)
  mutable top_nodes : (int, Dom.t) Hashtbl.t;
}

let levels t = Array.length t.levels + 1

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let mirror_frame frame =
  let mirror_of = Hashtbl.create 64 in
  let orig_of = Hashtbl.create 64 in
  let rec go orig =
    let m = Dom.element "frame-node" in
    Hashtbl.replace mirror_of orig.Dom.serial m;
    Hashtbl.replace orig_of m.Dom.serial orig;
    List.iter (fun c -> Dom.append_child m (go c)) (Frame.frame_children frame orig);
    m
  in
  let root = go (Frame.root frame) in
  (root, mirror_of, orig_of)

let build ?(max_levels = 8) ?max_area_size ?(top_size = 64) doc_root =
  if max_levels < 2 then invalid_arg "Mruid.build: max_levels < 2";
  (* The top tree is enumerated by the plain UID, whose magnitude is
     k^depth: recursion may only stop once that provably fits a native
     integer (a small node count is not enough — a short, branching frame
     chain can still blow past 63 bits). *)
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  let top_enumerable tree =
    let max_fanout =
      Dom.fold_preorder (fun acc n -> max acc (Dom.degree n)) 1 tree
    in
    let rec depth n =
      List.fold_left (fun acc c -> max acc (1 + depth c)) 0 n.Dom.children
    in
    (depth tree + 1) * bits (max_fanout + 1) <= 58
  in
  (* Phase 1: the mirror chain of partitions, bottom level first. *)
  let rec chain tree depth =
    if (Dom.size tree <= top_size && top_enumerable tree)
       || depth >= max_levels - 1
    then ([], tree)
    else begin
      let frame = Frame.partition ?max_area_size tree in
      if Frame.area_count frame <= 1 then ([], tree)
      else begin
        let mroot, mirror_of, orig_of = mirror_frame frame in
        let lv =
          {
            frame;
            ktable = Hashtbl.create 64;
            lid_of = Hashtbl.create 256;
            node_at = Hashtbl.create 256;
            mirror_of;
            orig_of;
          }
        in
        let rest, top = chain mroot (depth + 1) in
        (lv :: rest, top)
      end
    end
  in
  let level_list, top_tree = chain doc_root 1 in
  let levels = Array.of_list level_list in
  (* Phase 2: number the top tree with the original UID (may raise
     Uid.Overflow when max_levels was too small for the document). *)
  let top_lb = U.label top_tree in
  let t =
    {
      doc_root;
      levels;
      top_k = top_lb.U.k;
      top_ids = top_lb.U.id_of;
      top_nodes = top_lb.U.node_of;
    }
  in
  (* Phase 3: assign identifiers top-down.  [id_at_next li n] is the id of
     a node of level li+1's tree (or of the top tree). *)
  let id_at_next li n =
    if li + 1 >= Array.length levels then
      { top = Hashtbl.find t.top_ids n.Dom.serial; comps = [] }
    else Hashtbl.find levels.(li + 1).lid_of n.Dom.serial
  in
  for li = Array.length levels - 1 downto 0 do
    let lv = levels.(li) in
    let tree_root = Frame.root lv.frame in
    List.iter
      (fun r ->
        let gid = id_at_next li (Hashtbl.find lv.mirror_of r.Dom.serial) in
        let k = max 1 (Frame.area_fanout lv.frame r) in
        let inner = Hashtbl.create 32 in
        Hashtbl.replace lv.node_at gid inner;
        Hashtbl.replace inner 1 r;
        (* Enumerate the area exactly as Ruid2 does. *)
        let rec go local n =
          if not (Dom.equal n r) then begin
            Hashtbl.replace inner local n;
            let i =
              if Frame.is_area_root lv.frame n then
                extend
                  (id_at_next li (Hashtbl.find lv.mirror_of n.Dom.serial))
                  local true
              else extend gid local false
            in
            Hashtbl.replace lv.lid_of n.Dom.serial i
          end;
          if Dom.equal n r || not (Frame.is_area_root lv.frame n) then
            List.iteri (fun j c -> go (U.child ~k local j) c) n.Dom.children
        in
        go 1 r;
        (* The tree root's own identifier: root of the whole chain. *)
        if Dom.equal r tree_root then
          Hashtbl.replace lv.lid_of r.Dom.serial (extend gid 1 true);
        let root_local =
          if Dom.equal r tree_root then 1
          else (split (Hashtbl.find lv.lid_of r.Dom.serial) |> snd).index
        in
        Hashtbl.replace lv.ktable gid { root_local; fanout = k })
      (Frame.area_roots lv.frame)
  done;
  t

(* ------------------------------------------------------------------ *)
(* Derivation routines                                                 *)
(* ------------------------------------------------------------------ *)

(* [rparent_at t li i]: parent of [i], an identifier of a node of level
   [li]'s tree ([li] = number of levels above the document at which the
   identifier lives; li = Array.length levels means the top tree). *)
let rec rparent_at t li (i : id) : id option =
  if li >= Array.length t.levels then
    (* Top tree: the original UID, formula (1). *)
    if i.top = 1 then None
    else Some { top = ((i.top - 2) / t.top_k) + 1; comps = [] }
  else begin
    let p, c = split i in
    let g_opt = if c.is_root then rparent_at t (li + 1) p else Some p in
    match g_opt with
    | None -> None (* the level's tree root *)
    | Some g ->
      let row = Hashtbl.find t.levels.(li).ktable g in
      let l = ((c.index - 2) / row.fanout) + 1 in
      if l = 1 then begin
        let row_g = Hashtbl.find t.levels.(li).ktable g in
        Some (extend g row_g.root_local true)
      end
      else Some (extend g l false)
  end

let rparent t i = rparent_at t 0 i

let rancestors t i =
  let rec go acc i =
    match rparent t i with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] i

(* Enumeration position of a node at level li: (area identity, local). *)
let pos_at t li (i : id) =
  let p, c = split i in
  if not c.is_root then (p, c.index)
  else
    match rparent_at t (li + 1) p with
    | Some g -> (g, c.index)
    | None -> (p, 1)

let rec relationship_at t li a b =
  if li >= Array.length t.levels then begin
    (* Top tree: plain UID relation. *)
    U.relation ~k:t.top_k a.top b.top
  end
  else if id_equal a b then Rel.Self
  else begin
    let ga, la = pos_at t li a and gb, lb = pos_at t li b in
    if id_equal ga gb then begin
      let k = (Hashtbl.find t.levels.(li).ktable ga).fanout in
      match U.relation ~k la lb with
      | Rel.Self -> assert false
      | r -> r
    end
    else begin
      match relationship_at t (li + 1) ga gb with
      | Rel.Self -> assert false
      | Rel.Before -> Rel.Before
      | Rel.After -> Rel.After
      | Rel.Ancestor ->
        (* Frame child of ga on the path towards gb, one level up. *)
        let rec climb g =
          match rparent_at t (li + 1) g with
          | Some p when id_equal p ga -> g
          | Some p -> climb p
          | None -> assert false
        in
        let theta = climb gb in
        let lstar = (Hashtbl.find t.levels.(li).ktable theta).root_local in
        let k = (Hashtbl.find t.levels.(li).ktable ga).fanout in
        (match U.relation ~k la lstar with
        | Rel.Self | Rel.Ancestor -> Rel.Ancestor
        | Rel.Before -> Rel.Before
        | Rel.After -> Rel.After
        | Rel.Descendant -> assert false)
      | Rel.Descendant -> Rel.inverse (relationship_at t li b a)
    end
  end

let relationship t a b = relationship_at t 0 a b

(* ------------------------------------------------------------------ *)
(* Node/identifier maps                                                *)
(* ------------------------------------------------------------------ *)

let id_of_node t n =
  if Array.length t.levels = 0 then
    { top = Hashtbl.find t.top_ids n.Dom.serial; comps = [] }
  else Hashtbl.find t.levels.(0).lid_of n.Dom.serial

let node_of_id t i =
  if Array.length t.levels = 0 then begin
    if i.comps <> [] then None else Hashtbl.find_opt t.top_nodes i.top
  end
  else begin
    match
      let lv = t.levels.(0) in
      let g, l = pos_at t 0 i in
      match Hashtbl.find_opt lv.node_at g with
      | None -> None
      | Some inner -> (
        match Hashtbl.find_opt inner l with
        | Some n when id_equal (Hashtbl.find lv.lid_of n.Dom.serial) i -> Some n
        | Some _ | None -> None)
    with
    | result -> result
    | exception (Not_found | Invalid_argument _) -> None
  end

let max_component_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  let of_id i = List.fold_left (fun acc c -> max acc (bits c.index)) (bits i.top) i.comps in
  Array.fold_left
    (fun acc lv -> Hashtbl.fold (fun _ i m -> max m (of_id i)) lv.lid_of acc)
    0 t.levels

let total_label_bits t =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    max 1 (go 0 v)
  in
  let of_id i =
    List.fold_left (fun acc c -> acc + bits c.index + 1) (bits i.top) i.comps
  in
  if Array.length t.levels = 0 then
    Hashtbl.fold (fun _ theta acc -> acc + bits theta) t.top_ids 0
  else
    Hashtbl.fold (fun _ i acc -> acc + of_id i) t.levels.(0).lid_of 0

let area_count t =
  Array.fold_left (fun acc lv -> acc + Hashtbl.length lv.ktable) 0 t.levels

let aux_memory_words t =
  (* Each K row stores its key components plus two integers. *)
  Array.fold_left
    (fun acc lv ->
      Hashtbl.fold
        (fun key _ acc -> acc + 2 + 1 + (2 * List.length key.comps))
        lv.ktable acc)
    1 t.levels

(* ------------------------------------------------------------------ *)
(* Structural update (document level only; the frame, and with it every
   area identity and K key, is update-stable — Section 3.2)              *)
(* ------------------------------------------------------------------ *)

(* Identity of the area rooted at document-level area root [r]. *)
let area_gid t r =
  let lv = t.levels.(0) in
  let m = Hashtbl.find lv.mirror_of r.Dom.serial in
  if Array.length t.levels = 1 then
    { top = Hashtbl.find t.top_ids m.Dom.serial; comps = [] }
  else Hashtbl.find t.levels.(1).lid_of m.Dom.serial

(* Re-enumerate one document-level area; returns how many pre-existing
   nodes changed identifier. *)
let renumber_area t r =
  let lv = t.levels.(0) in
  let gid = area_gid t r in
  let k = (Hashtbl.find lv.ktable gid).fanout in
  let inner = Hashtbl.create 32 in
  Hashtbl.replace inner 1 r;
  let changed = ref 0 in
  let rec go local n =
    if not (Dom.equal n r) then begin
      Hashtbl.replace inner local n;
      let i =
        if Frame.is_area_root lv.frame n then extend (area_gid t n) local true
        else extend gid local false
      in
      (match Hashtbl.find_opt lv.lid_of n.Dom.serial with
      | Some old when id_equal old i -> ()
      | Some old ->
        incr changed;
        let _, oc = split old in
        if oc.is_root then begin
          (* The joint moved: only its K row's root_local changes; the
             child area's own nodes keep their identifiers. *)
          let cg = area_gid t n in
          let crow = Hashtbl.find lv.ktable cg in
          Hashtbl.replace lv.ktable cg { crow with root_local = local }
        end
      | None -> ());
      Hashtbl.replace lv.lid_of n.Dom.serial i
    end;
    if Dom.equal n r || not (Frame.is_area_root lv.frame n) then
      List.iteri (fun j c -> go (U.child ~k local j) c) n.Dom.children
  in
  go 1 r;
  Hashtbl.replace lv.node_at gid inner;
  !changed

(* Degenerate un-partitioned document: behave as the original UID. *)
let full_relabel_diff ?skip t =
  let old_labels = t.top_ids in
  let lb = U.label t.doc_root in
  t.top_k <- lb.U.k;
  t.top_ids <- lb.U.id_of;
  t.top_nodes <- lb.U.node_of;
  Hashtbl.fold
    (fun serial old acc ->
      if skip = Some serial then acc
      else
        match Hashtbl.find_opt t.top_ids serial with
        | Some fresh when fresh = old -> acc
        | Some _ -> acc + 1
        | None -> acc)
    old_labels 0

let insert_node ?(slack = 0) t ~parent ~pos node =
  if node.Dom.children <> [] then
    invalid_arg "Mruid.insert_node: only leaf insertion is supported";
  if Array.length t.levels = 0 then begin
    Dom.insert_child parent ~pos node;
    full_relabel_diff ~skip:node.Dom.serial t
  end
  else begin
    let lv = t.levels.(0) in
    let r = Frame.own_area_root lv.frame parent in
    let gid = area_gid t r in
    let row = Hashtbl.find lv.ktable gid in
    Dom.insert_child parent ~pos node;
    let needed = Dom.degree parent in
    if needed > row.fanout then
      Hashtbl.replace lv.ktable gid { row with fanout = needed + slack };
    renumber_area t r
  end

let delete_subtree t node =
  if Dom.equal node t.doc_root then
    invalid_arg "Mruid.delete_subtree: cannot delete the tree root";
  let parent =
    match node.Dom.parent with
    | Some p -> p
    | None -> invalid_arg "Mruid.delete_subtree: detached node"
  in
  if Array.length t.levels = 0 then begin
    Dom.remove_child parent node;
    full_relabel_diff t
  end
  else begin
    let lv = t.levels.(0) in
    let r = Frame.own_area_root lv.frame parent in
    List.iter
      (fun x ->
        Hashtbl.remove lv.lid_of x.Dom.serial;
        if Frame.is_area_root lv.frame x then begin
          let gx = area_gid t x in
          Hashtbl.remove lv.ktable gx;
          Hashtbl.remove lv.node_at gx;
          Frame.uncut lv.frame x
        end)
      (Dom.preorder node);
    Dom.remove_child parent node;
    renumber_area t r
  end

let check_consistency t =
  let fail fmt = Format.kasprintf failwith fmt in
  Dom.iter_preorder
    (fun n ->
      let i = id_of_node t n in
      (match node_of_id t i with
      | Some m when Dom.equal m n -> ()
      | _ -> fail "id %s does not resolve back" (id_to_string i));
      let dom_parent =
        if Dom.equal n t.doc_root then None else n.Dom.parent
      in
      match (rparent t i, dom_parent) with
      | None, None -> ()
      | Some p, Some dp ->
        if not (id_equal p (id_of_node t dp)) then
          fail "rparent %s = %s but DOM parent is %s" (id_to_string i)
            (id_to_string p)
            (id_to_string (id_of_node t dp))
      | Some _, None -> fail "root got a parent"
      | None, Some _ -> fail "lost a parent at %s" (id_to_string i))
    t.doc_root
