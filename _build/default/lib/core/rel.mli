(** Structural relationship between two nodes of a tree, as decided by a
    numbering scheme.  [Ancestor] and [Descendant] are strict; [Before] and
    [After] are document order among nodes with disjoint subtrees (the XPath
    [preceding] / [following] axes). *)

type t = Self | Ancestor | Descendant | Before | After

val equal : t -> t -> bool

val inverse : t -> t
(** [inverse (relation a b)] is [relation b a]. *)

val to_order : t -> int
(** Document-order comparison: ancestors precede descendants. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
