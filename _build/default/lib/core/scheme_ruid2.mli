(** The paper's 2-level ruid packaged as a {!Scheme.S} (default partition
    budget of 64 enumerated nodes per UID-local area). *)

include Scheme.S with type t = Ruid2.t
