module Dom = Rxml.Dom

let shallow (n : Dom.t) =
  match n.Dom.kind with
  | Dom.Document -> Dom.document ()
  | Dom.Element e -> Dom.element ~attrs:e.Dom.attrs e.Dom.tag
  | Dom.Text s -> Dom.text s
  | Dom.Comment s -> Dom.comment s
  | Dom.Pi (t, d) -> Dom.pi t d

let fragment_nodes ?(deep = true) r2 nodes =
  (* Mark every selected node and, via rancestor arithmetic, its chain of
     ancestors. *)
  let selected = Hashtbl.create 64 in
  let keep = Hashtbl.create 256 in
  List.iter
    (fun n ->
      Hashtbl.replace selected n.Dom.serial ();
      Hashtbl.replace keep n.Dom.serial ();
      List.iter
        (fun aid ->
          match Ruid2.node_of_id r2 aid with
          | Some a -> Hashtbl.replace keep a.Dom.serial ()
          | None -> ())
        (Ruid2.rancestors r2 (Ruid2.id_of_node r2 n)))
    nodes;
  let rec build n =
    if deep && Hashtbl.mem selected n.Dom.serial then Dom.clone n
    else begin
      let copy = shallow n in
      List.iter
        (fun c -> if Hashtbl.mem keep c.Dom.serial then Dom.append_child copy (build c))
        n.Dom.children;
      copy
    end
  in
  build (Ruid2.root r2)

let fragment ?deep r2 ids =
  let nodes =
    List.map
      (fun id ->
        match Ruid2.node_of_id r2 id with
        | Some n -> n
        | None ->
          invalid_arg
            ("Reconstruct.fragment: unresolvable identifier "
            ^ Ruid2.id_to_string id))
      ids
  in
  fragment_nodes ?deep r2 nodes
