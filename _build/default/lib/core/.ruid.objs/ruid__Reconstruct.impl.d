lib/core/reconstruct.ml: Hashtbl List Ruid2 Rxml
