lib/core/ruid2.mli: Format Frame Ktable Rel Rxml
