lib/core/multilevel.ml: Array Bignum Format Frame Hashtbl List Ruid2 Rxml
