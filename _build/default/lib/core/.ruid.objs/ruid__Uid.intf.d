lib/core/uid.mli: Bignum Format Hashtbl Rel Rxml
