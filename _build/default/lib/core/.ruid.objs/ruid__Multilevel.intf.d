lib/core/multilevel.mli: Bignum Format Rel Ruid2 Rxml
