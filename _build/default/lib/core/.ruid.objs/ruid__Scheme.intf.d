lib/core/scheme.mli: Hashtbl Rel Rxml
