lib/core/persist.ml: Buffer Bytes Codec Ktable List Ruid2 Rxml String
