lib/core/mruid.mli: Format Rel Rxml
