lib/core/reconstruct.mli: Ruid2 Rxml
