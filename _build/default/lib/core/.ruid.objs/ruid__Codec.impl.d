lib/core/codec.ml: Bignum Buffer Bytes Char List Mruid Ruid2
