lib/core/persist.mli: Ruid2 Rxml
