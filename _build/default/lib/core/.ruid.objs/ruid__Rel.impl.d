lib/core/rel.ml: Format
