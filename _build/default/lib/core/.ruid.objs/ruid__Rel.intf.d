lib/core/rel.mli: Format
