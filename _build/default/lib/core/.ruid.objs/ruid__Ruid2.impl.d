lib/core/ruid2.ml: Format Frame Fun Hashtbl Ktable List Option Rel Rxml Stdlib Uid
