lib/core/scheme_ruid2.ml: Ruid2 Rxml
