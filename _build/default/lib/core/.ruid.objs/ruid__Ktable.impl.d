lib/core/ktable.ml: Array Format List Stdlib
