lib/core/scheme_ruid2.mli: Ruid2 Scheme
