lib/core/frame.ml: Format Hashtbl List Option Queue Rxml
