lib/core/scheme_multilevel.ml: Mruid Rxml
