lib/core/codec.mli: Bignum Buffer Mruid Ruid2
