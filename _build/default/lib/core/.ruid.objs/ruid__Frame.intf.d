lib/core/frame.mli: Rxml
