lib/core/scheme.ml: Hashtbl Rel Rxml
