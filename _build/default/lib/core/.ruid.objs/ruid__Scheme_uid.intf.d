lib/core/scheme_uid.mli: Scheme
