lib/core/scheme_multilevel.mli: Mruid Scheme
