lib/core/scheme_uid.ml: Bignum Hashtbl Rxml Scheme Uid
