lib/core/mruid.ml: Array Format Frame Hashtbl List Rel Rxml Uid
