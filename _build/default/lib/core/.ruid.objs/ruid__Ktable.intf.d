lib/core/ktable.mli: Format
