lib/core/uid.ml: Bignum Format Hashtbl Int List Printf Rel Rxml Stdlib
