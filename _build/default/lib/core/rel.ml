type t = Self | Ancestor | Descendant | Before | After

let equal (a : t) (b : t) = a = b

let inverse = function
  | Self -> Self
  | Ancestor -> Descendant
  | Descendant -> Ancestor
  | Before -> After
  | After -> Before

let to_order = function
  | Self -> 0
  | Ancestor | Before -> -1
  | Descendant | After -> 1

let to_string = function
  | Self -> "self"
  | Ancestor -> "ancestor"
  | Descendant -> "descendant"
  | Before -> "before"
  | After -> "after"

let pp ppf r = Format.pp_print_string ppf (to_string r)
