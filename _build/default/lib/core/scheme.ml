module type S = sig
  val name : string
  val parent_derivable : bool

  type t

  val build : Rxml.Dom.t -> t
  val relation : t -> Rxml.Dom.t -> Rxml.Dom.t -> Rel.t
  val label_string : t -> Rxml.Dom.t -> string
  val insert : t -> parent:Rxml.Dom.t -> pos:int -> Rxml.Dom.t -> int
  val delete : t -> Rxml.Dom.t -> int
  val max_label_bits : t -> int
  val total_label_bits : t -> int
  val aux_memory_words : t -> int
end

type packed = (module S)

let diff_count ~old_labels ~new_labels ~skip =
  Hashtbl.fold
    (fun serial old acc ->
      if skip = Some serial then acc
      else
        match Hashtbl.find_opt new_labels serial with
        | Some fresh when fresh = old -> acc
        | Some _ -> acc + 1
        | None -> acc (* node removed: not a relabel *))
    old_labels 0
