(** Multilevel recursive UID (Section 2.4, Definition 4).

    The frame of a 2-level ruid is itself a tree; numbering it with its own
    2-level ruid — and repeating — yields the l-level scheme.  An l-level
    identifier is [{theta, (a_(l-1), b_(l-1)), ..., (a_1, b_1)}]: the
    original UID [theta] in the topmost frame followed by one
    (local index, root indicator) pair per level, level 1 (the document
    itself) last.

    Internally the structure is a chain of {!Ruid2} instances: level 0
    numbers the document over its frame; each further level numbers a
    mirror tree of the previous level's frame.  All derivation routines run
    on level 0 — exactly the paper's design, where upper levels only
    compress the global index — and the multilevel form is obtained by
    decomposing globals through the chain (Example 3: the 2-level identifier
    [{8, (a, true)}] becomes [{2, (4, false), (a, true)}] at 3 levels). *)

type component = { index : int; is_root : bool }

type id = { top : int; components : component list }
(** [components] holds the (alpha, beta) pairs from the topmost level down
    to level 1; it is never empty. *)

val pp_id : Format.formatter -> id -> unit
val id_to_string : id -> string
val id_equal : id -> id -> bool

type t

val build : ?levels:int -> ?max_area_size:int -> Rxml.Dom.t -> t
(** Number a tree with up to [levels] recursive levels (default 3; at least
    2, i.e. one {!Ruid2} layer).  Recursion stops early once a frame
    shrinks to a single area, so small documents get fewer levels. *)

val levels : t -> int
(** Number of levels in the paper's counting: a plain 2-level ruid is 2. *)

val base : t -> Ruid2.t
(** The level numbering the document itself — where every derivation
    (parent, relations, axes, updates) runs. *)

val id_of_node : t -> Rxml.Dom.t -> id
val node_of_id : t -> id -> Rxml.Dom.t option

val parent : t -> id -> id option
(** [rparent] at the base level, re-rendered in multilevel form. *)

val relationship : t -> id -> id -> Rel.t

val insert_node : ?slack:int -> t -> parent:Rxml.Dom.t -> pos:int -> Rxml.Dom.t -> int
(** Delegates to the base level; upper levels never change because the
    document frame is update-stable (Section 3.2). *)

val delete_subtree : t -> Rxml.Dom.t -> int

val aux_memory_words : t -> int
(** All K tables plus the per-level kappas. *)

val max_component_bits : t -> int
(** Bits of the widest index anywhere in an identifier. *)

val addressable : e:int -> levels:int -> Bignum.Bignat.t
(** Section 3.1: if one level can enumerate [e] nodes, [levels] levels can
    enumerate about [e{^levels}]. *)

val check_consistency : t -> unit
