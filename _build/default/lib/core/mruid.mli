(** Fully recursive multilevel ruid (Section 2.4, Definition 4) with no
    flat integers anywhere below the top level.

    {!Multilevel} materializes each level's global index as one native
    integer (the frame-node UID), which caps how deep-and-branching a frame
    it can represent.  This module instead keys every K table by the {e
    identifier prefix} of the area — the paper's
    [{theta, (a_(l-1), b_(l-1)), ..., (a_(j+1), b_(j+1))}] — so each stored
    component stays bounded by the area budget and only the topmost, small
    frame is enumerated by the original UID.  That makes the Section 3.1
    claim literal: documents whose virtual enumeration exceeds any native
    integer are numbered with a few levels of small components.

    [rparent] is the recursive generalization of Fig. 6: resolving the
    upper area of an area-root component is itself an [rparent] call one
    level up, terminating at the top-level parent formula (1).  All
    derivations ([rparent], ancestors, relations) read only the per-level K
    tables and the top-level kappa. *)

type comp = { index : int; is_root : bool }

type id = { top : int; comps : comp list }
(** Components from the level below the top down to the document level
    (empty only for internal top-level identifiers). *)

val pp_id : Format.formatter -> id -> unit
val id_to_string : id -> string
val id_equal : id -> id -> bool

type t

val build : ?max_levels:int -> ?max_area_size:int -> ?top_size:int -> Rxml.Dom.t -> t
(** Recursively partition until the top tree has at most [top_size] nodes
    (default 64) or [max_levels] (default 8) is reached.
    @raise Uid.Overflow only if the level budget is exhausted while the top
    tree is still too large to enumerate natively. *)

val levels : t -> int
(** In the paper's counting: a plain 2-level ruid is 2; a document small
    enough to skip partitioning entirely is 1 (the original UID). *)

val id_of_node : t -> Rxml.Dom.t -> id
val node_of_id : t -> id -> Rxml.Dom.t option

val rparent : t -> id -> id option
(** Recursive Fig. 6; pure K-table work. *)

val rancestors : t -> id -> id list
val relationship : t -> id -> id -> Rel.t

val insert_node : ?slack:int -> t -> parent:Rxml.Dom.t -> pos:int -> Rxml.Dom.t -> int
(** Insert a fresh leaf and re-enumerate the single affected document-level
    area (Section 3.2); K keys are identifier prefixes of the update-stable
    frame, so only that area's rows are touched.  Returns the number of
    pre-existing nodes whose identifier changed. *)

val delete_subtree : t -> Rxml.Dom.t -> int
(** Cascading delete, confined like {!insert_node}.
    @raise Invalid_argument on the tree root. *)

val max_component_bits : t -> int

val total_label_bits : t -> int
(** Sum over document nodes of the full identifier size in bits (all
    components plus root flags). *)

val area_count : t -> int
(** Total K rows across all levels. *)

val aux_memory_words : t -> int

val check_consistency : t -> unit
