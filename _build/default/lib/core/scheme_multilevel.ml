(* Multilevel ruid as a Scheme.S, backed by the fully recursive {!Mruid}
   (no flat global integers, so it builds on every document shape).
   Structural updates run at the document level, so update costs match
   ruid2's area-confined behaviour; the multilevel form only bounds the
   magnitude of the individual indices. *)

module Dom = Rxml.Dom

let name = "ruid-multi"
let parent_derivable = true

type t = Mruid.t

let build root = Mruid.build ~max_area_size:16 root

let relation t a b =
  Mruid.relationship t (Mruid.id_of_node t a) (Mruid.id_of_node t b)

let label_string t n = Mruid.id_to_string (Mruid.id_of_node t n)
let insert t ~parent ~pos node = Mruid.insert_node t ~parent ~pos node
let delete t node = Mruid.delete_subtree t node
let max_label_bits t = Mruid.max_component_bits t
let total_label_bits t = Mruid.total_label_bits t
let aux_memory_words t = Mruid.aux_memory_words t
