(** Reconstruction of document fragments from identifier sets
    (Section 3.3).

    "This property ... is also important for the fast reconstruction of a
    portion of an XML document from a set of elements.  The output is a
    portion of an XML document generated from these elements respecting the
    ancestor-descendant order existing in the source data."

    Given a set of elements (say, the matches of a query delivered as
    identifiers), the ancestor chain of every element is derived by
    [rparent] arithmetic, and a fresh tree is built containing each
    selected element (with its whole subtree, by default) under its
    original chain of ancestors, siblings in document order. *)

val fragment_nodes : ?deep:bool -> Ruid2.t -> Rxml.Dom.t list -> Rxml.Dom.t
(** Fragment containing the given nodes.  With [deep] (default [true])
    selected nodes keep their entire subtrees; ancestors are rebuilt as
    shallow copies (tag and attributes only).  The result is a fresh,
    detached tree rooted at a copy of the numbered root. *)

val fragment : ?deep:bool -> Ruid2.t -> Ruid2.id list -> Rxml.Dom.t
(** Same, from identifiers.
    @raise Invalid_argument if an identifier does not resolve. *)
