(** A common interface over structural numbering schemes, so that the
    update-robustness and query experiments (E2, E4) can run the paper's
    scheme, the original UID and the related-work baselines side by side.

    The contract mirrors what the paper compares: build labels for a
    document, decide structural relations from labels, and perform node
    insertion / cascading deletion while reporting how many {e existing}
    nodes had their label changed by the operation. *)

module type S = sig
  val name : string

  (** Whether the parent label is computable from a node's label alone
      (the UID family's distinguishing property, Section 3.3). *)
  val parent_derivable : bool

  type t

  val build : Rxml.Dom.t -> t
  (** Label every node of the tree rooted at the argument. *)

  val relation : t -> Rxml.Dom.t -> Rxml.Dom.t -> Rel.t
  (** Structural relation decided from the two nodes' labels. *)

  val label_string : t -> Rxml.Dom.t -> string
  (** Printable label, for traces and the CLI. *)

  val insert : t -> parent:Rxml.Dom.t -> pos:int -> Rxml.Dom.t -> int
  (** Insert a fresh leaf, relabel per the scheme's rules, and return the
      number of pre-existing nodes whose label changed. *)

  val delete : t -> Rxml.Dom.t -> int
  (** Cascading delete; returns the number of surviving nodes whose label
      changed. *)

  val max_label_bits : t -> int
  (** Size of the widest label currently assigned. *)

  val total_label_bits : t -> int
  (** Sum of label sizes over all nodes — the storage footprint a
      label-bearing index pays. *)

  val aux_memory_words : t -> int
  (** Main-memory side structures needed by the derivation routines (the
      ruid K table; zero for schemes without global parameters). *)
end

type packed = (module S)

(** {1 Helpers shared by implementations} *)

val diff_count :
  old_labels:(int, 'a) Hashtbl.t ->
  new_labels:(int, 'a) Hashtbl.t ->
  skip:int option ->
  int
(** Number of serials present in both tables whose label differs (serials
    missing from [new_labels] were deleted, not relabeled); [skip] excludes
    the serial of a freshly inserted node. *)
