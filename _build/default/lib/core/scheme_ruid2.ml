(* 2-level ruid as a Scheme.S. *)

module Dom = Rxml.Dom

let name = "ruid2"
let parent_derivable = true

type t = Ruid2.t

let default_area_size = 64

let build root = Ruid2.number ~max_area_size:default_area_size root

let relation t a b =
  Ruid2.relationship t (Ruid2.id_of_node t a) (Ruid2.id_of_node t b)

let label_string t n = Ruid2.id_to_string (Ruid2.id_of_node t n)
let insert t ~parent ~pos node = Ruid2.insert_node t ~parent ~pos node
let delete t node = Ruid2.delete_subtree t node
let max_label_bits t = 1 + (2 * Ruid2.max_local_bits t) (* two indices + flag *)
let total_label_bits t = Ruid2.total_label_bits t
let aux_memory_words t = Ruid2.aux_memory_words t
