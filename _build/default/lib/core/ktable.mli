(** The table K of global parameters (Section 2.1).

    One row per UID-local area: the area's global index, the local index of
    the area's root within the {e upper} area, and the maximal fan-out used
    to enumerate the area.  Together with kappa, this is the entire state
    [rparent] needs, and it is small enough to pin in main memory — which is
    what makes parent derivation I/O-free (Lemma 1). *)

type row = { global : int; root_local : int; fanout : int }

type t

val make : row list -> t
(** @raise Invalid_argument on duplicate global indices. *)

val find : t -> int -> row option
(** Binary search by global index. *)

val fanout : t -> int -> int
(** @raise Not_found if the area does not exist. *)

val root_local : t -> int -> int
(** @raise Not_found if the area does not exist. *)

val mem : t -> int -> bool

val rows : t -> row list
(** In increasing global-index order. *)

val size : t -> int
(** Number of areas. *)

val frame_children_rows : t -> parent_global:int -> kappa:int -> row list
(** Rows whose global index falls in the frame-child identifier range of
    [parent_global]: the child areas, in increasing global order.
    O(log areas + children). *)

val area_rooted_at : t -> parent_global:int -> kappa:int -> local:int -> int option
(** [area_rooted_at t ~parent_global ~kappa ~local] finds the global index
    of the area whose root sits at [local] within area [parent_global] —
    i.e. scans the frame-child identifier range of [parent_global] in the
    kappa-ary frame enumeration.  This is the existence test used by
    [rchildren] (Section 3.5). *)

val with_row : t -> row -> t
(** Functional update: insert or replace the row for [row.global]. *)

val without : t -> int -> t
(** Remove the row for a global index (no-op when absent). *)

val memory_words : t -> int
(** Footprint of the in-memory structure, in machine words: 3 per row. *)

val pp : Format.formatter -> t -> unit
