type row = { global : int; root_local : int; fanout : int }

(* Sorted array by global index; lookups are binary searches. *)
type t = row array

let make rows =
  let arr = Array.of_list rows in
  Array.sort (fun a b -> Stdlib.compare a.global b.global) arr;
  Array.iteri
    (fun i r ->
      if i > 0 && arr.(i - 1).global = r.global then
        invalid_arg "Ktable.make: duplicate global index")
    arr;
  arr

let find t g =
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let r = t.(mid) in
      if r.global = g then Some r
      else if r.global < g then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 (Array.length t)

let get t g = match find t g with Some r -> r | None -> raise Not_found
let fanout t g = (get t g).fanout
let root_local t g = (get t g).root_local
let mem t g = find t g <> None
let rows t = Array.to_list t
let size t = Array.length t

(* Index of the first row with global >= g. *)
let lower_bound t g =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.(mid).global < g then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length t)

let rows_in_range t ~lo ~hi =
  let i0 = lower_bound t lo in
  let rec go i acc =
    if i >= Array.length t || t.(i).global > hi then List.rev acc
    else go (i + 1) (t.(i) :: acc)
  in
  go i0 []

let frame_children_rows t ~parent_global ~kappa =
  (* Frame children of [parent_global] have identifiers in
     [(parent_global - 1) * kappa + 2 .. parent_global * kappa + 1]. *)
  let first = ((parent_global - 1) * kappa) + 2 in
  rows_in_range t ~lo:first ~hi:(first + kappa - 1)

let area_rooted_at t ~parent_global ~kappa ~local =
  match
    List.find_opt
      (fun r -> r.root_local = local)
      (frame_children_rows t ~parent_global ~kappa)
  with
  | Some r -> Some r.global
  | None -> None

let with_row t row =
  match find t row.global with
  | Some _ ->
    Array.map (fun r -> if r.global = row.global then row else r) t
  | None ->
    let arr = Array.append t [| row |] in
    Array.sort (fun a b -> Stdlib.compare a.global b.global) arr;
    arr

let without t g = Array.of_list (List.filter (fun r -> r.global <> g) (rows t))

let memory_words t = 3 * Array.length t

let pp ppf t =
  Format.fprintf ppf "@[<v>global  root-local  fanout@,";
  Array.iter
    (fun r -> Format.fprintf ppf "%6d  %10d  %6d@," r.global r.root_local r.fanout)
    t;
  Format.fprintf ppf "@]"
