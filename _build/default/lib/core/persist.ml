module Dom = Rxml.Dom

let magic = "RUID2\x02"

let sidecar_to_bytes t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* Whether the numbered root is the document node itself (vs its root
     element): load must restore against the same node. *)
  let is_document =
    match (Ruid2.root t).Dom.kind with Dom.Document -> 1 | _ -> 0
  in
  Codec.write_varint buf is_document;
  Codec.write_varint buf (Ruid2.kappa t);
  let rows = Ktable.rows (Ruid2.ktable t) in
  Codec.write_varint buf (List.length rows);
  List.iter
    (fun r ->
      Codec.write_varint buf r.Ktable.global;
      Codec.write_varint buf r.Ktable.root_local;
      Codec.write_varint buf r.Ktable.fanout)
    rows;
  let nodes = Ruid2.all_nodes t in
  Codec.write_varint buf (List.length nodes);
  List.iter
    (fun n -> Buffer.add_bytes buf (Codec.encode_ruid2 (Ruid2.id_of_node t n)))
    nodes;
  Buffer.to_bytes buf

let sidecar_of_bytes root bytes =
  let len = Bytes.length bytes in
  if len < String.length magic || Bytes.sub_string bytes 0 (String.length magic) <> magic
  then invalid_arg "Persist: bad magic";
  let pos = ref (String.length magic) in
  let next () =
    let v, p = Codec.read_varint bytes ~pos:!pos in
    pos := p;
    v
  in
  let _is_document = next () in
  let kappa = next () in
  let nrows = next () in
  let rows =
    List.init nrows (fun _ ->
        let global = next () in
        let root_local = next () in
        let fanout = next () in
        { Ktable.global; root_local; fanout })
  in
  let nnodes = next () in
  let ids =
    List.init nnodes (fun _ ->
        let flag = next () in
        let global = next () in
        let local = next () in
        { Ruid2.global; local; is_root = flag = 1 })
  in
  if !pos <> len then invalid_arg "Persist: trailing bytes in sidecar";
  Ruid2.restore ~kappa ~ktable:(Ktable.make rows) ~ids root

let save t ~xml ~sidecar =
  Rxml.Serializer.to_file xml (Ruid2.root t);
  let oc = open_out_bin sidecar in
  output_bytes oc (sidecar_to_bytes t);
  close_out oc

let load ~xml ~sidecar =
  let doc = Rxml.Parser.parse_file ~keep_whitespace:true xml in
  let ic = open_in_bin sidecar in
  let n = in_channel_length ic in
  let bytes = Bytes.create n in
  really_input ic bytes 0 n;
  close_in ic;
  (* The root-kind flag sits right after the magic. *)
  let flag, _ = Codec.read_varint bytes ~pos:(String.length magic) in
  let root = if flag = 1 then doc else Dom.root_element doc in
  (doc, sidecar_of_bytes root bytes)
