(** The original UID numbering scheme (Lee, Yoo, Yoon & Berra), as recalled
    in Section 1 of the paper.

    The XML tree is embedded in a complete [k]-ary tree, [k] being the
    maximal fan-out, and nodes — real and virtual — are numbered level by
    level, left to right, starting from 1 at the root.  The key property is
    formula (1): [parent(i) = (i - 2) / k + 1] (integer division), so the
    parent identifier is computable from the child identifier alone, with no
    access to the data.

    All arithmetic is provided over an abstract numeric type: identifiers
    grow as [k{^depth}], so the [int] instance ({!Int_num}) raises
    {!Overflow} beyond 62 bits while the {!Bignat} instance ({!Big_num})
    never overflows.  This pair is exactly the situation the paper describes
    — "the value easily exceeds the maximal manageable integer value" and
    needs "additional purpose-specific libraries". *)

exception Overflow
(** Raised by {!Int_num} arithmetic when an identifier exceeds the native
    integer range. *)

(** Numeric operations a UID identifier domain must provide. *)
module type NUM = sig
  type t

  val one : t
  val of_int : int -> t
  val to_int_opt : t -> int option
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val add_int : t -> int -> t
  (** May raise {!Overflow}. *)

  val sub_int : t -> int -> t
  val mul_int : t -> int -> t
  (** May raise {!Overflow}. *)

  val divmod_int : t -> int -> t * int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Int_num : NUM with type t = int
module Big_num : NUM with type t = Bignum.Bignat.t

module Make (N : NUM) : sig
  type id = N.t

  val root : id
  (** The identifier 1. *)

  val parent : k:int -> id -> id option
  (** Formula (1); [None] on the root.  Pure arithmetic. *)

  val child : k:int -> id -> int -> id
  (** [child ~k i j] is the identifier of the [j]-th (0-based) child slot of
      node [i]: [(i - 1) * k + 2 + j].  @raise Invalid_argument unless
      [0 <= j < k]. *)

  val children_range : k:int -> id -> id * id
  (** First and last child-slot identifiers. *)

  val child_rank : k:int -> id -> int
  (** 0-based position of a non-root node among its parent's [k] slots. *)

  val level : k:int -> id -> int
  (** Depth in edges below the root; O(depth) arithmetic. *)

  val ancestors : k:int -> id -> id list
  (** Strict ancestors, nearest first — the [rancestor] building block. *)

  val relation : k:int -> id -> id -> Rel.t
  (** Full structural relation decided from the two identifiers alone. *)

  val is_ancestor : k:int -> anc:id -> desc:id -> bool
  val order : k:int -> id -> id -> int

  val max_id_at_depth : k:int -> depth:int -> id
  (** Identifier of the last node of a complete [k]-ary tree of the given
      depth — the magnitude the scheme must be able to represent. *)

  (** {1 Labeling a DOM tree} *)

  type labeling = {
    k : int;
    root_node : Rxml.Dom.t;
    id_of : (int, id) Hashtbl.t;  (** node serial -> identifier *)
    node_of : (id, Rxml.Dom.t) Hashtbl.t;
  }

  val label : ?k:int -> Rxml.Dom.t -> labeling
  (** Assign identifiers to every node of the (sub)tree.  [k] defaults to
      the maximal fan-out of the tree (minimum 1).
      @raise Invalid_argument if [k] is smaller than some fan-out.
      May raise {!Overflow} with {!Int_num}. *)

  val id_of_node : labeling -> Rxml.Dom.t -> id
  (** @raise Not_found if the node was not labeled. *)

  val node_of_id : labeling -> id -> Rxml.Dom.t option
end

module Over_int : module type of Make (Int_num)
module Over_big : module type of Make (Big_num)
