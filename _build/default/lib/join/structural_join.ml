module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rel = Ruid.Rel

type pair = { anc : Dom.t; desc : Dom.t }

(* Canonical result order: descendant document order, then ancestor from
   the nearest upward (so equal multisets compare equal). *)
let normalize r2 pairs =
  let key p =
    let da = R2.id_of_node r2 p.desc and aa = R2.id_of_node r2 p.anc in
    (da, aa)
  in
  List.sort
    (fun p q ->
      let dp, ap = key p and dq, aq = key q in
      let c = R2.doc_order r2 dp dq in
      if c <> 0 then c else R2.doc_order r2 aq ap)
    pairs

let nested_loop r2 ~anc ~desc =
  let out = ref [] in
  List.iter
    (fun a ->
      let aid = R2.id_of_node r2 a in
      List.iter
        (fun d ->
          if R2.relationship r2 aid (R2.id_of_node r2 d) = Rel.Ancestor then
            out := { anc = a; desc = d } :: !out)
        desc)
    anc;
  normalize r2 !out

let ancestor_probe r2 ~anc ~desc =
  let table = Hashtbl.create (List.length anc * 2) in
  List.iter (fun a -> Hashtbl.replace table (R2.id_of_node r2 a) a) anc;
  let out = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun aid ->
          match Hashtbl.find_opt table aid with
          | Some a -> out := { anc = a; desc = d } :: !out
          | None -> ())
        (R2.rancestors r2 (R2.id_of_node r2 d)))
    desc;
  normalize r2 !out

let semijoin_descendants r2 ~anc ~desc =
  let table = Hashtbl.create (List.length anc * 2) in
  List.iter (fun a -> Hashtbl.replace table (R2.id_of_node r2 a) ()) anc;
  List.filter
    (fun d ->
      List.exists
        (fun aid -> Hashtbl.mem table aid)
        (R2.rancestors r2 (R2.id_of_node r2 d)))
    desc

let parent_child r2 ~parent ~child =
  let table = Hashtbl.create (List.length parent * 2) in
  List.iter (fun p -> Hashtbl.replace table (R2.id_of_node r2 p) p) parent;
  let out = ref [] in
  List.iter
    (fun c ->
      match R2.rparent r2 (R2.id_of_node r2 c) with
      | Some pid -> (
        match Hashtbl.find_opt table pid with
        | Some p -> out := { anc = p; desc = c } :: !out
        | None -> ())
      | None -> ())
    child;
  normalize r2 !out

(* Stack-tree merge over interval labels (Al-Khalifa et al. style): both
   inputs sorted by pre rank; the stack holds the current chain of open
   ancestors. *)
let stack_tree pp ~anc ~desc =
  let pre n = (Baselines.Prepost.label_of pp n).Baselines.Prepost.pre in
  let post n = (Baselines.Prepost.label_of pp n).Baselines.Prepost.post in
  let anc = List.sort (fun a b -> Stdlib.compare (pre a) (pre b)) anc in
  let desc = List.sort (fun a b -> Stdlib.compare (pre a) (pre b)) desc in
  let out = ref [] in
  (* The stack is the chain of already-seen a-nodes whose subtrees contain
     the scan position; an entry contains node x iff its post rank exceeds
     x's (pre order is guaranteed by the scan). *)
  let stack = ref [] in
  let rec go anc desc =
    match (anc, desc) with
    | _, [] -> ()
    | [], d :: rest ->
      (* Only the stack can contain ancestors of d. *)
      let pd = post d in
      stack := List.filter (fun a -> post a > pd) !stack;
      List.iter (fun a -> out := { anc = a; desc = d } :: !out) !stack;
      go [] rest
    | a :: arest, d :: drest ->
      if pre a < pre d then begin
        (* Entering a: first close ancestors whose subtree ended. *)
        stack := List.filter (fun x -> post x > post a) !stack;
        stack := a :: !stack;
        go arest desc
      end
      else begin
        let pd = post d in
        stack := List.filter (fun x -> post x > pd) !stack;
        List.iter (fun x -> out := { anc = x; desc = d } :: !out) !stack;
        go anc drest
      end
  in
  go anc desc;
  (* Normalize like the others, but without a Ruid2 context: order by
     (desc pre, anc pre descending). *)
  List.sort
    (fun p q ->
      let c = Stdlib.compare (pre p.desc) (pre q.desc) in
      if c <> 0 then c else Stdlib.compare (pre q.anc) (pre p.anc))
    !out
