lib/join/structural_join.ml: Baselines Hashtbl List Ruid Rxml Stdlib
