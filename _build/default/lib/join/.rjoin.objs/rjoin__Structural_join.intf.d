lib/join/structural_join.mli: Baselines Ruid Rxml
