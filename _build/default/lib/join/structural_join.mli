(** Structural (ancestor-descendant) joins over numbered element sets.

    The paper's parent-derivation property feeds directly into the
    structural-join literature it cites (Li-Moon, Zhang et al.) and
    influenced: given two element lists A and D, find all pairs
    [(a, d)] with [a] an ancestor of [d].  Three algorithms are provided:

    - {!nested_loop}: one relation decision per pair — the baseline any
      numbering scheme supports.
    - {!ancestor_probe}: the UID-family algorithm.  For each [d], generate
      its ancestor {e identifiers} by pure arithmetic ([rancestor]) and
      probe a hash set of A's identifiers: O(|D| * depth), independent of
      |A|, no order requirements.  This is exactly the "identifiers of the
      ancestors of a node [are] generated quickly" use of Section 3.3.
    - {!stack_tree}: the classic merge with a stack over interval
      (pre/post) labels, O(|A| + |D| + output), requiring both inputs in
      document order.

    All three return the same pair multiset; result order is normalized to
    (descendant document order, ancestor depth). *)

type pair = { anc : Rxml.Dom.t; desc : Rxml.Dom.t }

val nested_loop :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list

val ancestor_probe :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list

val stack_tree :
  Baselines.Prepost.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> pair list
(** Inputs need not be pre-sorted; they are sorted by pre rank internally
    (sorting cost is reported separately by the E9 bench). *)

val semijoin_descendants :
  Ruid.Ruid2.t -> anc:Rxml.Dom.t list -> desc:Rxml.Dom.t list -> Rxml.Dom.t list
(** Descendants having at least one ancestor in [anc] — the node-set
    semantics an XPath step needs — via {!ancestor_probe} with early exit. *)

val parent_child :
  Ruid.Ruid2.t -> parent:Rxml.Dom.t list -> child:Rxml.Dom.t list -> pair list
(** The parent-child join: one [rparent] per candidate child, then a hash
    probe — O(|child|). *)
