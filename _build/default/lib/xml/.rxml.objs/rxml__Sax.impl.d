lib/xml/sax.ml: Buffer Char Dom Hashtbl List Option Parser Printf String
