lib/xml/stats.ml: Dom Format Hashtbl List Option Stdlib
