lib/xml/parser.ml: Buffer Char Dom Format List Printf String
