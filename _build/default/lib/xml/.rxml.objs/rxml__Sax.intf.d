lib/xml/sax.mli: Dom Hashtbl
