lib/xml/serializer.mli: Buffer Dom
