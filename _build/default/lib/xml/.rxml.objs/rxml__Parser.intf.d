lib/xml/parser.mli: Dom Format
