(** Shape statistics of a DOM tree.

    The paper's claims are all shape-driven (maximal fan-out, path length,
    fan-out disparity); this module computes the quantities quoted in
    Sections 1 and 3 for a given document. *)

type t = {
  nodes : int;  (** all nodes of the subtree, root included *)
  element_nodes : int;
  max_fanout : int;  (** maximal number of children of any node *)
  max_depth : int;  (** longest root-to-leaf path, in edges *)
  leaves : int;
  avg_fanout : float;  (** mean degree over internal nodes *)
}

val compute : Dom.t -> t

val fanout_histogram : Dom.t -> (int * int) list
(** [(degree, how many nodes have it)] sorted by degree. *)

val pp : Format.formatter -> t -> unit
