(** Serialization of {!Dom} trees back to XML text. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quote for attribute values. *)

val to_buffer : ?indent:int -> Buffer.t -> Dom.t -> unit
(** Serialize a node (document or subtree).  With [indent] set, pretty-print
    using that many spaces per nesting level; by default the output is
    compact and round-trips exactly through {!Parser.parse_string} with
    [keep_whitespace:true]. *)

val to_string : ?indent:int -> Dom.t -> string

val to_file : ?indent:int -> string -> Dom.t -> unit
