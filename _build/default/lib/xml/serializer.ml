let escape generic s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when not generic -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text s = escape true s
let escape_attr s = escape false s

let to_buffer ?indent buf node =
  let pad level =
    match indent with
    | None -> ()
    | Some w ->
      if level >= 0 then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * w) ' ')
      end
  in
  let rec emit level (n : Dom.t) =
    match n.Dom.kind with
    | Dom.Document -> List.iter (emit level) n.children
    | Dom.Text s -> Buffer.add_string buf (escape_text s)
    | Dom.Comment s ->
      pad level;
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
    | Dom.Pi (target, data) ->
      pad level;
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if data <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf data
      end;
      Buffer.add_string buf "?>"
    | Dom.Element e ->
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr v);
          Buffer.add_char buf '"')
        e.attrs;
      if n.Dom.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let only_text = List.for_all Dom.is_text n.Dom.children in
        if only_text then List.iter (emit (-1)) n.Dom.children
        else begin
          List.iter (emit (level + 1)) n.Dom.children;
          pad level
        end;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>'
      end
  in
  match node.Dom.kind with
  | Dom.Document ->
    (* Suppress the leading newline the first pad would add. *)
    List.iteri
      (fun i c ->
        if i = 0 && indent <> None then begin
          let save = Buffer.length buf in
          emit 0 c;
          (* Drop leading '\n' if the very first emission added one. *)
          if Buffer.length buf > save && Buffer.nth buf save = '\n' then begin
            let s = Buffer.sub buf save (Buffer.length buf - save) in
            Buffer.truncate buf save;
            Buffer.add_string buf (String.sub s 1 (String.length s - 1))
          end
        end
        else emit 0 c)
      node.Dom.children
  | _ ->
    let save = Buffer.length buf in
    emit 0 node;
    if indent <> None && Buffer.length buf > save && Buffer.nth buf save = '\n'
    then begin
      let s = Buffer.sub buf save (Buffer.length buf - save) in
      Buffer.truncate buf save;
      Buffer.add_string buf (String.sub s 1 (String.length s - 1))
    end

let to_string ?indent node =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf node;
  Buffer.contents buf

let to_file ?indent path node =
  let oc = open_out_bin path in
  output_string oc (to_string ?indent node);
  close_out oc
