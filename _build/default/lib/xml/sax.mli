(** Streaming (SAX-style) XML parsing.

    The event layer under {!Parser}: documents too large to hold as a DOM
    can be scanned, filtered or counted in one pass, and the DOM builder
    itself is just a fold over these events.  Shares the lexical subset of
    {!Parser} (elements, attributes, text, CDATA, comments, PIs, skipped
    DOCTYPE, predefined and character entities). *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

val fold : ?keep_whitespace:bool -> string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** [fold src ~init ~f] runs [f] over the event stream of the document
    text.  Events arrive in document order; element nesting is validated.
    @raise Parser.Parse_error on malformed input. *)

val iter : ?keep_whitespace:bool -> string -> f:(event -> unit) -> unit

val count_elements : string -> (string, int) Hashtbl.t
(** Tag histogram in one pass, no tree built. *)

val max_depth : string -> int
(** Maximal element nesting depth in one pass. *)

val build_dom : ?keep_whitespace:bool -> string -> Dom.t
(** The DOM builder expressed as a fold over events; equivalent to
    {!Parser.parse_string} (tested against it). *)
