type t = {
  nodes : int;
  element_nodes : int;
  max_fanout : int;
  max_depth : int;
  leaves : int;
  avg_fanout : float;
}

let compute root =
  let nodes = ref 0 in
  let element_nodes = ref 0 in
  let max_fanout = ref 0 in
  let max_depth = ref 0 in
  let leaves = ref 0 in
  let internal = ref 0 in
  let child_total = ref 0 in
  let rec go depth (n : Dom.t) =
    incr nodes;
    if Dom.is_element n then incr element_nodes;
    let d = Dom.degree n in
    if d > !max_fanout then max_fanout := d;
    if depth > !max_depth then max_depth := depth;
    if d = 0 then incr leaves
    else begin
      incr internal;
      child_total := !child_total + d
    end;
    List.iter (go (depth + 1)) n.Dom.children
  in
  go 0 root;
  {
    nodes = !nodes;
    element_nodes = !element_nodes;
    max_fanout = !max_fanout;
    max_depth = !max_depth;
    leaves = !leaves;
    avg_fanout =
      (if !internal = 0 then 0.
       else float_of_int !child_total /. float_of_int !internal);
  }

let fanout_histogram root =
  let tbl = Hashtbl.create 16 in
  Dom.iter_preorder
    (fun n ->
      let d = Dom.degree n in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    root;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let pp ppf s =
  Format.fprintf ppf
    "nodes=%d elements=%d max_fanout=%d max_depth=%d leaves=%d avg_fanout=%.2f"
    s.nodes s.element_nodes s.max_fanout s.max_depth s.leaves s.avg_fanout
