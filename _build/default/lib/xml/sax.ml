(* Event-stream layer: reuses Parser's lexical machinery conceptually but
   is written directly against the source string so no tree is built. *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

(* A tiny re-statement of the Parser cursor; kept separate so the DOM
   parser and the streaming layer cannot interfere with each other's
   invariants. *)
type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let fail st message =
  raise
    (Parser.Parse_error { Parser.line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_str st s =
  if looking_at st s then begin
    String.iter (fun _ -> advance st) s;
    true
  end
  else false

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C, got %C" c (peek st));
  advance st

let expect_str st s = String.iter (fun c -> expect st c) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let add_codepoint buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_entity st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' || peek st = 'X' in
    if hex then advance st;
    let start = st.pos in
    while peek st <> ';' && not (eof st) do
      advance st
    done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> fail st "malformed character reference"
    in
    if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
    add_codepoint buf code
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      parse_entity st buf;
      go ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then
        fail st (Printf.sprintf "duplicate attribute %s" name);
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let scan_until st terminator what =
  let start = st.pos in
  let rec find () =
    if eof st then fail st (Printf.sprintf "unterminated %s" what)
    else if looking_at st terminator then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let body = String.sub st.src start (st.pos - start) in
  expect_str st terminator;
  body

let skip_doctype st =
  let rec go () =
    if eof st then fail st "unterminated DOCTYPE"
    else
      match peek st with
      | '[' ->
        advance st;
        ignore (scan_until st "]" "DOCTYPE internal subset");
        go ()
      | '>' -> advance st
      | _ ->
        advance st;
        go ()
  in
  go ()

let is_all_whitespace s = String.for_all is_space s

let fold ?(keep_whitespace = false) src ~init ~f =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let acc = ref init in
  let emit e = acc := f !acc e in
  let stack = ref [] in
  let seen_root = ref false in
  (* prolog *)
  skip_ws st;
  if looking_at st "<?xml" then begin
    expect_str st "<?";
    ignore (parse_name st);
    ignore (scan_until st "?>" "XML declaration")
  end;
  let flush_text buf =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.length s > 0 && (keep_whitespace || not (is_all_whitespace s))
    then
      if !stack <> [] then emit (Text s)
      else if not (is_all_whitespace s) then fail st "text outside the root element"
  in
  let text_buf = Buffer.create 64 in
  let rec loop () =
    if eof st then ()
    else if looking_at st "<!--" then begin
      flush_text text_buf;
      expect_str st "<!--";
      emit (Comment (scan_until st "-->" "comment"));
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      if !stack = [] then fail st "CDATA outside the root element";
      expect_str st "<![CDATA[";
      Buffer.add_string text_buf (scan_until st "]]>" "CDATA section");
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      if !seen_root then fail st "DOCTYPE after the root element";
      expect_str st "<!DOCTYPE";
      skip_doctype st;
      loop ()
    end
    else if looking_at st "<?" then begin
      flush_text text_buf;
      expect_str st "<?";
      let target = parse_name st in
      skip_ws st;
      let data = scan_until st "?>" "processing instruction" in
      emit (Pi (target, data));
      loop ()
    end
    else if looking_at st "</" then begin
      flush_text text_buf;
      expect_str st "</";
      let tag = parse_name st in
      skip_ws st;
      expect st '>';
      (match !stack with
      | top :: rest when top = tag ->
        stack := rest;
        emit (End_element tag)
      | top :: _ ->
        fail st (Printf.sprintf "mismatched end tag: <%s> closed by </%s>" top tag)
      | [] -> fail st "end tag without open element");
      loop ()
    end
    else if peek st = '<' then begin
      flush_text text_buf;
      if !stack = [] && !seen_root then fail st "content after root element";
      advance st;
      let tag = parse_name st in
      let attrs = parse_attributes st in
      skip_ws st;
      seen_root := true;
      if skip_str st "/>" then begin
        emit (Start_element { tag; attrs });
        emit (End_element tag)
      end
      else begin
        expect st '>';
        emit (Start_element { tag; attrs });
        stack := tag :: !stack
      end;
      loop ()
    end
    else if peek st = '&' then begin
      if !stack = [] then fail st "entity outside the root element";
      parse_entity st text_buf;
      loop ()
    end
    else begin
      Buffer.add_char text_buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  flush_text text_buf;
  if !stack <> [] then fail st "unterminated element";
  if not !seen_root then fail st "expected root element";
  !acc

let iter ?keep_whitespace src ~f =
  fold ?keep_whitespace src ~init:() ~f:(fun () e -> f e)

let count_elements src =
  let tbl = Hashtbl.create 64 in
  iter src ~f:(function
    | Start_element { tag; _ } ->
      Hashtbl.replace tbl tag (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tag))
    | End_element _ | Text _ | Comment _ | Pi _ -> ());
  tbl

let max_depth src =
  let depth = ref 0 and best = ref 0 in
  iter src ~f:(function
    | Start_element _ ->
      incr depth;
      if !depth > !best then best := !depth
    | End_element _ -> decr depth
    | Text _ | Comment _ | Pi _ -> ());
  !best

let build_dom ?keep_whitespace src =
  let doc = Dom.document () in
  let stack = ref [ doc ] in
  let top () = match !stack with t :: _ -> t | [] -> assert false in
  iter ?keep_whitespace src ~f:(function
    | Start_element { tag; attrs } ->
      let e = Dom.element ~attrs tag in
      Dom.append_child (top ()) e;
      stack := e :: !stack
    | End_element _ -> (
      match !stack with _ :: rest -> stack := rest | [] -> assert false)
    | Text s -> Dom.append_child (top ()) (Dom.text s)
    | Comment s -> Dom.append_child (top ()) (Dom.comment s)
    | Pi (t, d) -> Dom.append_child (top ()) (Dom.pi t d));
  doc
