(* E7 — Ablation of the Section 2.3 fan-out adjustment.

   Without the marked-node trick a frame node can collect more frame
   children than any source node has children, inflating kappa and with it
   every global index.  The table compares kappa, the guarantee
   kappa <= max fan-out of T, and the resulting global-index width. *)

module Dom = Rxml.Dom
module Stats = Rxml.Stats
module Frame = Ruid.Frame
module R2 = Ruid.Ruid2
module Shape = Rworkload.Shape

let global_bits r2 =
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v
  in
  List.fold_left
    (fun acc row -> max acc (bits row.Ruid.Ktable.global))
    0 (Ruid.Ktable.rows (R2.ktable r2))

let run () =
  Report.section "E7  Ablation: Section 2.3 frame fan-out adjustment";
  let docs =
    [
      ("binary-3k", Shape.generate ~seed:71 ~target:3_000
          (Shape.Uniform { fanout_lo = 1; fanout_hi = 2 }));
      ("uniform-5k", Shape.generate ~seed:72 ~target:5_000
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }));
      ("deep-2k", Shape.generate ~seed:73 ~target:2_000
          (Shape.Deep { fanout = 3; bias = 0.8 }));
    ]
  in
  let rows =
    List.concat_map
      (fun (name, root) ->
        let tree_k = Stats.(compute root).max_fanout in
        List.map
          (fun adjust ->
            let frame = Frame.partition ~max_area_size:8 ~adjust root in
            let r2 = R2.number_with_frame frame in
            [
              name;
              Report.fbool adjust;
              Report.fint tree_k;
              Report.fint (Frame.frame_fanout frame);
              Report.fint (Frame.area_count frame);
              Report.fint (global_bits r2);
            ])
          [ false; true ])
      docs
  in
  Report.table
    [
      "document"; "adjusted"; "tree max k"; "frame kappa"; "areas";
      "global-index bits";
    ]
    rows;
  Report.note
    "Shape: the adjustment caps kappa at the source fan-out (the paper's";
  Report.note
    "guarantee), paying a few extra areas to shrink every global index."
