(* E8 — Ablation: partition granularity (max UID-local area size).

   The design trade-off the scheme exposes (Sections 2.1, 3.1-3.3): small
   areas mean a large K table (more main memory) but small local indices
   and small update scopes; one huge area degenerates to the original UID.
   One document, one update script, one axis workload — swept over the
   area-size budget. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Shape = Rworkload.Shape
module Updates = Rworkload.Updates
module Rng = Rworkload.Rng

let run () =
  Report.section "E8  Ablation: UID-local area size budget";
  let base = Shape.generate ~seed:81 ~target:10_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  Report.note "document: %d nodes; script: 100 mixed updates (seed 82)"
    (Dom.size base);
  let ops = Updates.script ~seed:82 ~ops:100 base in
  let rng = Rng.create 83 in
  let sample = Array.init 200 (fun _ -> Shape.random_node rng base) in
  let rows =
    List.map
      (fun area ->
        let tree = Dom.clone base in
        let (r2 : R2.t), build_s = Report.time (fun () -> R2.number ~max_area_size:area tree) in
        (* Axis throughput proxy: ancestor lists for sampled nodes (the
           sample indexes by rank so it transfers to the clone). *)
        let ranks = Array.map (fun n ->
            let r = ref 0 and found = ref 0 in
            Dom.iter_preorder (fun x -> if Dom.equal x n then found := !r; incr r) base;
            !found) sample in
        let sample_ids =
          Array.map
            (fun rank -> R2.id_of_node r2 (Updates.node_at_rank tree rank))
            ranks
        in
        let _, anc_s =
          Report.time (fun () ->
              for _ = 1 to 50 do
                Array.iter (fun i -> ignore (R2.rancestors r2 i)) sample_ids
              done)
        in
        let relabels = ref 0 in
        List.iter
          (fun op ->
            relabels :=
              !relabels
              + Updates.apply tree
                  ~insert:(fun ~parent ~pos node ->
                    R2.insert_node r2 ~parent ~pos node)
                  ~delete:(fun n -> R2.delete_subtree r2 n)
                  op)
          ops;
        [
          Report.fint area;
          Report.fint (R2.area_count r2);
          Report.fint (R2.aux_memory_words r2);
          Report.fint (R2.max_local_bits r2);
          Report.fint !relabels;
          Report.fns (build_s *. 1e9);
          Report.fns (anc_s *. 1e9 /. (200. *. 50.));
        ])
      [ 4; 16; 64; 256; 1024; 100_000 ]
  in
  Report.table
    [
      "max area"; "areas (K rows)"; "K memory (words)"; "index bits";
      "relabels/script"; "numbering time"; "rancestor/node";
    ]
    rows;
  Report.note
    "Shape: K memory falls and index width grows with the area budget; the";
  Report.note
    "100000 row is effectively the original UID (one area) - largest update";
  Report.note "scope and widest identifiers, but a one-row K table."
