bench/e1.ml: Bignum Hashtbl List Printf Report Ruid Rworkload Rxml
