bench/micro.ml: Analyze Bechamel Benchmark Float Hashtbl Instance List Measure Report String Test Time Toolkit
