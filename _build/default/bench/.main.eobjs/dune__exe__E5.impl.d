bench/e5.ml: Array List Report Rstorage Ruid Rworkload Rxml
