bench/e3.ml: Array Bechamel Bignum List Micro Report Ruid Rworkload Rxml Staged Test
