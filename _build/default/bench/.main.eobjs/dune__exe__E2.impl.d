bench/e2.ml: Baselines List Printf Report Ruid Rworkload Rxml
