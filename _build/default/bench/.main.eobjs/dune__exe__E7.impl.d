bench/e7.ml: List Report Ruid Rworkload Rxml
