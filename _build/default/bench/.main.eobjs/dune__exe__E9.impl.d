bench/e9.ml: Baselines List Option Printf Report Rjoin Ruid Rworkload Rxml Rxpath
