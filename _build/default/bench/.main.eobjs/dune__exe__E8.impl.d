bench/e8.ml: Array List Report Ruid Rworkload Rxml
