bench/e10.ml: Array Baselines List Printf Report Rstorage Ruid Rworkload Rxml
