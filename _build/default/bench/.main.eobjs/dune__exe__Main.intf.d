bench/main.mli:
