bench/e4.ml: Bechamel List Micro Printf Report Ruid Rworkload Rxml Rxpath Staged Test
