bench/e6.ml: Array List Printf Report Ruid Rworkload Rxml
