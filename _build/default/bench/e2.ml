(* E2 — Robustness under structural update (Section 3.2, Fig. 1).

   Replays identical positional edit scripts against every numbering scheme
   (each on its own clone of the document) and counts relabelled nodes.
   Also sweeps the depth of a single insertion, and exercises the fan-out
   overflow case where the original UID renumbers the whole document while
   ruid confines the damage to one UID-local area. *)

module Dom = Rxml.Dom
module Shape = Rworkload.Shape
module Updates = Rworkload.Updates

let schemes : (module Ruid.Scheme.S) list =
  [
    (module Ruid.Scheme_uid);
    (module Ruid.Scheme_ruid2);
    (module Ruid.Scheme_multilevel);
    (module Baselines.Prepost);
    (module Baselines.Interval);
    (module Baselines.Dewey);
  ]

let replay (module S : Ruid.Scheme.S) base ops =
  let tree = Dom.clone base in
  let t = S.build tree in
  let total = ref 0 and worst = ref 0 in
  List.iter
    (fun op ->
      let changed =
        Updates.apply tree
          ~insert:(fun ~parent ~pos node -> S.insert t ~parent ~pos node)
          ~delete:(fun n -> S.delete t n)
          op
      in
      total := !total + changed;
      if changed > !worst then worst := changed)
    ops;
  (!total, !worst, S.max_label_bits t)

let script_table () =
  Report.subsection
    "E2.a  200 mixed random updates (70% insert / 30% delete), total relabels";
  let documents =
    [
      ("uniform-5k", Shape.generate ~seed:11 ~target:5_000
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }));
      ("xmark-1", Rworkload.Xmark.generate ~seed:12 ~scale:1.0);
      ("deep-2k", Shape.generate ~seed:13 ~target:2_000
          (Shape.Deep { fanout = 3; bias = 0.8 }));
    ]
  in
  List.iter
    (fun (doc_name, base) ->
      Report.note "document %s: %d nodes (seed fixed, script seed 71)" doc_name
        (Dom.size base);
      let ops = Updates.script ~seed:71 ~ops:200 base in
      let rows =
        List.map
          (fun (module S : Ruid.Scheme.S) ->
            let (total, worst, bits), secs =
              Report.time (fun () -> replay (module S) base ops)
            in
            [
              S.name; Report.fint total; Report.fint worst; Report.fint bits;
              Report.fns (secs *. 1e9);
            ])
          schemes
      in
      Report.table
        [ "scheme"; "total relabels"; "worst op"; "label bits"; "replay time" ]
        rows)
    documents;
  Report.note
    "Shape: uid pays whole-subtree (often whole-document) renumbering; ruid stays";
  Report.note
    "within one UID-local area; interval is cheapest until its gaps exhaust."

let depth_sweep () =
  Report.subsection
    "E2.b  Single insertion, sweep of insertion depth (comb document)";
  let base = Shape.comb ~depth:50 ~width:16 () in
  (* Keep the maximal fan-out above the spine degree so the sweep measures
     pure insertion depth, not the separate overflow effect (that is
     E2.c). *)
  for _ = 1 to 4 do
    Dom.append_child base (Dom.element "pad")
  done;
  Report.note "document: %d nodes, depth 50" (Dom.size base);
  let fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let rows =
    List.map
      (fun frac ->
        let op = Updates.deep_insert_script base ~depth_fraction:frac in
        let cells =
          List.map
            (fun (module S : Ruid.Scheme.S) ->
              let tree = Dom.clone base in
              let t = S.build tree in
              let changed =
                Updates.apply tree
                  ~insert:(fun ~parent ~pos node -> S.insert t ~parent ~pos node)
                  ~delete:(fun n -> S.delete t n)
                  op
              in
              Report.fint changed)
            schemes
        in
        Printf.sprintf "%.2f" frac :: cells)
      fractions
  in
  Report.table
    ("insert depth/max"
    :: List.map (fun (module S : Ruid.Scheme.S) -> S.name) schemes)
    rows;
  Report.note
    "Shape (paper, Section 1): the nearer to the root the UID insertion, the larger";
  Report.note "the renumbering; ruid's cost is bounded by the area size throughout."

let overflow_case () =
  Report.subsection
    "E2.c  Fan-out overflow: growing one node's degree past the enumeration fan-out";
  let base = Shape.generate ~seed:17 ~target:4_000
      (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let rows =
    List.map
      (fun (module S : Ruid.Scheme.S) ->
        let tree = Dom.clone base in
        let t = S.build tree in
        (* Push one mid-tree node's fan-out from <=4 to 12: several of the
           insertions overflow k. *)
        let victim =
          Rworkload.Updates.node_at_rank tree (Dom.size tree / 2)
        in
        let total = ref 0 and worst = ref 0 in
        for _ = 1 to 12 do
          let c = S.insert t ~parent:victim ~pos:0 (Dom.element "grow") in
          total := !total + c;
          if c > !worst then worst := c
        done;
        [ S.name; Report.fint !total; Report.fint !worst ])
      schemes
  in
  Report.table [ "scheme"; "total relabels (12 inserts)"; "worst op" ] rows;
  Report.note
    "Shape: each UID overflow renumbers essentially the whole document (Fig. 1's";
  Report.note
    "second insertion); ruid re-enumerates one area. Interval/dewey shift locally."

let interval_gap_sweep () =
  Report.subsection
    "E2.d  Baseline ablation: interval gap size vs deferred renumbering";
  let base = Shape.generate ~seed:19 ~target:3_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
  let ops = Updates.script ~seed:20 ~ops:400 ~delete_ratio:0.2 base in
  let rows =
    List.map
      (fun gap ->
        let tree = Dom.clone base in
        let t = Baselines.Interval.build_with_gap ~gap tree in
        let total = ref 0 in
        List.iter
          (fun op ->
            total :=
              !total
              + Updates.apply tree
                  ~insert:(fun ~parent ~pos node ->
                    Baselines.Interval.insert t ~parent ~pos node)
                  ~delete:(fun n -> Baselines.Interval.delete t n)
                  op)
          ops;
        [
          Report.fint gap;
          Report.fint (Baselines.Interval.renumber_count t);
          Report.fint !total;
          Report.fint (Baselines.Interval.max_label_bits t);
        ])
      [ 4; 16; 64; 256; 1024 ]
  in
  Report.table
    [ "gap"; "global renumberings"; "total relabels"; "label bits" ]
    rows;
  Report.note
    "The durable-numbers baseline trades label bits for deferral: small gaps";
  Report.note
    "renumber the whole document repeatedly, large gaps burn label width -";
  Report.note
    "whereas ruid's update cost is bounded by the area size at fixed width.";
  Report.note
    "(When a renumbering does fire, every outstanding identifier moves - the";
  Report.note "change-tracking example measures that staleness directly.)"

let run () =
  Report.section "E2  Update robustness: relabelled identifiers per structural change";
  script_table ();
  depth_sweep ();
  overflow_case ();
  interval_gap_sweep ()
