(* E9 — Structural joins (extension; Related Work section's containment
   literature).

   Ancestor-descendant joins over tag sets from an XMark-like document:
   the O(|A| x |D|) nested loop any scheme supports, the UID-family
   ancestor-probe (O(|D| x depth), driven by rparent arithmetic), and the
   stack-tree merge over interval labels (O(|A| + |D| + out), needs sorted
   inputs). *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module J = Rjoin.Structural_join

let twig_table site r2 =
  Report.subsection "E9.b  Twig patterns: two-pass semijoin vs full evaluator";
  let index = Rxpath.Tag_index.create r2 in
  let naive = Rxpath.Engine_naive.create site in
  let rows =
    List.map
      (fun q ->
        let rn, tn = Report.time (fun () -> Rxpath.Eval.query naive q) in
        let rt, tt =
          Report.time (fun () -> Option.get (Rxpath.Twig.query r2 index q))
        in
        assert (List.length rn = List.length rt);
        [
          q; Report.fint (List.length rt);
          Report.fns (tn *. 1e9); Report.fns (tt *. 1e9);
        ])
      [
        "//person[creditcard]/name";
        "//item[description//listitem][quantity]/name";
        "//open_auction[bidder/increase]/seller";
        "//closed_auction[annotation//text]/price";
      ]
  in
  Report.table [ "twig"; "matches"; "evaluator"; "semijoin twig" ] rows;
  Report.note
    "Both sides verified equal; the twig engine touches only the tag postings";
  Report.note "of the pattern's labels, never the tree."

let run () =
  Report.section "E9  Structural joins: nested loop vs ancestor probe vs stack-tree";
  let site = Rworkload.Xmark.generate ~seed:91 ~scale:8.0 in
  let r2 = R2.number ~max_area_size:64 site in
  let pp = Baselines.Prepost.build site in
  let by_tag tag =
    List.filter (fun n -> Dom.tag n = tag) (Dom.preorder site)
  in
  Report.note "document: xmark scale 8 (%d nodes)" (Dom.size site);
  let rows =
    List.map
      (fun (anc_tag, desc_tag) ->
        let anc = by_tag anc_tag and desc = by_tag desc_tag in
        let r_nested, t_nested =
          Report.time (fun () -> J.nested_loop r2 ~anc ~desc)
        in
        let r_probe, t_probe =
          Report.time (fun () -> J.ancestor_probe r2 ~anc ~desc)
        in
        let r_stack, t_stack =
          Report.time (fun () -> J.stack_tree pp ~anc ~desc)
        in
        assert (List.length r_nested = List.length r_probe);
        assert (List.length r_probe = List.length r_stack);
        [
          Printf.sprintf "%s//%s" anc_tag desc_tag;
          Report.fint (List.length anc);
          Report.fint (List.length desc);
          Report.fint (List.length r_probe);
          Report.fns (t_nested *. 1e9);
          Report.fns (t_probe *. 1e9);
          Report.fns (t_stack *. 1e9);
        ])
      [
        ("item", "text"); ("listitem", "text"); ("closed_auction", "listitem");
        ("open_auction", "increase"); ("regions", "name"); ("parlist", "parlist");
      ]
  in
  Report.table
    [ "join"; "|A|"; "|D|"; "pairs"; "nested loop"; "ancestor probe"; "stack-tree" ]
    rows;
  Report.note
    "Shape: the rparent-driven probe tracks |D| x depth and crushes the nested";
  Report.note
    "loop as |A| grows; stack-tree is the specialist's bound once inputs are";
  Report.note "sorted, which the probe never needs.";
  twig_table site r2
