(* E6 — Preceding/following decisions from the frame alone (Section 3.4,
   Lemmas 2-3).

   For random node pairs, the global index decides the relative order
   whenever the two areas are frame-siblings (Before/After in the frame);
   only pairs whose areas sit on one frame path need any local-index work.
   The fraction decided at the frame level rises as areas grow. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module U = Ruid.Uid.Over_int
module Rel = Ruid.Rel
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

let run () =
  Report.section
    "E6  Preceding/following: how often the frame (global index) decides alone";
  let root = Shape.generate ~seed:61 ~target:20_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let rng = Rng.create 13 in
  let nodes = Array.of_list (Dom.preorder root) in
  let pairs =
    Array.init 5_000 (fun _ -> (Rng.pick rng nodes, Rng.pick rng nodes))
  in
  let rows =
    List.map
      (fun area ->
        let r2 = R2.number ~max_area_size:area root in
        let kappa = R2.kappa r2 in
        let decided = ref 0 and order_pairs = ref 0 and correct = ref 0 in
        Array.iter
          (fun (a, b) ->
            let ia = R2.id_of_node r2 a and ib = R2.id_of_node r2 b in
            let full = R2.relationship r2 ia ib in
            (match full with
            | Rel.Before | Rel.After ->
              incr order_pairs;
              (* Frame-level comparison: normalized area globals. *)
              let ga = ia.R2.global and gb = ib.R2.global in
              (match U.relation ~k:kappa ga gb with
              | Rel.Before | Rel.After -> incr decided
              | Rel.Self | Rel.Ancestor | Rel.Descendant -> ())
            | Rel.Self | Rel.Ancestor | Rel.Descendant -> ());
            (* Cross-check against the DOM oracle. *)
            let oracle =
              if Dom.equal a b then Rel.Self
              else if Dom.is_ancestor ~anc:a ~desc:b then Rel.Ancestor
              else if Dom.is_ancestor ~anc:b ~desc:a then Rel.Descendant
              else if Dom.document_order ~root a b < 0 then Rel.Before
              else Rel.After
            in
            if Rel.equal full oracle then incr correct)
          pairs;
        [
          Report.fint area;
          Report.fint (R2.area_count r2);
          Report.fint !order_pairs;
          Report.fint !decided;
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int !decided /. float_of_int (max 1 !order_pairs));
          Printf.sprintf "%d/%d" !correct (Array.length pairs);
        ])
      [ 8; 32; 128; 512 ]
  in
  Report.table
    [
      "max area size"; "areas"; "before/after pairs"; "frame-decided";
      "fraction"; "oracle agreement";
    ]
    rows;
  Report.note
    "Shape (Lemma 3): most order decisions need only the frame-level UID";
  Report.note
    "comparison; the residue follows one path of K lookups. Agreement with the";
  Report.note "DOM oracle must be total."
