(* Bechamel wrapper: run a group of micro-benchmarks and return the OLS
   ns/run estimates, in declaration order. *)

open Bechamel
open Toolkit

let estimate_ns ?(quota = 0.5) tests =
  let grouped = Test.make_grouped ~name:"g" ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      (* Strip the exact "g/" group prefix (test names may contain '/'). *)
      let name =
        if String.length name > 2 && String.sub name 0 2 = "g/" then
          String.sub name 2 (String.length name - 2)
        else name
      in
      (name, ns) :: acc)
    results []

let run_table ?quota title tests =
  Report.subsection title;
  let est = estimate_ns ?quota tests in
  (* Preserve the declaration order of the tests. *)
  let order =
    List.map (fun t -> Test.Elt.name t)
      (List.concat_map Test.elements tests)
  in
  let rows =
    List.filter_map
      (fun name ->
        match List.assoc_opt name est with
        | Some ns -> Some [ name; Report.fns ns ]
        | None -> None)
      order
  in
  Report.table [ "operation"; "time/op" ] rows;
  est
