(* E10 — Identifier storage footprint, and the Section 4 table-selection
   application.

   (a) Per-scheme label storage: total and per-node label bits on several
   documents, plus the concrete varint-encoded byte sizes of ruid
   identifiers (Codec).  This quantifies the Section 1 complaint that the
   original UID "consumes too much identifier value".

   (b) Partitioned tables named (tag, global index): fraction of a tag's
   tables a descendant query opens, decided by identifier arithmetic. *)

module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

let schemes : (module Ruid.Scheme.S) list =
  [
    (module Ruid.Scheme_uid);
    (module Ruid.Scheme_ruid2);
    (module Ruid.Scheme_multilevel);
    (module Baselines.Prepost);
    (module Baselines.Interval);
    (module Baselines.Dewey);
  ]

let label_table () =
  Report.subsection "E10.a  Label storage per scheme (bits per node, average)";
  let documents =
    [
      ("uniform-8k", Shape.generate ~seed:101 ~target:8_000
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }));
      ("deep-3k", Shape.generate ~seed:102 ~target:3_000
          (Shape.Deep { fanout = 3; bias = 0.85 }));
      ("dblp-1k", Rworkload.Dblp.generate ~seed:103 ~publications:1_000);
    ]
  in
  List.iter
    (fun (name, base) ->
      let n = Dom.size base in
      Report.note "document %s: %d nodes" name n;
      let rows =
        List.map
          (fun (module S : Ruid.Scheme.S) ->
            let t = S.build (Dom.clone base) in
            [
              S.name;
              Printf.sprintf "%.1f" (float_of_int (S.total_label_bits t) /. float_of_int n);
              Report.fint (S.max_label_bits t);
              Report.fint (S.aux_memory_words t);
            ])
          schemes
      in
      Report.table
        [ "scheme"; "avg bits/label"; "max label bits"; "aux memory (words)" ]
        rows)
    documents;
  Report.note
    "Shape: uid's average explodes on deep documents (k^depth); ruid trades a";
  Report.note "small K table for uniformly small labels."

let codec_table () =
  Report.subsection "E10.b  Wire-encoded identifier sizes (varint bytes)";
  let base = Shape.generate ~seed:104 ~target:10_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let r2 = R2.number ~max_area_size:64 base in
  let m = Ruid.Mruid.build ~max_area_size:16 base in
  let lb = Ruid.Uid.Over_big.label base in
  let nodes = Dom.preorder base in
  let n = List.length nodes in
  let sum f = List.fold_left (fun acc x -> acc + f x) 0 nodes in
  let uid_bytes =
    sum (fun x -> Ruid.Codec.bignat_size (Ruid.Uid.Over_big.id_of_node lb x))
  in
  let ruid2_bytes = sum (fun x -> Ruid.Codec.ruid2_size (R2.id_of_node r2 x)) in
  let mruid_bytes =
    sum (fun x -> Ruid.Codec.mruid_size (Ruid.Mruid.id_of_node m x))
  in
  Report.table
    [ "encoding"; "total bytes"; "bytes/node" ]
    [
      [ "uid (length-prefixed bignum)"; Report.fint uid_bytes;
        Printf.sprintf "%.2f" (float_of_int uid_bytes /. float_of_int n) ];
      [ "ruid2 (flag + 2 varints)"; Report.fint ruid2_bytes;
        Printf.sprintf "%.2f" (float_of_int ruid2_bytes /. float_of_int n) ];
      [ Printf.sprintf "mruid (%d levels)" (Ruid.Mruid.levels m);
        Report.fint mruid_bytes;
        Printf.sprintf "%.2f" (float_of_int mruid_bytes /. float_of_int n) ];
    ]

let partitioned_table () =
  Report.subsection
    "E10.c  Section 4 table selection: tables opened per descendant query";
  let root =
    Shape.generate ~seed:105 ~tags:[| "a"; "b"; "c"; "d" |] ~target:20_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 })
  in
  let rows =
    List.map
      (fun area ->
        let r2 = R2.number ~max_area_size:area root in
        let p = Rstorage.Partitioned.create r2 in
        let rng = Rng.create 11 in
        let opened = ref 0 and available = ref 0 and queries = ref 0 in
        for _ = 1 to 100 do
          let ctx = Shape.random_internal rng root in
          let tag = [| "a"; "b"; "c"; "d" |].(Rng.int rng 4) in
          let names, _ =
            Rstorage.Partitioned.descendant_query p
              ~context:(R2.id_of_node r2 ctx) ~tag
          in
          opened := !opened + List.length names;
          available := !available + Rstorage.Partitioned.tables_for_tag p tag;
          incr queries
        done;
        [
          Report.fint area;
          Report.fint (Rstorage.Partitioned.table_count p);
          Printf.sprintf "%.1f" (float_of_int !opened /. float_of_int !queries);
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int !opened /. float_of_int (max 1 !available));
        ])
      [ 16; 64; 256 ]
  in
  Report.table
    [ "max area"; "tables"; "tables opened/query"; "fraction of tag's tables" ]
    rows;
  Report.note
    "The candidate tables are chosen from identifiers alone; everything else";
  Report.note "stays closed (Section 4, 'Database file/table selection')."

let run () =
  Report.section "E10  Identifier storage and table partitioning";
  label_table ();
  codec_table ();
  partitioned_table ()
