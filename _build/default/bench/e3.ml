(* E3 — Cost of parent/ancestor derivation (Sections 2.2, 3.3; observation
   O2).  Bechamel micro-benchmarks: the original UID's one-division parent
   formula, ruid's rparent (Fig. 6), the multilevel variant, ancestor-list
   generation, and relationship decisions — all pure main-memory work. *)

open Bechamel

module Dom = Rxml.Dom
module U = Ruid.Uid.Over_int
module UB = Ruid.Uid.Over_big
module B = Bignum.Bignat
module R2 = Ruid.Ruid2
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng

let run () =
  Report.section
    "E3  Parent and ancestor derivation cost (pure in-memory arithmetic)";
  let root = Shape.generate ~seed:31 ~target:20_000
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 6 }) in
  let r2 = R2.number ~max_area_size:64 root in
  let lb_int = U.label root in
  let lb_big = UB.label root in
  let k = lb_int.U.k in
  let rng = Rng.create 7 in
  let sample_nodes =
    Array.init 512 (fun _ -> Shape.random_internal rng root)
  in
  let deep_node =
    List.fold_left
      (fun best n -> if Dom.depth_of n > Dom.depth_of best then n else best)
      root (Dom.preorder root)
  in
  Report.note "document: %d nodes, k = %d, %d UID-local areas, deepest node at depth %d"
    (Dom.size root) k (R2.area_count r2) (Dom.depth_of deep_node);
  let idx = ref 0 in
  let pick arr =
    idx := (!idx + 1) land 511;
    arr.(!idx)
  in
  let uid_ids = Array.map (U.id_of_node lb_int) sample_nodes in
  let uid_big_ids = Array.map (UB.id_of_node lb_big) sample_nodes in
  let ruid_ids = Array.map (R2.id_of_node r2) sample_nodes in
  let deep_uid = U.id_of_node lb_int deep_node in
  let deep_rid = R2.id_of_node r2 deep_node in
  let tests =
    [
      Test.make ~name:"uid: parent (formula 1, int)"
        (Staged.stage (fun () -> U.parent ~k (pick uid_ids)));
      Test.make ~name:"uid: parent (formula 1, bignum)"
        (Staged.stage (fun () -> UB.parent ~k (pick uid_big_ids)));
      Test.make ~name:"ruid2: rparent (Fig. 6)"
        (Staged.stage (fun () -> R2.rparent r2 (pick ruid_ids)));
      Test.make ~name:"dom: parent pointer"
        (Staged.stage (fun () -> (pick sample_nodes).Dom.parent));
      Test.make ~name:"uid: full ancestor list (deepest node)"
        (Staged.stage (fun () -> U.ancestors ~k deep_uid));
      Test.make ~name:"ruid2: rancestor (deepest node)"
        (Staged.stage (fun () -> R2.rancestors r2 deep_rid));
      Test.make ~name:"uid: relation (two random ids)"
        (Staged.stage (fun () -> U.relation ~k (pick uid_ids) (pick uid_ids)));
      Test.make ~name:"ruid2: relationship (two random ids)"
        (Staged.stage (fun () -> R2.relationship r2 (pick ruid_ids) (pick ruid_ids)));
    ]
  in
  ignore (Micro.run_table "E3.a  per-operation cost" tests);
  Report.note
    "Shape (O2): rparent is a few times the single-division UID parent but the";
  Report.note
    "same order of magnitude, entirely in memory; both beat touching storage."
