(* E4 — Query evaluation speed (Section 3.5; observation O3).

   The same XPath queries over the same XMark-like document, evaluated by
   the naive DOM-walking engine and by the ruid engine (identifier
   arithmetic + tag index).  Wall-clock per query, plus a Bechamel round on
   three representative queries. *)

open Bechamel
module Eval = Rxpath.Eval

let run () =
  Report.section "E4  XPath evaluation: DOM walking vs ruid identifier arithmetic";
  let site = Rworkload.Xmark.generate ~seed:41 ~scale:5.0 in
  (* A document node on top lets absolute paths like /site/... resolve. *)
  let doc = Rxml.Dom.document () in
  Rxml.Dom.append_child doc site;
  let size = Rxml.Dom.size doc in
  let naive = Rxpath.Engine_naive.create doc in
  let r2 = Ruid.Ruid2.number ~max_area_size:64 doc in
  let ruid = Rxpath.Engine_ruid.create r2 in
  let index = Rxpath.Tag_index.create r2 in
  Report.note "document: xmark scale 5 (%d nodes), %d UID-local areas" size
    (Ruid.Ruid2.area_count r2);
  Report.subsection "E4.a  per-query wall clock (single evaluation)";
  let rows =
    List.map
      (fun q ->
        let p = Rxpath.Xparser.parse q in
        let rn, tn = Report.time (fun () -> Eval.select naive p) in
        let rr, tr = Report.time (fun () -> Eval.select ruid p) in
        assert (List.length rn = List.length rr);
        let plan_cell =
          match Report.time (fun () -> Rxpath.Pathplan.query r2 index q) with
          | Some planned, tp ->
            assert (List.length planned = List.length rn);
            Report.fns (tp *. 1e9)
          | None, _ -> "-"
        in
        [
          q;
          Report.fint (List.length rn);
          Report.fns (tn *. 1e9);
          Report.fns (tr *. 1e9);
          plan_cell;
          Printf.sprintf "%.2fx" (tn /. tr);
        ])
      Rworkload.Xmark.queries
  in
  Report.table
    [ "query"; "results"; "naive"; "ruid"; "join plan"; "naive/ruid" ]
    rows;
  Report.note
    "Shape (O3): ruid is competitive everywhere and wins clearly on ancestor and";
  Report.note
    "preceding/following queries, where the tag index plus identifier arithmetic";
  Report.note "replaces a full-tree scan.";
  Report.subsection "E4.b  Bechamel on three representative queries";
  let bench name eng q =
    let p = Rxpath.Xparser.parse q in
    Test.make ~name (Staged.stage (fun () -> Eval.select eng p))
  in
  let tests =
    [
      bench "naive: //listitem/ancestor::item" naive "//listitem/ancestor::item";
      bench "ruid : //listitem/ancestor::item" ruid "//listitem/ancestor::item";
      bench "naive: //annotation/preceding::bidder" naive "//annotation/preceding::bidder";
      bench "ruid : //annotation/preceding::bidder" ruid "//annotation/preceding::bidder";
      bench "naive: //item[quantity>3]/name" naive "//item[quantity>3]/name";
      bench "ruid : //item[quantity>3]/name" ruid "//item[quantity>3]/name";
    ]
  in
  ignore (Micro.run_table ~quota:1.0 "steady-state time per evaluation" tests)
