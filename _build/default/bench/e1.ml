(* E1 — Identifier magnitude and overflow (Sections 1, 3.1; observation O1).

   The original UID enumerates a virtual complete k-ary tree, so its
   identifier magnitude is k^depth regardless of how many real nodes exist;
   ruid grades and localizes k, keeping every stored index small.  The
   tables report (a) the analytic magnitude of the enumeration, (b) measured
   identifier widths on concrete documents, (c) the e^m capacity law of
   multilevel ruid. *)

module Dom = Rxml.Dom
module Stats = Rxml.Stats
module B = Bignum.Bignat
module UB = Ruid.Uid.Over_big
module R2 = Ruid.Ruid2
module ML = Ruid.Multilevel
module MR = Ruid.Mruid
module Shape = Rworkload.Shape

let analytic_table () =
  Report.subsection
    "E1.a  Analytic identifier magnitude: bits of the last UID of a complete k-ary tree";
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun depth ->
            let bits = B.bit_length (UB.max_id_at_depth ~k ~depth) in
            [
              Report.fint k; Report.fint depth; Report.fint bits;
              Report.fbool (bits <= 62);
            ])
          [ 4; 8; 12; 16; 24 ])
      [ 2; 10; 100; 1000 ]
  in
  Report.table [ "k"; "depth"; "uid bits"; "fits in 63-bit int" ] rows;
  Report.note
    "UID magnitude is k^depth: with fan-out 1000 the native range is gone at depth 7."

let docs () =
  [
    ("uniform-10k", Shape.generate ~seed:1 ~target:10_000
        (Shape.Uniform { fanout_lo = 0; fanout_hi = 6 }));
    ("deep-recursive", Shape.generate ~seed:2 ~target:4_000
        (Shape.Deep { fanout = 3; bias = 0.85 }));
    ("skewed-fanout", Shape.generate ~seed:3 ~target:10_000
        (Shape.Skewed { max_fanout = 400; s = 1.1 }));
    ("dblp-3k-pubs", Rworkload.Dblp.generate ~seed:4 ~publications:3_000);
    ("xmark-scale-2", Rworkload.Xmark.generate ~seed:5 ~scale:2.0);
    ("comb-d30-w40", Shape.comb ~depth:30 ~width:40 ());
    ("comb-d12-w200", Shape.comb ~depth:12 ~width:200 ());
  ]

let measured_table () =
  Report.subsection
    "E1.b  Measured identifier widths per document (uid over bignums vs ruid)";
  let rows =
    List.map
      (fun (name, root) ->
        let st = Stats.compute root in
        let uid_bits =
          let lb = UB.label root in
          Hashtbl.fold (fun _ v acc -> max acc (B.bit_length v)) lb.UB.id_of 0
        in
        let ruid2_bits, areas =
          match R2.number ~max_area_size:64 root with
          | r2 -> (Report.fint (R2.max_local_bits r2), Report.fint (R2.area_count r2))
          | exception Ruid.Uid.Overflow -> ("overflow", "-")
        in
        let mr = Ruid.Mruid.build root in
        [
          name;
          Report.fint st.Stats.nodes;
          Report.fint st.Stats.max_fanout;
          Report.fint st.Stats.max_depth;
          Report.fint uid_bits;
          Report.fbool (uid_bits <= 62);
          ruid2_bits;
          Printf.sprintf "%d (%d lvl)" (Ruid.Mruid.max_component_bits mr)
            (Ruid.Mruid.levels mr);
          areas;
        ])
      (docs ())
  in
  Report.table
    [
      "document"; "nodes"; "max k"; "depth"; "uid bits"; "uid fits";
      "ruid2 bits"; "mruid bits"; "areas";
    ]
    rows;
  Report.note
    "'uid bits' is the widest identifier the original UID assigns to a real node;";
  Report.note
    "'ruid2/mruid bits' the widest index ruid stores. Shape: UID regularly bursts";
  Report.note
    "the 63-bit budget; 2-level ruid stays in small integers except on the";
  Report.note
    "deep-AND-wide comb, where the recursive multilevel form takes over (O1)."

let capacity_table () =
  Report.subsection
    "E1.c  Section 3.1 capacity law: m-level ruid addresses ~ e^m nodes";
  let rows =
    List.concat_map
      (fun e ->
        List.map
          (fun m ->
            let cap = ML.addressable ~e ~levels:m in
            [
              Report.fint e; Report.fint m;
              (if B.bit_length cap <= 60 then B.to_string cap
               else Printf.sprintf "~2^%d" (B.bit_length cap - 1));
            ])
          [ 1; 2; 3; 4 ])
      [ 1_000; 1_000_000 ]
  in
  Report.table [ "e (per level)"; "levels m"; "addressable nodes" ] rows

let run () =
  Report.section "E1  Identifier magnitude, overflow and scalability";
  analytic_table ();
  measured_table ();
  capacity_table ()
