module Dom = Rxml.Dom
module M = Ruid.Mruid
module R2 = Ruid.Ruid2
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let mid = Alcotest.testable M.pp_id M.id_equal

let test_small_doc () =
  let root = t "a" [ t "b" [ t "c" [] ]; t "d" [] ] in
  let m = M.build root in
  M.check_consistency m;
  (* A document this small is numbered by the top-level UID alone: the
     degenerate 1-level case, i.e. the original UID. *)
  Alcotest.(check int) "single level" 1 (M.levels m);
  Alcotest.(check (list string)) "ancestors of c"
    [ "{2}"; "{1}" ]
    (List.map M.id_to_string
       (M.rancestors m (M.id_of_node m (List.hd (List.hd root.Dom.children).Dom.children))))

let test_consistency_various () =
  List.iter
    (fun root ->
      let m = M.build ~max_area_size:8 ~top_size:8 root in
      M.check_consistency m)
    [
      Shape.generate ~seed:1 ~target:300 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 });
      Shape.chain ~depth:100 ();
      Shape.comb ~depth:15 ~width:6 ();
      Shape.generate ~seed:2 ~target:500 (Shape.Deep { fanout = 3; bias = 0.85 });
    ]

let test_relationship_oracle () =
  let root = Shape.generate ~seed:7 ~target:400 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
  let m = M.build ~max_area_size:6 ~top_size:10 root in
  Alcotest.(check bool) "at least 3 levels" true (M.levels m >= 3);
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let a = Shape.random_node rng root in
    let b = Shape.random_node rng root in
    Alcotest.check rel "relationship"
      (dom_relation root a b)
      (M.relationship m (M.id_of_node m a) (M.id_of_node m b))
  done

let test_parent_recursion_deep () =
  (* A chain forces many levels when areas and the top are kept tiny. *)
  let root = Shape.chain ~depth:200 () in
  let m = M.build ~max_levels:12 ~max_area_size:4 ~top_size:4 root in
  Alcotest.(check bool) "several levels" true (M.levels m >= 4);
  M.check_consistency m;
  let deepest = List.nth (Dom.preorder root) 200 in
  Alcotest.(check int) "full ancestor chain" 200
    (List.length (M.rancestors m (M.id_of_node m deepest)))

(* The scalability headline: documents whose 2-level numbering overflows
   native integers are numbered by a few levels of small components. *)
let test_beyond_two_levels () =
  let root = Shape.comb ~depth:12 ~width:200 () in
  (match R2.number root with
  | exception Ruid.Uid.Overflow -> ()
  | _ -> Alcotest.fail "expected the 2-level numbering to overflow");
  let m = M.build root in
  M.check_consistency m;
  Alcotest.(check bool) "needs > 2 levels" true (M.levels m > 2);
  Alcotest.(check bool)
    (Printf.sprintf "components stay small (%d bits)" (M.max_component_bits m))
    true
    (M.max_component_bits m <= 32)

let test_node_of_id_rejects_garbage () =
  let root = Shape.generate ~seed:3 ~target:100 (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
  let m = M.build ~max_area_size:8 root in
  let i = M.id_of_node m root in
  Alcotest.(check bool) "root resolves" true (M.node_of_id m i <> None);
  let bogus = { i with M.top = i.M.top + 7777 } in
  Alcotest.(check bool) "bogus top rejected" true (M.node_of_id m bogus = None)

let test_doc_root_id_shape () =
  let root = Shape.generate ~seed:11 ~target:300 (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
  let m = M.build ~max_area_size:6 ~top_size:8 root in
  let i = M.id_of_node m root in
  Alcotest.(check int) "top is 1" 1 i.M.top;
  Alcotest.(check bool) "all components are (1, true)" true
    (List.for_all (fun c -> c.M.index = 1 && c.M.is_root) i.M.comps);
  Alcotest.(check (option mid)) "root has no parent" None (M.rparent m i)

let prop_consistency_random =
  Util.qtest ~count:25 "mruid consistent on random trees"
    QCheck.(pair (int_range 5 300) (int_range 2 12))
    (fun (n, area) ->
      let root =
        Shape.generate ~seed:(n * 131 + area) ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 })
      in
      let m = M.build ~max_area_size:area ~top_size:area root in
      M.check_consistency m;
      true)

(* Scale: a 50k-node deeply recursive document partitions in well under a
   second (the Section 2.3 adjustment is near-linear) and numbers with a
   few levels of small components even though its 2-level form overflows
   native integers. *)
let test_scale_50k () =
  let root =
    Shape.generate ~seed:10 ~target:50_000 (Shape.Deep { fanout = 2; bias = 0.9 })
  in
  let t0 = Unix.gettimeofday () in
  let m = M.build root in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "built in %.2fs" elapsed)
    true (elapsed < 10.);
  Alcotest.(check bool) "components stay small" true
    (M.max_component_bits m <= 32);
  (* Spot-check instead of full consistency (which is O(n * depth)). *)
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let n = Shape.random_node rng root in
    let i = M.id_of_node m n in
    match (M.rparent m i, n.Dom.parent) with
    | None, None -> ()
    | Some p, Some dp ->
      Alcotest.(check bool) "rparent agrees" true
        (M.id_equal p (M.id_of_node m dp))
    | _ -> Alcotest.fail "parent mismatch"
  done

let suite =
  [
    Alcotest.test_case "small document" `Quick test_small_doc;
    Alcotest.test_case "50k-node deep document" `Quick test_scale_50k;
    Alcotest.test_case "consistency across shapes" `Quick test_consistency_various;
    Alcotest.test_case "relationship oracle" `Quick test_relationship_oracle;
    Alcotest.test_case "deep recursion through levels" `Quick test_parent_recursion_deep;
    Alcotest.test_case "beyond 2-level capacity" `Quick test_beyond_two_levels;
    Alcotest.test_case "garbage identifiers rejected" `Quick test_node_of_id_rejects_garbage;
    Alcotest.test_case "document root identifier" `Quick test_doc_root_id_shape;
    prop_consistency_random;
  ]
