(* Shared helpers for the test suite. *)

module Dom = Rxml.Dom

(* Tiny tree DSL: [t "a" [t "b" []]] builds <a><b/></a>. *)
let t tag children =
  let n = Dom.element tag in
  List.iter (Dom.append_child n) children;
  n

(* Ground-truth structural relation computed directly on the DOM. *)
let dom_relation root a b =
  if Dom.equal a b then Ruid.Rel.Self
  else if Dom.is_ancestor ~anc:a ~desc:b then Ruid.Rel.Ancestor
  else if Dom.is_ancestor ~anc:b ~desc:a then Ruid.Rel.Descendant
  else if Dom.document_order ~root a b < 0 then Ruid.Rel.Before
  else Ruid.Rel.After

(* Ground-truth axes computed directly on the DOM. *)
let dom_children n = n.Dom.children
let dom_descendants n = Dom.descendants n
let dom_ancestors n = Dom.ancestors n

let dom_siblings ~before n =
  match n.Dom.parent with
  | None -> []
  | Some p ->
    let idx = Dom.child_index n in
    List.filteri (fun i _ -> if before then i < idx else i > idx) p.Dom.children

let dom_preceding root n =
  List.filter (fun x -> dom_relation root x n = Ruid.Rel.Before) (Dom.preorder root)

let dom_following root n =
  List.filter (fun x -> dom_relation root x n = Ruid.Rel.After) (Dom.preorder root)

let serials nodes = List.map (fun n -> n.Dom.serial) nodes

let check_node_list msg expected actual =
  Alcotest.(check (list int)) msg (serials expected) (serials actual)

let rel = Alcotest.testable Ruid.Rel.pp Ruid.Rel.equal

(* Alcotest testable for ruid2 identifiers. *)
let rid = Alcotest.testable Ruid.Ruid2.pp_id Ruid.Ruid2.id_equal

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
