module C = Ruid.Codec
module R2 = Ruid.Ruid2
module M = Ruid.Mruid
module Shape = Rworkload.Shape

let test_varint_sizes () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (string_of_int n) expected (C.varint_size n))
    [ (0, 1); (127, 1); (128, 2); (16383, 2); (16384, 3); (1 lsl 60, 9) ]

let test_varint_round_trip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      C.write_varint buf n;
      let bytes = Buffer.to_bytes buf in
      Alcotest.(check int) "size matches" (C.varint_size n) (Bytes.length bytes);
      let v, pos = C.read_varint bytes ~pos:0 in
      Alcotest.(check int) "value" n v;
      Alcotest.(check int) "position" (Bytes.length bytes) pos)
    [ 0; 1; 127; 128; 300; 65535; 1_000_000; max_int ]

let test_ruid2_round_trip () =
  let root = Shape.generate ~seed:2 ~target:300 (Shape.Uniform { fanout_lo = 0; fanout_hi = 5 }) in
  let r2 = R2.number ~max_area_size:8 root in
  List.iter
    (fun n ->
      let id = R2.id_of_node r2 n in
      let enc = C.encode_ruid2 id in
      Alcotest.(check int) "declared size" (C.ruid2_size id) (Bytes.length enc);
      Alcotest.(check bool) "round trip" true
        (R2.id_equal (C.decode_ruid2 enc) id))
    (Rxml.Dom.preorder root)

let test_mruid_round_trip () =
  let root = Shape.generate ~seed:5 ~target:400 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let m = M.build ~max_area_size:6 ~top_size:8 root in
  List.iter
    (fun n ->
      let id = M.id_of_node m n in
      let enc = C.encode_mruid id in
      Alcotest.(check int) "declared size" (C.mruid_size id) (Bytes.length enc);
      Alcotest.(check bool) "round trip" true (M.id_equal (C.decode_mruid enc) id))
    (Rxml.Dom.preorder root)

let test_bignat_size () =
  let b = Bignum.Bignat.pow (Bignum.Bignat.of_int 2) 140 in
  (* 141 bits -> 21 payload bytes + 1 length byte *)
  Alcotest.(check int) "2^140" 22 (C.bignat_size b);
  Alcotest.(check int) "zero still occupies a byte" 2 (C.bignat_size Bignum.Bignat.zero)

let test_decode_garbage () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Codec.read_varint: truncated input") (fun () ->
      ignore (C.read_varint (Bytes.of_string "\xff") ~pos:0));
  Alcotest.check_raises "trailing"
    (Invalid_argument "Codec.decode_ruid2: trailing bytes") (fun () ->
      let buf = Buffer.create 8 in
      C.write_varint buf 0;
      C.write_varint buf 1;
      C.write_varint buf 1;
      C.write_varint buf 9;
      ignore (C.decode_ruid2 (Buffer.to_bytes buf)))

let prop_varint_round_trip =
  Util.qtest "varint round-trips arbitrary non-negative ints"
    QCheck.(map abs int)
    (fun n ->
      let buf = Buffer.create 10 in
      C.write_varint buf n;
      fst (C.read_varint (Buffer.to_bytes buf) ~pos:0) = n)

let prop_concatenated_varints =
  Util.qtest "varint streams decode in sequence"
    QCheck.(small_list (map abs small_int))
    (fun ns ->
      let buf = Buffer.create 32 in
      List.iter (C.write_varint buf) ns;
      let bytes = Buffer.to_bytes buf in
      let rec go pos acc =
        if pos >= Bytes.length bytes then List.rev acc
        else begin
          let v, pos = C.read_varint bytes ~pos in
          go pos (v :: acc)
        end
      in
      go 0 [] = ns)

let suite =
  [
    Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
    prop_varint_round_trip;
    prop_concatenated_varints;
    Alcotest.test_case "varint round trip" `Quick test_varint_round_trip;
    Alcotest.test_case "ruid2 round trip" `Quick test_ruid2_round_trip;
    Alcotest.test_case "mruid round trip" `Quick test_mruid_round_trip;
    Alcotest.test_case "bignat size" `Quick test_bignat_size;
    Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
  ]
