module Dom = Rxml.Dom
module Auto = Rxpath.Auto
open Util

let setup () =
  let site = Rworkload.Xmark.generate ~seed:31 ~scale:0.8 in
  let doc = Dom.document () in
  Dom.append_child doc site;
  let r2 = Ruid.Ruid2.number ~max_area_size:16 doc in
  (Auto.create r2, Rxpath.Engine_naive.create doc)

let strategy = Alcotest.testable Auto.pp_strategy ( = )

let test_strategy_selection () =
  let auto, _ = setup () in
  List.iter
    (fun (q, expected) ->
      Alcotest.check strategy q expected (Auto.choose auto q))
    [
      ("//item/name", Auto.Plan);
      ("/site/regions/africa/item", Auto.Plan);
      ("//person[creditcard]/name", Auto.Twig_join);
      ("//item[description//listitem]", Auto.Twig_join);
      ("//item[@id='x']", Auto.Engine);
      ("//item[2]", Auto.Engine);
      ("//name | //payment", Auto.Engine);
      ("//listitem/ancestor::item", Auto.Engine);
    ]

let test_results_match_naive () =
  let auto, naive = setup () in
  List.iter
    (fun q ->
      check_node_list q (Rxpath.Eval.query naive q) (Auto.query auto q))
    [
      "//item/name";
      "/site/regions/africa/item";
      "//person[creditcard]/name";
      "//item[description//listitem]/quantity";
      "//item[@id='itemafrica1']";
      "//bidder[1]/increase";
      "//name | //payment";
      "//listitem/ancestor::item";
      "//annotation/preceding::bidder";
    ]

let test_context_respected () =
  let auto, naive = setup () in
  let regions = List.hd (Rxpath.Eval.query naive "/site/regions") in
  check_node_list "relative plan from context"
    (Rxpath.Eval.query naive ~context:regions "africa/item/name")
    (Auto.query auto ~context:regions "africa/item/name")

let suite =
  [
    Alcotest.test_case "strategy selection" `Quick test_strategy_selection;
    Alcotest.test_case "results match the naive engine" `Quick test_results_match_naive;
    Alcotest.test_case "context respected" `Quick test_context_respected;
  ]
