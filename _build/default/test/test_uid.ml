module Dom = Rxml.Dom
module U = Ruid.Uid.Over_int
module UB = Ruid.Uid.Over_big
module B = Bignum.Bignat
open Util

let test_parent_formula () =
  (* parent(i) = (i - 2) / k + 1, formula (1). *)
  Alcotest.(check (option int)) "root" None (U.parent ~k:3 1);
  Alcotest.(check (option int)) "2 -> 1" (Some 1) (U.parent ~k:3 2);
  Alcotest.(check (option int)) "4 -> 1" (Some 1) (U.parent ~k:3 4);
  Alcotest.(check (option int)) "5 -> 2" (Some 2) (U.parent ~k:3 5);
  Alcotest.(check (option int)) "23 -> 8" (Some 8) (U.parent ~k:3 23);
  Alcotest.(check (option int)) "k=1 chain" (Some 9) (U.parent ~k:1 10)

let test_children () =
  Alcotest.(check (pair int int)) "children of root, k=3" (2, 4)
    (U.children_range ~k:3 1);
  Alcotest.(check int) "first child of 3" 8 (U.child ~k:3 3 0);
  Alcotest.(check int) "third child of 9" 28 (U.child ~k:3 9 2);
  Alcotest.check_raises "slot range enforced"
    (Invalid_argument "Uid.child: slot out of range") (fun () ->
      ignore (U.child ~k:3 1 3))

let test_levels_ancestors () =
  Alcotest.(check int) "root level" 0 (U.level ~k:3 1);
  Alcotest.(check int) "level of 23" 3 (U.level ~k:3 23);
  Alcotest.(check (list int)) "ancestors of 23" [ 8; 3; 1 ] (U.ancestors ~k:3 23)

let test_relation () =
  let check msg expected a b =
    Alcotest.check rel msg expected (U.relation ~k:3 a b)
  in
  check "self" Ruid.Rel.Self 23 23;
  check "ancestor" Ruid.Rel.Ancestor 3 23;
  check "descendant" Ruid.Rel.Descendant 23 3;
  check "root ancestor of all" Ruid.Rel.Ancestor 1 28;
  check "2 before 3's subtree" Ruid.Rel.Before 2 23;
  check "23 after 2" Ruid.Rel.After 23 2;
  check "same level order" Ruid.Rel.Before 8 9;
  check "uncle after nephew's subtree" Ruid.Rel.After 28 23

(* Reconstruction of Fig. 1: the sample tree enumerated with k = 3; real
   nodes carry UIDs 1, 2, 3, 8, 9, 23, 26, 27. *)
let fig1_tree () =
  let e = Dom.element in
  let n23 = e "n23" and n26 = e "n26" and n27 = e "n27" in
  let n8 = e "n8" and n9 = e "n9" in
  Dom.append_child n8 n23;
  Dom.append_child n9 n26;
  Dom.append_child n9 n27;
  let n2 = e "n2" and n3 = e "n3" in
  Dom.append_child n3 n8;
  Dom.append_child n3 n9;
  let root = e "root" in
  Dom.append_child root n2;
  Dom.append_child root n3;
  (root, n2, n3, n8, n9, n23, n26, n27)

let ids_of lb nodes = List.map (U.id_of_node lb) nodes

let test_fig1_before_insertion () =
  let root, n2, n3, n8, n9, n23, n26, n27 = fig1_tree () in
  let lb = U.label ~k:3 root in
  Alcotest.(check (list int)) "Fig. 1(a) enumeration" [ 1; 2; 3; 8; 9; 23; 26; 27 ]
    (ids_of lb [ root; n2; n3; n8; n9; n23; n26; n27 ])

let test_fig1_after_insertion () =
  (* Inserting a node between nodes 2 and 3 renumbers 3, 8, 9, 23, 26, 27
     into 4, 11, 12, 32, 35, 36. *)
  let root, n2, n3, n8, n9, n23, n26, n27 = fig1_tree () in
  let inserted = Dom.element "new" in
  Dom.insert_child root ~pos:1 inserted;
  let lb = U.label ~k:3 root in
  Alcotest.(check (list int)) "Fig. 1(b) enumeration" [ 1; 2; 3; 4; 11; 12; 32; 35; 36 ]
    (ids_of lb [ root; n2; inserted; n3; n8; n9; n23; n26; n27 ])

let test_label_round_trip () =
  let root, _, _, _, _, n23, _, _ = fig1_tree () in
  let lb = U.label ~k:3 root in
  (match U.node_of_id lb 23 with
  | Some n -> Alcotest.(check int) "id resolves" n23.Dom.serial n.Dom.serial
  | None -> Alcotest.fail "id 23 should resolve");
  Alcotest.(check bool) "virtual id resolves to nothing" true
    (U.node_of_id lb 4 = None)

let test_label_default_k () =
  let root, _, _, _, n9, _, _, _ = fig1_tree () in
  let lb = U.label root in
  Alcotest.(check int) "k defaults to max fan-out" 2 lb.U.k;
  Alcotest.(check int) "n9 under k=2" 7 (U.id_of_node lb n9)

let test_label_k_too_small () =
  let root, _, _, _, _, _, _, _ = fig1_tree () in
  Alcotest.check_raises "k below fan-out rejected"
    (Invalid_argument "Uid.label: k = 1 below maximal fan-out 2") (fun () ->
      ignore (U.label ~k:1 root))

let test_int_overflow () =
  (* A fan-out 1000 tree overflows 63-bit identifiers at depth 7:
     1000^7 > 2^62. *)
  let deep = Rworkload.Shape.comb ~depth:7 ~width:2 () in
  (* Force a huge k by attaching many children to the root. *)
  for _ = 1 to 998 do
    Dom.append_child deep (Dom.element "pad")
  done;
  (match U.label deep with
  | exception Ruid.Uid.Overflow -> ()
  | _ -> Alcotest.fail "expected Overflow");
  (* The Bignat instance handles the same tree. *)
  let lb = UB.label deep in
  Alcotest.(check bool) "bignat labeling succeeds" true
    (Hashtbl.length lb.UB.id_of = Dom.size deep)

let test_max_id_at_depth () =
  Alcotest.(check int) "k=3 depth 2: 13 nodes" 13 (U.max_id_at_depth ~k:3 ~depth:2);
  Alcotest.(check int) "k=1 depth 5" 6 (U.max_id_at_depth ~k:1 ~depth:5);
  Alcotest.(check string) "k=1000 depth 7 via bignat"
    "1001001001001001001001"
    (B.to_string (UB.max_id_at_depth ~k:1000 ~depth:7))

(* Properties: formula (1) inverts child; relation agrees with a DOM oracle. *)
let prop_parent_inverts_child =
  Util.qtest "parent inverts child"
    QCheck.(triple (int_range 1 20) (int_range 1 10_000) (int_range 0 19))
    (fun (k, i, j) ->
      QCheck.assume (j < k);
      U.parent ~k (U.child ~k i j) = Some i)

let prop_relation_matches_dom =
  Util.qtest "relation matches DOM oracle" QCheck.(int_range 2 80) (fun n ->
      let root =
        Rworkload.Shape.generate ~seed:(n * 31) ~target:n
          (Rworkload.Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let lb = U.label root in
      let rng = Rworkload.Rng.create n in
      let ok = ref true in
      for _ = 1 to 20 do
        let a = Rworkload.Shape.random_node rng root in
        let b = Rworkload.Shape.random_node rng root in
        let got = U.relation ~k:lb.U.k (U.id_of_node lb a) (U.id_of_node lb b) in
        if got <> dom_relation root a b then ok := false
      done;
      !ok)

let prop_level_matches_depth =
  Util.qtest "level matches DOM depth" QCheck.(int_range 1 60) (fun n ->
      let root =
        Rworkload.Shape.generate ~seed:(n * 17) ~target:n
          (Rworkload.Shape.Uniform { fanout_lo = 1; fanout_hi = 3 })
      in
      let lb = U.label root in
      List.for_all
        (fun x -> U.level ~k:lb.U.k (U.id_of_node lb x) = Dom.depth_of x)
        (Dom.preorder root))

(* The int and bignum backends implement identical numbering: labels,
   parents and relations agree wherever both apply. *)
let prop_backends_agree =
  Util.qtest ~count:40 "int and bignum backends agree"
    QCheck.(int_range 2 120)
    (fun n ->
      let root =
        Rworkload.Shape.generate ~seed:(n * 23) ~target:n
          (Rworkload.Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let li = U.label root in
      let lb = UB.label root in
      let k = li.U.k in
      let rng = Rworkload.Rng.create n in
      let ok = ref (lb.UB.k = k) in
      List.iter
        (fun x ->
          let i = U.id_of_node li x in
          let b = UB.id_of_node lb x in
          if B.to_int_opt b <> Some i then ok := false;
          (match (U.parent ~k i, UB.parent ~k b) with
          | None, None -> ()
          | Some p, Some pb when B.to_int_opt pb = Some p -> ()
          | _ -> ok := false))
        (Dom.preorder root);
      for _ = 1 to 20 do
        let a = Rworkload.Shape.random_node rng root in
        let c = Rworkload.Shape.random_node rng root in
        if
          U.relation ~k (U.id_of_node li a) (U.id_of_node li c)
          <> UB.relation ~k (UB.id_of_node lb a) (UB.id_of_node lb c)
        then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "formula (1)" `Quick test_parent_formula;
    prop_backends_agree;
    Alcotest.test_case "children arithmetic" `Quick test_children;
    Alcotest.test_case "levels and ancestors" `Quick test_levels_ancestors;
    Alcotest.test_case "relation" `Quick test_relation;
    Alcotest.test_case "Fig. 1(a): initial enumeration" `Quick test_fig1_before_insertion;
    Alcotest.test_case "Fig. 1(b): renumbering after insertion" `Quick test_fig1_after_insertion;
    Alcotest.test_case "label round-trip" `Quick test_label_round_trip;
    Alcotest.test_case "default k" `Quick test_label_default_k;
    Alcotest.test_case "k too small" `Quick test_label_k_too_small;
    Alcotest.test_case "int overflow vs bignat" `Quick test_int_overflow;
    Alcotest.test_case "max_id_at_depth" `Quick test_max_id_at_depth;
    prop_parent_inverts_child;
    prop_relation_matches_dom;
    prop_level_matches_depth;
  ]
