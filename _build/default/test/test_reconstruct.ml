module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Rc = Ruid.Reconstruct
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

let test_single_node () =
  let c = t "c" [] in
  let b = t "b" [] in
  Dom.append_child b c;
  let root = t "a" [ t "x" [] ] in
  Dom.append_child root b;
  let r2 = R2.number ~max_area_size:3 root in
  let frag = Rc.fragment_nodes r2 [ c ] in
  Alcotest.(check string) "root kept" "a" (Dom.tag frag);
  Alcotest.(check int) "only the chain" 3 (Dom.size frag);
  (* x is not on c's root path and must not appear *)
  Alcotest.(check bool) "x dropped" true
    (List.for_all (fun n -> Dom.tag n <> "x") (Dom.preorder frag))

let test_deep_subtrees_kept () =
  let leaf = t "leaf" [] in
  let keep = t "keep" [ t "inner" [] ] in
  Dom.append_child keep leaf;
  let root = t "root" [ t "other" [ t "deep" [] ] ] in
  Dom.append_child root keep;
  let r2 = R2.number ~max_area_size:3 root in
  let frag = Rc.fragment_nodes r2 [ keep ] in
  Alcotest.(check int) "keep's subtree included" 4 (Dom.size frag);
  let shallow = Rc.fragment_nodes ~deep:false r2 [ keep ] in
  Alcotest.(check int) "shallow keeps only the chain" 2 (Dom.size shallow)

let test_from_identifiers () =
  let root = Shape.generate ~seed:3 ~target:80 (Shape.Uniform { fanout_lo = 1; fanout_hi = 3 }) in
  let r2 = R2.number ~max_area_size:8 root in
  let rng = Rng.create 4 in
  let chosen = List.init 5 (fun _ -> Shape.random_node rng root) in
  let ids = List.map (R2.id_of_node r2) chosen in
  let frag = Rc.fragment r2 ids in
  (* Every chosen node's tag sequence to the root is present. *)
  Alcotest.(check bool) "fragment nonempty" true (Dom.size frag >= List.length chosen);
  Alcotest.check_raises "bad identifier rejected"
    (Invalid_argument
       "Reconstruct.fragment: unresolvable identifier (999, 999, false)")
    (fun () ->
      ignore (Rc.fragment r2 [ { R2.global = 999; local = 999; is_root = false } ]))

(* The fragment must preserve document order and ancestor relations of the
   selected nodes: serializing the fragment built from ALL nodes gives back
   the original document. *)
let test_identity_fragment () =
  let root = Shape.generate ~seed:8 ~target:120 (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 }) in
  let r2 = R2.number ~max_area_size:10 root in
  let frag = Rc.fragment_nodes r2 (Dom.preorder root) in
  Alcotest.(check string) "identity"
    (Rxml.Serializer.to_string root)
    (Rxml.Serializer.to_string frag)

let test_order_preserved () =
  let root = Shape.generate ~seed:12 ~target:150 (Shape.Uniform { fanout_lo = 1; fanout_hi = 4 }) in
  let r2 = R2.number ~max_area_size:12 root in
  let rng = Rng.create 7 in
  let chosen =
    List.filter (fun _ -> Rng.float rng < 0.2) (Dom.preorder root)
  in
  let frag = Rc.fragment_nodes ~deep:false r2 chosen in
  (* The fragment's tag sequence is a subsequence of the original's. *)
  let tags n = List.map Dom.tag (Dom.preorder n) in
  let rec subsequence xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xr, y :: yr -> if x = y then subsequence xr yr else subsequence xs yr
  in
  Alcotest.(check bool) "subsequence of the original" true
    (subsequence (tags frag) (tags root))

let suite =
  [
    Alcotest.test_case "single node chain" `Quick test_single_node;
    Alcotest.test_case "deep vs shallow" `Quick test_deep_subtrees_kept;
    Alcotest.test_case "from identifiers" `Quick test_from_identifiers;
    Alcotest.test_case "identity fragment" `Quick test_identity_fragment;
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
  ]
