module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module Twig = Rxpath.Twig
module Ti = Rxpath.Tag_index
module Shape = Rworkload.Shape
open Util

let setup ?(scale = 1.0) () =
  let site = Rworkload.Xmark.generate ~seed:21 ~scale in
  let doc = Dom.document () in
  Dom.append_child doc site;
  let r2 = R2.number ~max_area_size:16 doc in
  (doc, r2, Ti.create r2, Rxpath.Engine_naive.create doc)

let twig_queries =
  [
    "//person[creditcard]/name";
    "//item[location]/name";
    "//open_auction[bidder]/seller";
    "//closed_auction[annotation//text]/price";
    "//item[description//listitem][quantity]/name";
    "//person[profile/interest]/emailaddress";
    "/site/regions/africa/item[name]";
    "//open_auction[bidder/increase]";
  ]

let non_twig_queries =
  [
    "//item[@id='x']/name";        (* attribute predicate *)
    "//item[position()=1]";        (* positional *)
    "//item[name or location]";    (* disjunction *)
    "//item/ancestor::regions";    (* reverse axis *)
    "//item[not(name)]";           (* negation *)
  ]

let test_compilation () =
  List.iter
    (fun q ->
      match Twig.of_xpath (Rxpath.Xparser.parse q) with
      | Some _ -> ()
      | None -> Alcotest.failf "%s should compile to a twig" q)
    twig_queries;
  List.iter
    (fun q ->
      match Twig.of_xpath (Rxpath.Xparser.parse q) with
      | None -> ()
      | Some _ -> Alcotest.failf "%s should not compile to a twig" q)
    non_twig_queries

let test_matches_evaluator () =
  let _doc, r2, index, naive = setup () in
  List.iter
    (fun q ->
      match Twig.query r2 index q with
      | None -> Alcotest.failf "%s did not compile" q
      | Some got -> check_node_list q (Rxpath.Eval.query naive q) got)
    twig_queries

let test_structure () =
  let t =
    Option.get (Twig.of_xpath (Rxpath.Xparser.parse "//a[b//c][d]/e"))
  in
  let p = Twig.pattern t in
  Alcotest.(check string) "root tag" "a" p.Twig.tag;
  Alcotest.(check bool) "root edge descendant" true (p.Twig.edge = Twig.Descendant);
  Alcotest.(check int) "two branches" 2 (List.length p.Twig.branches);
  (match p.Twig.spine with
  | Some s ->
    Alcotest.(check string) "spine tag" "e" s.Twig.tag;
    Alcotest.(check bool) "spine edge child" true (s.Twig.edge = Twig.Child)
  | None -> Alcotest.fail "expected a spine");
  match p.Twig.branches with
  | [ b1; b2 ] ->
    Alcotest.(check string) "first branch" "b" b1.Twig.tag;
    (match b1.Twig.spine with
    | Some c ->
      Alcotest.(check string) "nested branch step" "c" c.Twig.tag;
      Alcotest.(check bool) "descendant edge" true (c.Twig.edge = Twig.Descendant)
    | None -> Alcotest.fail "expected b//c chain");
    Alcotest.(check string) "second branch" "d" b2.Twig.tag
  | _ -> Alcotest.fail "expected two branches"

let test_empty_results () =
  let _doc, r2, index, _ = setup () in
  match Twig.query r2 index "//person[creditcard]/nonexistent" with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected no matches"
  | None -> Alcotest.fail "should compile"

let prop_twig_matches_eval =
  Util.qtest ~count:25 "twigs agree with the evaluator on random documents"
    QCheck.(int_range 20 250)
    (fun n ->
      let root =
        Shape.generate ~seed:(n * 5) ~tags:[| "a"; "b"; "c"; "d" |] ~target:n
          (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
      in
      let r2 = R2.number ~max_area_size:8 root in
      let index = Ti.create r2 in
      let naive = Rxpath.Engine_naive.create root in
      List.for_all
        (fun q ->
          match Twig.query r2 index q with
          | None -> false
          | Some got ->
            List.map (fun x -> x.Dom.serial) got
            = List.map (fun x -> x.Dom.serial) (Rxpath.Eval.query naive q))
        [ "//a[b]/c"; "//a[b//c]"; "//b[c][d]"; "//a[b/c]/d"; "//a[b]" ])

let suite =
  [
    Alcotest.test_case "compilation recognition" `Quick test_compilation;
    Alcotest.test_case "matches the evaluator" `Quick test_matches_evaluator;
    Alcotest.test_case "pattern structure" `Quick test_structure;
    Alcotest.test_case "empty results" `Quick test_empty_results;
    prop_twig_matches_eval;
  ]
