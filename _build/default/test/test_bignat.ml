module B = Bignum.Bignat

let big s = B.of_string s

let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

let test_of_to_int () =
  Alcotest.(check (option int)) "0" (Some 0) (B.to_int_opt B.zero);
  Alcotest.(check (option int)) "1" (Some 1) (B.to_int_opt B.one);
  Alcotest.(check (option int)) "max_int round-trips" (Some max_int)
    (B.to_int_opt (B.of_int max_int));
  let beyond = B.add_int (B.of_int max_int) 1 in
  Alcotest.(check (option int)) "max_int+1 does not fit" None (B.to_int_opt beyond);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Bignat.of_int: negative")
    (fun () -> ignore (B.of_int (-1)))

let test_string_round_trip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (big s)))
    [ "0"; "1"; "42"; "999999999"; "1000000000";
      "123456789012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_arith_basics () =
  check_b "add" (big "1000000000000000000000") (B.add (big "999999999999999999999") B.one);
  check_b "sub" (big "999999999999999999999") (B.sub (big "1000000000000000000000") B.one);
  check_b "mul" (big "340282366920938463463374607431768211456")
    (B.mul (big "18446744073709551616") (big "18446744073709551616"));
  check_b "pow" (big "18446744073709551616") (B.pow (B.of_int 2) 64);
  Alcotest.check_raises "negative sub" (Invalid_argument "Bignat.sub: negative result")
    (fun () -> ignore (B.sub B.one (B.of_int 2)))

let test_divmod () =
  let q, r = B.divmod_int (big "1000000000000000000001") 7 in
  check_b "quotient" (big "142857142857142857143") q;
  Alcotest.(check int) "remainder" 0 r;
  let q2, r2 = B.divmod (big "123456789012345678901234567890") (big "987654321") in
  check_b "recompose" (big "123456789012345678901234567890")
    (B.add (B.mul q2 (big "987654321")) r2);
  Alcotest.(check bool) "rem < divisor" true (B.compare r2 (big "987654321") < 0)

let test_bit_length () =
  Alcotest.(check int) "0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "1" 1 (B.bit_length B.one);
  Alcotest.(check int) "2^64" 65 (B.bit_length (B.pow (B.of_int 2) 64));
  Alcotest.(check int) "2^64 - 1" 64 (B.bit_length (B.sub (B.pow (B.of_int 2) 64) B.one))

let test_compare () =
  Alcotest.(check bool) "lt" true (B.compare (big "99") (big "100") < 0);
  Alcotest.(check bool) "multi-digit lt" true
    (B.compare (big "999999999999999999") (big "1000000000000000000") < 0);
  Alcotest.(check bool) "eq" true (B.equal (big "12345678901234567890") (big "12345678901234567890"))

(* Property tests: model Bignat against native ints where both apply. *)
let small = QCheck.map abs QCheck.int

let prop_int_model =
  Util.qtest "of_int/to_int round-trip" small (fun n ->
      B.to_int_opt (B.of_int n) = Some n)

let prop_add_model =
  Util.qtest "add matches int add"
    QCheck.(pair (map abs small_int) (map abs small_int))
    (fun (a, b) -> B.to_int_opt (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_model =
  Util.qtest "mul matches int mul"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) -> B.to_int_opt (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_string_round_trip =
  Util.qtest "decimal string round-trip" small (fun n ->
      B.equal (B.of_string (B.to_string (B.of_int n))) (B.of_int n))

let prop_divmod =
  Util.qtest "divmod recomposes"
    QCheck.(pair (map abs int) (int_range 1 1_000_000))
    (fun (a, d) ->
      let q, r = B.divmod_int (B.of_int a) (d land 0x3FFFFFFF |> max 1) in
      let d = d land 0x3FFFFFFF |> max 1 in
      r >= 0 && r < d && B.equal (B.add_int (B.mul_int q d) r) (B.of_int a))

let prop_sub_add =
  Util.qtest "a + b - b = a" QCheck.(pair (map abs int) (map abs int))
    (fun (a, b) ->
      let ba = B.of_int a and bb = B.of_int b in
      B.equal (B.sub (B.add ba bb) bb) ba)

let prop_compare_model =
  Util.qtest "compare matches int compare" QCheck.(pair (map abs int) (map abs int))
    (fun (a, b) -> compare a b = B.compare (B.of_int a) (B.of_int b))

let prop_pow =
  Util.qtest "pow = iterated mul" QCheck.(pair (int_range 0 9) (int_range 0 9))
    (fun (b, e) ->
      let rec imul acc i = if i = 0 then acc else imul (B.mul_int acc b) (i - 1) in
      B.equal (B.pow (B.of_int b) e) (imul B.one e))

let suite =
  [
    Alcotest.test_case "of_int/to_int_opt" `Quick test_of_to_int;
    Alcotest.test_case "string round-trip" `Quick test_string_round_trip;
    Alcotest.test_case "add/sub/mul/pow" `Quick test_arith_basics;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "bit_length" `Quick test_bit_length;
    Alcotest.test_case "compare" `Quick test_compare;
    prop_int_model;
    prop_add_model;
    prop_mul_model;
    prop_string_round_trip;
    prop_divmod;
    prop_sub_add;
    prop_compare_model;
    prop_pow;
  ]
