module Dom = Rxml.Dom
module R2 = Ruid.Ruid2
module J = Rjoin.Structural_join
module Shape = Rworkload.Shape
module Rng = Rworkload.Rng
open Util

(* DOM oracle: all ancestor-descendant pairs between two node lists. *)
let oracle_pairs anc desc =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun d ->
          if Dom.is_ancestor ~anc:a ~desc:d then Some (a.Dom.serial, d.Dom.serial)
          else None)
        desc)
    anc
  |> List.sort Stdlib.compare

let pairs_serials ps =
  List.map (fun p -> (p.J.anc.Dom.serial, p.J.desc.Dom.serial)) ps
  |> List.sort Stdlib.compare

let by_tag root tag = List.filter (fun n -> Dom.tag n = tag) (Dom.preorder root)

let setup seed n =
  let root =
    Shape.generate ~seed ~tags:[| "a"; "b"; "c" |] ~target:n
      (Shape.Uniform { fanout_lo = 0; fanout_hi = 4 })
  in
  let r2 = R2.number ~max_area_size:12 root in
  let pp = Baselines.Prepost.build root in
  (root, r2, pp)

let test_small_known () =
  (* <a><b><a/><c/></b><a><c/></a></a> *)
  let inner_a1 = t "a" [] and c1 = t "c" [] in
  let b = t "b" [] in
  Dom.append_child b inner_a1;
  Dom.append_child b c1;
  let c2 = t "c" [] in
  let inner_a2 = t "a" [] in
  Dom.append_child inner_a2 c2;
  let root = t "a" [] in
  Dom.append_child root b;
  Dom.append_child root inner_a2;
  let r2 = R2.number ~max_area_size:3 root in
  let anc = by_tag root "a" and desc = by_tag root "c" in
  let got = J.ancestor_probe r2 ~anc ~desc in
  (* c1 under root and... c1's ancestors: b, root. tag-a ancestors: root.
     c2's ancestors: inner_a2, root. *)
  Alcotest.(check int) "three pairs" 3 (List.length got);
  Alcotest.(check (list (pair int int))) "pairs match oracle"
    (oracle_pairs anc desc) (pairs_serials got)

let test_algorithms_agree () =
  List.iter
    (fun seed ->
      let root, r2, pp = setup seed 200 in
      List.iter
        (fun (anc_tag, desc_tag) ->
          let anc = by_tag root anc_tag and desc = by_tag root desc_tag in
          let expected = oracle_pairs anc desc in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "nested loop %s//%s" anc_tag desc_tag)
            expected
            (pairs_serials (J.nested_loop r2 ~anc ~desc));
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "ancestor probe %s//%s" anc_tag desc_tag)
            expected
            (pairs_serials (J.ancestor_probe r2 ~anc ~desc));
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "stack tree %s//%s" anc_tag desc_tag)
            expected
            (pairs_serials (J.stack_tree pp ~anc ~desc)))
        [ ("a", "b"); ("b", "c"); ("a", "a"); ("c", "b") ])
    [ 1; 2; 3 ]

let test_semijoin () =
  let root, r2, _ = setup 9 150 in
  let anc = by_tag root "a" and desc = by_tag root "c" in
  let expected =
    List.filter
      (fun d -> List.exists (fun a -> Dom.is_ancestor ~anc:a ~desc:d) anc)
      desc
  in
  check_node_list "semijoin" expected (J.semijoin_descendants r2 ~anc ~desc)

let test_parent_child () =
  let root, r2, _ = setup 4 180 in
  let parent = by_tag root "a" and child = by_tag root "b" in
  let expected =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun c ->
            match c.Dom.parent with
            | Some pp when Dom.equal pp p -> Some (p.Dom.serial, c.Dom.serial)
            | _ -> None)
          child)
      parent
    |> List.sort Stdlib.compare
  in
  Alcotest.(check (list (pair int int))) "parent-child join" expected
    (pairs_serials (J.parent_child r2 ~parent ~child))

let test_empty_inputs () =
  let _, r2, pp = setup 5 50 in
  Alcotest.(check int) "empty anc" 0
    (List.length (J.ancestor_probe r2 ~anc:[] ~desc:(by_tag (R2.root r2) "a")));
  Alcotest.(check int) "empty desc" 0
    (List.length (J.stack_tree pp ~anc:(by_tag (R2.root r2) "a") ~desc:[]))

let test_self_join_excludes_self () =
  let root, r2, _ = setup 11 120 in
  let nodes = by_tag root "a" in
  List.iter
    (fun p ->
      Alcotest.(check bool) "no reflexive pair" false (Dom.equal p.J.anc p.J.desc))
    (J.ancestor_probe r2 ~anc:nodes ~desc:nodes)

let prop_agree_random =
  Util.qtest ~count:30 "join algorithms agree on random inputs"
    QCheck.(int_range 10 250)
    (fun n ->
      let root, r2, pp = setup (n * 13) n in
      let rng = Rng.create n in
      let sample frac =
        List.filter (fun _ -> Rng.float rng < frac) (Dom.preorder root)
      in
      let anc = sample 0.3 and desc = sample 0.4 in
      let a = pairs_serials (J.nested_loop r2 ~anc ~desc) in
      let b = pairs_serials (J.ancestor_probe r2 ~anc ~desc) in
      let c = pairs_serials (J.stack_tree pp ~anc ~desc) in
      a = b && b = c && a = oracle_pairs anc desc)

let suite =
  [
    Alcotest.test_case "small known join" `Quick test_small_known;
    Alcotest.test_case "algorithms agree" `Quick test_algorithms_agree;
    Alcotest.test_case "semijoin" `Quick test_semijoin;
    Alcotest.test_case "parent-child join" `Quick test_parent_child;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "self join excludes self" `Quick test_self_join_excludes_self;
    prop_agree_random;
  ]
